"""Shared environment metadata for the ``BENCH_*.json`` writers.

Benchmark numbers are meaningless without the environment that produced
them: which CSR backend ``"auto"`` resolved to, how many cores the
parallel sweeps could use, and which numpy (if any) ran the batch
kernels. Every writer embeds :func:`bench_metadata` under a ``"meta"``
key so regenerated reports stay comparable across machines.

(The module is deliberately named ``benchmeta`` — not ``bench_meta`` —
so pytest's ``bench_*.py`` collection pattern skips it.)
"""

import os
import platform

from repro.core.csr import resolve_backend


def bench_metadata() -> dict:
    """Environment fingerprint recorded in every ``BENCH_*.json``."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is an optional dep
        numpy_version = None
    return {
        "backend": resolve_backend("auto"),
        "cpu_count": os.cpu_count(),
        "numpy_version": numpy_version,
        "python_version": platform.python_version(),
    }


def cluster_stats_payload(stats) -> dict:
    """Flatten a :class:`repro.cluster.ClusterRunStats` into the shape
    the cluster benchmark reports embed: pass/switch counters, prefetch
    effectiveness, and the per-kind message/byte breakdown."""
    return {
        "passes": stats.passes,
        "switches_tested": stats.switches_tested,
        "switches_applied": stats.switches_applied,
        "prefetch_hit_rate": stats.prefetch_hit_rate,
        "fetch_batches": stats.fetch_batches,
        "records_fetched": stats.records_fetched,
        "network_messages": stats.network.messages,
        "network_bytes": stats.network.bytes_sent,
        "messages_by_kind": dict(stats.network.by_kind),
        "bytes_by_kind": dict(stats.network.bytes_by_kind),
        "bytes_avoided": stats.network.bytes_avoided,
        "avoided_by_kind": dict(stats.network.avoided_by_kind),
    }


def acquisition_record(
    build_seconds=None, load_seconds=None, source="generated"
) -> dict:
    """How a benchmark got its graph, stamped next to every solve time.

    Exactly one of ``build_seconds`` (generated or parsed from text) and
    ``load_seconds`` (opened from a binary snapshot) should be set, so
    reports state cold-start cost honestly instead of folding it into —
    or silently dropping it from — the solve wall clock.
    """
    return {
        "source": source,
        "build_seconds": build_seconds,
        "load_seconds": load_seconds,
    }
