"""Ablation: multilevel MAAR vs the paper's flat k-sweep.

The multilevel extension (METIS-style coarsening with weighted-KL
refinement and a Dinkelbach polish at the finest level) moves the
expensive ``k`` sweep to a few-hundred-node coarse graph. This ablation
measures detection quality and runtime of both solvers on the same
workload.
"""

import pytest

from repro.attacks import ScenarioConfig, build_scenario
from repro.core import solve_maar, solve_maar_multilevel
from repro.metrics import precision_recall

SCENARIO = build_scenario(ScenarioConfig(num_legit=3000, num_fakes=600, seed=7))


@pytest.mark.parametrize("solver", ["flat", "multilevel"])
def bench_multilevel(benchmark, solver):
    if solver == "flat":
        result = benchmark.pedantic(
            lambda: solve_maar(SCENARIO.graph), rounds=1, iterations=1
        )
        suspicious = result.suspicious_nodes()
        rate = result.acceptance_rate
    else:
        result = benchmark.pedantic(
            lambda: solve_maar_multilevel(SCENARIO.graph), rounds=1, iterations=1
        )
        suspicious = result.suspicious
        rate = result.acceptance_rate
    metrics = precision_recall(suspicious, SCENARIO.fakes)
    print(
        f"\n{solver}: acceptance={rate:.3f} precision={metrics.precision:.3f} "
        f"recall={metrics.recall:.3f}"
    )
    assert metrics.recall > 0.9
    assert metrics.precision > 0.9
