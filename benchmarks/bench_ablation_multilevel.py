"""Ablation: CSR-native multilevel MAAR vs the dict-adjacency baseline
and the paper's flat k-sweep.

Three measurement groups:

* **engine ablation** — at the existing ablation scales, the
  CSR-native multilevel pipeline (``engine="csr"``: kernel heavy-edge
  matching + contraction, int64 coarse weights, weighted bucket
  refinement) against the original dict-adjacency implementation
  (``engine="legacy"``), same planted scenario, both validated for
  detection quality;
* **flat-solver context** — one flat ``solve_maar`` run at the largest
  ablation scale, the reference the multilevel scheme approximates;
* **large-graph solve** — a ~100k-node scenario (the soc-Slashdot
  catalog entry at full scale plus 20k fakes) solved end to end with the
  csr engine under both refinement frontiers (``boundary`` and
  ``full``), recording the per-level timing breakdown
  (coarsen / coarse sweep / refine) that the ``timings`` field of
  :class:`repro.core.multilevel.MultilevelResult` exposes, plus the
  refine-leg speedup the boundary scoping buys;
* **million-graph solve** — a ≥1M-node synthetic BA scenario (1M legit
  users, m=4, plus 240k fakes running the baseline spam wave), boundary
  frontier only — the workload the boundary-only path unlocks.

Writes ``BENCH_multilevel.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_ablation_multilevel.py          # full
    PYTHONPATH=src python benchmarks/bench_ablation_multilevel.py --smoke  # CI
"""

import argparse
import json
import random
import time
from pathlib import Path

from benchmeta import acquisition_record, bench_metadata
from repro.attacks import (
    ScenarioConfig,
    SybilRegionConfig,
    add_careless_requests,
    build_scenario,
    inject_sybil_region,
    send_friend_spam,
    simulate_legitimate_rejections,
)
from repro.core import solve_maar, solve_maar_multilevel
from repro.core.csr import CSRGraph
from repro.core.multilevel import MultilevelConfig
from repro.graphgen import barabasi_albert
from repro.metrics import precision_recall

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_multilevel.json"
#: Packed large-scenario snapshots (plus fake-id sidecars) live here, so
#: re-running the benchmark opens in milliseconds instead of rebuilding.
CACHE_DIR = REPO_ROOT / ".bench_cache"

FULL_SCALES = ((1500, 300), (3000, 600))
SMOKE_SCALES = ((400, 80),)
LARGE_DATASET = "soc-Slashdot"  # 82,168 catalog nodes at scale 1.0
LARGE_FAKES = 20_000
LARGE_SEED = 7
# ≥1M-node scenario: a BA legit region at soc-LiveJournal scale, fakes
# at the ~24% ratio every other bench scenario here uses (Slashdot:
# 20k/82k). The deeper hierarchy needs more than the default 24
# coarsening levels to reach a sweepable coarsest graph.
MILLION_LEGIT = 1_000_000
MILLION_FAKES = 240_000
MILLION_BA_M = 4
MILLION_SEED = 11
MILLION_CONFIG = {"max_levels": 48}
ROUNDS = 3


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _quality(result, fakes):
    metrics = precision_recall(result.suspicious, fakes)
    return {
        "found": result.found,
        "suspicious": len(result.suspicious),
        "acceptance_rate": result.acceptance_rate,
        "k": result.k,
        "precision": metrics.precision,
        "recall": metrics.recall,
    }


def engine_ablation(scales, rounds=ROUNDS, with_flat=True):
    """Legacy dict coarsening vs the CSR-native pipeline, per scale."""
    rows = []
    for num_legit, num_fakes in scales:
        scenario = build_scenario(
            ScenarioConfig(num_legit=num_legit, num_fakes=num_fakes, seed=7)
        )
        row = {
            "num_legit": num_legit,
            "num_fakes": num_fakes,
            "nodes": scenario.graph.num_nodes,
        }
        for engine in ("legacy", "csr"):
            config = MultilevelConfig(engine=engine)
            seconds, result = _best_of(
                lambda config=config: solve_maar_multilevel(
                    scenario.graph, config
                ),
                rounds,
            )
            row[engine] = {"seconds": seconds, **_quality(result, scenario.fakes)}
            row[engine]["levels"] = result.level_sizes
        row["speedup_csr_over_legacy"] = (
            row["legacy"]["seconds"] / row["csr"]["seconds"]
        )
        if with_flat:
            seconds, flat = _best_of(
                lambda: solve_maar(scenario.graph), rounds=1
            )
            metrics = precision_recall(flat.suspicious_nodes(), scenario.fakes)
            row["flat"] = {
                "seconds": seconds,
                "acceptance_rate": flat.acceptance_rate,
                "precision": metrics.precision,
                "recall": metrics.recall,
            }
        rows.append(row)
    return rows


def _acquire_scenario(tag, build, cache_dir=CACHE_DIR):
    """A scenario graph, snapshot-cached under ``tag``.

    First call runs ``build()`` (returning ``(csr, fake_ids)``), packs
    the finalized CSR into the bench cache (plus a sidecar with the
    injected fake ids), and reports ``build_seconds``; later calls
    memory-map the snapshot and report ``load_seconds`` — the
    cold-start-free path. Returns ``(csr, fakes, acquisition)``.
    """
    snap = cache_dir / f"{tag}.csrbin"
    sidecar = snap.with_suffix(".fakes.json")
    if snap.exists() and sidecar.exists():
        start = time.perf_counter()
        csr = CSRGraph.open(snap)
        load_seconds = time.perf_counter() - start
        fakes = set(json.loads(sidecar.read_text()))
        return csr, fakes, acquisition_record(
            load_seconds=load_seconds, source="snapshot"
        )
    start = time.perf_counter()
    csr, fakes = build()
    build_seconds = time.perf_counter() - start
    cache_dir.mkdir(parents=True, exist_ok=True)
    csr.save(snap)
    sidecar.write_text(json.dumps(sorted(fakes)))
    return csr, set(fakes), acquisition_record(
        build_seconds=build_seconds, source="generated"
    )


def acquire_large_scenario(num_fakes=LARGE_FAKES, cache_dir=CACHE_DIR):
    """The ~100k-node soc-Slashdot scenario graph, snapshot-cached."""

    def build():
        scenario = build_scenario(
            ScenarioConfig(
                dataset=LARGE_DATASET,
                num_legit=None,
                scale=1.0,
                num_fakes=num_fakes,
                seed=LARGE_SEED,
            )
        )
        return scenario.graph.csr(), set(scenario.fakes)

    return _acquire_scenario(
        f"{LARGE_DATASET}-fakes{num_fakes}-seed{LARGE_SEED}", build, cache_dir
    )


def acquire_million_scenario(cache_dir=CACHE_DIR):
    """The ≥1M-node synthetic BA scenario graph, snapshot-cached.

    The Table I "synthetic" generator (Barabási–Albert, m=4) scaled to a
    million legitimate users plus 240k fakes running the baseline spam
    wave — past what the full-frontier refinement can finish in a
    sitting, and the headline workload for the boundary-only path. The
    build mirrors ``build_scenario``'s attack order but runs lean — no
    RequestLog, no careless/whitewash bookkeeping kept — since at this
    scale only the final CSR arrays and the fake ids matter.
    """

    def build():
        rng = random.Random(MILLION_SEED)
        graph = barabasi_albert(MILLION_LEGIT, MILLION_BA_M, rng)
        legit = list(range(graph.num_nodes))
        simulate_legitimate_rejections(graph, legit, 0.2, rng)
        fakes = inject_sybil_region(
            graph, SybilRegionConfig(num_fakes=MILLION_FAKES), rng
        )
        send_friend_spam(graph, fakes, legit, 20, 0.7, rng)
        add_careless_requests(graph, legit, fakes, 0.15, rng)
        return graph.csr(), set(fakes)

    return _acquire_scenario(
        f"ba{MILLION_LEGIT}-fakes{MILLION_FAKES}-seed{MILLION_SEED}",
        build,
        cache_dir,
    )


def _graph_facts(dataset, csr, acquisition):
    return {
        "dataset": dataset,
        "nodes": csr.num_nodes,
        "friendships": csr.num_friendships,
        "rejections": csr.num_rejections,
        "acquisition": acquisition,
    }


def _timed_solve(csr, fakes, config=None, rounds=1):
    """Solve ``rounds`` times, report the fastest run (the partitions are
    deterministic, so only the clock varies between rounds)."""
    best_seconds = float("inf")
    best_result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = solve_maar_multilevel(csr, config or MultilevelConfig())
        seconds = time.perf_counter() - start
        if seconds < best_seconds:
            best_seconds, best_result = seconds, result
    result = best_result
    return {
        "solve_seconds": best_seconds,
        "rounds": rounds,
        "refine_seconds": sum(result.timings["refine"]),
        "per_level_timings": result.timings,
        "level_sizes": result.level_sizes,
        **_quality(result, fakes),
    }


def large_graph_solve(num_fakes=LARGE_FAKES, rounds=2):
    """End-to-end csr-engine solves on the ~100k-node scenario — one per
    refinement frontier, with the refine-leg speedup the boundary scheme
    buys at this scale."""
    csr, fakes, acquisition = acquire_large_scenario(num_fakes)
    row = _graph_facts(LARGE_DATASET, csr, acquisition)
    row["frontiers"] = {
        frontier: _timed_solve(
            csr, fakes, MultilevelConfig(frontier=frontier), rounds=rounds
        )
        for frontier in ("boundary", "full")
    }
    boundary = row["frontiers"]["boundary"]
    full = row["frontiers"]["full"]
    row["refine_speedup_boundary_over_full"] = (
        full["refine_seconds"] / boundary["refine_seconds"]
    )
    row["solve_speedup_boundary_over_full"] = (
        full["solve_seconds"] / boundary["solve_seconds"]
    )
    return row


def million_graph_solve():
    """One end-to-end csr-engine solve on the ≥1M-node BA scenario —
    boundary frontier only; the full-frontier leg is the one the scheme
    exists to avoid at this scale."""
    csr, fakes, acquisition = acquire_million_scenario()
    return {
        **_graph_facts("synthetic-1M", csr, acquisition),
        "config": dict(MILLION_CONFIG),
        **_timed_solve(csr, fakes, MultilevelConfig(**MILLION_CONFIG)),
    }


def run_report(smoke=False, rounds=ROUNDS, million=True):
    scales = SMOKE_SCALES if smoke else FULL_SCALES
    payload = {
        "meta": bench_metadata(),
        "smoke": smoke,
        "rounds": rounds,
        "engine_ablation": engine_ablation(
            scales, rounds, with_flat=not smoke
        ),
    }
    if not smoke:
        payload["large_graph"] = large_graph_solve()
        if million:
            payload["million_graph"] = million_graph_solve()
    return payload


def write_report(payload):
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return OUTPUT_PATH


def bench_multilevel(benchmark):
    """pytest-benchmark entry: smoke scale, both engines detect."""
    payload = benchmark.pedantic(
        run_report, kwargs={"smoke": True, "rounds": 1}, rounds=1, iterations=1
    )
    for row in payload["engine_ablation"]:
        assert row["csr"]["recall"] > 0.9
        assert row["legacy"]["recall"] > 0.9


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale, 1 round, no large-graph solve (CI rot check; "
        "does not overwrite a full report)",
    )
    parser.add_argument(
        "--skip-million",
        action="store_true",
        help="full run without the ≥1M-node synthetic solve",
    )
    args = parser.parse_args(argv)
    payload = run_report(
        smoke=args.smoke,
        rounds=1 if args.smoke else ROUNDS,
        million=not args.skip_million,
    )
    print(json.dumps(payload, indent=2, sort_keys=True))
    for row in payload["engine_ablation"]:
        assert row["csr"]["recall"] > 0.9 and row["csr"]["precision"] > 0.9
        assert row["legacy"]["recall"] > 0.9 and row["legacy"]["precision"] > 0.9
    if args.smoke:
        print("\nsmoke run ok (report not written)")
        return 0
    path = write_report(payload)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
