"""Figure 9: precision/recall vs requests per fake, all fakes spamming.

Expected shape (paper): Rejecto stays high at every volume; VoteTrust is
poor at low volume and improves as volume grows.
"""

from repro.experiments import SweepConfig, request_volume_sweep

# The paper's stress workload is 1:1 — 10K fakes on the 10K-node
# Facebook sample (Section VI-A) — reduced here to 800:800.
CONFIG = SweepConfig(num_legit=800, num_fakes=800)


def bench_fig09(run_once):
    result = run_once(request_volume_sweep, CONFIG)
    rejecto = result.series["Rejecto"]
    votetrust = result.series["VoteTrust"]
    assert min(rejecto) > 0.85
    # VoteTrust's volume sensitivity: clearly worse at 5 than at 50.
    assert votetrust[0] < votetrust[-1] - 0.2
