"""Figures 3-5 (Section II): CDFs of the purchased accounts' friends.

Synthetic substitute for the crawled friend attributes (DESIGN.md,
substitution 3): degree, wall-post, and photo activity CDFs over a
friend population calibrated to the paper's qualitative observations —
heavy-tailed degrees reaching past 1000 and a largely active majority.
"""

from repro.experiments import friend_attribute_study


def bench_fig03_05(run_once):
    result = run_once(friend_attribute_study)
    assert result.num_friends == 2804
    # Fig. 3's observation: some friends have degree > 1000.
    assert result.degree_over_1000 > 20
    # Figs. 4-5: a large portion of the friends are active.
    assert result.active_fraction > 0.7
    # CDFs are monotone across the thresholds.
    for row in result.cdf_rows:
        values = row[1:]
        assert list(values) == sorted(values)
        assert all(0.0 <= v <= 1.0 for v in values)
