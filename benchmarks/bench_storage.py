"""Binary snapshot store: open-vs-rebuild latency and shard-reference
wire savings.

Three measurement groups, all on the same scenario graph (the
soc-Slashdot catalog entry at full scale plus 20k fakes — ~102k nodes —
in the full run; a small planted scenario under ``--smoke``):

* **open vs rebuild** — wall-clock of building the scenario from the
  generator/edge lists against ``CSRGraph.open`` on the packed
  ``.csrbin`` snapshot, in both ``mmap`` (zero-copy) and ``copy``
  modes. The acceptance bar is a >= 50x mmap advantage at full scale;
* **backend byte-identity** — the snapshot written from a numpy-backed
  graph and from a pure-python-backed copy of the same graph must hash
  identically (the writer serializes canonical little-endian bytes);
* **distribution bytes** — uploading the graph to the mini-cluster as
  block payloads vs as snapshot references
  (``ClusterConfig.shard_transport``), reporting bytes shipped, bytes
  avoided, and the reduction factor.

Running this module directly (``PYTHONPATH=src python
benchmarks/bench_storage.py``) writes ``BENCH_storage.json`` at the
repo root. ``--smoke`` runs the small scenario with assertions and
writes nothing — the CI guard for the storage layer.
"""

import argparse
import hashlib
import json
import tempfile
import time
from pathlib import Path

from benchmeta import acquisition_record, bench_metadata
from repro.attacks import ScenarioConfig, build_scenario
from repro.cluster.netsim import NetworkSimulator
from repro.cluster.rdd import ClusterContext
from repro.core.csr import CSRGraph

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_storage.json"

LARGE_DATASET = "soc-Slashdot"  # 82,168 catalog nodes at scale 1.0
LARGE_FAKES = 20_000
SEED = 7
NUM_WORKERS = 5
NUM_PARTITIONS = 20


def build_graph(smoke=False):
    """Build the benchmark scenario from scratch (the rebuild path the
    snapshot open is measured against) and finalize its CSR."""
    if smoke:
        config = ScenarioConfig(num_legit=800, num_fakes=160, seed=SEED)
    else:
        config = ScenarioConfig(
            dataset=LARGE_DATASET,
            num_legit=None,
            scale=1.0,
            num_fakes=LARGE_FAKES,
            seed=SEED,
        )
    start = time.perf_counter()
    scenario = build_scenario(config)
    csr = scenario.graph.csr()
    return csr, time.perf_counter() - start


def _best_of(fn, repeats):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def measure_opens(snap, repeats=5):
    """Best-of open latency per mode (and a correctness spot check)."""
    timings = {}
    mmap_seconds, mapped = _best_of(lambda: CSRGraph.open(snap), repeats)
    timings["mmap_seconds"] = mmap_seconds
    copy_seconds, copied = _best_of(
        lambda: CSRGraph.open(snap, mode="copy"), max(1, repeats // 2)
    )
    timings["copy_seconds"] = copy_seconds
    assert mapped.num_nodes == copied.num_nodes
    assert list(mapped.f_ptr[:8]) == list(copied.f_ptr[:8])
    return timings, mapped


def backend_identity(csr, tmp):
    """Write the snapshot from the native-backend graph and from a
    pure-python-backed copy; return their (equal, one hopes) digests."""
    native = Path(tmp) / "native.csrbin"
    csr.save(native)
    python_backed = CSRGraph.open(native, mode="copy", backend="python")
    python_file = Path(tmp) / "python.csrbin"
    python_backed.save(python_file)
    digests = {
        "native": hashlib.sha256(native.read_bytes()).hexdigest(),
        "python": hashlib.sha256(python_file.read_bytes()).hexdigest(),
    }
    digests["identical"] = digests["native"] == digests["python"]
    return digests, native


def distribution_bytes(csr, mapped):
    """Upload volume of sharding the graph onto the mini-cluster, with
    and without snapshot references (distribution only, no solve)."""
    out = {}
    for transport, graph in (("payload", csr), ("reference", mapped)):
        network = NetworkSimulator()
        context = ClusterContext(NUM_WORKERS, network)
        context.distribute_csr(graph, NUM_PARTITIONS, transport=transport)
        out[transport] = {
            "upload_bytes": network.stats.bytes_by_kind.get("upload", 0),
            "messages": network.stats.messages,
            "bytes_avoided": network.stats.bytes_avoided,
        }
    out["upload_reduction"] = out["payload"]["upload_bytes"] / max(
        1, out["reference"]["upload_bytes"]
    )
    return out


def run_report(smoke=False):
    csr, build_seconds = build_graph(smoke)
    with tempfile.TemporaryDirectory() as tmp:
        digests, snap = backend_identity(csr, tmp)
        save_start = time.perf_counter()
        csr.save(Path(tmp) / "timed-save.csrbin")
        save_seconds = time.perf_counter() - save_start
        open_timings, mapped = measure_opens(snap)
        wire = distribution_bytes(csr, mapped)
        payload = {
            "meta": bench_metadata(),
            "smoke": smoke,
            "dataset": "planted-smoke" if smoke else LARGE_DATASET,
            "nodes": csr.num_nodes,
            "friendships": csr.num_friendships,
            "rejections": csr.num_rejections,
            "snapshot_bytes": snap.stat().st_size,
            "acquisition": acquisition_record(
                build_seconds=build_seconds, source="generated"
            ),
            "save_seconds": save_seconds,
            "open": open_timings,
            "open_vs_rebuild": build_seconds / max(1e-9, open_timings["mmap_seconds"]),
            "backend_digests": digests,
            "distribution": wire,
        }
    return payload


def check_report(payload, smoke):
    assert payload["backend_digests"]["identical"], (
        "numpy- and python-backed graphs must write identical snapshots"
    )
    assert payload["distribution"]["reference"]["bytes_avoided"] > 0
    assert payload["distribution"]["upload_reduction"] > 10
    # The acceptance bar: a >= 50x open advantage at the 102k scale.
    # Smoke graphs are small enough that parse time shrinks toward the
    # mmap constant, so the bar is proportionally lower there.
    floor = 5 if smoke else 50
    assert payload["open_vs_rebuild"] >= floor, payload["open_vs_rebuild"]


def write_report(payload):
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return OUTPUT_PATH


def bench_storage(benchmark):
    """pytest-benchmark entry: smoke scale with full assertions."""
    payload = benchmark.pedantic(
        run_report, kwargs={"smoke": True}, rounds=1, iterations=1
    )
    check_report(payload, smoke=True)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scenario, assertions only (CI guard; writes nothing)",
    )
    args = parser.parse_args(argv)
    payload = run_report(smoke=args.smoke)
    print(json.dumps(payload, indent=2, sort_keys=True))
    check_report(payload, smoke=args.smoke)
    if args.smoke:
        print("\nstorage smoke OK (report not written)")
        return 0
    path = write_report(payload)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
