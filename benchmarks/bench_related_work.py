"""Related-work comparison (Section VIII, no figure in the paper).

Runs all implemented schemes on the baseline friend-spam workload and on
the two scenarios the paper uses to argue the related approaches are
manipulable:

* a *smear campaign* — fakes cast arbitrary negative ratings at innocent
  users (possible in rating systems [20]/[23]/[40], impossible with
  social rejections, §II-B);
* the *self-rejection* whitewash — sacrificial accounts absorb
  rejections so per-account feedback schemes ([16] SybilFence) miss the
  whitewashed half.
"""

import random

from repro.attacks import ScenarioConfig, build_scenario
from repro.baselines import (
    SignedTrust,
    SybilFence,
    balance_filter,
    naive_rejection_filter,
)
from repro.core import Rejecto, RejectoConfig
from repro.experiments import format_table


def bench_related_work(benchmark):
    def run():
        rows = []
        base = build_scenario(
            ScenarioConfig(num_legit=800, num_fakes=160, seed=41)
        )
        whitewash = build_scenario(
            ScenarioConfig(
                num_legit=800, num_fakes=160, self_rejection_rate=0.9, seed=41
            )
        )
        rng = random.Random(2)
        for label, scenario, smear in [
            ("baseline spam", base, False),
            ("smear campaign", base, True),
            ("self-rejection", whitewash, False),
        ]:
            declared = len(scenario.fakes)
            seeds, _ = scenario.sample_seeds(20, 0)
            ratings = list(scenario.graph.rejections())
            if smear:
                ratings += [
                    (fake, rng.choice(scenario.legit))
                    for fake in scenario.fakes
                    for _ in range(10)
                ]
            rejecto = Rejecto(
                RejectoConfig(estimated_spammers=declared)
            ).detect(scenario.graph, legit_seeds=seeds[:10])
            rows.append(
                [
                    label,
                    scenario.precision_recall(
                        rejecto.detected(limit=declared)
                    ).precision,
                    scenario.precision_recall(
                        SignedTrust().most_suspicious(
                            scenario.graph, seeds, declared, ratings
                        )
                    ).precision,
                    scenario.precision_recall(
                        SybilFence().most_suspicious(
                            scenario.graph, seeds, declared
                        )
                    ).precision,
                    scenario.precision_recall(
                        balance_filter(scenario.graph, declared)
                    ).precision,
                    scenario.precision_recall(
                        naive_rejection_filter(scenario.graph, declared)
                    ).precision,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "scenario",
                "Rejecto",
                "SignedTrust",
                "SybilFence",
                "Balance",
                "NaiveFilter",
            ],
            rows,
            title="Related approaches under manipulation (Section VIII)",
        )
    )
    by_label = {row[0]: row for row in rows}
    # Rejecto resilient in every scenario.
    for row in rows:
        assert row[1] > 0.85, row
    # The smear campaign tanks the rating-based scheme.
    assert by_label["smear campaign"][2] < by_label["baseline spam"][2] - 0.25
