"""Figure 14: resilience to the self-rejection whitewashing strategy.

Expected shape (paper): Rejecto stays high — extra rejections among
fakes only expose the rejected half earlier; the strategy is outright
counterproductive against VoteTrust (its accuracy does not degrade).
"""

from repro.experiments import SweepConfig, self_rejection_sweep

# The paper's stress workload is 1:1 — 10K fakes on the 10K-node
# Facebook sample (Section VI-A) — reduced here to 800:800.
CONFIG = SweepConfig(num_legit=800, num_fakes=800)


def bench_fig14(run_once):
    result = run_once(self_rejection_sweep, CONFIG)
    rejecto = result.series["Rejecto"]
    votetrust = result.series["VoteTrust"]
    assert min(rejecto) > 0.85
    # Counterproductive against VoteTrust: no degradation as the
    # self-rejection rate rises.
    assert votetrust[-1] >= votetrust[0] - 0.02
