"""Ablation: prefetching vs on-demand fetches on the mini-cluster.

Section V's I/O optimization: each miss pulls the bucket list's
top-gain candidates in one batch, with LRU eviction. Measures wall time
and reports fetch round-trips; the computed cut must be identical.
"""

import pytest

from repro.attacks import ScenarioConfig, build_scenario
from repro.cluster import ClusterConfig, DistributedKL
from repro.core.objectives import LEGITIMATE, SUSPICIOUS
from repro.experiments import format_table

SCENARIO = build_scenario(ScenarioConfig(num_legit=1200, num_fakes=240))
INIT = [
    SUSPICIOUS if SCENARIO.graph.rej_in[u] else LEGITIMATE
    for u in range(SCENARIO.graph.num_nodes)
]


@pytest.mark.parametrize(
    "label,capacity",
    [("prefetch", 4096), ("no_prefetch", 0)],
)
def bench_prefetch(benchmark, label, capacity):
    def solve():
        engine = DistributedKL(
            SCENARIO.graph, ClusterConfig(buffer_capacity=capacity)
        )
        outcome = engine.run(2.0, INIT)
        return outcome, engine.network.stats

    (sides, f_cross, r_cross), net = benchmark.pedantic(
        solve, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["config", "fetch msgs", "total msgs", "MB"],
            [
                [
                    label,
                    net.by_kind.get("fetch", 0),
                    net.messages,
                    net.bytes_sent / 1e6,
                ]
            ],
            title="Prefetch ablation (Section V)",
        )
    )
    # Identical result regardless of prefetching.
    reference = DistributedKL(
        SCENARIO.graph, ClusterConfig(buffer_capacity=4096)
    ).run(2.0, INIT)
    assert (sides, f_cross, r_cross) == reference
