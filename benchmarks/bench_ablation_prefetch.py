"""Ablation: prefetching and delta broadcasts on the mini-cluster.

Section V's I/O optimization: each miss pulls the bucket list's
top-gain candidates in one batched block-slice fetch, with LRU eviction;
between passes only the switched node ids are broadcast. Measures wall
time and reports the per-kind message/byte breakdown; the computed cut
must be identical across every configuration — both knobs are pure I/O
optimizations.
"""

import pytest

from repro.attacks import ScenarioConfig, build_scenario
from repro.cluster import ClusterConfig, DistributedKL
from repro.core.objectives import LEGITIMATE, SUSPICIOUS
from repro.experiments import format_table

SCENARIO = build_scenario(ScenarioConfig(num_legit=1200, num_fakes=240))
INIT = [
    SUSPICIOUS if SCENARIO.graph.rej_in[u] else LEGITIMATE
    for u in range(SCENARIO.graph.num_nodes)
]


@pytest.mark.parametrize(
    "label,capacity,broadcast_mode",
    [
        ("prefetch+delta", 4096, "delta"),
        ("prefetch+full", 4096, "full"),
        ("no_prefetch+delta", 0, "delta"),
    ],
)
def bench_prefetch(benchmark, label, capacity, broadcast_mode):
    def solve():
        engine = DistributedKL(
            SCENARIO.graph,
            ClusterConfig(
                buffer_capacity=capacity, broadcast_mode=broadcast_mode
            ),
        )
        outcome = engine.run(2.0, INIT)
        return outcome, engine.network.stats

    (sides, f_cross, r_cross), net = benchmark.pedantic(
        solve, rounds=1, iterations=1
    )
    kinds = net.bytes_by_kind
    print()
    print(
        format_table(
            [
                "config",
                "fetch msgs",
                "total msgs",
                "fetch KB",
                "bcast KB",
                "delta KB",
                "gains KB",
                "total MB",
            ],
            [
                [
                    label,
                    net.by_kind.get("fetch", 0),
                    net.messages,
                    kinds.get("fetch", 0) / 1e3,
                    kinds.get("broadcast", 0) / 1e3,
                    kinds.get("delta", 0) / 1e3,
                    kinds.get("gains", 0) / 1e3,
                    net.bytes_sent / 1e6,
                ]
            ],
            title="Prefetch / broadcast ablation (Section V)",
        )
    )
    assert sum(kinds.values()) == net.bytes_sent
    # Identical result regardless of prefetching or broadcast encoding.
    reference = DistributedKL(
        SCENARIO.graph, ClusterConfig(buffer_capacity=4096)
    ).run(2.0, INIT)
    assert (sides, f_cross, r_cross) == reference
