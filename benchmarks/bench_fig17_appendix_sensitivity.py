"""Figure 17 (Appendix A): sensitivity sweeps on the other six graphs.

Repeats the Fig. 9-12 sweeps (request volume all/half, spam rejection
rate, legitimate rejection rate) on ca-HepTh, ca-AstroPh, email-Enron,
soc-Epinions, soc-Slashdot, and the synthetic BA graph. Expected shape
(paper): the same trends as on the Facebook sample, on every graph.
"""

from repro.experiments import SweepConfig, appendix_sensitivity

# 1:1 fake:legit proportions, as in the paper's stress setup.
CONFIG = SweepConfig(num_legit=600, num_fakes=600)


def bench_fig17(run_once):
    class Rendered:
        def __init__(self, results):
            self.results = results

        def render(self):
            blocks = []
            for dataset, sweeps in self.results.items():
                for sweep in sweeps:
                    blocks.append(f"[{dataset}]\n{sweep.render()}")
            return "\n\n".join(blocks)

    rendered = run_once(
        lambda: Rendered(appendix_sensitivity(CONFIG, points=3))
    )
    results = rendered.results
    assert len(results) == 6
    for dataset, sweeps in results.items():
        assert len(sweeps) == 4
        for sweep in sweeps[:2]:  # both request-volume sweeps
            assert min(sweep.series["Rejecto"]) > 0.75, (dataset, sweep.figure)
