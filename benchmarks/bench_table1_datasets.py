"""Table I: dataset statistics of the seven stand-in social graphs.

Regenerates every catalog graph (reduced scale by default — pass the
full 1.0 through ``datasets_table`` for paper-size graphs) and prints
measured nodes/edges/clustering/diameter next to the published row.
"""

from repro.experiments import datasets_table


def bench_table1(run_once):
    result = run_once(datasets_table, scale=0.2)
    assert len(result.rows) == 7
    by_name = {row.name: row for row in result.rows}
    # The stand-ins must preserve Table I's clustering ordering.
    assert by_name["facebook"].clustering > by_name["email-Enron"].clustering
    assert by_name["email-Enron"].clustering > by_name["synthetic"].clustering
