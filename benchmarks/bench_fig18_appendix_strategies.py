"""Figure 18 (Appendix B): attack-strategy sweeps on the other six graphs.

Repeats the Fig. 13-15 sweeps (collusion, self-rejection, rejecting
legitimate requests) on the six non-Facebook Table I graphs. Expected
shape (paper): Rejecto resilient everywhere; VoteTrust's weaknesses
reappear on every graph.
"""

from repro.experiments import SweepConfig, appendix_strategies

# 1:1 fake:legit proportions, as in the paper's stress setup.
CONFIG = SweepConfig(num_legit=600, num_fakes=600)


def bench_fig18(run_once):
    class Rendered:
        def __init__(self, results):
            self.results = results

        def render(self):
            blocks = []
            for dataset, sweeps in self.results.items():
                for sweep in sweeps:
                    blocks.append(f"[{dataset}]\n{sweep.render()}")
            return "\n\n".join(blocks)

    rendered = run_once(
        lambda: Rendered(appendix_strategies(CONFIG, points=3))
    )
    results = rendered.results
    assert len(results) == 6
    for dataset, sweeps in results.items():
        assert len(sweeps) == 3
        collusion = sweeps[0]
        assert min(collusion.series["Rejecto"]) > 0.75, dataset
