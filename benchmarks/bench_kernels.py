"""Batch kernels vs scalar sweeps, and incremental vs full-rebuild passes.

Two measurement groups at the default attack scale (2000 legitimate
users + 400 fakes):

* **per-pass init kernels** — the O(V+E) sweeps every KL pass used to
  open with, timed as the scalar fallback vs the numpy batch kernel:
  ``gain_deltas`` (bucket/heap gain initialization), ``heap_gains``
  (float gains for the heap engine), and ``recount_active`` (the
  counter rebuild every ``PartitionState`` construction pays);
* **end-to-end solves** — one ``extended_kl`` bucket solve and one heap
  solve under ``KLConfig(incremental=False)`` (full V+E rebuild every
  pass, the pre-kernel behaviour) vs the default dirty-frontier
  incremental mode.

Both modes are bit-identical (asserted here and property-tested in
``tests/core``); this benchmark records what the identical answer costs.
Writes ``BENCH_kernels.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py          # full
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke  # CI
"""

import argparse
import json
import time
from pathlib import Path

from benchmeta import bench_metadata
from repro.attacks import ScenarioConfig, build_scenario
from repro.core import KLConfig
from repro.core.csr import PartitionState
from repro.core.kernels import gain_deltas, heap_gains, recount_active
from repro.core.kl import extended_kl_state
from repro.core.objectives import LEGITIMATE, SUSPICIOUS

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_kernels.json"

FULL_SCALE = (2000, 400)
SMOKE_SCALE = (400, 80)
ROUNDS = 5


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _scenario(num_legit, num_fakes):
    scenario = build_scenario(
        ScenarioConfig(num_legit=num_legit, num_fakes=num_fakes)
    )
    graph = scenario.graph
    sides = [
        SUSPICIOUS if graph.rej_in[u] else LEGITIMATE
        for u in range(graph.num_nodes)
    ]
    return graph, sides


def kernel_timings(graph, sides, rounds=ROUNDS):
    """Scalar fallback vs numpy batch kernel for each per-pass init sweep.

    Both backends share the identical flat storage, so this isolates the
    sweep itself; the assertions re-verify bit-identical outputs on the
    benchmark-scale graph.
    """
    views = {name: graph.csr(name).view() for name in ("python", "numpy")}
    timings = {}
    outputs = {}
    for name, view in views.items():
        timings[name] = {}
        timings[name]["gain_deltas_seconds"], outputs[name, "gd"] = _best_of(
            lambda view=view: gain_deltas(view, sides), rounds
        )
        timings[name]["heap_gains_seconds"], outputs[name, "hg"] = _best_of(
            lambda view=view: heap_gains(view, sides, 0.3), rounds
        )
        timings[name]["recount_seconds"], outputs[name, "rc"] = _best_of(
            lambda view=view: recount_active(view, sides), rounds
        )
    for key in ("gd", "hg", "rc"):
        assert outputs["python", key] == outputs["numpy", key], key
    timings["speedup_numpy_over_python"] = {
        kernel: timings["python"][kernel] / timings["numpy"][kernel]
        for kernel in timings["python"]
    }
    return timings


def solve_timings(graph, sides, rounds=ROUNDS, backends=("numpy", "python")):
    """Full-rebuild vs dirty-frontier incremental end-to-end solves.

    Measured per backend: on numpy the full rebuild is already a cheap
    batch kernel, so the incremental mode mostly matters on the python
    backend, where every avoided re-sweep is a scalar O(V+E) pass.
    """
    rows = {}
    for backend in backends:
        view = graph.csr(backend).view()
        rows[backend] = {}
        results = {}
        for engine, k in (("bucket", 2.0), ("heap", 0.3)):
            row = rows[backend][engine] = {}
            for label, incremental in (
                ("full_rebuild", False),
                ("incremental", True),
            ):
                config = KLConfig(gain_index=engine, incremental=incremental)
                seconds, result = _best_of(
                    lambda config=config: extended_kl_state(
                        PartitionState(view, list(sides)), k, config=config
                    ),
                    rounds,
                )
                row[f"{label}_seconds"] = seconds
                results[engine, label] = result
            row["speedup_incremental"] = (
                row["full_rebuild_seconds"] / row["incremental_seconds"]
            )
            full = results[engine, "full_rebuild"]
            inc = results[engine, "incremental"]
            assert inc.sides == full.sides, (backend, engine)
            assert (inc.f_cross, inc.r_cross) == (
                full.f_cross,
                full.r_cross,
            ), (backend, engine)
    return rows


def run_report(smoke=False, rounds=ROUNDS):
    num_legit, num_fakes = SMOKE_SCALE if smoke else FULL_SCALE
    graph, sides = _scenario(num_legit, num_fakes)
    return {
        "meta": bench_metadata(),
        "smoke": smoke,
        "rounds": rounds,
        "scenario": {
            "num_legit": num_legit,
            "num_fakes": num_fakes,
            "nodes": graph.num_nodes,
            "friendships": graph.num_friendships,
            "rejections": graph.num_rejections,
        },
        "per_pass_init": kernel_timings(graph, sides, rounds),
        "kl_single_solve": solve_timings(graph, sides, rounds),
    }


def write_report(payload):
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return OUTPUT_PATH


def bench_kernels(benchmark):
    """pytest-benchmark entry: smoke scale, vectorized == scalar."""
    payload = benchmark.pedantic(
        run_report, kwargs={"smoke": True, "rounds": 2}, rounds=1, iterations=1
    )
    assert payload["per_pass_init"]["python"]["gain_deltas_seconds"] > 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale, 2 rounds (CI rot check; does not overwrite "
        "a full report)",
    )
    args = parser.parse_args(argv)
    try:
        import numpy  # noqa: F401
    except ImportError:
        # The pure-python CI job still smoke-tests the solve paths; the
        # backend comparison needs numpy.
        graph, sides = _scenario(*SMOKE_SCALE)
        solve_timings(graph, sides, rounds=2, backends=("python",))
        print("numpy unavailable: solve smoke ok (kernel comparison skipped)")
        return 0
    payload = run_report(smoke=args.smoke, rounds=2 if args.smoke else ROUNDS)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.smoke:
        print("\nsmoke run ok (report not written)")
        return 0
    path = write_report(payload)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
