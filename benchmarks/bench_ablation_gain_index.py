"""Ablation: gain-index variants and the flat-array CSR engine.

Two comparisons at the paper's default attack scale (2000 legitimate
users, 400 fakes):

* FM bucket list vs lazy-deletion heap inside a single extended-KL
  solve (Section IV-C's data-structure choice), and
* the legacy dict-adjacency engine vs the flat-array CSR engine for the
  full end-to-end MAAR sweep (``solve_maar``), which is what Rejecto
  runs once per detection round.

Running this module directly (``PYTHONPATH=src python
benchmarks/bench_ablation_gain_index.py``) writes the wall-clock
numbers to ``BENCH_gain_index.json`` at the repo root; under
pytest-benchmark the same measurements are asserted on.
"""

import json
import time
from pathlib import Path

import pytest

from benchmeta import bench_metadata
from repro.attacks import ScenarioConfig, build_scenario
from repro.core import KLConfig, MAARConfig, Partition, extended_kl, solve_maar
from repro.core.objectives import LEGITIMATE, SUSPICIOUS

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_gain_index.json"
ROUNDS = 3

SCENARIO_CONFIG = ScenarioConfig(num_legit=2000, num_fakes=400)
SCENARIO = build_scenario(SCENARIO_CONFIG)


def _initial_partition():
    graph = SCENARIO.graph
    return Partition(
        graph,
        [
            SUSPICIOUS if graph.rej_in[u] else LEGITIMATE
            for u in range(graph.num_nodes)
        ],
    )


def _best_of(fn, rounds=ROUNDS):
    """Best-of-N wall clock plus the last result."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_ablation(rounds=ROUNDS):
    """Time every variant and return the BENCH_gain_index payload."""
    graph = SCENARIO.graph
    initial = _initial_partition()

    kl_times = {}
    kl_results = {}
    for label, config in (
        ("csr_bucket", KLConfig(gain_index="bucket")),
        ("csr_heap", KLConfig(gain_index="heap")),
        ("legacy_bucket", KLConfig(gain_index="bucket", engine="legacy")),
        ("legacy_heap", KLConfig(gain_index="heap", engine="legacy")),
    ):
        kl_times[label], kl_results[label] = _best_of(
            lambda config=config: extended_kl(graph, 2.0, initial, config=config),
            rounds,
        )
    # Every variant implements the same greedy discipline.
    reference = kl_results["csr_bucket"].objective(2.0)
    for label, result in kl_results.items():
        assert result.objective(2.0) == pytest.approx(reference), label

    maar_times = {}
    maar_results = {}
    for label, config in (
        ("csr", MAARConfig()),
        ("legacy", MAARConfig(kl=KLConfig(engine="legacy"))),
    ):
        maar_times[label], maar_results[label] = _best_of(
            lambda config=config: solve_maar(graph, config), rounds
        )
    assert maar_results["csr"].found and maar_results["legacy"].found

    speedup = maar_times["legacy"] / maar_times["csr"]
    return {
        "meta": bench_metadata(),
        "scenario": {
            "num_legit": SCENARIO_CONFIG.num_legit,
            "num_fakes": SCENARIO_CONFIG.num_fakes,
            "nodes": graph.num_nodes,
            "friendships": graph.num_friendships,
            "rejections": graph.num_rejections,
        },
        "rounds": rounds,
        "kl_single_solve_seconds": kl_times,
        "maar_end_to_end_seconds": maar_times,
        "maar_speedup_csr_over_legacy": speedup,
        "maar_acceptance_rate": maar_results["csr"].acceptance_rate,
    }


def write_report(payload):
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return OUTPUT_PATH


def bench_gain_index(benchmark):
    payload = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    write_report(payload)
    # Tentpole acceptance: the CSR core at least doubles end-to-end
    # KL+MAAR throughput at the default attack scale.
    assert payload["maar_speedup_csr_over_legacy"] >= 2.0
    times = payload["kl_single_solve_seconds"]
    assert times["csr_bucket"] <= times["legacy_bucket"]


if __name__ == "__main__":
    report = run_ablation()
    path = write_report(report)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {path}")
