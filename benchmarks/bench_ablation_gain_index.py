"""Ablation: FM bucket list vs lazy-deletion heap gain index.

The paper adopts the Fiduccia-Mattheyses bucket list for O(1) max-gain
lookups (Section IV-C). This ablation times a full extended-KL solve
with each index and checks they compute equally good cuts.
"""

import pytest

from repro.attacks import ScenarioConfig, build_scenario
from repro.core import KLConfig, Partition, extended_kl
from repro.core.objectives import LEGITIMATE, SUSPICIOUS

SCENARIO = build_scenario(ScenarioConfig(num_legit=2000, num_fakes=400))
INIT = Partition(
    SCENARIO.graph,
    [
        SUSPICIOUS if SCENARIO.graph.rej_in[u] else LEGITIMATE
        for u in range(SCENARIO.graph.num_nodes)
    ],
)


@pytest.mark.parametrize("index_kind", ["bucket", "heap"])
def bench_gain_index(benchmark, index_kind):
    result = benchmark.pedantic(
        extended_kl,
        args=(SCENARIO.graph, 2.0, INIT),
        kwargs={"config": KLConfig(gain_index=index_kind)},
        rounds=3,
        iterations=1,
    )
    # Both indexes implement the same greedy discipline.
    reference = extended_kl(
        SCENARIO.graph, 2.0, INIT, config=KLConfig(gain_index="bucket")
    )
    assert result.objective(2.0) == pytest.approx(reference.objective(2.0))
