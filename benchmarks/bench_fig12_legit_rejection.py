"""Figure 12: precision/recall vs rejection rate among legitimate users.

Expected shape (paper): both schemes degrade as the legitimate rejection
rate approaches the spam rate (0.7), where the two populations become
statistically indistinguishable.
"""

from repro.experiments import SweepConfig, legit_rejection_sweep

# The paper's stress workload is 1:1 — 10K fakes on the 10K-node
# Facebook sample (Section VI-A) — reduced here to 800:800.
CONFIG = SweepConfig(num_legit=800, num_fakes=800)


def bench_fig12(run_once):
    result = run_once(legit_rejection_sweep, CONFIG)
    rejecto = result.series["Rejecto"]
    votetrust = result.series["VoteTrust"]
    # High while legit users reject far less than spammers...
    assert min(rejecto[:4]) > 0.9
    # ...and collapsed by rate 0.8, past the 0.7 convergence point.
    assert rejecto[-2] < 0.3
    assert votetrust[-2] < 0.3
