"""Figure 15: Sybils rejecting legitimate users' requests.

Expected shape (paper): Rejecto tolerates planted rejections until their
volume nears the legitimate users' own rejection level (~14 per fake =
20 requests x 0.7), then drops abruptly; VoteTrust decreases almost
linearly from the start.
"""

from repro.experiments import SweepConfig, legit_victim_rejection_sweep

# The paper's stress workload is 1:1 — 10K fakes on the 10K-node
# Facebook sample (Section VI-A) — reduced here to 800:800.
CONFIG = SweepConfig(num_legit=800, num_fakes=800)


def bench_fig15(run_once):
    result = run_once(legit_victim_rejection_sweep, CONFIG)
    rejecto = result.series["Rejecto"]
    votetrust = result.series["VoteTrust"]
    # Flat and high through 12.8 rejections per fake (index 8)...
    assert min(rejecto[:9]) > 0.85
    # ...with the cliff at/after ~14.4 (the legitimate-rejection level);
    # seeds keep the post-cliff floor above the paper's seedless zero.
    assert rejecto[-1] < 0.6
    assert rejecto[-1] < min(rejecto[:9]) - 0.3
    # VoteTrust decays roughly monotonically across the sweep.
    assert votetrust[-1] < votetrust[0] - 0.5
