"""Ablation: granularity of the geometric ``k`` sweep.

Theorem 1 needs ``k`` near the optimal friends-to-rejections ratio; the
sweep brackets it with a geometric grid. Fewer steps run faster but may
miss the MAAR cut; this ablation quantifies the accuracy/runtime trade.
"""

import pytest

from repro.attacks import ScenarioConfig, build_scenario
from repro.core import MAARConfig, Rejecto, RejectoConfig

SCENARIO = build_scenario(ScenarioConfig(num_legit=1200, num_fakes=240))


@pytest.mark.parametrize("k_steps,k_factor", [(10, 2.0), (5, 4.0), (3, 8.0)])
def bench_k_grid(benchmark, k_steps, k_factor):
    def detect():
        config = RejectoConfig(
            maar=MAARConfig(k_steps=k_steps, k_factor=k_factor),
            estimated_spammers=len(SCENARIO.fakes),
        )
        result = Rejecto(config).detect(SCENARIO.graph)
        return SCENARIO.precision_recall(
            result.detected(limit=len(SCENARIO.fakes))
        )

    metrics = benchmark.pedantic(detect, rounds=1, iterations=1)
    print(
        f"\nk_steps={k_steps} factor={k_factor}: "
        f"precision={metrics.precision:.3f}"
    )
    # All grids cover k* ~ 0.43 (30% acceptance); accuracy should hold.
    assert metrics.precision > 0.8
