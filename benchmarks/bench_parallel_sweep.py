"""Parallel MAAR ``k``-sweep: serial vs multi-worker wall clock.

The sweep's ``k`` steps are independent extended-KL runs over one
immutable CSR snapshot (``MAARConfig(warm_start=False)``, the default),
so ``MAARConfig(jobs=N)`` fans them out through
:mod:`repro.core.parallel`. This benchmark measures the end-to-end
``solve_maar`` wall clock at 1/2/4/8 workers on the default 2000+400
attack scale plus one ~10k-node scale point, asserts the parallel
results are *bit-identical* to the serial sweep, and writes everything
to ``BENCH_parallel_sweep.json`` at the repo root.

Because wall-clock parallel speedup is a property of the host (a 1-core
container can never beat serial), the report also records each ``k``
step's serial duration and the *modeled* makespan of scheduling those
measured durations greedily onto N workers — the speedup the fan-out
delivers once cores exist. ``cpu_count`` is recorded so readers can tell
which regime a given JSON was produced in; the measured-speedup
assertion only applies on multi-core hosts.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py          # full
    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py --smoke  # CI
"""

import argparse
import json
import os
import time
from pathlib import Path

from benchmeta import bench_metadata
from repro.attacks import ScenarioConfig, build_scenario
from repro.core import MAARConfig, geometric_k_sequence, solve_maar
from repro.core.parallel import fork_available, resolve_executor

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_parallel_sweep.json"

#: (num_legit, num_fakes): the paper-protocol default scale and a
#: ~10k-node point (5:1 legit:fake ratio, as in the sweeps).
FULL_SCALES = ((2000, 400), (8333, 1667))
SMOKE_SCALES = ((400, 80),)
FULL_WORKERS = (2, 4, 8)
SMOKE_WORKERS = (2,)


def _result_fingerprint(result):
    """Everything the sweep decides: best cut, per-k diagnostics, stats."""
    return (
        result.k,
        result.acceptance_rate,
        result.suspicious_nodes(),
        [
            (c.k, c.valid, c.f_cross, c.r_cross, c.suspicious_size)
            for c in result.per_k
        ],
        (
            result.stats.passes,
            result.stats.switches_applied,
            result.stats.switches_tested,
            result.stats.objective_history,
        ),
    )


def _greedy_makespan(durations, workers):
    """Makespan of assigning tasks (in submission order) to the first
    free worker — the schedule a work-stealing pool approximates."""
    free = [0.0] * workers
    for duration in durations:
        slot = free.index(min(free))
        free[slot] += duration
    return max(free)


def measure_per_k(graph, config):
    """Serial duration of each ``k`` step, on the shared snapshot."""
    durations = []
    for k in geometric_k_sequence(config.k_min, config.k_factor, config.k_steps):
        single = MAARConfig(k_min=k, k_steps=1, kl=config.kl)
        start = time.perf_counter()
        solve_maar(graph, single)
        durations.append(time.perf_counter() - start)
    return durations


def run_scale(num_legit, num_fakes, worker_grid):
    scenario = build_scenario(
        ScenarioConfig(num_legit=num_legit, num_fakes=num_fakes)
    )
    graph = scenario.graph.csr()

    start = time.perf_counter()
    serial = solve_maar(graph, MAARConfig())
    serial_seconds = time.perf_counter() - start
    assert serial.found
    reference = _result_fingerprint(serial)

    per_k = measure_per_k(graph, MAARConfig())
    row = {
        "num_legit": num_legit,
        "num_fakes": num_fakes,
        "users": graph.num_nodes,
        "friendships": graph.num_friendships,
        "rejections": graph.num_rejections,
        "serial_seconds": serial_seconds,
        "per_k_seconds": per_k,
        "workers": {},
    }
    for jobs in worker_grid:
        start = time.perf_counter()
        parallel = solve_maar(graph, MAARConfig(jobs=jobs))
        seconds = time.perf_counter() - start
        identical = _result_fingerprint(parallel) == reference
        assert identical, f"parallel sweep (jobs={jobs}) diverged from serial"
        row["workers"][str(jobs)] = {
            "seconds": seconds,
            "measured_speedup": serial_seconds / seconds,
            "modeled_speedup": sum(per_k) / _greedy_makespan(per_k, jobs),
            "backend": resolve_executor("auto", jobs),
            "identical": identical,
        }
    return row


def run_report(smoke=False):
    scales = SMOKE_SCALES if smoke else FULL_SCALES
    workers = SMOKE_WORKERS if smoke else FULL_WORKERS
    return {
        "meta": bench_metadata(),
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "fork_available": fork_available(),
        "scales": [
            run_scale(num_legit, num_fakes, workers)
            for num_legit, num_fakes in scales
        ],
    }


def write_report(payload):
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return OUTPUT_PATH


def bench_parallel_sweep(benchmark):
    """pytest-benchmark entry: smoke scale, parallel == serial."""
    payload = benchmark.pedantic(run_report, args=(True,), rounds=1, iterations=1)
    for row in payload["scales"]:
        assert all(w["identical"] for w in row["workers"].values())


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale, 2 workers only (CI rot check; does not "
        "overwrite a full report)",
    )
    args = parser.parse_args(argv)
    payload = run_report(smoke=args.smoke)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.smoke:
        print("\nsmoke run ok (report not written)")
        return 0
    path = write_report(payload)
    print(f"\nwrote {path}")
    cores = os.cpu_count() or 1
    if cores >= 2:
        four = payload["scales"][0]["workers"].get("4")
        if four is not None:
            assert four["measured_speedup"] >= 1.8, (
                "expected >= 1.8x at 4 workers on the default scale, got "
                f"{four['measured_speedup']:.2f}x on {cores} cores"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
