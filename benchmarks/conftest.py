"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables or figures
(see DESIGN.md's per-experiment index). Benchmarks run the full
experiment exactly once (``pedantic`` with one round — these are
minutes-scale experiments, not microbenchmarks) and print the resulting
rows/series so that::

    pytest benchmarks/ --benchmark-only -s

reproduces the paper's evaluation outputs alongside the timings.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment once under pytest-benchmark and print it.

    The callable must return an object with a ``render()`` method or a
    plain string.
    """

    def runner(experiment, *args, **kwargs):
        result = benchmark.pedantic(
            experiment, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        text = result.render() if hasattr(result, "render") else str(result)
        print()
        print(text)
        return result

    return runner
