"""Ablation: seed count vs false positives (Section IV-F).

Seeds pre-place known users and prune misleading legitimate-region cuts
from the KL search space. This ablation sweeps the number of legitimate
seeds on a *hard* scenario (stealth spammers at low request volume,
where seedless MAAR is unstable) and reports precision.
"""

from repro.attacks import ScenarioConfig, build_scenario
from repro.core import MAARConfig, Rejecto, RejectoConfig
from repro.experiments import format_series

SCENARIO = build_scenario(
    ScenarioConfig(
        num_legit=800,
        num_fakes=160,
        requests_per_fake=5,
        spam_sender_fraction=0.5,
    )
)


def bench_seed_count(benchmark):
    def sweep():
        counts = [0, 5, 15, 30, 60]
        precisions = []
        for count in counts:
            legit_seeds, _ = SCENARIO.sample_seeds(count, 0)
            config = RejectoConfig(
                maar=MAARConfig(), estimated_spammers=len(SCENARIO.fakes)
            )
            result = Rejecto(config).detect(
                SCENARIO.graph, legit_seeds=legit_seeds
            )
            metrics = SCENARIO.precision_recall(
                result.detected(limit=len(SCENARIO.fakes))
            )
            precisions.append(metrics.precision)
        return counts, precisions

    counts, precisions = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_series(
            "#legit seeds",
            counts,
            {"Rejecto precision": precisions},
            title="Seed-count ablation (Section IV-F), hard stealth scenario",
        )
    )
    # Seeds must recover full accuracy on the hard scenario.
    assert precisions[-1] > 0.9
