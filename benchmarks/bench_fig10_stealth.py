"""Figure 10: precision/recall vs requests per fake, half the fakes spam.

Expected shape (paper): Rejecto still catches the silent half via their
intra-region links; VoteTrust caps near 50% because its per-user vote
aggregation never implicates non-senders.
"""

from repro.experiments import SweepConfig, stealth_sweep

# The paper's stress workload is 1:1 — 10K fakes on the 10K-node
# Facebook sample (Section VI-A) — reduced here to 800:800.
CONFIG = SweepConfig(num_legit=800, num_fakes=800)


def bench_fig10(run_once):
    result = run_once(stealth_sweep, CONFIG)
    rejecto = result.series["Rejecto"]
    votetrust = result.series["VoteTrust"]
    assert min(rejecto) > 0.85
    assert max(votetrust) < 0.65
