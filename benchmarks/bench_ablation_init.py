"""Ablation: initial-partition strategy of the MAAR sweep.

The rejection-received warm start is this implementation's default;
this ablation compares it against an all-legitimate start and a random
split, in both runtime and detection accuracy.
"""

import pytest

from repro.attacks import ScenarioConfig, build_scenario
from repro.core import MAARConfig, Rejecto, RejectoConfig

SCENARIO = build_scenario(ScenarioConfig(num_legit=1200, num_fakes=240))


@pytest.mark.parametrize("init", ["rejection", "all_legitimate", "random"])
def bench_init_strategy(benchmark, init):
    def detect():
        config = RejectoConfig(
            maar=MAARConfig(init=init),
            estimated_spammers=len(SCENARIO.fakes),
        )
        result = Rejecto(config).detect(SCENARIO.graph)
        return SCENARIO.precision_recall(
            result.detected(limit=len(SCENARIO.fakes))
        )

    metrics = benchmark.pedantic(detect, rounds=1, iterations=1)
    print(f"\ninit={init}: precision={metrics.precision:.3f}")
    # Every start must converge to an accurate cut on the baseline
    # workload; what differs is how fast (the timing above).
    assert metrics.precision > 0.8
