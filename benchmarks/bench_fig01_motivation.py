"""Figure 1 (Section II): friends vs pending requests per fake account.

Synthetic substitute for the purchased-account measurement — the series
comes from the calibrated account model (DESIGN.md, substitution 3).
"""

from repro.experiments import motivation_study


def bench_fig01(run_once):
    result = run_once(motivation_study)
    assert len(result.friends) == 43
    # The paper's headline observation: every account has a significant
    # pending pile, between 16.7% and 67.9% of its requests.
    assert all(0.1 < frac < 0.72 for frac in result.pending_fractions)
