"""Table II: execution time vs input graph size.

Two measurements:

* the paper's mini-cluster scaling study (``scaling_study``): near-linear
  runtime growth with graph size, "provided that the volume of the
  aggregate memory in the cluster suffices" — here, provided the single
  process holds the partitions;
* a single-process legacy-vs-CSR comparison: one ``solve_maar`` sweep
  per size on each engine, demonstrating that the flat-array core keeps
  its advantage as graphs grow.

Running this module directly (``PYTHONPATH=src python
benchmarks/bench_table2_scaling.py``) writes the per-size wall-clock
numbers to ``BENCH_table2.json`` at the repo root.
"""

import json
import time
from pathlib import Path

from benchmeta import bench_metadata
from repro.attacks import ScenarioConfig, build_scenario
from repro.core import KLConfig, MAARConfig, solve_maar
from repro.experiments import ScalingConfig, scaling_study

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_table2.json"

CONFIG = ScalingConfig(user_counts=(1000, 2000, 4000, 8000))
ENGINE_SIZES = (500, 1000, 2000, 4000)
FAKE_FRACTION = 0.2  # the default attack scale's 5:1 legit:fake ratio


def run_engine_scaling(sizes=ENGINE_SIZES):
    """Time legacy vs CSR ``solve_maar`` at each size."""
    rows = []
    for num_legit in sizes:
        scenario = build_scenario(
            ScenarioConfig(
                num_legit=num_legit, num_fakes=int(num_legit * FAKE_FRACTION)
            )
        )
        graph = scenario.graph
        row = {
            "users": graph.num_nodes,
            "friendships": graph.num_friendships,
            "rejections": graph.num_rejections,
        }
        for label, config in (
            ("csr", MAARConfig()),
            ("legacy", MAARConfig(kl=KLConfig(engine="legacy"))),
        ):
            start = time.perf_counter()
            result = solve_maar(graph, config)
            row[f"{label}_seconds"] = time.perf_counter() - start
            assert result.found
        row["speedup"] = row["legacy_seconds"] / row["csr_seconds"]
        rows.append(row)
    return rows


def run_table2():
    """The full Table II payload: cluster study + engine comparison."""
    study = scaling_study(CONFIG)
    cluster_rows = [
        {
            "users": row.users,
            "edges": row.edges,
            "rejections": row.rejections,
            "wall_seconds": row.wall_seconds,
            "microseconds_per_edge": row.microseconds_per_edge,
            "network_messages": row.network_messages,
            "network_bytes": row.network_bytes,
        }
        for row in study.rows
    ]
    return {
        "meta": bench_metadata(),
        "cluster_scaling": cluster_rows,
        "engine_scaling": run_engine_scaling(),
    }


def write_report(payload):
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return OUTPUT_PATH


def bench_table2(run_once):
    result = run_once(scaling_study, CONFIG)
    edges = [row.edges for row in result.rows]
    times = [row.wall_seconds for row in result.rows]
    assert edges == sorted(edges)
    assert times[-1] > times[0]
    # Near-linear: per-edge cost varies by far less than the 8x size span.
    per_edge = [row.microseconds_per_edge for row in result.rows]
    assert max(per_edge) < 6 * min(per_edge)


def bench_table2_engines(benchmark):
    rows = benchmark.pedantic(run_engine_scaling, rounds=1, iterations=1)
    # The CSR engine wins at every size, by 2x or more at scale.
    assert all(row["speedup"] > 1.0 for row in rows)
    assert rows[-1]["speedup"] >= 2.0


if __name__ == "__main__":
    report = run_table2()
    path = write_report(report)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {path}")
