"""Table II: execution time vs input graph size on the mini-cluster.

Expected shape (paper): near-linear runtime growth with graph size,
"provided that the volume of the aggregate memory in the cluster
suffices" — here, provided the single process holds the partitions. The
per-edge cost column makes the linearity visible directly; simulated
network traffic is reported alongside.
"""

from repro.experiments import ScalingConfig, scaling_study

CONFIG = ScalingConfig(user_counts=(1000, 2000, 4000, 8000))


def bench_table2(run_once):
    result = run_once(scaling_study, CONFIG)
    edges = [row.edges for row in result.rows]
    times = [row.wall_seconds for row in result.rows]
    assert edges == sorted(edges)
    assert times[-1] > times[0]
    # Near-linear: per-edge cost varies by far less than the 8x size span.
    per_edge = [row.microseconds_per_edge for row in result.rows]
    assert max(per_edge) < 6 * min(per_edge)
