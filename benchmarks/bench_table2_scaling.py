"""Table II: execution time vs input graph size.

Two measurements:

* the paper's mini-cluster scaling study (``scaling_study``): near-linear
  runtime growth with graph size, "provided that the volume of the
  aggregate memory in the cluster suffices" — here, provided the single
  process holds the partitions;
* a single-process legacy-vs-CSR comparison: one ``solve_maar`` sweep
  per size on each engine, demonstrating that the flat-array core keeps
  its advantage as graphs grow.

Each cluster row also reports the prefetch hit rate, the per-kind
message/byte breakdown, and — where a pre-PR baseline exists — the
payload-byte reduction and wall-clock speedup delivered by the
CSR-sharded engine (batched block-slice fetches + delta broadcasts)
over the dict-record implementation it replaced.

Running this module directly (``PYTHONPATH=src python
benchmarks/bench_table2_scaling.py``) writes the per-size wall-clock
numbers to ``BENCH_table2.json`` at the repo root. ``--smoke`` runs a
small two-size study with full protocol assertions and writes nothing —
the CI guard for the cluster wire format.
"""

import json
import sys
import tempfile
import time
from pathlib import Path

from benchmeta import bench_metadata, cluster_stats_payload
from repro.attacks import ScenarioConfig, build_scenario
from repro.cluster import ClusterConfig, ClusterRunStats, distributed_maar
from repro.core import KLConfig, MAARConfig, solve_maar
from repro.core.csr import CSRGraph
from repro.experiments import ScalingConfig, scaling_study

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_table2.json"

CONFIG = ScalingConfig(user_counts=(1000, 2000, 4000, 8000))
ENGINE_SIZES = (500, 1000, 2000, 4000)
FAKE_FRACTION = 0.2  # the default attack scale's 5:1 legit:fake ratio

#: Pre-PR ``BENCH_table2.json`` cluster rows (dict-record workers,
#: full-vector broadcasts, estimate_bytes accounting) — the reference
#: the payload-reduction and speedup columns are computed against.
PRE_PR_BASELINE = {
    1000: {"network_bytes": 3_051_168, "wall_seconds": 0.4379},
    2000: {"network_bytes": 6_140_760, "wall_seconds": 0.7233},
    4000: {"network_bytes": 13_075_320, "wall_seconds": 1.8123},
    8000: {"network_bytes": 35_885_584, "wall_seconds": 3.9037},
}


def run_engine_scaling(sizes=ENGINE_SIZES):
    """Time legacy vs CSR ``solve_maar`` at each size."""
    rows = []
    for num_legit in sizes:
        scenario = build_scenario(
            ScenarioConfig(
                num_legit=num_legit, num_fakes=int(num_legit * FAKE_FRACTION)
            )
        )
        graph = scenario.graph
        row = {
            "users": graph.num_nodes,
            "friendships": graph.num_friendships,
            "rejections": graph.num_rejections,
        }
        for label, config in (
            ("csr", MAARConfig()),
            ("legacy", MAARConfig(kl=KLConfig(engine="legacy"))),
        ):
            start = time.perf_counter()
            result = solve_maar(graph, config)
            row[f"{label}_seconds"] = time.perf_counter() - start
            assert result.found
        row["speedup"] = row["legacy_seconds"] / row["csr_seconds"]
        rows.append(row)
    return rows


def cluster_row_payload(row):
    """One cluster-scaling row, with the pre-PR comparison when the size
    has a recorded baseline."""
    payload = {
        "users": row.users,
        "edges": row.edges,
        "rejections": row.rejections,
        "build_seconds": row.build_seconds,
        "wall_seconds": row.wall_seconds,
        "microseconds_per_edge": row.microseconds_per_edge,
        "network_messages": row.network_messages,
        "network_bytes": row.network_bytes,
        "prefetch_hit_rate": row.prefetch_hit_rate,
        "fetch_batches": row.fetch_batches,
        "bytes_by_kind": dict(row.bytes_by_kind),
    }
    baseline = PRE_PR_BASELINE.get(row.users)
    if baseline:
        payload["pre_pr_network_bytes"] = baseline["network_bytes"]
        payload["pre_pr_wall_seconds"] = baseline["wall_seconds"]
        payload["payload_reduction"] = (
            baseline["network_bytes"] / max(1, row.network_bytes)
        )
        payload["wall_speedup"] = baseline["wall_seconds"] / max(
            1e-9, row.wall_seconds
        )
    return payload


def run_shard_transport(users=4000, k_steps=2, seed=7):
    """Payload-mode vs reference-mode distribution, same graph.

    Packs the scenario graph into a snapshot, runs the full distributed
    sweep once per transport, asserts the results are identical, and
    reports the upload-byte reduction the shard references deliver.
    """
    num_fakes = max(10, users // 10)
    scenario = build_scenario(
        ScenarioConfig(num_legit=users - num_fakes, num_fakes=num_fakes, seed=seed)
    )
    csr = scenario.graph.csr()
    maar = MAARConfig(k_steps=k_steps)
    runs = {}
    with tempfile.TemporaryDirectory() as tmp:
        snap = Path(tmp) / "scenario.csrbin"
        csr.save(snap)
        for transport, graph in (
            ("payload", csr),
            ("reference", CSRGraph.open(snap)),
        ):
            stats = ClusterRunStats()
            start = time.perf_counter()
            nodes, rate, k = distributed_maar(
                graph,
                cluster_config=ClusterConfig(shard_transport=transport),
                maar_config=maar,
                stats=stats,
            )
            runs[transport] = {
                "result": (tuple(nodes), rate, k),
                "wall_seconds": time.perf_counter() - start,
                "upload_bytes": stats.network.bytes_by_kind.get("upload", 0),
                "total_bytes": stats.network.bytes_sent,
                "bytes_avoided": stats.network.bytes_avoided,
            }
    assert runs["payload"]["result"] == runs["reference"]["result"], (
        "shard-reference mode must be bit-identical to payload mode"
    )
    result = runs["payload"].pop("result")
    runs["reference"].pop("result")
    return {
        "users": users,
        "suspicious": len(result[0]),
        "identical_results": True,
        "payload": runs["payload"],
        "reference": runs["reference"],
        "upload_reduction": runs["payload"]["upload_bytes"]
        / max(1, runs["reference"]["upload_bytes"]),
    }


def run_table2(config=CONFIG):
    """The full Table II payload: cluster study + engine comparison."""
    study = scaling_study(config)
    return {
        "meta": bench_metadata(),
        "cluster_scaling": [cluster_row_payload(row) for row in study.rows],
        "engine_scaling": run_engine_scaling(),
        "shard_transport": run_shard_transport(),
    }


def write_report(payload):
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return OUTPUT_PATH


def run_smoke():
    """CI guard: a two-size study with full wire-protocol assertions.

    Verifies the sharded engine end to end — per-kind byte accounting,
    delta broadcasts actually in use, prefetching effective, and
    shard-reference distribution bit-identical to payloads — without
    touching ``BENCH_table2.json``.
    """
    from repro.core import MAARConfig as MC

    config = ScalingConfig(user_counts=(400, 800), k_steps=2)
    study = scaling_study(config)
    assert len(study.rows) == 2
    for row in study.rows:
        kinds = row.bytes_by_kind
        # The full protocol must be visible in the breakdown: block
        # uploads, one full sync per run, per-pass gains, slice fetches.
        for kind in ("upload", "broadcast", "gains", "fetch"):
            assert kind in kinds and kinds[kind] > 0, (kind, kinds)
        assert sum(kinds.values()) == row.network_bytes
        assert row.prefetch_hit_rate > 0.5, row.prefetch_hit_rate
        assert row.fetch_batches > 0

    # Delta broadcasts engage whenever a run takes more than one pass.
    stats = ClusterRunStats()
    scenario = build_scenario(ScenarioConfig(num_legit=720, num_fakes=80))
    distributed_maar(scenario.graph, maar_config=MC(k_steps=4), stats=stats)
    kinds = stats.network.bytes_by_kind
    runs = stats.network.by_kind["broadcast"] // ClusterConfig().num_workers
    assert stats.passes > runs, "expected multi-pass runs in the smoke scenario"
    assert "delta" in kinds, "multi-pass runs must emit delta broadcasts"
    assert stats.network.by_kind["delta"] % ClusterConfig().num_workers == 0
    assert sum(kinds.values()) == stats.network.bytes_sent

    # Shard references: identical results, and the distribution upload
    # shrinks by at least an order of magnitude even at smoke scale.
    comparison = run_shard_transport(users=600, k_steps=2)
    assert comparison["identical_results"]
    assert comparison["reference"]["bytes_avoided"] > 0
    assert comparison["upload_reduction"] > 10, comparison["upload_reduction"]
    print(json.dumps(cluster_stats_payload(stats), indent=2, sort_keys=True))
    print("table2 smoke OK")


def bench_table2(run_once):
    result = run_once(scaling_study, CONFIG)
    edges = [row.edges for row in result.rows]
    times = [row.wall_seconds for row in result.rows]
    assert edges == sorted(edges)
    assert times[-1] > times[0]
    # Near-linear: per-edge cost varies by far less than the 8x size span.
    per_edge = [row.microseconds_per_edge for row in result.rows]
    assert max(per_edge) < 6 * min(per_edge)


def bench_table2_engines(benchmark):
    rows = benchmark.pedantic(run_engine_scaling, rounds=1, iterations=1)
    # The CSR engine wins at every size, by 2x or more at scale.
    assert all(row["speedup"] > 1.0 for row in rows)
    assert rows[-1]["speedup"] >= 2.0


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        run_smoke()
        sys.exit(0)
    report = run_table2()
    path = write_report(report)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {path}")
