"""Ablation: boundary-only parallel refinement vs full-frontier sweeps.

The multilevel pipeline spends most of its wall clock re-refining each
uncoarsened level, and a full-frontier pass re-tests every node every
round even though the projected cut is already near-converged. This
ablation sweeps the three refinement knobs
:class:`repro.core.multilevel.MultilevelConfig` grew for the
boundary-only scheme:

* **frontier** — ``"full"`` (classic whole-graph engine passes) vs
  ``"boundary"`` (movable frontier → connected regions →
  ``refine_subset`` fan-out, rounds until no frontier move remains);
* **refine_jobs** — region fan-out width; any value must be
  bit-identical to ``refine_jobs=1`` (regions are pairwise
  non-adjacent, the merge is input-ordered), so the sweep asserts the
  partitions match, not just the quality;
* **refine_tolerance** — early-exit: skip intermediate levels while
  the most recent refined level improved the objective by at most the
  tolerance (the finest level always refines).

Every row records the refine leg (the sum of the per-level refine
timings) next to the end-to-end solve, plus detection quality against
the planted fakes, so the report states what the frontier scoping
buys *and* what the early exit costs. A run also includes one
Dinkelbach-polish row (the pre-existing ``refine_rounds`` ablation on
the flat solver) for continuity with earlier reports.

Writes ``BENCH_refinement.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_ablation_refinement.py          # full
    PYTHONPATH=src python benchmarks/bench_ablation_refinement.py --smoke  # CI
"""

import argparse
import json
import time
from pathlib import Path

from benchmeta import bench_metadata
from repro.attacks import ScenarioConfig, build_scenario
from repro.core import MAARConfig, solve_maar, solve_maar_multilevel
from repro.core.multilevel import MultilevelConfig
from repro.metrics import precision_recall

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_refinement.json"

FULL_SCALE = (3000, 600)
SMOKE_SCALE = (400, 80)
SEED = 7
FRONTIERS = ("full", "boundary")
JOBS = (1, 2)
TOLERANCES = (0.0, 0.01)


def _solve_row(graph, fakes, frontier, refine_jobs, refine_tolerance):
    config = MultilevelConfig(
        frontier=frontier,
        refine_jobs=refine_jobs,
        refine_tolerance=refine_tolerance,
    )
    start = time.perf_counter()
    result = solve_maar_multilevel(graph, config)
    seconds = time.perf_counter() - start
    metrics = precision_recall(result.suspicious, fakes)
    detail = result.timings["refine_detail"]
    return {
        "frontier": frontier,
        "refine_jobs": refine_jobs,
        "refine_tolerance": refine_tolerance,
        "seconds": seconds,
        "refine_seconds": sum(result.timings["refine"]),
        "sweep_seconds": result.timings["coarse_sweep"],
        "coarsen_seconds": sum(result.timings["coarsen"]),
        "early_exits": result.timings["early_exits"],
        "scopes": sorted({d["scope"] for d in detail}),
        "tested": sum(d["tested"] for d in detail),
        "moves": sum(d["moves"] for d in detail),
        "found": result.found,
        "suspicious": sorted(result.suspicious),
        "k": result.k,
        "acceptance_rate": result.acceptance_rate,
        "precision": metrics.precision,
        "recall": metrics.recall,
    }


def frontier_sweep(num_legit, num_fakes):
    """frontier × refine_jobs × refine_tolerance over one scenario.

    Returns the rows (with ``suspicious`` stripped down to a count) and
    asserts the two determinism invariants inline: ``refine_jobs`` never
    changes the partition, and the boundary frontier detects the same
    planted population as the full one.
    """
    scenario = build_scenario(
        ScenarioConfig(num_legit=num_legit, num_fakes=num_fakes, seed=SEED)
    )
    rows = []
    for frontier in FRONTIERS:
        for tolerance in TOLERANCES:
            for jobs in JOBS:
                rows.append(
                    _solve_row(
                        scenario.graph,
                        scenario.fakes,
                        frontier,
                        jobs,
                        tolerance,
                    )
                )
    by_key = {
        (r["frontier"], r["refine_tolerance"], r["refine_jobs"]): r
        for r in rows
    }
    for frontier in FRONTIERS:
        for tolerance in TOLERANCES:
            solo = by_key[(frontier, tolerance, 1)]
            for jobs in JOBS[1:]:
                wide = by_key[(frontier, tolerance, jobs)]
                assert wide["suspicious"] == solo["suspicious"], (
                    f"refine_jobs={jobs} changed the partition at "
                    f"frontier={frontier!r} tolerance={tolerance}"
                )
                assert wide["k"] == solo["k"]
    for row in rows:
        assert row["recall"] > 0.9, row
        assert row["precision"] > 0.9, row
        row["suspicious"] = len(row["suspicious"])
    return rows


def dinkelbach_context(num_legit, num_fakes):
    """The pre-existing flat-solver ratio-refinement ablation, one row
    per grid, kept so the report still answers the original question:
    what do a few Dinkelbach rounds buy on a deliberately coarse grid?"""
    scenario = build_scenario(
        ScenarioConfig(num_legit=num_legit, num_fakes=num_fakes, seed=SEED)
    )
    rows = []
    for label, config in (
        ("fine_grid", MAARConfig(k_steps=10)),
        ("coarse_grid", MAARConfig(k_min=0.125, k_factor=16.0, k_steps=2)),
        (
            "coarse_grid+refine",
            MAARConfig(k_min=0.125, k_factor=16.0, k_steps=2, refine_rounds=3),
        ),
    ):
        start = time.perf_counter()
        result = solve_maar(scenario.graph, config)
        seconds = time.perf_counter() - start
        metrics = precision_recall(result.suspicious_nodes(), scenario.fakes)
        rows.append(
            {
                "label": label,
                "seconds": seconds,
                "acceptance_rate": result.acceptance_rate,
                "precision": metrics.precision,
                "recall": metrics.recall,
            }
        )
    refined = next(r for r in rows if r["label"] == "coarse_grid+refine")
    coarse = next(r for r in rows if r["label"] == "coarse_grid")
    assert refined["acceptance_rate"] <= coarse["acceptance_rate"] + 1e-9
    return rows


def run_report(smoke=False):
    num_legit, num_fakes = SMOKE_SCALE if smoke else FULL_SCALE
    rows = frontier_sweep(num_legit, num_fakes)
    full = next(
        r
        for r in rows
        if r["frontier"] == "full"
        and r["refine_tolerance"] == 0.0
        and r["refine_jobs"] == 1
    )
    boundary = next(
        r
        for r in rows
        if r["frontier"] == "boundary"
        and r["refine_tolerance"] == 0.0
        and r["refine_jobs"] == 1
    )
    return {
        "meta": bench_metadata(),
        "smoke": smoke,
        "num_legit": num_legit,
        "num_fakes": num_fakes,
        "frontier_sweep": rows,
        "refine_speedup_boundary_over_full": (
            full["refine_seconds"] / boundary["refine_seconds"]
            if boundary["refine_seconds"]
            else None
        ),
        "dinkelbach_context": dinkelbach_context(num_legit, num_fakes),
    }


def write_report(payload):
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return OUTPUT_PATH


def bench_refinement(benchmark):
    """pytest-benchmark entry: smoke scale, all invariants asserted."""
    payload = benchmark.pedantic(
        run_report, kwargs={"smoke": True}, rounds=1, iterations=1
    )
    assert payload["frontier_sweep"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale (CI rot check; does not overwrite a full report)",
    )
    args = parser.parse_args(argv)
    payload = run_report(smoke=args.smoke)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.smoke:
        print("\nsmoke run ok (report not written)")
        return 0
    path = write_report(payload)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
