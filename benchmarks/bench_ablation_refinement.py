"""Ablation: Dinkelbach-style ratio refinement after the k sweep.

An extension beyond the paper (``MAARConfig.refine_rounds``): re-running
the KL search at the best cut's own friends-to-rejections ratio can only
improve the acceptance rate (Theorem 1's logic applied iteratively).
This ablation measures what refinement buys when the geometric grid is
deliberately coarse — the trade between sweep granularity and a couple
of refinement rounds.
"""

import pytest

from repro.attacks import ScenarioConfig, build_scenario
from repro.core import MAARConfig, solve_maar
from repro.metrics import precision_recall

SCENARIO = build_scenario(ScenarioConfig(num_legit=1200, num_fakes=240))


@pytest.mark.parametrize(
    "label,config",
    [
        ("fine_grid", MAARConfig(k_steps=10)),
        ("coarse_grid", MAARConfig(k_min=0.125, k_factor=16.0, k_steps=2)),
        (
            "coarse_grid+refine",
            MAARConfig(k_min=0.125, k_factor=16.0, k_steps=2, refine_rounds=3),
        ),
    ],
)
def bench_refinement(benchmark, label, config):
    result = benchmark.pedantic(
        solve_maar, args=(SCENARIO.graph, config), rounds=1, iterations=1
    )
    assert result.found
    metrics = precision_recall(result.suspicious_nodes(), SCENARIO.fakes)
    print(
        f"\n{label}: acceptance={result.acceptance_rate:.3f} "
        f"precision={metrics.precision:.3f} kl_passes={result.stats.passes}"
    )
    # Refinement on the coarse grid must not trail the coarse grid alone.
    if label == "coarse_grid+refine":
        plain = solve_maar(
            SCENARIO.graph, MAARConfig(k_min=0.125, k_factor=16.0, k_steps=2)
        )
        assert result.acceptance_rate <= plain.acceptance_rate + 1e-9
