"""Figure 13: resilience to collusion (dense intra-fake connections).

Expected shape (paper): Rejecto flat and high — intra-fake edges never
enter the aggregate acceptance rate; VoteTrust degrades as collusion
edges dilute individual rejection rates (70% -> ~23%).
"""

from repro.experiments import SweepConfig, collusion_sweep

# The paper's stress workload is 1:1 — 10K fakes on the 10K-node
# Facebook sample (Section VI-A) — reduced here to 800:800.
CONFIG = SweepConfig(num_legit=800, num_fakes=800)


def bench_fig13(run_once):
    result = run_once(collusion_sweep, CONFIG)
    rejecto = result.series["Rejecto"]
    votetrust = result.series["VoteTrust"]
    assert min(rejecto) > 0.85
    # VoteTrust degrades with collusion density (the paper's drop is
    # steeper; our prior-smoothed aggregation dampens it — see
    # EXPERIMENTS.md).
    assert votetrust[-1] < votetrust[0] - 0.08
