"""Figure 11: precision/recall vs rejection rate of spam requests.

Expected shape (paper): both schemes improve with the rejection rate;
Rejecto detects nearly all fakes once the rate passes ~60%.
"""

from repro.experiments import SweepConfig, spam_rejection_sweep

# The paper's stress workload is 1:1 — 10K fakes on the 10K-node
# Facebook sample (Section VI-A) — reduced here to 800:800.
CONFIG = SweepConfig(num_legit=800, num_fakes=800)


def bench_fig11(run_once):
    result = run_once(spam_rejection_sweep, CONFIG)
    rejecto = result.series["Rejecto"]
    votetrust = result.series["VoteTrust"]
    # Near-perfect from 0.6 upward (x grid starts at 0.5).
    assert min(rejecto[2:]) > 0.95
    # VoteTrust improves monotonically-ish with the rate.
    assert votetrust[-1] > votetrust[0]
