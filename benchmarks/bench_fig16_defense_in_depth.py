"""Figure 16: defense in depth — SybilRank AUC vs Rejecto removals.

Expected shape (paper): the AUC of SybilRank's Sybil/legitimate ranking
climbs toward 1 as Rejecto removes more friend spammers (and their
attack edges). The paper plots the Facebook sample and ca-AstroPh; both
stand-ins are regenerated here.
"""

import pytest

from repro.experiments import DefenseInDepthConfig, defense_in_depth


@pytest.mark.parametrize("dataset", ["facebook", "ca-AstroPh"])
def bench_fig16(run_once, dataset):
    config = DefenseInDepthConfig(dataset=dataset, num_legit=1000)
    result = run_once(defense_in_depth, config)
    assert result.auc_values[-1] > result.auc_values[0]
    assert result.auc_values[-1] > 0.9
    # Rejecto's removals are (almost) all true fakes.
    assert result.removed_fakes[-1] > 0.95 * result.removal_budgets[-1]
