#!/usr/bin/env python
"""Quickstart: detect friend spammers in a simulated OSN.

Builds the paper's baseline workload — a Facebook-like social graph, an
injected Sybil region sending friend spam, social rejections from
legitimate users — and runs Rejecto end to end.

Run:  python examples/quickstart.py
"""

from repro.attacks import ScenarioConfig, build_scenario
from repro.core import MAARConfig, Rejecto, RejectoConfig

def main() -> None:
    # 1. Simulate an OSN under friend spam: 2000 legitimate users on a
    #    Facebook-like graph, 400 fakes each sending 20 friend requests
    #    (70% rejected), careless users, and legit-to-legit rejections.
    scenario = build_scenario(ScenarioConfig(num_legit=2000, num_fakes=400))
    graph = scenario.graph
    print(f"simulated OSN: {graph}")
    print(
        f"spam wave: {scenario.spam_stats.requests} requests, "
        f"{scenario.spam_stats.rejection_rate:.0%} rejected"
    )

    # 2. The OSN provider knows a few inspected users (Section III-B);
    #    seeds pin them in the cut search and suppress false positives.
    legit_seeds, _ = scenario.sample_seeds(30, 0)

    # 3. Detect: iteratively cut off minimum-acceptance-rate regions
    #    until the provider's fake-population estimate is reached.
    detector = Rejecto(
        RejectoConfig(
            maar=MAARConfig(),
            estimated_spammers=len(scenario.fakes),
        )
    )
    result = detector.detect(graph, legit_seeds=legit_seeds)
    for group in result.groups:
        print(
            f"round {group.round_index}: cut {len(group)} accounts at "
            f"aggregate acceptance rate {group.acceptance_rate:.2f}"
        )

    # 4. Score against ground truth (the paper's protocol: declare
    #    exactly as many suspicious accounts as injected fakes).
    detected = result.detected(limit=len(scenario.fakes))
    metrics = scenario.precision_recall(detected)
    print(
        f"precision={metrics.precision:.3f} recall={metrics.recall:.3f} "
        f"({metrics.true_positives} of {len(scenario.fakes)} fakes caught)"
    )


if __name__ == "__main__":
    main()
