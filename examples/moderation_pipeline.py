#!/usr/bin/env python
"""An OSN operator's moderation pipeline, end to end.

The deployment story the paper sketches, as one runnable program:

1. the platform logs every friend request with its response
   (``repro.io`` CSV — here simulated, in production an export);
2. the log is compiled into the rejection-augmented social graph and
   validated;
3. Rejecto detects friend-spammer groups, terminated by an
   acceptance-rate threshold (no population estimate needed);
4. a graduated response policy (§VII) maps each group's evidence
   strength to CAPTCHA / rate-limit / suspend actions;
5. a JSON detection report is written for the enforcement systems.

Run:  python examples/moderation_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.attacks import ScenarioConfig, build_scenario
from repro.core import (
    Action,
    MAARConfig,
    Rejecto,
    RejectoConfig,
    ResponsePolicy,
    assert_valid_graph,
)
from repro.io import (
    load_detection_report,
    load_request_log,
    save_detection_report,
    save_request_log,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="rejecto-pipeline-"))

    # --- 1. The platform's request log (simulated here). ---------------
    scenario = build_scenario(ScenarioConfig(num_legit=1500, num_fakes=300))
    log_path = workdir / "requests.csv"
    save_request_log(scenario.request_log, log_path)
    print(f"request log: {log_path} ({len(scenario.request_log)} requests)")

    # --- 2. Compile and validate the augmented graph. -------------------
    log = load_request_log(log_path)
    graph = log.to_augmented_graph(num_users=scenario.num_nodes)
    assert_valid_graph(graph)
    print(f"compiled graph: {graph}")

    # --- 3. Detect. Known-good users anchor the cut search (§IV-F). ----
    # Threshold choice: the MAAR solver returns the *worst-looking*
    # group it can craft, so the termination threshold must undercut
    # the lowest acceptance rate a purely legitimate subset can be
    # pushed to (~0.55 at a 20% legit rejection rate), not merely the
    # average legit acceptance (~0.8). 0.45 leaves margin both ways.
    legit_seeds, _ = scenario.sample_seeds(30, 0)
    detector = Rejecto(
        RejectoConfig(
            maar=MAARConfig(),
            acceptance_threshold=0.45,
            max_rounds=10,
        )
    )
    result = detector.detect(graph, legit_seeds=legit_seeds)
    print(f"\ndetected {result.total_detected} accounts "
          f"in {result.rounds_run} rounds ({result.termination}):")
    for group in result.groups:
        print(
            f"  round {group.round_index}: {len(group)} accounts at "
            f"acceptance rate {group.acceptance_rate:.2f}"
        )

    # --- 4. Graduated responses (§VII). ---------------------------------
    plan = ResponsePolicy(suspend_below=0.25, rate_limit_below=0.45).plan(result)
    for action in Action:
        accounts = plan.accounts_for(action)
        if accounts:
            print(f"  -> {action.value}: {len(accounts)} accounts")

    # --- 5. Report for enforcement. --------------------------------------
    report_path = workdir / "detection_report.json"
    save_detection_report(result, report_path)
    report = load_detection_report(report_path)
    print(f"\nreport written: {report_path} "
          f"({report['total_detected']} accounts, version {report['version']})")

    # Ground truth check (only possible in simulation).
    metrics = scenario.precision_recall(result.detected())
    print(
        f"against ground truth: precision {metrics.precision:.3f}, "
        f"recall {metrics.recall:.3f}"
    )


if __name__ == "__main__":
    main()
