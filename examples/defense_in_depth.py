#!/usr/bin/env python
"""Defense in depth: Rejecto + SybilRank (Sections II-C and VI-D).

Rejecto removes the fake accounts that *send* friend spam — exactly the
accounts whose attack edges blind social-graph-based Sybil detectors.
This example composes the two systems: it measures SybilRank's ranking
quality (AUC) on a community-structured OSN before and after Rejecto
prunes increasing numbers of friend spammers, reproducing Figure 16's
climb toward a perfect ranking.

Run:  python examples/defense_in_depth.py
"""

from repro.experiments import DefenseInDepthConfig, defense_in_depth
from repro.experiments.tables import format_table


def main() -> None:
    config = DefenseInDepthConfig(
        num_legit=1000,          # Sybil region matches it 1:1, half spamming
        removal_fractions=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
        num_trusted_seeds=10,    # community-based seed selection (§IV-F)
    )
    result = defense_in_depth(config)

    rows = [
        [budget, fakes, auc]
        for budget, fakes, auc in zip(
            result.removal_budgets, result.removed_fakes, result.auc_values
        )
    ]
    print(
        format_table(
            ["#removed by Rejecto", "of which fake", "SybilRank AUC"],
            rows,
            title=f"Defense in depth on {result.dataset} (Fig. 16)",
        )
    )
    print(
        "\nEvery pruned spammer takes its attack edges with it; once the\n"
        "spamming half is gone, the remaining (silent) Sybils are nearly\n"
        "disconnected from the legitimate region and SybilRank ranks them\n"
        "to the bottom — the AUC approaches 1."
    )


if __name__ == "__main__":
    main()
