#!/usr/bin/env python
"""The paper's full-scale baseline: 10K-node Facebook sample + 10K fakes.

Every other example runs laptop-scale reductions; this one reproduces
the paper's exact stress configuration (Section VI-A) at full size —
10,000 legitimate users on the Facebook stand-in graph, 10,000 fakes
each wiring 6 intra-region links and sending 20 requests at a 70%
rejection rate, 20% legitimate rejections, 15% careless users — and runs
one full Rejecto detection plus the VoteTrust comparison on it.

Expect a few minutes of pure-Python runtime (printed per stage).

Run:  python examples/paper_scale.py
"""

import time

from repro.attacks import ScenarioConfig, build_scenario
from repro.baselines import VoteTrust
from repro.core import MAARConfig, Rejecto, RejectoConfig


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    print(f"  [{label}: {time.perf_counter() - start:.1f}s]")
    return result


def main() -> None:
    print("building the paper-scale workload (10,000 + 10,000 users)...")
    scenario = timed(
        "build",
        lambda: build_scenario(
            ScenarioConfig(num_legit=10_000, num_fakes=10_000, seed=7)
        ),
    )
    print(
        f"graph: {scenario.graph} / "
        f"{scenario.spam_stats.requests} spam requests at "
        f"{scenario.spam_stats.rejection_rate:.0%} rejection"
    )

    legit_seeds, _ = scenario.sample_seeds(100, 0)
    declared = len(scenario.fakes)

    result = timed(
        "Rejecto",
        lambda: Rejecto(
            RejectoConfig(
                maar=MAARConfig(), estimated_spammers=declared
            )
        ).detect(scenario.graph, legit_seeds=legit_seeds),
    )
    rejecto_metrics = scenario.precision_recall(result.detected(limit=declared))
    print(
        f"Rejecto:   precision/recall {rejecto_metrics.precision:.3f} "
        f"({result.rounds_run} rounds)"
    )

    votetrust = timed(
        "VoteTrust",
        lambda: VoteTrust().detect(
            scenario.num_nodes, scenario.request_log, legit_seeds[:20], declared
        ),
    )
    vt_metrics = scenario.precision_recall(votetrust)
    print(f"VoteTrust: precision/recall {vt_metrics.precision:.3f}")
    print(
        "\nThe paper's Fig. 9 at 20 requests/fake reports Rejecto ≈ 1.0 and "
        "VoteTrust ≈ 0.87;\nthe shapes should match at this, the paper's own, "
        "scale."
    )


if __name__ == "__main__":
    main()
