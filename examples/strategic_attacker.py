#!/usr/bin/env python
"""Strategic attackers vs Rejecto, VoteTrust, and a naive filter.

Reproduces the paper's core robustness argument (Section VI-C) as a
runnable story: the same Sybil population tries three evasion
strategies — collusion, self-rejection whitewashing, and planting
rejections on legitimate users — and each scheme's precision is shown
side by side.

Run:  python examples/strategic_attacker.py
"""

from repro.attacks import ScenarioConfig, build_scenario
from repro.experiments import evaluate_schemes
from repro.experiments.tables import format_table


def main() -> None:
    base = ScenarioConfig(num_legit=1200, num_fakes=240, seed=11)
    strategies = {
        "baseline (no strategy)": base,
        "collusion: +30 intra-fake links each": base.with_overrides(
            collusion_extra_links=30
        ),
        "self-rejection: whitewash half at 80%": base.with_overrides(
            self_rejection_rate=0.8
        ),
        "reject legit requests: 8 per fake": base.with_overrides(
            rejections_on_legit=8 * base.num_fakes
        ),
        "stealth: only half of the fakes spam": base.with_overrides(
            spam_sender_fraction=0.5
        ),
    }

    rows = []
    for label, config in strategies.items():
        scenario = build_scenario(config)
        outcome = evaluate_schemes(scenario, include_naive=True)
        rows.append(
            [
                label,
                outcome["Rejecto"].precision,
                outcome["VoteTrust"].precision,
                outcome["NaiveFilter"].precision,
            ]
        )

    print(
        format_table(
            ["attack strategy", "Rejecto", "VoteTrust", "naive filter"],
            rows,
            title="Precision/recall under strategic attacks (Section VI-C)",
        )
    )
    print(
        "\nRejecto holds because its objective — the aggregate acceptance\n"
        "rate of requests *crossing* the suspicious/legitimate cut — is\n"
        "untouched by anything attackers do among their own accounts."
    )


if __name__ == "__main__":
    main()
