#!/usr/bin/env python
"""Running Rejecto on the Spark-like mini-cluster (Section V).

Shows the deployment-shaped API: the social graph lives on simulated
workers as partitioned, indexed datasets; the master holds only the node
status and the gain bucket list; node structure flows through an LRU
prefetch buffer. The run reports detection output together with the
network traffic the data layout saves — compare the prefetching run
against the fetch-per-node strawman.

Run:  python examples/cluster_deployment.py
"""

from repro.attacks import ScenarioConfig, build_scenario
from repro.cluster import (
    ClusterConfig,
    ClusterRunStats,
    NetworkModel,
    distributed_maar,
)
from repro.experiments.tables import format_table
from repro.metrics import precision_recall


def run(scenario, cluster_config):
    stats = ClusterRunStats()
    suspicious, rate, best_k = distributed_maar(
        scenario.graph, cluster_config=cluster_config, stats=stats
    )
    metrics = precision_recall(suspicious, scenario.fakes)
    return metrics, rate, stats


def main() -> None:
    scenario = build_scenario(ScenarioConfig(num_legit=1500, num_fakes=300))
    print(f"graph: {scenario.graph}\n")

    configs = {
        "prefetch (LRU, batch 64)": ClusterConfig(
            num_workers=5, buffer_capacity=4096, prefetch_batch=64
        ),
        "no prefetch (per-node fetch)": ClusterConfig(
            num_workers=5, buffer_capacity=0
        ),
    }
    rows = []
    for label, config in configs.items():
        metrics, rate, stats = run(scenario, config)
        rows.append(
            [
                label,
                metrics.precision,
                rate,
                stats.network.by_kind.get("fetch", 0),
                stats.network.bytes_sent / 1e6,
                stats.network.simulated_seconds(NetworkModel()),
            ]
        )
    print(
        format_table(
            [
                "configuration",
                "precision",
                "cut AC",
                "fetch msgs",
                "net MB",
                "net time (s)",
            ],
            rows,
            title="Distributed MAAR: prefetching vs on-demand fetches (Section V)",
        )
    )
    print(
        "\nBoth configurations compute the *identical* cut — prefetching is\n"
        "purely an I/O optimization, collapsing per-node round trips into\n"
        "batched fetches of the bucket list's top-gain candidates."
    )


if __name__ == "__main__":
    main()
