#!/usr/bin/env python
"""Detecting compromised accounts with time-sharded Rejecto (Section VII).

The paper's discussion proposes applying Rejecto beyond purchased fakes:
"the OSN provider can shard friend requests and rejections according to
the time intervals in which they have occurred, and then run Rejecto on
an augmented graph constructed from the sharded requests and rejections
in each interval. This enables Rejecto to detect compromised accounts in
post-compromise intervals."

This example drives the library's sharded-deployment API end to end:
long-standing *legitimate* accounts are hijacked on day 2 of a 5-day
window and start spamming; per-day detection with the paper's
acceptance-rate-threshold termination flags nothing before the
compromise, catches the hijacked accounts on the day it happens, and
``first_flagged`` pinpoints the compromise time.

Run:  python examples/compromised_accounts.py
"""

import random

from repro.attacks import CompromiseEvent, TimelineConfig, simulate_timeline
from repro.core import MAARConfig, RejectoConfig, detect_over_shards
from repro.graphgen import powerlaw_cluster
from repro.metrics import precision_recall


def main() -> None:
    rng = random.Random(5)
    num_users, num_hijacked, compromise_day = 1200, 60, 2

    base = powerlaw_cluster(num_users, 4.0, 0.68, rng)
    hijacked = sorted(rng.sample(range(num_users), num_hijacked))
    timeline = simulate_timeline(
        base,
        [CompromiseEvent(account, compromise_day) for account in hijacked],
        TimelineConfig(num_days=5, spam_daily_requests=20),
        rng,
    )

    # Threshold termination (§IV-E): stop cutting once the best residual
    # cut's acceptance rate looks like normal users' (~0.8 here); 0.6
    # leaves a wide margin above the spam cut's rate.
    config = RejectoConfig(
        maar=MAARConfig(),
        estimated_spammers=num_hijacked,
        acceptance_threshold=0.6,
    )
    result = detect_over_shards(timeline.daily_shards(), config)

    print(f"{num_users} users; {num_hijacked} hijacked on day {compromise_day}\n")
    hijacked_set = set(hijacked)
    for day in range(timeline.num_days):
        flagged = result.flagged(day)
        newly = result.newly_flagged(day)
        metrics = precision_recall(flagged, hijacked_set) if flagged else None
        precision = f"{metrics.precision:.2f}" if metrics else "  - "
        print(
            f"  day {day}: flagged {len(flagged):3d} "
            f"(new: {len(newly):3d}, precision {precision})"
        )

    onset = result.newly_flagged(compromise_day)
    caught = len(onset & hijacked_set)
    print(
        f"\n{caught}/{num_hijacked} hijacked accounts first flagged exactly on "
        f"day {compromise_day} — the sharded deployment both catches the\n"
        f"compromise the day it happens and timestamps it; the quiet days\n"
        f"produce zero flags because the threshold refuses cuts that look\n"
        f"like normal users."
    )


if __name__ == "__main__":
    main()
