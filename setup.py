"""Setuptools entry point.

A classic ``setup.py`` is used (rather than PEP 517/660 metadata alone)
so that ``pip install -e .`` works in fully offline environments that
lack the ``wheel`` package required by modern editable builds.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Rejecto: combating friend spam using social rejections "
        "(ICDCS 2015 reproduction)"
    ),
    author="Rejecto reproduction authors",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    extras_require={
        "dev": ["pytest", "pytest-benchmark", "hypothesis", "networkx", "scipy"],
    },
    entry_points={"console_scripts": ["rejecto = repro.cli:main"]},
)
