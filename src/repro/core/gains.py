"""Gain indexes for the extended Kernighan-Lin search.

During a KL pass every unlocked node carries a *gain* — the decrease in
the linearized objective ``W(U) = |F(Ū,U)| − k·|R⃗⟨Ū,U⟩|`` that switching
the node to the other side would produce. The search repeatedly needs the
maximum-gain node and O(1)-ish gain updates for the neighbours of a
switched node.

Two interchangeable implementations are provided:

* :class:`BucketGainIndex` — the classic Fiduccia-Mattheyses *bucket
  list* the paper adopts (Section IV-C, [21]): an array of intrusive
  doubly-linked lists indexed by gain, with a moving max pointer. Gains
  must lie on a ``1/resolution`` grid, which holds whenever ``k`` is a
  multiple of ``1/resolution`` (friendship edges contribute ±1 and ±2
  deltas; rejection edges contribute ±k).
* :class:`HeapGainIndex` — a lazy-deletion binary heap that accepts
  arbitrary float gains, used when ``k`` falls off the bucket grid.

Both expose the same interface and are property-tested against each
other and against a naive dictionary scan.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["GainIndex", "BucketGainIndex", "HeapGainIndex", "make_gain_index"]


class GainIndex:
    """Interface shared by the gain containers."""

    def insert(self, node: int, gain: float) -> None:
        """Add ``node`` with the given gain. The node must not be present."""
        raise NotImplementedError

    def bulk_load(self, items: Iterable[Tuple[int, float]]) -> None:
        """Insert many ``(node, gain)`` pairs at once.

        Equivalent to sequential :meth:`insert` calls in iteration order
        — same contents, same pop order. Subclasses may override with a
        faster batch build (the heap heapifies instead of sifting each
        push).
        """
        for node, gain in items:
            self.insert(node, gain)

    def adjust(self, node: int, delta: float) -> None:
        """Add ``delta`` to the gain of a present ``node``."""
        raise NotImplementedError

    def remove(self, node: int) -> None:
        """Remove ``node`` if present; no-op otherwise."""
        raise NotImplementedError

    def pop_max(self) -> Optional[Tuple[int, float]]:
        """Extract and return ``(node, gain)`` with the maximum gain.

        Ties are broken deterministically in favour of the node whose
        gain was most recently inserted or adjusted (the classic
        Fiduccia-Mattheyses LIFO discipline). Returns ``None`` when the
        index is empty.
        """
        raise NotImplementedError

    def top_nodes(self, count: int) -> List[int]:
        """Up to ``count`` highest-gain nodes without removing them.

        Used by the cluster engine's prefetcher ("the prefetched nodes
        are those with the highest potential move gains in the bucket
        list", Section V). Order within equal gains is unspecified.
        """
        raise NotImplementedError

    def __contains__(self, node: int) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class BucketGainIndex(GainIndex):
    """Fiduccia-Mattheyses bucket list over a fixed-resolution gain grid.

    Parameters
    ----------
    num_nodes:
        Upper bound (exclusive) on node ids.
    max_abs_gain:
        Bound on ``|gain|`` valid for the whole lifetime of the index.
        For MAAR gains, ``deg_F(u) + k·deg_R(u)`` bounds node ``u``'s
        gain at all times, so the caller passes the graph maximum.
    resolution:
        Gains are multiples of ``1/resolution``; they are stored scaled
        to integers. A gain off the grid raises ``ValueError``.
    """

    __slots__ = (
        "resolution",
        "_offset",
        "_heads",
        "_next",
        "_prev",
        "_bucket_of",
        "_max_bucket",
        "_size",
    )

    _ABSENT = -1

    def __init__(self, num_nodes: int, max_abs_gain: float, resolution: int = 8) -> None:
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        self.resolution = resolution
        scaled_bound = int(max_abs_gain * resolution + 0.5) + 1
        self._offset = scaled_bound
        # Buckets cover scaled gains in [-scaled_bound, +scaled_bound].
        self._heads: List[int] = [self._ABSENT] * (2 * scaled_bound + 1)
        self._next: List[int] = [self._ABSENT] * num_nodes
        self._prev: List[int] = [self._ABSENT] * num_nodes
        self._bucket_of: List[int] = [self._ABSENT] * num_nodes
        self._max_bucket = -1
        self._size = 0

    def _scale(self, gain: float) -> int:
        scaled = gain * self.resolution
        nearest = round(scaled)
        if abs(scaled - nearest) > 1e-6:
            raise ValueError(
                f"gain {gain} is not on the 1/{self.resolution} grid; "
                "use HeapGainIndex for off-grid k values"
            )
        return int(nearest)

    def insert(self, node: int, gain: float) -> None:
        if self._bucket_of[node] != self._ABSENT:
            raise ValueError(f"node {node} already present")
        idx = self._scale(gain) + self._offset
        if not 0 <= idx < len(self._heads):
            raise ValueError(f"gain {gain} exceeds the declared max_abs_gain bound")
        self._link(node, idx)
        self._size += 1

    def _link(self, node: int, idx: int) -> None:
        head = self._heads[idx]
        self._next[node] = head
        self._prev[node] = self._ABSENT
        if head != self._ABSENT:
            self._prev[head] = node
        self._heads[idx] = node
        self._bucket_of[node] = idx
        if idx > self._max_bucket:
            self._max_bucket = idx

    def _unlink(self, node: int) -> None:
        idx = self._bucket_of[node]
        nxt, prv = self._next[node], self._prev[node]
        if prv != self._ABSENT:
            self._next[prv] = nxt
        else:
            self._heads[idx] = nxt
        if nxt != self._ABSENT:
            self._prev[nxt] = prv
        self._bucket_of[node] = self._ABSENT

    def adjust(self, node: int, delta: float) -> None:
        idx = self._bucket_of[node]
        if idx == self._ABSENT:
            raise KeyError(f"node {node} not present")
        new_idx = idx + self._scale(delta)
        if new_idx == idx:
            return
        if not 0 <= new_idx < len(self._heads):
            raise ValueError("adjusted gain exceeds the declared max_abs_gain bound")
        self._unlink(node)
        self._link(node, new_idx)

    def remove(self, node: int) -> None:
        if self._bucket_of[node] == self._ABSENT:
            return
        self._unlink(node)
        self._size -= 1

    def gain_of(self, node: int) -> float:
        """Current gain of a present node."""
        idx = self._bucket_of[node]
        if idx == self._ABSENT:
            raise KeyError(f"node {node} not present")
        return (idx - self._offset) / self.resolution

    def pop_max(self) -> Optional[Tuple[int, float]]:
        if self._size == 0:
            return None
        # Walk the max pointer down to the first non-empty bucket. The
        # pointer only rises on insert/adjust, so this walk is amortized
        # across the pass.
        while self._max_bucket >= 0 and self._heads[self._max_bucket] == self._ABSENT:
            self._max_bucket -= 1
        idx = self._max_bucket
        # LIFO within a bucket: the head is the most recently linked node.
        node = self._heads[idx]
        self._unlink(node)
        self._size -= 1
        return node, (idx - self._offset) / self.resolution

    def top_nodes(self, count: int) -> List[int]:
        if count < 1 or self._size == 0:
            return []
        while self._max_bucket >= 0 and self._heads[self._max_bucket] == self._ABSENT:
            self._max_bucket -= 1
        result: List[int] = []
        idx = self._max_bucket
        while idx >= 0 and len(result) < count:
            node = self._heads[idx]
            while node != self._ABSENT and len(result) < count:
                result.append(node)
                node = self._next[node]
            idx -= 1
        return result

    def __contains__(self, node: int) -> bool:
        return self._bucket_of[node] != self._ABSENT

    def __len__(self) -> int:
        return self._size


class HeapGainIndex(GainIndex):
    """Max-heap with lazy deletion; accepts arbitrary float gains."""

    __slots__ = ("_heap", "_gain", "_entry_id")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, int]] = []
        self._gain: Dict[int, float] = {}
        self._entry_id = 0

    def _push(self, node: int, gain: float) -> None:
        # Heap orders by (-gain, -entry_id) so ties resolve to the most
        # recently touched node, matching the bucket index's LIFO
        # discipline. Stale copies of a node are skipped on pop.
        self._entry_id += 1
        heapq.heappush(self._heap, (-gain, -self._entry_id, node))

    def insert(self, node: int, gain: float) -> None:
        if node in self._gain:
            raise ValueError(f"node {node} already present")
        self._gain[node] = gain
        self._push(node, gain)

    def bulk_load(self, items: Iterable[Tuple[int, float]]) -> None:
        # One O(m) heapify instead of m O(log m) sift-ups. Entry ids
        # are assigned in iteration order, so every heap key is unique
        # and the pop order is identical to sequential inserts.
        heap = self._heap
        gain_map = self._gain
        eid = self._entry_id
        for node, gain in items:
            if node in gain_map:
                raise ValueError(f"node {node} already present")
            gain_map[node] = gain
            eid += 1
            heap.append((-gain, -eid, node))
        self._entry_id = eid
        heapq.heapify(heap)

    def adjust(self, node: int, delta: float) -> None:
        if node not in self._gain:
            raise KeyError(f"node {node} not present")
        if delta == 0:
            return
        self._gain[node] += delta
        self._push(node, self._gain[node])

    def remove(self, node: int) -> None:
        self._gain.pop(node, None)

    def gain_of(self, node: int) -> float:
        return self._gain[node]

    def pop_max(self) -> Optional[Tuple[int, float]]:
        while self._heap:
            neg_gain, _neg_eid, node = heapq.heappop(self._heap)
            gain = self._gain.get(node)
            if gain is not None and -neg_gain == gain:
                del self._gain[node]
                return node, gain
        return None

    def top_nodes(self, count: int) -> List[int]:
        if count < 1 or not self._gain:
            return []
        ordered = sorted(self._gain.items(), key=lambda item: -item[1])
        return [node for node, _ in ordered[:count]]

    def __contains__(self, node: int) -> bool:
        return node in self._gain

    def __len__(self) -> int:
        return len(self._gain)


def _on_grid(value: float, resolution: int) -> bool:
    scaled = value * resolution
    return abs(scaled - round(scaled)) < 1e-9


def make_gain_index(
    kind: str,
    num_nodes: int,
    max_abs_gain: float,
    k: float,
    resolution: int = 8,
) -> GainIndex:
    """Factory for gain indexes.

    ``kind`` is ``"bucket"``, ``"heap"``, or ``"auto"``. ``"auto"`` picks
    the bucket list when ``k`` sits on the ``1/resolution`` grid (the
    default geometric ``k`` sequence does) and otherwise falls back to
    the heap.
    """
    if kind == "auto":
        kind = "bucket" if _on_grid(k, resolution) else "heap"
    if kind == "bucket":
        if not _on_grid(k, resolution):
            raise ValueError(
                f"k={k} is off the 1/{resolution} bucket grid; "
                "pass gain_index='heap' or 'auto'"
            )
        return BucketGainIndex(num_nodes, max_abs_gain, resolution)
    if kind == "heap":
        return HeapGainIndex()
    raise ValueError(f"unknown gain index kind {kind!r}")
