"""Flat-array CSR core: immutable graph storage plus the partition engine state.

The list-of-lists adjacency of :class:`repro.core.graph.AugmentedSocialGraph`
is convenient to *build* but wasteful to *search*: every KL pass walks every
adjacency list, and the iterative detector used to deep-copy the whole graph
each round. This module provides the flat substrate the hot paths run on:

* :class:`CSRGraph` — an immutable compressed-sparse-row snapshot of the
  augmented graph ``G = (V, F, R⃗)``. Three CSR pairs (``ptr``/``idx``) hold
  the friendship adjacency and the two rejection directions; an optional
  parallel weight array per layer supports the multilevel solver's coarse
  graphs. Adjacency is **sorted ascending**, which makes every downstream
  iteration order — and therefore every FM bucket-list tie-break —
  deterministic and independent of edge insertion order.
* :class:`WeightedCSRGraph` — the integer-weight subclass the multilevel
  solver coarsens onto. Contraction of a unit-weight graph only ever
  *sums* unit edges, so every coarse weight is an exact ``int64``;
  storing them as ``array("q")`` keeps weighted gains integral, which
  restores the FM bucket index, the batch kernels, and bit-identical
  python/numpy backends on the coarse levels (integer sums carry no
  float summation-order contract).
* :class:`CSRView` — a zero-copy *residual view*: the same CSR arrays plus an
  active-node byte mask. Rejecto's rounds shrink the view instead of
  rebuilding the graph, so pruning a detected group costs O(V) instead of
  O(V+E).
* :class:`PartitionState` — sides, frozen-seed locks, and the incremental
  MAAR cut counters (``f_cross``, ``r_cross``) in one place. This replaces
  the ad hoc re-derivations that previously lived across ``partition.py``,
  ``kl.py`` and ``maar.py``; the KL engine
  (:func:`repro.core.kl.extended_kl_state`) mutates exactly this state.

Backend convention
------------------
``backend`` is ``"python"``, ``"numpy"``, or ``"auto"``, mirroring
:mod:`repro.baselines.linalg` and the SybilRank/SybilFence configs. Storage
is always the stdlib ``array("q")`` / ``array("d")`` flat buffers (one
canonical representation keeps the two backends bit-identical); the
``"numpy"`` backend additionally exposes zero-copy ``int64``/``float64``
views over those buffers via :meth:`CSRGraph.numpy_arrays` (plus cached
per-slot row ids via :meth:`CSRGraph.numpy_rows`), which is what the batch
kernels of :mod:`repro.core.kernels` run on. The pure-Python hot loops
deliberately run on cached ``list`` views (:meth:`CSRGraph.hot`): CPython
indexes plain lists faster than either ``array`` or numpy scalars. The
``REPRO_BACKEND`` environment variable pins the ``"auto"`` resolution
(e.g. ``REPRO_BACKEND=python`` in CI keeps the scalar fallbacks covered).
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .kernels import (
    buffer_tolist,
    buffer_typecode,
    contract_arrays,
    recount_active,
    scaled_gain_bound,
    weighted_recount_active,
)
from .objectives import (
    LEGITIMATE,
    SUSPICIOUS,
    acceptance_rate,
    friends_to_rejections_ratio,
)

__all__ = [
    "CSRGraph",
    "WeightedCSRGraph",
    "CSRView",
    "PartitionState",
    "resolve_backend",
]


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is a hard dependency here
        return False
    return True


def resolve_backend(backend: str) -> str:
    """Normalize a ``backend`` request to ``"python"`` or ``"numpy"``.

    ``"auto"`` prefers numpy when importable, matching the convention of
    :mod:`repro.baselines.linalg`; the ``REPRO_BACKEND`` environment
    variable overrides the ``"auto"`` resolution (CI pins it to
    ``"python"`` to keep the scalar fallbacks covered on hosts where
    numpy is installed). Explicit requests are never overridden.
    Unknown names raise ``ValueError``.
    """
    if backend == "auto":
        override = os.environ.get("REPRO_BACKEND")
        if override and override != "auto":
            return resolve_backend(override)
        return "numpy" if _numpy_available() else "python"
    if backend in ("python", "numpy"):
        if backend == "numpy" and not _numpy_available():
            raise ValueError("backend 'numpy' requested but numpy is not importable")
        return backend
    raise ValueError(f"unknown backend {backend!r}")


def _picklable(buf, typecode: str) -> Optional[array]:
    """An ``array`` copy of ``buf`` suitable for pickling (``array``
    instances pass through untouched; ``None`` stays ``None``)."""
    if buf is None or isinstance(buf, array):
        return buf
    out = array(typecode)
    out.frombytes(buf.tobytes())
    return out


def _build_csr(
    num_nodes: int, adjacency: Sequence[Sequence[int]]
) -> Tuple[array, array]:
    """Pack per-node neighbour lists into (ptr, idx) arrays, sorted per row."""
    ptr = array("q", [0] * (num_nodes + 1))
    total = 0
    for u in range(num_nodes):
        total += len(adjacency[u])
        ptr[u + 1] = total
    idx = array("q", [0] * total)
    pos = 0
    for u in range(num_nodes):
        for v in sorted(adjacency[u]):
            idx[pos] = v
            pos += 1
    return ptr, idx


def _build_weighted_csr(
    num_nodes: int, adjacency: Sequence[Dict[int, float]], typecode: str = "d"
) -> Tuple[array, array, array]:
    """Weighted variant: per-row sorted (ptr, idx, wt) triples.

    ``typecode`` selects the weight storage: ``"d"`` float64 for
    arbitrary weights, ``"q"`` int64 when every weight is integral (the
    multilevel contraction invariant).
    """
    ptr = array("q", [0] * (num_nodes + 1))
    total = 0
    for u in range(num_nodes):
        total += len(adjacency[u])
        ptr[u + 1] = total
    idx = array("q", [0] * total)
    wt = array(typecode, [0] * total)
    integral = typecode == "q"
    pos = 0
    for u in range(num_nodes):
        for v in sorted(adjacency[u]):
            value = adjacency[u][v]
            idx[pos] = v
            wt[pos] = int(value) if integral else value
            pos += 1
    return ptr, idx, wt


class CSRGraph:
    """Immutable CSR snapshot of a rejection-augmented social graph.

    Layout (all adjacency sorted ascending within each row):

    * ``f_ptr``/``f_idx`` — undirected friendships; each edge appears in
      both endpoints' rows, so ``len(f_idx) == 2·|F|``.
    * ``ro_ptr``/``ro_idx`` — rejections *cast*: row ``u`` lists the users
      whose requests ``u`` rejected.
    * ``ri_ptr``/``ri_idx`` — rejections *received*: row ``u`` lists the
      users that rejected ``u``'s requests. ``len(ro_idx) == len(ri_idx)
      == |R⃗|``.
    * ``f_wt``/``ro_wt``/``ri_wt`` — optional parallel weights (``None``
      for plain graphs); present on coarse multilevel graphs.

    Instances are immutable by convention: every mutation path goes through
    the :class:`~repro.core.graph.AugmentedSocialGraph` builder, which
    finalizes into a (cached) ``CSRGraph`` via its ``csr()`` method.
    """

    __slots__ = (
        "num_nodes",
        "backend",
        "f_ptr",
        "f_idx",
        "ro_ptr",
        "ro_idx",
        "ri_ptr",
        "ri_idx",
        "f_wt",
        "ro_wt",
        "ri_wt",
        "snapshot_path",
        "_hot_cache",
        "_hot_wt_cache",
        "_np_cache",
        "_bound_cache",
    )

    def __init__(
        self,
        num_nodes: int,
        f_ptr: array,
        f_idx: array,
        ro_ptr: array,
        ro_idx: array,
        ri_ptr: array,
        ri_idx: array,
        f_wt: Optional[array] = None,
        ro_wt: Optional[array] = None,
        ri_wt: Optional[array] = None,
        backend: str = "auto",
    ) -> None:
        self.num_nodes = num_nodes
        self.backend = resolve_backend(backend)
        self.f_ptr, self.f_idx = f_ptr, f_idx
        self.ro_ptr, self.ro_idx = ro_ptr, ro_idx
        self.ri_ptr, self.ri_idx = ri_ptr, ri_idx
        self.f_wt, self.ro_wt, self.ri_wt = f_wt, ro_wt, ri_wt
        #: set by :func:`repro.core.storage.load_snapshot` on graphs
        #: opened from a binary snapshot file — consumers (the cluster
        #: engine) use it to ship shard *references* instead of payloads
        self.snapshot_path: Optional[str] = None
        self._hot_cache: Optional[Tuple[List[int], ...]] = None
        self._hot_wt_cache: Optional[Tuple[List[float], ...]] = None
        self._np_cache: Optional[Dict[str, object]] = None
        self._bound_cache: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_builder(cls, graph, backend: str = "auto") -> "CSRGraph":
        """Finalize an :class:`AugmentedSocialGraph` builder into CSR form."""
        n = graph.num_nodes
        f_ptr, f_idx = _build_csr(n, graph.friends)
        ro_ptr, ro_idx = _build_csr(n, graph.rej_out)
        ri_ptr, ri_idx = _build_csr(n, graph.rej_in)
        return cls(n, f_ptr, f_idx, ro_ptr, ro_idx, ri_ptr, ri_idx, backend=backend)

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        friendships: Iterable[Tuple[int, int]] = (),
        rejections: Iterable[Tuple[int, int]] = (),
        backend: str = "auto",
    ) -> "CSRGraph":
        """Build directly from edge lists (duplicates collapse, as in the
        builder)."""
        friends: List[List[int]] = [[] for _ in range(num_nodes)]
        rej_out: List[List[int]] = [[] for _ in range(num_nodes)]
        rej_in: List[List[int]] = [[] for _ in range(num_nodes)]
        friend_set = set()
        for u, v in friendships:
            key = (u, v) if u <= v else (v, u)
            if u == v or key in friend_set:
                continue
            friend_set.add(key)
            friends[u].append(v)
            friends[v].append(u)
        rej_set = set()
        for rejecter, sender in rejections:
            if rejecter == sender or (rejecter, sender) in rej_set:
                continue
            rej_set.add((rejecter, sender))
            rej_out[rejecter].append(sender)
            rej_in[sender].append(rejecter)
        f_ptr, f_idx = _build_csr(num_nodes, friends)
        ro_ptr, ro_idx = _build_csr(num_nodes, rej_out)
        ri_ptr, ri_idx = _build_csr(num_nodes, rej_in)
        return cls(
            num_nodes, f_ptr, f_idx, ro_ptr, ro_idx, ri_ptr, ri_idx, backend=backend
        )

    @classmethod
    def from_weighted(cls, graph, backend: str = "auto") -> "CSRGraph":
        """Finalize a :class:`~repro.core.weighted.WeightedAugmentedGraph`.

        When every edge weight is integral — always true for graphs
        produced by unit-weight embedding plus contraction — the result
        is a :class:`WeightedCSRGraph` with ``int64`` weights (and the
        builder's ``node_weight``), which unlocks the bucket index and
        the batch kernels. Genuinely fractional weights fall back to the
        float representation and its scalar engines.
        """
        n = graph.num_nodes
        integral = all(
            float(w).is_integer()
            for adjacency in (graph.friends, graph.rej_out)
            for row in adjacency
            for w in row.values()
        )
        typecode = "q" if integral else "d"
        f_ptr, f_idx, f_wt = _build_weighted_csr(n, graph.friends, typecode)
        ro_ptr, ro_idx, ro_wt = _build_weighted_csr(n, graph.rej_out, typecode)
        ri_ptr, ri_idx, ri_wt = _build_weighted_csr(n, graph.rej_in, typecode)
        if integral:
            return WeightedCSRGraph(
                n,
                f_ptr,
                f_idx,
                ro_ptr,
                ro_idx,
                ri_ptr,
                ri_idx,
                f_wt=f_wt,
                ro_wt=ro_wt,
                ri_wt=ri_wt,
                node_weight=array("q", graph.node_weight),
                backend=backend,
            )
        return cls(
            n,
            f_ptr,
            f_idx,
            ro_ptr,
            ro_idx,
            ri_ptr,
            ri_idx,
            f_wt=f_wt,
            ro_wt=ro_wt,
            ri_wt=ri_wt,
            backend=backend,
        )

    # ------------------------------------------------------------------
    # Array views
    # ------------------------------------------------------------------
    @property
    def weighted(self) -> bool:
        return self.f_wt is not None

    @property
    def int_weighted(self) -> bool:
        """Whether the weight arrays are exact ``int64`` — the
        representation that keeps weighted gains integral and therefore
        eligible for the bucket index and the batch kernels."""
        return self.f_wt is not None and buffer_typecode(self.f_wt) == "q"

    def hot(self) -> Tuple[List[int], ...]:
        """Cached plain-list views ``(f_ptr, f_idx, ro_ptr, ro_idx, ri_ptr,
        ri_idx)`` for the pure-Python hot loops. Elements are native
        ``int`` whatever the storage (``array``, ``np.memmap`` segment,
        or ``memoryview`` over an mmap)."""
        cache = self._hot_cache
        if cache is None:
            cache = (
                buffer_tolist(self.f_ptr),
                buffer_tolist(self.f_idx),
                buffer_tolist(self.ro_ptr),
                buffer_tolist(self.ro_idx),
                buffer_tolist(self.ri_ptr),
                buffer_tolist(self.ri_idx),
            )
            self._hot_cache = cache
        return cache

    def hot_weights(self) -> Optional[Tuple[List[float], ...]]:
        """Cached list views of ``(f_wt, ro_wt, ri_wt)``; ``None`` when the
        graph is unweighted. Entries are ``int`` on int64-weighted
        graphs and ``float`` otherwise."""
        if self.f_wt is None:
            return None
        cache = self._hot_wt_cache
        if cache is None:
            cache = (
                buffer_tolist(self.f_wt),
                buffer_tolist(self.ro_wt),
                buffer_tolist(self.ri_wt),
            )
            self._hot_wt_cache = cache
        return cache

    def numpy_arrays(self) -> Dict[str, object]:
        """Zero-copy numpy views over the CSR buffers (``int64`` indices;
        weights view as ``int64`` or ``float64`` matching their storage
        typecode). Available on any instance with numpy importable; the
        ``"numpy"`` backend guarantees it."""
        cache = self._np_cache
        if cache is None:
            import numpy as np

            cache = {
                "f_ptr": np.frombuffer(self.f_ptr, dtype=np.int64),
                "f_idx": np.frombuffer(self.f_idx, dtype=np.int64),
                "ro_ptr": np.frombuffer(self.ro_ptr, dtype=np.int64),
                "ro_idx": np.frombuffer(self.ro_idx, dtype=np.int64),
                "ri_ptr": np.frombuffer(self.ri_ptr, dtype=np.int64),
                "ri_idx": np.frombuffer(self.ri_idx, dtype=np.int64),
            }
            if self.f_wt is not None:
                wt_dtype = (
                    np.int64
                    if buffer_typecode(self.f_wt) == "q"
                    else np.float64
                )
                cache["f_wt"] = np.frombuffer(self.f_wt, dtype=wt_dtype)
                cache["ro_wt"] = np.frombuffer(self.ro_wt, dtype=wt_dtype)
                cache["ri_wt"] = np.frombuffer(self.ri_wt, dtype=wt_dtype)
            self._np_cache = cache
        return cache

    def numpy_rows(self) -> Tuple[object, object, object]:
        """Cached per-slot *row* index arrays ``(f_row, ro_row, ri_row)``
        — the inverse of the ``ptr`` compression, i.e. ``f_row[i]`` is
        the node whose adjacency row holds slot ``i``. The batch kernels
        pair them with the ``idx`` arrays to evaluate per-edge terms
        without any per-row Python loop."""
        cache = self.numpy_arrays()
        if "f_row" not in cache:
            import numpy as np

            ids = np.arange(self.num_nodes, dtype=np.int64)
            cache["f_row"] = np.repeat(ids, np.diff(cache["f_ptr"]))
            cache["ro_row"] = np.repeat(ids, np.diff(cache["ro_ptr"]))
            cache["ri_row"] = np.repeat(ids, np.diff(cache["ri_ptr"]))
        return cache["f_row"], cache["ro_row"], cache["ri_row"]

    def block_arrays(self, lo: int, hi: int) -> Tuple[array, ...]:
        """Rebased CSR slices for the contiguous node range ``[lo, hi)``.

        Returns ``(f_ptr, f_idx, ro_ptr, ro_idx, ri_ptr, ri_idx)`` where
        each ``ptr`` array is local (``ptr[0] == 0``, length
        ``hi − lo + 1``) and each ``idx`` array keeps *global* neighbour
        ids — exactly the layout a cluster worker stores per shard block
        (:class:`repro.cluster.blocks.ShardBlock`). The ``idx`` slices
        are flat C-level copies of the parent buffers; only the pointer
        rebase walks Python-level.
        """
        if not 0 <= lo <= hi <= self.num_nodes:
            raise ValueError(
                f"block range [{lo}, {hi}) invalid for graph with "
                f"{self.num_nodes} nodes"
            )
        out: List[array] = []
        for ptr, idx in (
            (self.f_ptr, self.f_idx),
            (self.ro_ptr, self.ro_idx),
            (self.ri_ptr, self.ri_idx),
        ):
            base = int(ptr[lo])
            out.append(
                array("q", (int(ptr[i]) - base for i in range(lo, hi + 1)))
            )
            # On memmap-backed graphs this slice is a zero-copy view of
            # the mapped file (numpy) or mmap buffer (memoryview); only
            # array-module storage pays a flat C-level copy here.
            out.append(idx[ptr[lo] : ptr[hi]])
        return tuple(out)

    def contract(
        self, mapping: Sequence[int], num_coarse: int
    ) -> "WeightedCSRGraph":
        """Contract this graph under ``mapping`` (fine node → coarse id).

        Weights between distinct coarse nodes accumulate (an unweighted
        graph contributes unit weights); edges internal to a coarse node
        vanish; ``node_weight`` sums per super-node — exactly the
        semantics that keep every coarse cut's weight equal to the
        projected fine cut's weight. Runs as a flat-array kernel
        (:func:`repro.core.kernels.contract_arrays`): sort/bincount/
        scatter-add passes on the numpy backend, dict accumulation in
        pure python — identical int64 outputs either way. Requires
        unweighted or int64-weighted inputs (float weights have no exact
        integer contraction).
        """
        arrays = contract_arrays(self, mapping, num_coarse)
        return WeightedCSRGraph(num_coarse, *arrays, backend=self.backend)

    def bucket_gain_bound(self, resolution: int, k_scaled: int) -> int:
        """Memoized :func:`repro.core.kernels.scaled_gain_bound`.

        The bound is pass-invariant *and* view-invariant (full-graph
        degrees dominate active-filtered ones), so one entry per
        ``(resolution, k_scaled)`` serves every pass of every KL solve
        at that ``k`` — the whole MAAR ``k``-sweep and all of Rejecto's
        residual rounds share this cache instead of re-scanning O(V)
        degrees per ``_run_bucket_passes`` call."""
        key = (resolution, k_scaled)
        bound = self._bound_cache.get(key)
        if bound is None:
            bound = scaled_gain_bound(self, resolution, k_scaled)
            self._bound_cache[key] = bound
        return bound

    # ------------------------------------------------------------------
    # Binary snapshot persistence (repro.core.storage)
    # ------------------------------------------------------------------
    def save(self, path):
        """Write this graph as a versioned binary snapshot (``.csrbin``).

        The file layout is backend-independent — the same graph saved
        from the python and numpy backends is byte-identical. See
        :mod:`repro.core.storage` for the format. Returns the final
        :class:`~pathlib.Path`.
        """
        from .storage import save_snapshot

        return save_snapshot(self, path)

    @classmethod
    def open(
        cls, path, mode: str = "mmap", backend: str = "auto"
    ) -> "CSRGraph":
        """Open a snapshot written by :meth:`save`.

        ``mode="mmap"`` (default) maps the segments zero-copy —
        millisecond opens regardless of graph size, read-only pages
        shared between every process mapping the same file.
        ``mode="copy"`` reads them into fresh ``array`` buffers.
        Weighted snapshots come back as :class:`WeightedCSRGraph`.
        """
        from .storage import load_snapshot

        return load_snapshot(path, mode=mode, backend=backend)

    # ------------------------------------------------------------------
    # Queries (builder-compatible surface)
    # ------------------------------------------------------------------
    def csr(self, backend: str = "auto") -> "CSRGraph":
        """A CSR graph finalizes to itself — lets callers accept either a
        builder or a finalized graph uniformly."""
        return self

    def degree(self, u: int) -> int:
        return self.f_ptr[u + 1] - self.f_ptr[u]

    def rejections_cast(self, u: int) -> int:
        return self.ro_ptr[u + 1] - self.ro_ptr[u]

    def rejections_received(self, u: int) -> int:
        return self.ri_ptr[u + 1] - self.ri_ptr[u]

    def friends_of(self, u: int) -> List[int]:
        """The (sorted) friend list of ``u`` as a fresh list."""
        return list(self.f_idx[self.f_ptr[u] : self.f_ptr[u + 1]])

    def has_friendship(self, u: int, v: int) -> bool:
        lo, hi = self.f_ptr[u], self.f_ptr[u + 1]
        pos = bisect_left(self.f_idx, v, lo, hi)
        return pos < hi and self.f_idx[pos] == v

    def has_rejection(self, rejecter: int, sender: int) -> bool:
        lo, hi = self.ro_ptr[rejecter], self.ro_ptr[rejecter + 1]
        pos = bisect_left(self.ro_idx, sender, lo, hi)
        return pos < hi and self.ro_idx[pos] == sender

    @property
    def num_friendships(self) -> int:
        return len(self.f_idx) // 2

    @property
    def num_rejections(self) -> int:
        return len(self.ro_idx)

    def friendships(self) -> Iterator[Tuple[int, int]]:
        """Iterate friendships as canonical ``(min, max)`` pairs, sorted."""
        f_ptr, f_idx = self.f_ptr, self.f_idx
        for u in range(self.num_nodes):
            for i in range(f_ptr[u], f_ptr[u + 1]):
                v = f_idx[i]
                if u < v:
                    yield (u, v)

    def rejections(self) -> Iterator[Tuple[int, int]]:
        """Iterate rejections as ``(rejecter, sender)`` pairs, sorted."""
        ro_ptr, ro_idx = self.ro_ptr, self.ro_idx
        for u in range(self.num_nodes):
            for i in range(ro_ptr[u], ro_ptr[u + 1]):
                yield (u, ro_idx[i])

    def nodes(self) -> range:
        return range(self.num_nodes)

    # ------------------------------------------------------------------
    # Pickling (parallel process workers)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Tuple:
        """Pickle only the flat buffers — the derived caches (plain-list
        hot views, numpy ``frombuffer`` views) are rebuilt lazily on the
        receiving side, so a spawn-platform worker transfer is just the
        CSR arrays. Memmap-backed segments are materialized into
        ``array`` buffers (an mmap cannot travel in a pickle); the
        receiving side gets an ordinary in-memory graph."""
        return (
            self.num_nodes,
            self.backend,
            _picklable(self.f_ptr, "q"),
            _picklable(self.f_idx, "q"),
            _picklable(self.ro_ptr, "q"),
            _picklable(self.ro_idx, "q"),
            _picklable(self.ri_ptr, "q"),
            _picklable(self.ri_idx, "q"),
            _picklable(self.f_wt, buffer_typecode(self.f_wt) or "q"),
            _picklable(self.ro_wt, buffer_typecode(self.ro_wt) or "q"),
            _picklable(self.ri_wt, buffer_typecode(self.ri_wt) or "q"),
        )

    def __setstate__(self, state: Tuple) -> None:
        (
            self.num_nodes,
            self.backend,
            self.f_ptr,
            self.f_idx,
            self.ro_ptr,
            self.ro_idx,
            self.ri_ptr,
            self.ri_idx,
            self.f_wt,
            self.ro_wt,
            self.ri_wt,
        ) = state
        self.snapshot_path = None
        self._hot_cache = None
        self._hot_wt_cache = None
        self._np_cache = None
        self._bound_cache = {}

    def view(self) -> "CSRView":
        """An all-active residual view of this graph."""
        return CSRView(self)

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        kind = "weighted " if self.weighted else ""
        return (
            f"CSRGraph({kind}nodes={self.num_nodes}, "
            f"friendships={self.num_friendships}, "
            f"rejections={self.num_rejections}, backend={self.backend!r})"
        )


class WeightedCSRGraph(CSRGraph):
    """Integer-weight CSR graph — the multilevel coarse representation.

    Contraction of a unit-weight augmented graph only ever *sums* unit
    edges, so every coarse friendship/rejection weight is an exact
    integer. Storing weights as ``array("q")`` int64 (plus the per-node
    member count ``node_weight``) keeps weighted switch gains integral,
    which restores everything the unweighted fast path already has: the
    FM bucket gain index, the batch kernels of
    :mod:`repro.core.kernels`, and bit-identical python/numpy backends —
    integer sums are order-insensitive, so there is no float
    summation-order contract to protect.

    ``node_weight[u]`` counts the original (level-0) nodes merged into
    super-node ``u``; validity rules that cap the suspicious region's
    *original* population weight by it (:meth:`weighted_suspicious_size`).
    """

    __slots__ = ("node_weight",)

    def __init__(
        self,
        num_nodes: int,
        f_ptr: array,
        f_idx: array,
        ro_ptr: array,
        ro_idx: array,
        ri_ptr: array,
        ri_idx: array,
        f_wt: array,
        ro_wt: array,
        ri_wt: array,
        node_weight: Optional[array] = None,
        backend: str = "auto",
    ) -> None:
        for name, wt in (("f_wt", f_wt), ("ro_wt", ro_wt), ("ri_wt", ri_wt)):
            if wt is None or buffer_typecode(wt) != "q":
                raise ValueError(
                    f"WeightedCSRGraph requires int64 ('q') weight arrays; "
                    f"{name} is not — use the float CSRGraph for "
                    "fractional weights"
                )
        super().__init__(
            num_nodes,
            f_ptr,
            f_idx,
            ro_ptr,
            ro_idx,
            ri_ptr,
            ri_idx,
            f_wt=f_wt,
            ro_wt=ro_wt,
            ri_wt=ri_wt,
            backend=backend,
        )
        if node_weight is None:
            node_weight = array("q", [1]) * num_nodes
        else:
            if buffer_typecode(node_weight) != "q":
                node_weight = array("q", node_weight)
            if len(node_weight) != num_nodes:
                raise ValueError(
                    f"node_weight has length {len(node_weight)}, "
                    f"expected {num_nodes}"
                )
        self.node_weight = node_weight

    @classmethod
    def from_unit(cls, csr: CSRGraph) -> "WeightedCSRGraph":
        """Embed an unweighted CSR graph with all-ones weights — the
        identity contraction, i.e. level 0 of the multilevel hierarchy.
        Shares the index buffers with the source graph (zero copy)."""
        if csr.weighted:
            raise ValueError("from_unit embeds *unweighted* graphs only")
        one = array("q", [1])
        return cls(
            csr.num_nodes,
            csr.f_ptr,
            csr.f_idx,
            csr.ro_ptr,
            csr.ro_idx,
            csr.ri_ptr,
            csr.ri_idx,
            f_wt=one * len(csr.f_idx),
            ro_wt=one * len(csr.ro_idx),
            ri_wt=one * len(csr.ri_idx),
            backend=csr.backend,
        )

    def total_node_weight(self) -> int:
        """Original (level-0) node count this graph represents."""
        return sum(self.node_weight)

    def weighted_suspicious_size(
        self, sides: Sequence[int], active: Optional[Sequence[int]] = None
    ) -> int:
        """Original-node population of side 1 — every super-node counts
        its merged members (mirrors ``WeightedPartition.suspicious_size``)."""
        nw = self.node_weight
        if active is None:
            return sum(nw[u] for u in range(self.num_nodes) if sides[u])
        return sum(
            nw[u] for u in range(self.num_nodes) if active[u] and sides[u]
        )

    def __getstate__(self) -> Tuple:
        return super().__getstate__() + (_picklable(self.node_weight, "q"),)

    def __setstate__(self, state: Tuple) -> None:
        super().__setstate__(state[:-1])
        self.node_weight = state[-1]

    def __repr__(self) -> str:
        return (
            f"WeightedCSRGraph(nodes={self.num_nodes}, "
            f"friendships={self.num_friendships}, "
            f"rejections={self.num_rejections}, "
            f"total_weight={self.total_node_weight()}, "
            f"backend={self.backend!r})"
        )


class CSRView:
    """A zero-copy residual view: shared CSR arrays + an active-node mask.

    ``active`` is a bytearray of 0/1 flags. Views are cheap to derive
    (:meth:`without` copies only the mask, O(V)) and never touch the edge
    arrays, which is what removes the per-round O(V+E) subgraph copies from
    the iterative detector.
    """

    __slots__ = ("csr", "active", "num_active", "_hot_active")

    def __init__(
        self,
        csr: CSRGraph,
        active: Optional[bytearray] = None,
        num_active: Optional[int] = None,
    ) -> None:
        self.csr = csr
        if active is None:
            active = bytearray(b"\x01") * csr.num_nodes
            num_active = csr.num_nodes
        elif num_active is None:
            num_active = sum(active)
        self.active = active
        self.num_active = num_active
        self._hot_active: Optional[Tuple[List[int], ...]] = None

    def hot_active(self) -> Tuple[List[int], ...]:
        """Active-filtered plain-list CSR adjacency, cached on the view.

        Same ``(f_ptr, f_idx, ro_ptr, ro_idx, ri_ptr, ri_idx)`` shape as
        :meth:`CSRGraph.hot` but with inactive neighbours dropped from
        the index arrays, so the bucket engine's hot loops need no
        per-edge active checks. Filtering preserves relative order —
        every retained entry is visited in the same sequence as with the
        mask checks, so engines on either representation are
        bit-identical. All-active views return :meth:`CSRGraph.hot`
        as-is (zero cost); residual views pay one O(V+E) build shared
        across every ``k`` of the sweep and every pass. Unweighted use
        only: the weighted engines index weight arrays positionally,
        which filtering would misalign.
        """
        cached = self._hot_active
        if cached is None:
            csr = self.csr
            if self.num_active == csr.num_nodes:
                cached = csr.hot()
            else:
                active = self.active
                fp, fi, op, oi, ip_, ii = csr.hot()
                filtered: List[List[int]] = []
                for ptr, idx in ((fp, fi), (op, oi), (ip_, ii)):
                    new_ptr = [0] * (csr.num_nodes + 1)
                    new_idx: List[int] = []
                    append = new_idx.append
                    for u in range(csr.num_nodes):
                        for i in range(ptr[u], ptr[u + 1]):
                            v = idx[i]
                            if active[v]:
                                append(v)
                        new_ptr[u + 1] = len(new_idx)
                    filtered.append(new_ptr)
                    filtered.append(new_idx)
                cached = tuple(filtered)
            self._hot_active = cached
        return cached

    def _check_node(self, u: int) -> None:
        """Reject out-of-range ids. Without this, ``active[-1]`` would
        silently deactivate node ``num_nodes - 1`` via Python's negative
        indexing instead of failing."""
        if not 0 <= u < self.csr.num_nodes:
            raise ValueError(
                f"node id {u} out of range for graph with "
                f"{self.csr.num_nodes} nodes"
            )

    def without(self, removed: Iterable[int]) -> "CSRView":
        """A new view with the given nodes deactivated (idempotent).

        Raises ``ValueError`` on ids outside ``[0, num_nodes)``.
        """
        active = bytearray(self.active)
        dropped = 0
        for u in removed:
            self._check_node(u)
            if active[u]:
                active[u] = 0
                dropped += 1
        return CSRView(self.csr, active, self.num_active - dropped)

    def is_active(self, u: int) -> bool:
        self._check_node(u)
        return bool(self.active[u])

    def active_nodes(self) -> List[int]:
        return [u for u in range(self.csr.num_nodes) if self.active[u]]

    def degree(self, u: int) -> int:
        """Friend count of ``u`` restricted to active neighbours."""
        csr, active = self.csr, self.active
        return sum(
            1
            for i in range(csr.f_ptr[u], csr.f_ptr[u + 1])
            if active[csr.f_idx[i]]
        )

    def rejections_received(self, u: int) -> int:
        """In-rejection count of ``u`` restricted to active rejecters."""
        csr, active = self.csr, self.active
        return sum(
            1
            for i in range(csr.ri_ptr[u], csr.ri_ptr[u + 1])
            if active[csr.ri_idx[i]]
        )

    def __repr__(self) -> str:
        return f"CSRView(active={self.num_active}/{self.csr.num_nodes})"


class PartitionState:
    """Sides, frozen-seed locks, and incremental MAAR cut counters over a
    residual view — the single state object the KL engine mutates.

    Semantics match :class:`repro.core.partition.Partition` restricted to
    the view's active nodes: ``f_cross`` counts active-active cross
    friendships, ``r_cross`` counts rejections cast by active side-0 nodes
    onto active side-1 nodes. On weighted CSR graphs both counters are
    weight sums — exact ``int`` on :class:`WeightedCSRGraph`, ``float``
    on the float-weighted representation.
    """

    __slots__ = ("view", "sides", "locked", "f_cross", "r_cross", "side_sizes")

    def __init__(
        self,
        view: CSRView,
        sides: Sequence[int],
        locked: Optional[Sequence[bool]] = None,
    ) -> None:
        n = view.csr.num_nodes
        if len(sides) != n:
            raise ValueError(f"sides has length {len(sides)}, expected {n}")
        bad = [s for s in sides if s not in (LEGITIMATE, SUSPICIOUS)]
        if bad:
            raise ValueError(f"sides must be 0 or 1, found {bad[0]!r}")
        if locked is None:
            locked = [False] * n
        elif len(locked) != n:
            raise ValueError(f"locked has length {len(locked)}, expected {n}")
        self.view = view
        self.sides: List[int] = list(sides)
        self.locked: List[bool] = list(locked)
        self.recount()

    @classmethod
    def from_counts(
        cls,
        view: CSRView,
        sides: Sequence[int],
        locked: Optional[Sequence[bool]],
        f_cross,
        r_cross,
    ) -> "PartitionState":
        """Build a state from already-known cut counters, skipping the
        O(V+E) :meth:`recount`.

        The boundary-only multilevel refinement tracks exact integer
        counter deltas through every projection (cut weights are
        preserved) and region merge, so re-deriving the counters from
        scratch at each level would be pure waste; this trusts the
        caller's ``f_cross``/``r_cross`` and only tallies the O(V) side
        sizes. ``verify_counts`` remains the audit hook.
        """
        n = view.csr.num_nodes
        if len(sides) != n:
            raise ValueError(f"sides has length {len(sides)}, expected {n}")
        if locked is None:
            locked = [False] * n
        elif len(locked) != n:
            raise ValueError(f"locked has length {len(locked)}, expected {n}")
        state = cls.__new__(cls)
        state.view = view
        state.sides = list(sides)
        state.locked = list(locked)
        state.f_cross = f_cross
        state.r_cross = r_cross
        active = view.active
        ones = 0
        for u in range(n):
            if active[u] and sides[u]:
                ones += 1
        state.side_sizes = [view.num_active - ones, ones]
        return state

    def recount(self) -> None:
        """Recompute the counters and side sizes from scratch (O(V+E)).

        Unweighted graphs route through
        :func:`repro.core.kernels.recount_active` and int64-weighted
        coarse graphs through
        :func:`repro.core.kernels.weighted_recount_active` (vectorized
        on the numpy backend, scalar otherwise — bit-identical either
        way, since both sum integers); float-weighted graphs keep the
        inline scalar sweep so float summation order stays fixed.
        """
        view = self.view
        csr, active, sides = view.csr, view.active, self.sides
        fp, fi, op, oi = csr.f_ptr, csr.f_idx, csr.ro_ptr, csr.ro_idx
        weights = csr.hot_weights()
        ones = 0
        if weights is None:
            self.f_cross, self.r_cross, ones = recount_active(view, sides)
            self.side_sizes = [view.num_active - ones, ones]
            return
        if csr.int_weighted:
            self.f_cross, self.r_cross, ones = weighted_recount_active(
                view, sides
            )
            self.side_sizes = [view.num_active - ones, ones]
            return
        fw, ow, _ = weights
        f_cross = r_cross = 0.0
        for u in range(csr.num_nodes):
            if not active[u]:
                continue
            s = sides[u]
            ones += s
            for i in range(fp[u], fp[u + 1]):
                v = fi[i]
                if u < v and active[v] and sides[v] != s:
                    f_cross += fw[i]
            if s == LEGITIMATE:
                for i in range(op[u], op[u + 1]):
                    v = oi[i]
                    if active[v] and sides[v] == SUSPICIOUS:
                        r_cross += ow[i]
        self.f_cross = f_cross
        self.r_cross = r_cross
        self.side_sizes = [view.num_active - ones, ones]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def switch(self, u: int) -> None:
        """Move active node ``u`` to the other side, updating the counters.

        Same delta rules as ``Partition.switch``, restricted to active
        neighbours (inactive nodes contribute to no counter).
        """
        view = self.view
        csr, active, sides = view.csr, view.active, self.sides
        fp, fi, op, oi, ip_, ii = csr.hot()
        weights = csr.hot_weights()
        s = sides[u]
        if weights is None:
            friends_delta = 0
            for i in range(fp[u], fp[u + 1]):
                v = fi[i]
                if active[v]:
                    friends_delta += 1 if sides[v] == s else -1
            rej_delta = 0
            sign = -1 if s == LEGITIMATE else 1
            for i in range(op[u], op[u + 1]):
                v = oi[i]
                if active[v] and sides[v] == SUSPICIOUS:
                    rej_delta += sign
            for i in range(ip_[u], ip_[u + 1]):
                w = ii[i]
                if active[w] and sides[w] == LEGITIMATE:
                    rej_delta -= sign
        else:
            fw, ow, iw = weights
            # Integer literals keep int64-weighted deltas exact ints
            # (float weights promote on the first addition, as before).
            friends_delta = 0
            for i in range(fp[u], fp[u + 1]):
                v = fi[i]
                if active[v]:
                    friends_delta += fw[i] if sides[v] == s else -fw[i]
            rej_delta = 0
            sign = -1 if s == LEGITIMATE else 1
            for i in range(op[u], op[u + 1]):
                v = oi[i]
                if active[v] and sides[v] == SUSPICIOUS:
                    rej_delta += sign * ow[i]
            for i in range(ip_[u], ip_[u + 1]):
                w = ii[i]
                if active[w] and sides[w] == LEGITIMATE:
                    rej_delta -= sign * iw[i]
        self.f_cross += friends_delta
        self.r_cross += rej_delta
        self.side_sizes[s] -= 1
        self.side_sizes[1 - s] += 1
        sides[u] = 1 - s

    def switch_gain(self, u: int, k: float) -> float:
        """Gain (decrease in ``W = f_cross − k·r_cross``) of switching ``u``.

        Pure query; the reference against which the engine's incremental
        gain indexes are property-tested.
        """
        view = self.view
        csr, active, sides = view.csr, view.active, self.sides
        fp, fi, op, oi, ip_, ii = csr.hot()
        weights = csr.hot_weights()
        s = sides[u]
        if weights is None:
            friends_delta = 0
            for i in range(fp[u], fp[u + 1]):
                v = fi[i]
                if active[v]:
                    friends_delta += 1 if sides[v] == s else -1
            rej_delta = 0
            sign = -1 if s == LEGITIMATE else 1
            for i in range(op[u], op[u + 1]):
                v = oi[i]
                if active[v] and sides[v] == SUSPICIOUS:
                    rej_delta += sign
            for i in range(ip_[u], ip_[u + 1]):
                w = ii[i]
                if active[w] and sides[w] == LEGITIMATE:
                    rej_delta -= sign
        else:
            fw, ow, iw = weights
            # Integer literals keep int64-weighted deltas exact ints
            # (float weights promote on the first addition, as before).
            friends_delta = 0
            for i in range(fp[u], fp[u + 1]):
                v = fi[i]
                if active[v]:
                    friends_delta += fw[i] if sides[v] == s else -fw[i]
            rej_delta = 0
            sign = -1 if s == LEGITIMATE else 1
            for i in range(op[u], op[u + 1]):
                v = oi[i]
                if active[v] and sides[v] == SUSPICIOUS:
                    rej_delta += sign * ow[i]
            for i in range(ip_[u], ip_[u + 1]):
                w = ii[i]
                if active[w] and sides[w] == LEGITIMATE:
                    rej_delta -= sign * iw[i]
        return -(friends_delta - k * rej_delta)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_active(self) -> int:
        return self.view.num_active

    def suspicious_nodes(self) -> List[int]:
        """Active node ids currently on side 1, ascending."""
        active, sides = self.view.active, self.sides
        return [
            u
            for u in range(self.view.csr.num_nodes)
            if active[u] and sides[u] == SUSPICIOUS
        ]

    def legitimate_nodes(self) -> List[int]:
        active, sides = self.view.active, self.sides
        return [
            u
            for u in range(self.view.csr.num_nodes)
            if active[u] and sides[u] == LEGITIMATE
        ]

    @property
    def suspicious_size(self) -> int:
        return self.side_sizes[SUSPICIOUS]

    @property
    def legitimate_size(self) -> int:
        return self.side_sizes[LEGITIMATE]

    def acceptance_rate(self) -> float:
        return acceptance_rate(self.f_cross, self.r_cross)

    def ratio(self) -> float:
        return friends_to_rejections_ratio(self.f_cross, self.r_cross)

    def objective(self, k: float) -> float:
        return self.f_cross - k * self.r_cross

    def max_abs_gain(self, k: float) -> float:
        """A lifetime bound on ``|gain(u)|`` over active nodes (full-graph
        degrees bound the active-filtered ones, so this stays valid as the
        engine switches nodes)."""
        view = self.view
        csr, active = view.csr, view.active
        fp, op, ip_ = csr.f_ptr, csr.ro_ptr, csr.ri_ptr
        weights = csr.hot_weights()
        bound = 0.0
        if weights is None:
            for u in range(csr.num_nodes):
                if not active[u]:
                    continue
                weight = (fp[u + 1] - fp[u]) + k * (
                    (op[u + 1] - op[u]) + (ip_[u + 1] - ip_[u])
                )
                if weight > bound:
                    bound = weight
        else:
            fw, ow, iw = weights
            for u in range(csr.num_nodes):
                if not active[u]:
                    continue
                weight = sum(fw[fp[u] : fp[u + 1]]) + k * (
                    sum(ow[op[u] : op[u + 1]]) + sum(iw[ip_[u] : ip_[u + 1]])
                )
                if weight > bound:
                    bound = weight
        return bound

    def verify_counts(self) -> bool:
        """Check the incremental counters against a from-scratch recount."""
        f, r = self.f_cross, self.r_cross
        sizes = list(self.side_sizes)
        self.recount()
        if self.view.csr.weighted and not self.view.csr.int_weighted:
            ok = (
                abs(f - self.f_cross) < 1e-6
                and abs(r - self.r_cross) < 1e-6
                and sizes == self.side_sizes
            )
        else:
            ok = (f, r) == (self.f_cross, self.r_cross) and sizes == self.side_sizes
        self.f_cross, self.r_cross, self.side_sizes = f, r, sizes
        return ok

    def copy(self) -> "PartitionState":
        """Independent sides/counters sharing the view and lock vector."""
        clone = PartitionState.__new__(PartitionState)
        clone.view = self.view
        clone.sides = list(self.sides)
        clone.locked = self.locked
        clone.f_cross = self.f_cross
        clone.r_cross = self.r_cross
        clone.side_sizes = list(self.side_sizes)
        return clone

    def __repr__(self) -> str:
        return (
            f"PartitionState(active={self.num_active}, "
            f"suspicious={self.suspicious_size}, f_cross={self.f_cross}, "
            f"r_cross={self.r_cross})"
        )
