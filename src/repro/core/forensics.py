"""Post-detection forensics.

After Rejecto flags a group, an OSN analyst's next questions are
evidential: how many attack edges did the group hold, who rejected it,
how concentrated was the spam, does the group interconnect? This module
computes that breakdown from a detection result and the augmented graph
— the written justification that accompanies enforcement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from .graph import AugmentedSocialGraph
from .rejecto import RejectoResult

__all__ = ["GroupForensics", "DetectionForensics", "analyze_detection"]


@dataclass
class GroupForensics:
    """Evidence summary of one detected group."""

    round_index: int
    size: int
    acceptance_rate: float
    #: friendships from the group to the rest of the graph (attack edges
    #: if the detection is correct)
    external_friendships: int
    #: friendships internal to the group (collusion / intra-region links)
    internal_friendships: int
    #: rejections cast by outsiders onto the group — the MAAR evidence
    rejections_received: int
    #: distinct outside users who rejected the group
    distinct_rejecters: int
    #: group members with no rejection evidence of their own (caught via
    #: their links to evidenced members — e.g. stealth non-senders)
    members_without_rejections: int

    @property
    def rejections_per_member(self) -> float:
        return self.rejections_received / self.size if self.size else 0.0


@dataclass
class DetectionForensics:
    """Whole-detection evidence report."""

    groups: List[GroupForensics]

    @property
    def total_external_friendships(self) -> int:
        return sum(g.external_friendships for g in self.groups)

    @property
    def total_rejections(self) -> int:
        return sum(g.rejections_received for g in self.groups)

    def render(self) -> str:
        from ..experiments.tables import format_table

        return format_table(
            [
                "round",
                "size",
                "AC",
                "ext friends",
                "int friends",
                "rejections",
                "rejecters",
                "no-evidence",
            ],
            [
                [
                    g.round_index,
                    g.size,
                    g.acceptance_rate,
                    g.external_friendships,
                    g.internal_friendships,
                    g.rejections_received,
                    g.distinct_rejecters,
                    g.members_without_rejections,
                ]
                for g in self.groups
            ],
            title="Detection forensics",
        )


def analyze_detection(
    graph: AugmentedSocialGraph, result: RejectoResult
) -> DetectionForensics:
    """Break down the evidence behind each detected group.

    Counts are computed against the *full* graph (not the per-round
    residuals), so they describe what an analyst inspecting the account
    set today would see.
    """
    reports: List[GroupForensics] = []
    for group in result.groups:
        members: Set[int] = set(group.members)
        external = internal = 0
        for u in group.members:
            for v in graph.friends[u]:
                if v in members:
                    internal += 1
                else:
                    external += 1
        internal //= 2  # counted from both endpoints
        rejecters: Set[int] = set()
        rejections = 0
        without_evidence = 0
        for u in group.members:
            incoming = [w for w in graph.rej_in[u] if w not in members]
            rejections += len(incoming)
            rejecters.update(incoming)
            if not incoming:
                without_evidence += 1
        reports.append(
            GroupForensics(
                round_index=group.round_index,
                size=len(group.members),
                acceptance_rate=group.acceptance_rate,
                external_friendships=external,
                internal_friendships=internal,
                rejections_received=rejections,
                distinct_rejecters=len(rejecters),
                members_without_rejections=without_evidence,
            )
        )
    return DetectionForensics(groups=reports)
