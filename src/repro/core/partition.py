"""Mutable bipartition with incremental MAAR cut counters.

A :class:`Partition` assigns every node to side ``0`` (legitimate region
``Ū``) or side ``1`` (suspicious region ``U``) and maintains, under
single-node switches, the two counters the MAAR objective needs:

* ``f_cross`` — cross-region friendships ``|F(Ū, U)|``;
* ``r_cross`` — rejections cast by side 0 onto side 1 ``|R⃗⟨Ū, U⟩|``.

Switching one node updates the counters in ``O(deg_F(u) + deg_R(u))``,
which is what makes the Kernighan-Lin pass (one tentative switch per
node) run in near-linear time per pass.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .graph import AugmentedSocialGraph
from .objectives import (
    LEGITIMATE,
    SUSPICIOUS,
    acceptance_rate,
    cut_counts,
    friends_to_rejections_ratio,
    linear_objective,
)

__all__ = ["Partition"]


class Partition:
    """A 2-way node assignment with incrementally maintained cut counters."""

    __slots__ = ("graph", "sides", "f_cross", "r_cross", "side_sizes")

    def __init__(self, graph: AugmentedSocialGraph, sides: Sequence[int]) -> None:
        if len(sides) != graph.num_nodes:
            raise ValueError(
                f"sides has length {len(sides)}, expected {graph.num_nodes}"
            )
        bad = [s for s in sides if s not in (LEGITIMATE, SUSPICIOUS)]
        if bad:
            raise ValueError(f"sides must be 0 or 1, found {bad[0]!r}")
        self.graph = graph
        self.sides: List[int] = list(sides)
        self.f_cross, self.r_cross = cut_counts(graph, self.sides)
        ones = sum(self.sides)
        self.side_sizes: List[int] = [graph.num_nodes - ones, ones]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def all_legitimate(cls, graph: AugmentedSocialGraph) -> "Partition":
        """Everyone starts on side 0."""
        return cls(graph, [LEGITIMATE] * graph.num_nodes)

    @classmethod
    def from_suspicious_set(
        cls, graph: AugmentedSocialGraph, suspicious: Iterable[int]
    ) -> "Partition":
        """Side 1 holds exactly the given nodes."""
        sides = [LEGITIMATE] * graph.num_nodes
        for u in suspicious:
            sides[u] = SUSPICIOUS
        return cls(graph, sides)

    @classmethod
    def from_counts(
        cls,
        graph: AugmentedSocialGraph,
        sides: Sequence[int],
        f_cross: int,
        r_cross: int,
    ) -> "Partition":
        """Adopt already-verified counters without the O(E) recount.

        Used by the CSR engine to hand its final
        :class:`repro.core.csr.PartitionState` back as a ``Partition``;
        the counters come from the engine's incrementally maintained (and
        property-tested) state.
        """
        partition = cls.__new__(cls)
        partition.graph = graph
        partition.sides = list(sides)
        partition.f_cross = f_cross
        partition.r_cross = r_cross
        ones = sum(partition.sides)
        partition.side_sizes = [graph.num_nodes - ones, ones]
        return partition

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def switch(self, u: int) -> None:
        """Move node ``u`` to the other side, updating cut counters.

        The friendship delta is symmetric: each friend on the same side
        becomes a cross edge (+1) and each friend on the other side
        becomes internal (−1). The rejection delta is *directional*: a
        rejection ⟨a, b⟩ is counted iff ``side(a) == 0`` and
        ``side(b) == 1``, so out-rejections of ``u`` toggle when ``u``
        crosses to/from side 0 and in-rejections toggle when ``u``
        crosses to/from side 1.
        """
        sides = self.sides
        s = sides[u]
        friends_delta = 0
        for v in self.graph.friends[u]:
            friends_delta += 1 if sides[v] == s else -1
        rej_delta = 0
        if s == LEGITIMATE:
            # u leaves side 0: its rejections of side-1 users stop counting;
            # rejections it receives from side-0 users start counting.
            for v in self.graph.rej_out[u]:
                if sides[v] == SUSPICIOUS:
                    rej_delta -= 1
            for w in self.graph.rej_in[u]:
                if sides[w] == LEGITIMATE:
                    rej_delta += 1
        else:
            # u joins side 0: symmetric to the branch above.
            for v in self.graph.rej_out[u]:
                if sides[v] == SUSPICIOUS:
                    rej_delta += 1
            for w in self.graph.rej_in[u]:
                if sides[w] == LEGITIMATE:
                    rej_delta -= 1
        self.f_cross += friends_delta
        self.r_cross += rej_delta
        self.side_sizes[s] -= 1
        self.side_sizes[1 - s] += 1
        sides[u] = 1 - s

    def switch_gain(self, u: int, k: float) -> float:
        """Gain (decrease in ``W = f_cross − k·r_cross``) of switching ``u``.

        Pure query — the partition is not modified. The Kernighan-Lin
        search keeps these values indexed per node; this method is the
        reference implementation used to (re)initialize and to verify
        the incrementally maintained gains.
        """
        sides = self.sides
        s = sides[u]
        friends_delta = 0
        for v in self.graph.friends[u]:
            friends_delta += 1 if sides[v] == s else -1
        rej_delta = 0
        if s == LEGITIMATE:
            for v in self.graph.rej_out[u]:
                if sides[v] == SUSPICIOUS:
                    rej_delta -= 1
            for w in self.graph.rej_in[u]:
                if sides[w] == LEGITIMATE:
                    rej_delta += 1
        else:
            for v in self.graph.rej_out[u]:
                if sides[v] == SUSPICIOUS:
                    rej_delta += 1
            for w in self.graph.rej_in[u]:
                if sides[w] == LEGITIMATE:
                    rej_delta -= 1
        return -(friends_delta - k * rej_delta)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def suspicious_nodes(self) -> List[int]:
        """Node ids currently on side 1 (the candidate spammer region)."""
        return [u for u, s in enumerate(self.sides) if s == SUSPICIOUS]

    def legitimate_nodes(self) -> List[int]:
        """Node ids currently on side 0."""
        return [u for u, s in enumerate(self.sides) if s == LEGITIMATE]

    @property
    def suspicious_size(self) -> int:
        return self.side_sizes[SUSPICIOUS]

    @property
    def legitimate_size(self) -> int:
        return self.side_sizes[LEGITIMATE]

    def acceptance_rate(self) -> float:
        """Aggregate acceptance rate ``AC⟨U, Ū⟩`` of the current cut."""
        return acceptance_rate(self.f_cross, self.r_cross)

    def ratio(self) -> float:
        """Friends-to-rejections ratio of the current cut."""
        return friends_to_rejections_ratio(self.f_cross, self.r_cross)

    def objective(self, k: float) -> float:
        """Linearized objective ``W(U)`` at the given ``k``."""
        return linear_objective(self.f_cross, self.r_cross, k)

    def verify_counts(self) -> bool:
        """Check incremental counters against a from-scratch recount."""
        return (self.f_cross, self.r_cross) == cut_counts(self.graph, self.sides)

    def copy(self) -> "Partition":
        """Independent copy sharing the underlying (immutable-by-convention) graph."""
        clone = Partition.__new__(Partition)
        clone.graph = self.graph
        clone.sides = list(self.sides)
        clone.f_cross = self.f_cross
        clone.r_cross = self.r_cross
        clone.side_sizes = list(self.side_sizes)
        return clone

    def __repr__(self) -> str:
        return (
            f"Partition(suspicious={self.suspicious_size}, "
            f"legitimate={self.legitimate_size}, f_cross={self.f_cross}, "
            f"r_cross={self.r_cross})"
        )
