"""Versioned binary snapshot store for CSR graphs (``.csrbin``).

Every solver in this repo runs on the flat int64 buffers of
:class:`~repro.core.csr.CSRGraph`, but until this module every run
*rebuilt* those buffers from a text edge list — at the 102k-node
soc-Slashdot scale graph construction is pure overhead, and at the
multi-million-node scale the ROADMAP targets it dominates wall clock.
A snapshot file stores the buffers verbatim so reopening a graph is an
``mmap`` call, not a parse:

* **zero-copy open** — ``mode="mmap"`` maps each segment read-only
  (``np.memmap`` on the numpy backend, an ``mmap``/``memoryview`` cast
  on the pure-python fallback), so opens cost milliseconds regardless
  of graph size and the OS shares the pages between every process
  mapping the same file (cluster workers, fork-COW pools);
* **backend-independent bytes** — the writer serializes the canonical
  little-endian int64/float64 buffers, so the python and numpy backends
  produce byte-identical files for the same graph;
* **shard mapping** — :meth:`CSRGraph.block_arrays` over a mapped graph
  slices a worker's shard block as *views* of the file, which is what
  lets the cluster engine ship block references instead of pickled
  array payloads (:mod:`repro.cluster.blocks`).

File layout (version 1, all integers little-endian uint64)::

    offset  size  field
    0       8     magic  b"RJCTCSRB"
    8       8     version (1)
    16      8     flags: bit0 weighted, bit1 int-weighted,
                  bit2 node-weight vector present (WeightedCSRGraph)
    24      8     num_nodes
    32      8     len(f_idx)   (= 2 * friendships)
    40      8     len(ro_idx)  (= rejections)
    48      8     len(ri_idx)  (= rejections)
    56      8     alignment (4096)
    64      8     segment count
    72      16*n  segment table: (byte offset, byte length) per segment

Segments follow in a fixed order, each starting on an ``alignment``
boundary (zero-padded): ``f_ptr``, ``f_idx``, ``ro_ptr``, ``ro_idx``,
``ri_ptr``, ``ri_idx``; then ``f_wt``, ``ro_wt``, ``ri_wt`` when the
weighted flag is set (int64 when bit1 is set, float64 otherwise); then
``node_weight`` when bit2 is set. Pointer/index segments are always
int64. Version policy: the major version bumps on any layout change
and readers reject versions they do not know — there is no in-place
migration, snapshots are cheap to regenerate from their source.
"""

from __future__ import annotations

import io
import mmap
import os
import struct
import sys
from array import array
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .csr import CSRGraph, WeightedCSRGraph, resolve_backend

__all__ = [
    "MAGIC",
    "VERSION",
    "ALIGNMENT",
    "SnapshotFormatError",
    "save_snapshot",
    "load_snapshot",
    "snapshot_info",
    "open_snapshot_cached",
    "clear_snapshot_cache",
]

MAGIC = b"RJCTCSRB"
VERSION = 1
#: Segment starts are padded to this boundary so mapped segments begin
#: on page boundaries (4096 covers every platform this runs on).
ALIGNMENT = 4096

_FLAG_WEIGHTED = 1
_FLAG_INT_WEIGHTED = 2
_FLAG_NODE_WEIGHT = 4

#: Fixed-size header prefix: magic + 8 uint64 fields.
_HEADER_STRUCT = struct.Struct("<8sQQQQQQQQ")

_PathLike = Union[str, Path]


class SnapshotFormatError(ValueError):
    """Raised on malformed, truncated, or unsupported snapshot files."""


def _segment_plan(
    flags: int, num_nodes: int, n_f: int, n_ro: int, n_ri: int
) -> List[Tuple[str, str, int]]:
    """The fixed segment order as ``(name, typecode, element_count)``
    triples, derived entirely from the header fields."""
    plan = [
        ("f_ptr", "q", num_nodes + 1),
        ("f_idx", "q", n_f),
        ("ro_ptr", "q", num_nodes + 1),
        ("ro_idx", "q", n_ro),
        ("ri_ptr", "q", num_nodes + 1),
        ("ri_idx", "q", n_ri),
    ]
    if flags & _FLAG_WEIGHTED:
        wt = "q" if flags & _FLAG_INT_WEIGHTED else "d"
        plan += [("f_wt", wt, n_f), ("ro_wt", wt, n_ro), ("ri_wt", wt, n_ri)]
    if flags & _FLAG_NODE_WEIGHT:
        plan.append(("node_weight", "q", num_nodes))
    return plan


def _canonical_bytes(buf, typecode: str) -> bytes:
    """Little-endian raw bytes of a flat buffer, whatever its storage
    (``array``, numpy array/memmap, or ``memoryview``)."""
    if sys.byteorder != "little":  # pragma: no cover - no BE CI host
        if isinstance(buf, array):
            swapped = array(typecode, buf)
            swapped.byteswap()
            return swapped.tobytes()
        swapped = array(typecode)
        swapped.frombytes(buf.tobytes())
        swapped.byteswap()
        return swapped.tobytes()
    return buf.tobytes()


def _graph_flags(csr: CSRGraph) -> int:
    flags = 0
    if csr.f_wt is not None:
        flags |= _FLAG_WEIGHTED
        if csr.int_weighted:
            flags |= _FLAG_INT_WEIGHTED
    if getattr(csr, "node_weight", None) is not None:
        flags |= _FLAG_NODE_WEIGHT
    return flags


def save_snapshot(csr: CSRGraph, path: _PathLike) -> Path:
    """Write ``csr`` as a version-1 binary snapshot.

    The write is atomic (temp file + rename), so a concurrently reading
    process — or a crash mid-pack — never observes a half-written
    snapshot; the pack-once caches in :mod:`repro.graphgen.loaders`
    rely on this. Returns the final path.
    """
    path = Path(path)
    flags = _graph_flags(csr)
    plan = _segment_plan(
        flags,
        csr.num_nodes,
        len(csr.f_idx),
        len(csr.ro_idx),
        len(csr.ri_idx),
    )
    header_size = _HEADER_STRUCT.size + 16 * len(plan)
    data_start = _aligned(header_size)

    offsets: List[Tuple[int, int]] = []
    cursor = data_start
    for _name, typecode, count in plan:
        nbytes = count * 8  # int64 and float64 are both 8 bytes
        offsets.append((cursor, nbytes))
        cursor = _aligned(cursor + nbytes)

    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        with tmp.open("wb") as handle:
            handle.write(
                _HEADER_STRUCT.pack(
                    MAGIC,
                    VERSION,
                    flags,
                    csr.num_nodes,
                    len(csr.f_idx),
                    len(csr.ro_idx),
                    len(csr.ri_idx),
                    ALIGNMENT,
                    len(plan),
                )
            )
            for offset, nbytes in offsets:
                handle.write(struct.pack("<QQ", offset, nbytes))
            for (name, typecode, _count), (offset, nbytes) in zip(plan, offsets):
                _pad_to(handle, offset)
                buf = getattr(csr, name)
                raw = _canonical_bytes(buf, typecode)
                if len(raw) != nbytes:
                    raise SnapshotFormatError(
                        f"segment {name}: buffer is {len(raw)} bytes, "
                        f"header says {nbytes}"
                    )
                handle.write(raw)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def _aligned(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _pad_to(handle: io.BufferedWriter, offset: int) -> None:
    gap = offset - handle.tell()
    if gap < 0:
        raise SnapshotFormatError("segment offsets out of order")
    if gap:
        handle.write(b"\x00" * gap)


def _read_header(path: Path, raw: bytes) -> Dict[str, object]:
    if len(raw) < _HEADER_STRUCT.size:
        raise SnapshotFormatError(f"{path}: truncated header")
    (
        magic,
        version,
        flags,
        num_nodes,
        n_f,
        n_ro,
        n_ri,
        alignment,
        segment_count,
    ) = _HEADER_STRUCT.unpack_from(raw)
    if magic != MAGIC:
        raise SnapshotFormatError(
            f"{path}: not a CSR snapshot (bad magic {magic!r})"
        )
    if version != VERSION:
        raise SnapshotFormatError(
            f"{path}: snapshot version {version} not supported "
            f"(reader understands version {VERSION})"
        )
    if n_ro != n_ri:
        raise SnapshotFormatError(
            f"{path}: rejection layers disagree ({n_ro} out vs {n_ri} in)"
        )
    plan = _segment_plan(flags, num_nodes, n_f, n_ro, n_ri)
    if segment_count != len(plan):
        raise SnapshotFormatError(
            f"{path}: header says {segment_count} segments, flags imply "
            f"{len(plan)}"
        )
    table_end = _HEADER_STRUCT.size + 16 * len(plan)
    if len(raw) < table_end:
        raise SnapshotFormatError(f"{path}: truncated segment table")
    segments = []
    for index, (name, typecode, count) in enumerate(plan):
        offset, nbytes = struct.unpack_from(
            "<QQ", raw, _HEADER_STRUCT.size + 16 * index
        )
        if nbytes != count * 8:
            raise SnapshotFormatError(
                f"{path}: segment {name} is {nbytes} bytes, counts imply "
                f"{count * 8}"
            )
        segments.append(
            {"name": name, "typecode": typecode, "offset": offset, "bytes": nbytes}
        )
    return {
        "version": version,
        "flags": flags,
        "num_nodes": num_nodes,
        "num_f_idx": n_f,
        "num_ro_idx": n_ro,
        "num_ri_idx": n_ri,
        "alignment": alignment,
        "segments": segments,
    }


def snapshot_info(path: _PathLike) -> Dict[str, object]:
    """Parse a snapshot header without mapping any segment.

    Returns a dict with the header fields, derived graph counts
    (``friendships``, ``rejections``), the boolean flags, the segment
    table, and the file size — the payload of ``rejecto graph info``.
    """
    path = Path(path)
    with path.open("rb") as handle:
        raw = handle.read(ALIGNMENT)
    header = _read_header(path, raw)
    flags = int(header["flags"])  # type: ignore[arg-type]
    header["friendships"] = int(header["num_f_idx"]) // 2
    header["rejections"] = int(header["num_ro_idx"])
    header["weighted"] = bool(flags & _FLAG_WEIGHTED)
    header["int_weighted"] = bool(flags & _FLAG_INT_WEIGHTED)
    header["has_node_weight"] = bool(flags & _FLAG_NODE_WEIGHT)
    header["file_bytes"] = path.stat().st_size
    return header


def _np_dtype(typecode: str):
    import numpy as np

    return np.dtype("<i8") if typecode == "q" else np.dtype("<f8")


def _map_segments_numpy(path: Path, segments) -> Dict[str, object]:
    """``np.memmap`` one read-only view per segment (empty segments get
    ordinary empty arrays — mmap of length zero is invalid)."""
    import numpy as np

    out: Dict[str, object] = {}
    for seg in segments:
        dtype = _np_dtype(seg["typecode"])
        count = seg["bytes"] // 8
        if count == 0:
            out[seg["name"]] = np.empty(0, dtype=dtype)
        else:
            out[seg["name"]] = np.memmap(
                path, dtype=dtype, mode="r", offset=seg["offset"], shape=(count,)
            )
    return out


def _map_segments_python(path: Path, segments) -> Dict[str, object]:
    """Pure-python zero-copy mapping: one shared ``mmap`` of the file,
    one ``memoryview`` cast per segment. The views keep the mapping
    alive; the file descriptor can close immediately (mmap holds its
    own reference to the underlying pages)."""
    with path.open("rb") as handle:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    whole = memoryview(mapped)
    out: Dict[str, object] = {}
    for seg in segments:
        sliced = whole[seg["offset"] : seg["offset"] + seg["bytes"]]
        out[seg["name"]] = sliced.cast(seg["typecode"])
    return out


def _read_segments_copy(path: Path, segments) -> Dict[str, object]:
    """``mode="copy"``: fresh ``array`` buffers, identical on every
    backend, picklable, and immune to the file changing underneath."""
    out: Dict[str, object] = {}
    with path.open("rb") as handle:
        for seg in segments:
            handle.seek(seg["offset"])
            raw = handle.read(seg["bytes"])
            if len(raw) != seg["bytes"]:
                raise SnapshotFormatError(
                    f"{path}: segment {seg['name']} truncated "
                    f"({len(raw)} of {seg['bytes']} bytes)"
                )
            buf = array(seg["typecode"])
            buf.frombytes(raw)
            if sys.byteorder != "little":  # pragma: no cover - no BE CI
                buf.byteswap()
            out[seg["name"]] = buf
    return out


def load_snapshot(
    path: _PathLike, mode: str = "mmap", backend: str = "auto"
) -> CSRGraph:
    """Open a snapshot written by :func:`save_snapshot`.

    ``mode="mmap"`` (default) maps segments zero-copy and read-only:
    ``np.memmap`` when the resolved backend is numpy, a shared
    ``mmap``/``memoryview`` cast on the pure-python fallback — full
    parity, no numpy required. ``mode="copy"`` reads segments into
    fresh ``array`` buffers (use it when the file may be replaced
    underneath a long-lived graph). Weighted snapshots with a
    node-weight vector come back as :class:`WeightedCSRGraph`.

    The returned graph records its source in ``snapshot_path``, which
    is what lets the cluster engine ship shard-block *references*
    instead of array payloads.
    """
    path = Path(path)
    if mode not in ("mmap", "copy"):
        raise ValueError(f"mode must be 'mmap' or 'copy', got {mode!r}")
    resolved = resolve_backend(backend)
    with path.open("rb") as handle:
        raw = handle.read(ALIGNMENT)
    header = _read_header(path, raw)
    segments = header["segments"]
    last = segments[-1] if segments else None
    if last is not None:
        need = int(last["offset"]) + int(last["bytes"])
        if path.stat().st_size < need:
            raise SnapshotFormatError(
                f"{path}: file is {path.stat().st_size} bytes, segment "
                f"table needs {need}"
            )
    if mode == "copy":
        bufs = _read_segments_copy(path, segments)
    elif resolved == "numpy":
        bufs = _map_segments_numpy(path, segments)
    else:
        if sys.byteorder != "little":  # pragma: no cover - no BE CI host
            raise SnapshotFormatError(
                "mmap mode requires a little-endian host; use mode='copy'"
            )
        bufs = _map_segments_python(path, segments)
    flags = int(header["flags"])  # type: ignore[arg-type]
    kwargs = dict(
        f_wt=bufs.get("f_wt"),
        ro_wt=bufs.get("ro_wt"),
        ri_wt=bufs.get("ri_wt"),
        backend=resolved,
    )
    if flags & _FLAG_NODE_WEIGHT:
        graph: CSRGraph = WeightedCSRGraph(
            int(header["num_nodes"]),  # type: ignore[arg-type]
            bufs["f_ptr"],
            bufs["f_idx"],
            bufs["ro_ptr"],
            bufs["ro_idx"],
            bufs["ri_ptr"],
            bufs["ri_idx"],
            node_weight=bufs["node_weight"],
            **kwargs,
        )
    else:
        graph = CSRGraph(
            int(header["num_nodes"]),  # type: ignore[arg-type]
            bufs["f_ptr"],
            bufs["f_idx"],
            bufs["ro_ptr"],
            bufs["ro_idx"],
            bufs["ri_ptr"],
            bufs["ri_idx"],
            **kwargs,
        )
    graph.snapshot_path = str(path.resolve())
    return graph


#: Process-wide cache of opened snapshots, keyed by (resolved path,
#: mode, resolved backend). Cluster workers materializing shard blocks
#: out of the same file share one mapping — the in-process analogue of
#: N machines mapping the same file into shared page cache.
_OPEN_CACHE: Dict[Tuple[str, str, str], CSRGraph] = {}


def open_snapshot_cached(
    path: _PathLike, mode: str = "mmap", backend: str = "auto"
) -> CSRGraph:
    """:func:`load_snapshot` with a process-wide cache per file."""
    key = (str(Path(path).resolve()), mode, resolve_backend(backend))
    graph = _OPEN_CACHE.get(key)
    if graph is None:
        graph = load_snapshot(path, mode=mode, backend=backend)
        _OPEN_CACHE[key] = graph
    return graph


def clear_snapshot_cache() -> None:
    """Drop every cached open (tests; or after replacing files on disk)."""
    _OPEN_CACHE.clear()
