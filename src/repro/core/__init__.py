"""Core of the reproduction: the Rejecto friend-spam detection system.

Public surface:

* :class:`AugmentedSocialGraph` — the social graph augmented with
  directed social rejections (Section III-A); a mutable *builder* that
  finalizes into the flat-array :class:`CSRGraph` via ``.csr()``.
* :class:`CSRGraph` / :class:`CSRView` / :class:`PartitionState` — the
  immutable CSR snapshot, zero-copy residual views, and the unified
  engine state the hot paths run on.
* :class:`Partition` and the objective helpers — MAAR cut accounting.
* :func:`extended_kl` — the paper's extension of Kernighan-Lin to
  rejection-augmented graphs (Algorithm 1); :func:`extended_kl_state`
  is the CSR-state engine entry point.
* :func:`solve_maar` — geometric ``k`` sweep approximating the Minimum
  Aggregate Acceptance Rate cut (Theorem 1).
* :class:`Rejecto` — the iterative detector (Section IV-E) with seed
  support (Section IV-F).
"""

from .csr import (
    CSRGraph,
    CSRView,
    PartitionState,
    WeightedCSRGraph,
    resolve_backend,
)
from .gains import BucketGainIndex, GainIndex, HeapGainIndex, make_gain_index
from .graph import AugmentedSocialGraph, GraphError
from .kl import KLConfig, KLStats, extended_kl, extended_kl_state
from .maar import (
    KCandidate,
    MAARConfig,
    MAARResult,
    check_seeds,
    geometric_k_sequence,
    initial_partition,
    solve_maar,
    sweep_k_states,
)
from .parallel import (
    available_backends,
    default_jobs,
    fork_available,
    parallel_map,
    resolve_executor,
    warn_jobs_ignored,
)
from .objectives import (
    LEGITIMATE,
    SUSPICIOUS,
    acceptance_rate,
    cross_friendships,
    cross_rejections_into_suspicious,
    cut_counts,
    friends_to_rejections_ratio,
    linear_objective,
)
from .multilevel import (
    MultilevelConfig,
    MultilevelResult,
    solve_maar_multilevel,
)
from .partition import Partition
from .rejecto import DetectedGroup, Rejecto, RejectoConfig, RejectoResult
from .forensics import DetectionForensics, GroupForensics, analyze_detection
from .responses import Action, ResponsePlan, ResponsePolicy
from .seeds import community_seeds, degree_stratified_seeds, random_seeds
from .sharding import ShardedDetectionResult, detect_over_shards
from .validation import GraphValidationError, assert_valid_graph, validate_graph

__all__ = [
    "AugmentedSocialGraph",
    "GraphError",
    "CSRGraph",
    "CSRView",
    "PartitionState",
    "WeightedCSRGraph",
    "resolve_backend",
    "Partition",
    "LEGITIMATE",
    "SUSPICIOUS",
    "acceptance_rate",
    "cross_friendships",
    "cross_rejections_into_suspicious",
    "cut_counts",
    "friends_to_rejections_ratio",
    "linear_objective",
    "GainIndex",
    "BucketGainIndex",
    "HeapGainIndex",
    "make_gain_index",
    "KLConfig",
    "KLStats",
    "extended_kl",
    "extended_kl_state",
    "MAARConfig",
    "MAARResult",
    "KCandidate",
    "check_seeds",
    "geometric_k_sequence",
    "initial_partition",
    "solve_maar",
    "sweep_k_states",
    "available_backends",
    "default_jobs",
    "fork_available",
    "parallel_map",
    "resolve_executor",
    "warn_jobs_ignored",
    "Rejecto",
    "RejectoConfig",
    "RejectoResult",
    "DetectedGroup",
    "ShardedDetectionResult",
    "detect_over_shards",
    "Action",
    "ResponsePolicy",
    "ResponsePlan",
    "validate_graph",
    "assert_valid_graph",
    "GraphValidationError",
    "DetectionForensics",
    "GroupForensics",
    "analyze_detection",
    "random_seeds",
    "degree_stratified_seeds",
    "community_seeds",
    "MultilevelConfig",
    "MultilevelResult",
    "solve_maar_multilevel",
]
