"""Multilevel MAAR solving (coarsen → partition → uncoarsen + refine).

An extension beyond the paper, borrowed from the graph-partitioning
literature the paper's heuristic comes from: Kernighan-Lin/FM is the
*refinement* step of multilevel partitioners (METIS-style). The solver:

1. **Coarsens** the rejection-augmented graph through successive levels:
   a heavy-edge matching on the friendship layer merges matched pairs
   into super-nodes, accumulating friendship and rejection weights
   (parallel edges sum; intra-pair edges vanish — exactly the
   contraction semantics that keep every coarse cut's weight equal to
   the projected fine cut's weight);
2. runs the geometric ``k`` sweep on the **coarsest** graph, where each
   KL pass touches only a few hundred super-nodes;
3. **uncoarsens** level by level, projecting the sides onto the finer
   graph and re-refining with weighted KL at the chosen ``k``.

Because every projection preserves the cut weights exactly and each
refinement only improves the objective, the final fine-level cut is
never worse than the coarse solution it started from. The win is speed
on large graphs — the expensive full-graph sweep happens only at the
coarsest level — at a small quality cost versus the flat solver
(measured in ``bench_ablation_multilevel.py``).

Engines
-------
``engine="csr"`` (default) is CSR-native end to end, which makes
``solve_maar_multilevel`` the recommended entry point for large graphs:

* every level is a flat-array graph — the unit-weight level 0 plus
  int64-weighted :class:`~repro.core.csr.WeightedCSRGraph` coarse
  levels (contraction only ever *sums* unit edges, so coarse weights
  are exact integers);
* matching and contraction run as batch kernels
  (:func:`repro.core.kernels.heavy_edge_matching` /
  :func:`~repro.core.kernels.contract_arrays` — numpy scatter-adds with
  bit-identical python fallbacks);
* refinement uses the fused integer bucket engine of
  :mod:`repro.core.kl` on every level (weighted twin on coarse levels);
* the coarse-level ``k`` sweep fans out through
  :func:`repro.core.maar.sweep_k_states`, honouring
  ``MultilevelConfig(jobs, executor)`` exactly like the flat MAAR sweep.

``engine="legacy"`` keeps the original dict-adjacency coarsening with
scalar heap-based weighted refinement, as the baseline the benchmark
measures against; it has no parallel sweep (``jobs > 1`` warns).
"""

from __future__ import annotations

import logging
import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .csr import CSRGraph, PartitionState, WeightedCSRGraph
from .graph import AugmentedSocialGraph
from .kernels import (
    gain_deltas,
    heavy_edge_matching,
    matching_to_mapping,
    weighted_gain_deltas,
)
from .kl import KLConfig, KLStats, extended_kl, extended_kl_state, refine_subset
from .maar import check_seeds, geometric_k_sequence, sweep_k_states
from .parallel import chunk_evenly, parallel_map, warn_jobs_ignored
from .partition import Partition
from .objectives import LEGITIMATE, SUSPICIOUS, acceptance_rate
from .weighted import (
    WeightedAugmentedGraph,
    WeightedPartition,
    weighted_extended_kl,
)

logger = logging.getLogger(__name__)

__all__ = [
    "MultilevelConfig",
    "MultilevelResult",
    "random_heavy_edge_matching",
    "coarsen",
    "solve_maar_multilevel",
]


@dataclass(frozen=True)
class MultilevelConfig:
    """Coarsening and sweep parameters.

    Coarsening stops when the graph has at most ``coarsest_nodes`` nodes
    or a level shrinks by less than ``min_shrink`` (matching has stalled,
    e.g. on a star). The ``k`` grid mirrors :class:`MAARConfig`.

    ``engine`` selects the CSR-native pipeline (``"csr"``, default) or
    the original dict-adjacency path (``"legacy"``); ``backend`` is the
    CSR array backend (``"python"``/``"numpy"``/``"auto"``).
    ``matching_rounds`` bounds the mutual heavy-edge matching rounds per
    level. ``jobs``/``executor`` fan the coarse-level ``k`` sweep out
    through :mod:`repro.core.parallel` (csr engine only — the legacy
    engine warns and runs serially).

    Refinement (csr engine):

    ``frontier``
        ``"boundary"`` (default) refines each uncoarsened level only
        around the movable frontier: the nodes whose switch is
        profitable right now plus their one-hop neighbours (see
        :func:`_movable_frontier`). The frontier splits into connected
        *regions* (components under all three edge layers, so no edge
        crosses two regions), each region refines independently
        through :func:`~repro.core.kl.refine_subset`, and rounds
        repeat until a round moves nothing. ``"full"`` restores the
        classic whole-graph refinement pass at every level. The value
        is also threaded into the refinement
        :class:`~repro.core.kl.KLConfig`, so any full-state engine run
        the boundary path falls back to scopes its passes with
        :func:`repro.core.kernels.boundary_nodes` too.
    ``refine_jobs``
        Worker count for the region fan-out (``frontier="boundary"``
        only). Regions are mutually non-adjacent, so their moves and
        counter deltas compose exactly whatever the execution order:
        ``refine_jobs=N`` is bit-identical to ``refine_jobs=1``.
    ``refine_tolerance``
        Early-exit knob: when positive, a level's refinement is skipped
        while the *previous* level's refinement improved the objective
        by at most ``refine_tolerance · max(1, |objective|)`` (the
        projected cut is already that converged; projections preserve
        cut weights exactly, so nothing is lost in between). The finest
        level always refines. ``0.0`` (default) disables early exit.
    ``refine_stall``
        Stall limit for the region passes
        (:attr:`~repro.core.kl.KLConfig.stall_limit` scoped to
        ``frontier="boundary"`` region refinement): a region pass stops
        tentatively switching after this many consecutive non-improving
        pops instead of exhausting the region. Uncoarsened cuts are
        near-converged, so the best prefix sits close to the front of
        the gain order and the exhaustive FM tail is almost always
        rollback work. ``None`` restores full passes. Identical on
        every ``refine_jobs``/backend, so determinism is unaffected;
        an explicit ``stall_limit`` on the engine config is respected.
    ``incremental``
        Threaded into every refinement :class:`~repro.core.kl.KLConfig`
        (and the coarse sweep), so ``MultilevelConfig(incremental=
        False)`` ablations reach the refinement leg.
    """

    coarsest_nodes: int = 400
    max_levels: int = 24
    min_shrink: float = 0.05
    k_min: float = 0.125
    k_factor: float = 2.0
    k_steps: int = 10
    max_passes: int = 30
    refine_passes: int = 8
    min_suspicious: int = 1
    max_suspicious_fraction: float = 0.6
    seed: int = 0
    engine: str = "csr"
    backend: str = "auto"
    matching_rounds: int = 8
    jobs: int = 1
    executor: str = "auto"
    frontier: str = "boundary"
    incremental: bool = True
    refine_tolerance: float = 0.0
    refine_jobs: int = 1
    refine_stall: Optional[int] = 256


@dataclass
class MultilevelResult:
    """Final fine-level cut plus per-level diagnostics.

    ``timings`` (csr engine) breaks the wall clock down into
    ``"coarsen"`` (seconds per built level), ``"coarse_sweep"`` (the
    coarsest-level ``k`` sweep), ``"refine"`` (seconds per uncoarsening
    level, finest last — the last entry includes the Dinkelbach polish)
    and ``"total_seconds"``. ``"refine_detail"`` carries one dict per
    uncoarsening level (same order as ``"refine"``) with the level
    index, the refinement ``scope`` (``"boundary"``/``"dense"``/
    ``"full"``/``"skipped"``), the first-round frontier size
    (``boundary``), the peak region count, and the round/move/tested
    tallies; ``"early_exits"`` counts the levels skipped by
    ``refine_tolerance``.
    """

    suspicious: List[int]
    acceptance_rate: float
    k: Optional[float]
    level_sizes: List[int] = field(default_factory=list)
    timings: Dict[str, object] = field(default_factory=dict)

    @property
    def found(self) -> bool:
        return bool(self.suspicious)

    @property
    def levels(self) -> int:
        return len(self.level_sizes)


def random_heavy_edge_matching(
    graph: WeightedAugmentedGraph,
    rng: random.Random,
    locked: Optional[Sequence[bool]] = None,
) -> List[int]:
    """A maximal matching preferring heavy friendship edges (legacy
    engine: greedy over a shuffled node order).

    Returns ``match`` with ``match[u] == v`` for matched pairs and
    ``match[u] == u`` for singletons. Locked nodes (seeds) are never
    matched, so their identities — and pinned sides — survive
    coarsening unmerged.
    """
    n = graph.num_nodes
    locked = locked or [False] * n
    match = list(range(n))
    order = list(range(n))
    rng.shuffle(order)
    taken = [False] * n
    for u in order:
        if taken[u] or locked[u]:
            continue
        best_v = -1
        best_weight = 0.0
        for v, weight in graph.friends[u].items():
            if not taken[v] and not locked[v] and v != u and weight > best_weight:
                best_weight = weight
                best_v = v
        if best_v >= 0:
            match[u] = best_v
            match[best_v] = u
            taken[u] = taken[best_v] = True
    return match


def coarsen(
    graph: WeightedAugmentedGraph, match: Sequence[int]
) -> Tuple[WeightedAugmentedGraph, List[int]]:
    """Contract matched pairs into super-nodes (legacy dict walk).

    Returns ``(coarse_graph, mapping)`` where ``mapping[u]`` is the
    coarse id of fine node ``u``. Edge weights between distinct coarse
    nodes accumulate; edges internal to a merged pair disappear (their
    endpoints are now the same node). The csr engine does the same
    contraction through :func:`repro.core.kernels.contract_arrays`.
    """
    n = graph.num_nodes
    mapping = [-1] * n
    next_id = 0
    for u in range(n):
        if mapping[u] >= 0:
            continue
        v = match[u]
        mapping[u] = next_id
        if v != u:
            mapping[v] = next_id
        next_id += 1
    coarse = WeightedAugmentedGraph(next_id)
    for u in range(n):
        coarse.node_weight[mapping[u]] = 0
    for u in range(n):
        coarse.node_weight[mapping[u]] += graph.node_weight[u]
    for u in range(n):
        cu = mapping[u]
        for v, weight in graph.friends[u].items():
            if u < v and mapping[v] != cu:
                coarse.add_friendship(cu, mapping[v], weight)
        for v, weight in graph.rej_out[u].items():
            if mapping[v] != cu:
                coarse.add_rejection(cu, mapping[v], weight)
    return coarse, mapping


def _is_valid(
    partition: WeightedPartition, total_nodes: int, config: MultilevelConfig
) -> bool:
    size = partition.suspicious_size()
    return (
        config.min_suspicious <= size <= config.max_suspicious_fraction * total_nodes
        and size < total_nodes
        and partition.r_cross > 0
    )


def _sides_valid(
    sides: Sequence[int], total_nodes: int, config: MultilevelConfig
) -> bool:
    """The final gate's size check, applied to a polish candidate.

    Dinkelbach polish re-refines at the cut's own ratio, and a lower
    ratio can "improve" the acceptance rate by inflating the suspicious
    side far past ``max_suspicious_fraction`` — on dilute scenarios all
    the way to a near-half-graph blob. The final validity gate would
    then discard the whole result, so a candidate that fails the size
    check must never replace a valid cut.
    """
    size = sum(1 for s in sides if s == SUSPICIOUS)
    return (
        config.min_suspicious <= size <= config.max_suspicious_fraction * total_nodes
        and size < total_nodes
    )


def _project_coarse_labels(
    mapping: Sequence[int],
    num_coarse: int,
    fine_locked: Sequence[bool],
    fine_sides: Sequence[int],
) -> Tuple[List[bool], List[int]]:
    """Push locks and sides down one level: a super-node is locked iff a
    member is (locked fine nodes coarsen as singletons, so a locked
    super-node has exactly one member and inherits its pinned side), and
    an unlocked super-node is suspicious iff any member is."""
    coarse_locked = [False] * num_coarse
    coarse_sides = [LEGITIMATE] * num_coarse
    for u, cu in enumerate(mapping):
        if fine_locked[u]:
            coarse_locked[cu] = True
            coarse_sides[cu] = fine_sides[u]
    for u, cu in enumerate(mapping):
        if not coarse_locked[cu] and fine_sides[u] == SUSPICIOUS:
            coarse_sides[cu] = SUSPICIOUS
    return coarse_locked, coarse_sides


def solve_maar_multilevel(
    graph,
    config: Optional[MultilevelConfig] = None,
    legit_seeds: Sequence[int] = (),
    spammer_seeds: Sequence[int] = (),
) -> MultilevelResult:
    """Approximate the MAAR cut via the multilevel scheme.

    Interface mirrors :func:`repro.core.maar.solve_maar`: returns the
    suspicious node set of the best valid cut (empty when none exists).
    ``graph`` may be an :class:`AugmentedSocialGraph` builder or (csr
    engine only) an already-finalized unweighted
    :class:`~repro.core.csr.CSRGraph`.
    """
    config = config or MultilevelConfig()
    if config.engine == "legacy":
        if config.jobs > 1:
            warn_jobs_ignored(
                logger,
                "MultilevelConfig",
                config.jobs,
                "the legacy engine has no parallel coarse-level k-sweep; "
                "use engine='csr' for fan-out",
            )
        if not isinstance(graph, AugmentedSocialGraph):
            raise ValueError(
                "engine='legacy' needs the mutable AugmentedSocialGraph "
                f"builder, got {type(graph).__name__}"
            )
        return _solve_multilevel_legacy(graph, config, legit_seeds, spammer_seeds)
    if config.engine != "csr":
        raise ValueError(f"unknown engine {config.engine!r}")
    return _solve_multilevel_csr(graph, config, legit_seeds, spammer_seeds)


# ----------------------------------------------------------------------
# CSR engine
# ----------------------------------------------------------------------
#: Frontier fraction beyond which the scoped region machinery would just
#: re-derive the whole-graph pass with extra bookkeeping — fall back to
#: one classic full refinement run instead. Only a saturated frontier
#: (essentially every node movable, where a scoped pass *is* the full
#: pass minus the engine's batch kernels) should trip this: even a
#: 9/10-covering frontier wins, because a scoped round costs one
#: stall-limited pass over the current frontier — which shrinks round
#: by round as the cut converges — while a full engine run keeps
#: sweeping every node for every one of its internal passes.
_DENSE_FRONTIER = 0.98


def _project_sides(sides, mapping, num_fine: int, backend: str) -> List[int]:
    """Project coarse ``sides`` one level down: ``sides[mapping[u]]``.

    On the numpy backend this is a single ``np.take`` gather instead of a
    Python loop over every fine node; the python fallback is the
    list comprehension it replaces (identical output).
    """
    if backend == "numpy":
        import numpy as np

        return np.take(
            np.asarray(sides, dtype=np.int8), np.asarray(mapping)
        ).tolist()
    return [sides[mapping[u]] for u in range(num_fine)]


def _cut_regions(graph, bnodes: Sequence[int]) -> List[List[int]]:
    """Split a boundary frontier into connected *regions*.

    Regions are the connected components of the frontier-induced
    subgraph under all three edge layers (friendship + both rejection
    directions). By construction no edge of any layer joins two distinct
    regions — every neighbour of a region member is either in the same
    region or outside the frontier and therefore frozen — so refining
    the regions independently and composing their ``(moves, Δf, Δr)``
    is exact whatever the execution order or worker count.

    ``bnodes`` must be sorted ascending (the frontier kernels return it
    so); components come out in order of their smallest member, each
    sorted ascending, keeping the downstream fan-out deterministic.
    """
    member = bytearray(graph.num_nodes)
    for u in bnodes:
        member[u] = 1
    layers = (
        (graph.f_ptr, graph.f_idx),
        (graph.ro_ptr, graph.ro_idx),
        (graph.ri_ptr, graph.ri_idx),
    )
    seen = bytearray(graph.num_nodes)
    regions: List[List[int]] = []
    for seed in bnodes:
        if seen[seed]:
            continue
        seen[seed] = 1
        stack = [seed]
        comp: List[int] = []
        while stack:
            u = stack.pop()
            comp.append(u)
            for ptr, idx in layers:
                for j in range(ptr[u], ptr[u + 1]):
                    v = idx[j]
                    if member[v] and not seen[v]:
                        seen[v] = 1
                        stack.append(v)
        comp.sort()
        regions.append(comp)
    return regions


def _movable_frontier(graph, view, sides: List[int], k: float) -> List[int]:
    """The *movable* frontier: positive-gain seeds plus one-hop look-ahead.

    On friend-spam graphs the classic cut-incidence frontier (what
    :func:`repro.core.kernels.boundary_nodes` seeds the engine-level
    scoped passes with) blankets the graph — a converged cut crosses an
    accepted attack edge at most legitimate users — so region
    refinement scopes tighter: only nodes whose switch is profitable
    right now (``k·rd > fd``, exact in both backends) seed the
    frontier, plus their *friendship* neighbours — the partners KL's
    compound moves pair a seed with. Rejection-layer neighbours stay
    out: a fake's rejectors are most of the legitimate population (that
    blanket again), and any of them a seed's switch actually turns
    profitable is picked up when the next round recomputes the
    frontier, so multi-hop and cross-layer cascades are chased round by
    round instead of being carried dead weight from round one.
    """
    if graph.weighted:
        fd, rd = weighted_gain_deltas(view, sides)
    else:
        fd, rd = gain_deltas(view, sides)
    fp, fi = graph.f_ptr, graph.f_idx
    marked = set()
    for u in range(graph.num_nodes):
        if k * rd[u] > fd[u]:
            marked.add(u)
            for i in range(fp[u], fp[u + 1]):
                marked.add(fi[i])
    return sorted(marked)


def _refine_chunk_worker(chunk, shared):
    """Refine one chunk of regions against a private copy of the sides.

    The worker never writes the shared side vector (serial and thread
    backends hand it over by reference): each chunk refines a local
    copy and reports per-region ``(moved, Δf, Δr, tested, applied)``
    for the parent to merge in input order. Regions are pairwise
    non-adjacent, so applying earlier regions' moves to the local copy
    cannot influence later regions in the same chunk.
    """
    view, sides, locked, k, kl_config = shared
    local = list(sides)
    return [
        refine_subset(view, local, locked, region, k, kl_config)
        for region in chunk
    ]


def _skip_entry(level: int) -> Dict[str, object]:
    """The ``refine_detail`` record for a level skipped by early exit."""
    return {
        "level": level,
        "scope": "skipped",
        "boundary": 0,
        "regions": 0,
        "rounds": 0,
        "moves": 0,
        "tested": 0,
        "skipped": True,
    }


def _early_exit(
    config: MultilevelConfig, prev_improve, objective: float
) -> bool:
    """Whether to skip this level's refinement.

    True while the most recent level that actually refined improved the
    objective by at most ``refine_tolerance · max(1, |objective|)`` —
    the projected cut is already that converged (projection preserves
    the cut weights exactly), so intermediate levels are skipped until
    the always-refined finest level. ``prev_improve is None`` (nothing
    refined yet) and ``refine_tolerance <= 0`` never skip.
    """
    if config.refine_tolerance <= 0 or prev_improve is None:
        return False
    return prev_improve <= config.refine_tolerance * max(1.0, abs(objective))


def _refine_level_boundary(
    graph,
    sides: List[int],
    locked: Sequence[bool],
    k: float,
    config: MultilevelConfig,
    kl_config: KLConfig,
    f_cross,
    r_cross,
):
    """Boundary-only refinement of one level, in place.

    Rounds of: movable frontier → connected regions → region fan-out
    through :func:`repro.core.parallel.parallel_map` → ordered merge of
    the per-region moves and exact counter deltas. A round that moves
    nothing (or an empty frontier) ends the level; a frontier covering
    more than ``_DENSE_FRONTIER`` of the graph falls back to one
    classic full-state refinement run. Mutates ``sides`` and returns
    ``(f_cross, r_cross, detail)`` with the updated exact counters.
    """
    view = graph.view()
    # One stall-limited pass per region call: a pass rebuilds gains for
    # the whole region, so iteration belongs to the rounds loop below,
    # which re-derives a *shrinking* frontier instead of re-sweeping the
    # round-one region again and again.
    region_config = replace(kl_config, max_passes=1)
    if region_config.stall_limit is None and config.refine_stall is not None:
        region_config = replace(region_config, stall_limit=config.refine_stall)
    detail: Dict[str, object] = {
        "scope": "boundary",
        "boundary": 0,
        "regions": 0,
        "rounds": 0,
        "moves": 0,
        "tested": 0,
        "skipped": False,
    }
    for round_idx in range(max(1, config.refine_passes)):
        bnodes = [
            u for u in _movable_frontier(graph, view, sides, k) if not locked[u]
        ]
        if round_idx == 0:
            detail["boundary"] = len(bnodes)
        if not bnodes:
            break
        if len(bnodes) > _DENSE_FRONTIER * graph.num_nodes:
            state = extended_kl_state(
                PartitionState.from_counts(view, sides, locked, f_cross, r_cross),
                k,
                kl_config,
            )
            detail["scope"] = "dense"
            detail["rounds"] = round_idx + 1
            detail["moves"] = detail["moves"] + sum(
                1
                for u in range(graph.num_nodes)
                if state.sides[u] != sides[u]
            )
            sides[:] = state.sides
            return state.f_cross, state.r_cross, detail
        regions = _cut_regions(graph, bnodes)
        detail["regions"] = max(detail["regions"], len(regions))
        chunks = chunk_evenly(regions, max(1, config.refine_jobs))
        results = parallel_map(
            _refine_chunk_worker,
            chunks,
            shared=(view, sides, locked, k, region_config),
            jobs=config.refine_jobs,
            executor=config.executor,
        )
        detail["rounds"] = round_idx + 1
        round_moves = 0
        for chunk_result in results:
            for moved, delta_f, delta_r, tested, _applied in chunk_result:
                for u in moved:
                    sides[u] = 1 - sides[u]
                f_cross += delta_f
                r_cross += delta_r
                detail["tested"] = detail["tested"] + tested
                round_moves += len(moved)
        detail["moves"] = detail["moves"] + round_moves
        if round_moves == 0:
            break
    return f_cross, r_cross, detail


def _solve_multilevel_csr(
    graph,
    config: MultilevelConfig,
    legit_seeds: Sequence[int],
    spammer_seeds: Sequence[int],
) -> MultilevelResult:
    t_start = time.perf_counter()
    if config.frontier not in ("full", "boundary"):
        raise ValueError(
            f"unknown frontier {config.frontier!r}; expected 'full' or "
            "'boundary'"
        )
    rng = random.Random(config.seed)
    if isinstance(graph, AugmentedSocialGraph):
        csr0 = graph.csr(config.backend)
    elif isinstance(graph, CSRGraph):
        if graph.weighted:
            raise ValueError(
                "solve_maar_multilevel expects the unweighted fine graph "
                "(coarse weights are derived internally)"
            )
        csr0 = graph
    else:
        raise ValueError(
            f"unsupported graph type {type(graph).__name__}; expected "
            "AugmentedSocialGraph or CSRGraph"
        )
    total_nodes = csr0.num_nodes
    if total_nodes == 0:
        return MultilevelResult([], 1.0, None)
    check_seeds(total_nodes, legit_seeds, spammer_seeds)

    locked = [False] * total_nodes
    ri_ptr = csr0.ri_ptr
    init_sides = [
        SUSPICIOUS if ri_ptr[u + 1] > ri_ptr[u] else LEGITIMATE
        for u in range(total_nodes)
    ]
    for u in legit_seeds:
        locked[u] = True
        init_sides[u] = LEGITIMATE
    for u in spammer_seeds:
        locked[u] = True
        init_sides[u] = SUSPICIOUS

    # --- Coarsening phase -------------------------------------------------
    levels: List[CSRGraph] = [csr0]
    mappings: List[List[int]] = []
    locked_levels: List[List[bool]] = [locked]
    sides_levels: List[List[int]] = [init_sides]
    coarsen_times: List[float] = []
    for _ in range(config.max_levels):
        current = levels[-1]
        if current.num_nodes <= config.coarsest_nodes:
            break
        t_level = time.perf_counter()
        priority = list(range(current.num_nodes))
        rng.shuffle(priority)
        match = heavy_edge_matching(
            current,
            priority,
            locked=locked_levels[-1],
            rounds=config.matching_rounds,
        )
        mapping, num_coarse = matching_to_mapping(match, current.backend)
        if num_coarse > (1 - config.min_shrink) * current.num_nodes:
            break
        coarse = current.contract(mapping, num_coarse)
        coarse_locked, coarse_sides = _project_coarse_labels(
            mapping, num_coarse, locked_levels[-1], sides_levels[-1]
        )
        levels.append(coarse)
        mappings.append(mapping)
        locked_levels.append(coarse_locked)
        sides_levels.append(coarse_sides)
        coarsen_times.append(time.perf_counter() - t_level)
    level_sizes = [g.num_nodes for g in levels]
    logger.debug("multilevel: %d levels, sizes %s", len(levels), level_sizes)

    def timings(
        sweep: float = 0.0,
        refine: Optional[List[float]] = None,
        refine_detail: Optional[List[Dict[str, object]]] = None,
        early_exits: int = 0,
    ):
        return {
            "coarsen": coarsen_times,
            "coarse_sweep": sweep,
            "refine": refine or [],
            "refine_detail": refine_detail or [],
            "early_exits": early_exits,
            "total_seconds": time.perf_counter() - t_start,
        }

    # --- Initial partitioning: k sweep on the coarsest level ---------------
    coarsest = levels[-1]
    t_sweep = time.perf_counter()
    init = PartitionState(coarsest.view(), sides_levels[-1], locked_levels[-1])
    k_values = geometric_k_sequence(config.k_min, config.k_factor, config.k_steps)
    states = sweep_k_states(
        init,
        k_values,
        KLConfig(max_passes=config.max_passes, incremental=config.incremental),
        jobs=config.jobs,
        executor=config.executor,
    )
    best_sides: Optional[List[int]] = None
    best_key = (float("inf"), 0.0)
    best_k: Optional[float] = None
    best_f = best_r = 0
    for k, state in zip(k_values, states):
        if isinstance(coarsest, WeightedCSRGraph):
            size = coarsest.weighted_suspicious_size(state.sides)
        else:
            size = state.suspicious_size
        valid = (
            config.min_suspicious
            <= size
            <= config.max_suspicious_fraction * total_nodes
            and size < total_nodes
            and state.r_cross > 0
        )
        if not valid:
            continue
        rate = acceptance_rate(state.f_cross, state.r_cross)
        key = (rate, -state.r_cross)
        if key < best_key:
            best_key = key
            best_sides = list(state.sides)
            best_k = k
            best_f = state.f_cross
            best_r = state.r_cross
    sweep_time = time.perf_counter() - t_sweep
    if best_sides is None or best_k is None:
        return MultilevelResult(
            [], 1.0, None, level_sizes=level_sizes, timings=timings(sweep_time)
        )

    # --- Uncoarsening + refinement -----------------------------------------
    # Projection preserves the cut weights exactly, so the chosen coarse
    # state's counters stay valid through every level and only the
    # refinement deltas move them — which is what lets the boundary path
    # build states through PartitionState.from_counts with no recount.
    refine_config = KLConfig(
        max_passes=config.refine_passes,
        incremental=config.incremental,
        frontier=config.frontier,
    )
    boundary = config.frontier == "boundary"
    refine_times: List[float] = []
    refine_detail: List[Dict[str, object]] = []
    early_exits = 0
    prev_improve: Optional[float] = None
    f_cross, r_cross = best_f, best_r
    sides = best_sides

    def full_refine(state_graph, level_sides, level_locked, level):
        stats = KLStats()
        state = extended_kl_state(
            PartitionState(state_graph.view(), level_sides, level_locked),
            best_k,
            refine_config,
            stats,
        )
        moves = sum(
            1
            for u in range(state_graph.num_nodes)
            if state.sides[u] != level_sides[u]
        )
        detail = {
            "level": level,
            "scope": "full",
            "boundary": state_graph.num_nodes,
            "regions": 1,
            "rounds": stats.passes,
            "moves": moves,
            "tested": stats.switches_tested,
            "skipped": False,
        }
        return state, detail

    for level in range(len(levels) - 2, 0, -1):
        t_level = time.perf_counter()
        current = levels[level]
        sides = _project_sides(
            sides, mappings[level], current.num_nodes, current.backend
        )
        objective = f_cross - best_k * r_cross
        if _early_exit(config, prev_improve, objective):
            early_exits += 1
            refine_detail.append(_skip_entry(level))
            refine_times.append(time.perf_counter() - t_level)
            continue
        if boundary:
            f_cross, r_cross, detail = _refine_level_boundary(
                current,
                sides,
                locked_levels[level],
                best_k,
                config,
                refine_config,
                f_cross,
                r_cross,
            )
            detail["level"] = level
        else:
            state, detail = full_refine(
                current, sides, locked_levels[level], level
            )
            sides = state.sides
            f_cross, r_cross = state.f_cross, state.r_cross
        prev_improve = objective - (f_cross - best_k * r_cross)
        refine_detail.append(detail)
        refine_times.append(time.perf_counter() - t_level)
    t_level = time.perf_counter()
    if mappings:
        sides = _project_sides(sides, mappings[0], total_nodes, csr0.backend)
    # Dinkelbach polish: re-refine at the cut's own ratio (Theorem 1's
    # fixpoint), which corrects the coarse level's k estimate.
    if boundary:
        f_cross, r_cross, detail = _refine_level_boundary(
            csr0, sides, locked, best_k, config, refine_config, f_cross, r_cross
        )
        detail["level"] = 0
        refine_detail.append(detail)
        for _ in range(2):
            if r_cross <= 0:
                break
            ratio = f_cross / r_cross
            if not ratio > 0:
                break
            cand_sides = list(sides)
            cand_f, cand_r, _polish = _refine_level_boundary(
                csr0,
                cand_sides,
                locked,
                ratio,
                config,
                refine_config,
                f_cross,
                r_cross,
            )
            if (
                cand_r <= 0
                or acceptance_rate(cand_f, cand_r)
                >= acceptance_rate(f_cross, r_cross)
                or not _sides_valid(cand_sides, total_nodes, config)
            ):
                break
            sides, f_cross, r_cross = cand_sides, cand_f, cand_r
            best_k = ratio
        fine = PartitionState.from_counts(
            csr0.view(), sides, locked, f_cross, r_cross
        )
    else:
        fine, detail = full_refine(csr0, sides, locked, 0)
        refine_detail.append(detail)
        for _ in range(2):
            if fine.r_cross <= 0:
                break
            ratio = fine.f_cross / fine.r_cross
            if not ratio > 0:
                break
            candidate = extended_kl_state(fine, ratio, refine_config)
            if candidate.acceptance_rate() >= fine.acceptance_rate() or not (
                _sides_valid(candidate.sides, total_nodes, config)
            ):
                break
            fine = candidate
            best_k = ratio
    refine_times.append(time.perf_counter() - t_level)

    suspicious = [u for u, s in enumerate(fine.sides) if s == SUSPICIOUS]
    size = len(suspicious)
    valid = (
        config.min_suspicious
        <= size
        <= config.max_suspicious_fraction * total_nodes
        and size < total_nodes
        and fine.r_cross > 0
    )
    if not valid:
        return MultilevelResult(
            [],
            1.0,
            None,
            level_sizes=level_sizes,
            timings=timings(
                sweep_time, refine_times, refine_detail, early_exits
            ),
        )
    return MultilevelResult(
        suspicious=suspicious,
        acceptance_rate=acceptance_rate(fine.f_cross, fine.r_cross),
        k=best_k,
        level_sizes=level_sizes,
        timings=timings(sweep_time, refine_times, refine_detail, early_exits),
    )


# ----------------------------------------------------------------------
# Legacy engine (dict-adjacency coarsening, heap-based refinement)
# ----------------------------------------------------------------------
def _solve_multilevel_legacy(
    graph: AugmentedSocialGraph,
    config: MultilevelConfig,
    legit_seeds: Sequence[int],
    spammer_seeds: Sequence[int],
) -> MultilevelResult:
    rng = random.Random(config.seed)
    total_nodes = graph.num_nodes
    if total_nodes == 0:
        return MultilevelResult([], 1.0, None)
    check_seeds(total_nodes, legit_seeds, spammer_seeds)

    # The heap-based weighted KL of the original implementation, kept
    # behind an explicit config so this path stays the fixed baseline the
    # benchmark measures the csr engine against.
    sweep_config = KLConfig(gain_index="heap", max_passes=config.max_passes)
    refine_config = KLConfig(gain_index="heap", max_passes=config.refine_passes)

    # --- Coarsening phase -------------------------------------------------
    fine = WeightedAugmentedGraph.from_graph(graph)
    locked = [False] * total_nodes
    init_sides = [
        SUSPICIOUS if graph.rej_in[u] else LEGITIMATE for u in range(total_nodes)
    ]
    for u in legit_seeds:
        locked[u] = True
        init_sides[u] = LEGITIMATE
    for u in spammer_seeds:
        locked[u] = True
        init_sides[u] = SUSPICIOUS

    levels: List[WeightedAugmentedGraph] = [fine]
    mappings: List[List[int]] = []
    locked_levels: List[List[bool]] = [locked]
    sides_levels: List[List[int]] = [init_sides]
    for _ in range(config.max_levels):
        current = levels[-1]
        if current.num_nodes <= config.coarsest_nodes:
            break
        match = random_heavy_edge_matching(current, rng, locked_levels[-1])
        coarse, mapping = coarsen(current, match)
        if coarse.num_nodes > (1 - config.min_shrink) * current.num_nodes:
            break
        coarse_locked, coarse_sides = _project_coarse_labels(
            mapping, coarse.num_nodes, locked_levels[-1], sides_levels[-1]
        )
        levels.append(coarse)
        mappings.append(mapping)
        locked_levels.append(coarse_locked)
        sides_levels.append(coarse_sides)
    logger.debug(
        "multilevel: %d levels, sizes %s",
        len(levels),
        [g.num_nodes for g in levels],
    )

    # --- Initial partitioning: k sweep on the coarsest level ---------------
    coarsest = levels[-1]
    best_sides: Optional[List[int]] = None
    best_key = (float("inf"), 0.0)
    best_k: Optional[float] = None
    for k in geometric_k_sequence(config.k_min, config.k_factor, config.k_steps):
        partition = weighted_extended_kl(
            coarsest,
            k,
            sides_levels[-1],
            locked=locked_levels[-1],
            config=sweep_config,
        )
        if not _is_valid(partition, total_nodes, config):
            continue
        rate = acceptance_rate(partition.f_cross, partition.r_cross)
        key = (rate, -partition.r_cross)
        if key < best_key:
            best_key = key
            best_sides = list(partition.sides)
            best_k = k
    if best_sides is None or best_k is None:
        return MultilevelResult(
            [], 1.0, None, level_sizes=[g.num_nodes for g in levels]
        )

    # --- Uncoarsening + refinement -----------------------------------------
    # Intermediate levels refine on the weighted graphs; the finest level
    # refines with the fast unweighted KL (the level-0 graph has unit
    # weights, so the two objectives coincide there).
    sides = best_sides
    for level in range(len(levels) - 2, 0, -1):
        mapping = mappings[level]
        projected = [sides[mapping[u]] for u in range(levels[level].num_nodes)]
        refined = weighted_extended_kl(
            levels[level],
            best_k,
            projected,
            locked=locked_levels[level],
            config=refine_config,
        )
        sides = refined.sides
    if mappings:
        mapping = mappings[0]
        sides = [sides[mapping[u]] for u in range(total_nodes)]
    fine_partition = extended_kl(
        graph,
        best_k,
        Partition(graph, sides),
        locked=locked_levels[0],
        config=KLConfig(max_passes=config.refine_passes),
    )
    # Dinkelbach polish: re-refine at the cut's own ratio (Theorem 1's
    # fixpoint), which corrects the coarse level's k estimate.
    for _ in range(2):
        if fine_partition.r_cross <= 0:
            break
        ratio = fine_partition.f_cross / fine_partition.r_cross
        if not ratio > 0:
            break
        candidate = extended_kl(
            graph,
            ratio,
            fine_partition,
            locked=locked_levels[0],
            config=KLConfig(max_passes=config.refine_passes),
        )
        if candidate.acceptance_rate() >= fine_partition.acceptance_rate() or not (
            _sides_valid(candidate.sides, total_nodes, config)
        ):
            break
        fine_partition = candidate
        best_k = ratio
    sides = fine_partition.sides

    final = WeightedPartition(levels[0], sides)
    suspicious = [u for u, s in enumerate(sides) if s == SUSPICIOUS]
    rate = acceptance_rate(final.f_cross, final.r_cross)
    if not _is_valid(final, total_nodes, config):
        return MultilevelResult(
            [], 1.0, None, level_sizes=[g.num_nodes for g in levels]
        )
    return MultilevelResult(
        suspicious=suspicious,
        acceptance_rate=rate,
        k=best_k,
        level_sizes=[g.num_nodes for g in levels],
    )
