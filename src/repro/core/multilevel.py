"""Multilevel MAAR solving (coarsen → partition → uncoarsen + refine).

An extension beyond the paper, borrowed from the graph-partitioning
literature the paper's heuristic comes from: Kernighan-Lin/FM is the
*refinement* step of multilevel partitioners (METIS-style). The solver:

1. **Coarsens** the rejection-augmented graph through successive levels:
   a randomized heavy-edge matching on the friendship layer merges
   matched pairs into super-nodes, accumulating friendship and rejection
   weights (parallel edges sum; intra-pair edges vanish — exactly the
   contraction semantics that keep every coarse cut's weight equal to
   the projected fine cut's weight);
2. runs the geometric ``k`` sweep on the **coarsest** graph, where each
   KL pass touches only a few hundred super-nodes;
3. **uncoarsens** level by level, projecting the sides onto the finer
   graph and re-refining with weighted KL at the chosen ``k``.

Because every projection preserves the cut weights exactly and each
refinement only improves the objective, the final fine-level cut is
never worse than the coarse solution it started from. The win is speed
on large graphs — the expensive full-graph sweep happens only at the
coarsest level — at a small quality cost versus the flat solver
(measured in ``bench_ablation_multilevel.py``).

Both refinement layers run on the flat-array CSR core: the fine-level
:func:`repro.core.kl.extended_kl` finalizes the builder once (cached) and
the coarse :func:`repro.core.weighted.weighted_extended_kl` finalizes each
weighted level; only the coarsening itself walks the dict adjacency.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .graph import AugmentedSocialGraph
from .kl import KLConfig, extended_kl
from .maar import geometric_k_sequence
from .partition import Partition
from .objectives import LEGITIMATE, SUSPICIOUS, acceptance_rate
from .weighted import (
    WeightedAugmentedGraph,
    WeightedPartition,
    weighted_extended_kl,
)

logger = logging.getLogger(__name__)

__all__ = [
    "MultilevelConfig",
    "MultilevelResult",
    "random_heavy_edge_matching",
    "coarsen",
    "solve_maar_multilevel",
]


@dataclass(frozen=True)
class MultilevelConfig:
    """Coarsening and sweep parameters.

    Coarsening stops when the graph has at most ``coarsest_nodes`` nodes
    or a level shrinks by less than ``min_shrink`` (matching has stalled,
    e.g. on a star). The ``k`` grid mirrors :class:`MAARConfig`.
    """

    coarsest_nodes: int = 400
    max_levels: int = 12
    min_shrink: float = 0.05
    k_min: float = 0.125
    k_factor: float = 2.0
    k_steps: int = 10
    max_passes: int = 30
    refine_passes: int = 8
    min_suspicious: int = 1
    max_suspicious_fraction: float = 0.6
    seed: int = 0


@dataclass
class MultilevelResult:
    """Final fine-level cut plus per-level diagnostics."""

    suspicious: List[int]
    acceptance_rate: float
    k: Optional[float]
    level_sizes: List[int] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return bool(self.suspicious)

    @property
    def levels(self) -> int:
        return len(self.level_sizes)


def random_heavy_edge_matching(
    graph: WeightedAugmentedGraph,
    rng: random.Random,
    locked: Optional[Sequence[bool]] = None,
) -> List[int]:
    """A maximal matching preferring heavy friendship edges.

    Returns ``match`` with ``match[u] == v`` for matched pairs and
    ``match[u] == u`` for singletons. Locked nodes (seeds) are never
    matched, so their identities — and pinned sides — survive
    coarsening unmerged.
    """
    n = graph.num_nodes
    locked = locked or [False] * n
    match = list(range(n))
    order = list(range(n))
    rng.shuffle(order)
    taken = [False] * n
    for u in order:
        if taken[u] or locked[u]:
            continue
        best_v = -1
        best_weight = 0.0
        for v, weight in graph.friends[u].items():
            if not taken[v] and not locked[v] and v != u and weight > best_weight:
                best_weight = weight
                best_v = v
        if best_v >= 0:
            match[u] = best_v
            match[best_v] = u
            taken[u] = taken[best_v] = True
    return match


def coarsen(
    graph: WeightedAugmentedGraph, match: Sequence[int]
) -> Tuple[WeightedAugmentedGraph, List[int]]:
    """Contract matched pairs into super-nodes.

    Returns ``(coarse_graph, mapping)`` where ``mapping[u]`` is the
    coarse id of fine node ``u``. Edge weights between distinct coarse
    nodes accumulate; edges internal to a merged pair disappear (their
    endpoints are now the same node).
    """
    n = graph.num_nodes
    mapping = [-1] * n
    next_id = 0
    for u in range(n):
        if mapping[u] >= 0:
            continue
        v = match[u]
        mapping[u] = next_id
        if v != u:
            mapping[v] = next_id
        next_id += 1
    coarse = WeightedAugmentedGraph(next_id)
    for u in range(n):
        coarse.node_weight[mapping[u]] = 0
    for u in range(n):
        coarse.node_weight[mapping[u]] += graph.node_weight[u]
    for u in range(n):
        cu = mapping[u]
        for v, weight in graph.friends[u].items():
            if u < v and mapping[v] != cu:
                coarse.add_friendship(cu, mapping[v], weight)
        for v, weight in graph.rej_out[u].items():
            if mapping[v] != cu:
                coarse.add_rejection(cu, mapping[v], weight)
    return coarse, mapping


def _is_valid(
    partition: WeightedPartition, total_nodes: int, config: MultilevelConfig
) -> bool:
    size = partition.suspicious_size()
    return (
        config.min_suspicious <= size <= config.max_suspicious_fraction * total_nodes
        and size < total_nodes
        and partition.r_cross > 0
    )


def solve_maar_multilevel(
    graph: AugmentedSocialGraph,
    config: Optional[MultilevelConfig] = None,
    legit_seeds: Sequence[int] = (),
    spammer_seeds: Sequence[int] = (),
) -> MultilevelResult:
    """Approximate the MAAR cut via the multilevel scheme.

    Interface mirrors :func:`repro.core.maar.solve_maar`: returns the
    suspicious node set of the best valid cut (empty when none exists).
    """
    config = config or MultilevelConfig()
    rng = random.Random(config.seed)
    total_nodes = graph.num_nodes
    if total_nodes == 0:
        return MultilevelResult([], 1.0, None)

    # --- Coarsening phase -------------------------------------------------
    fine = WeightedAugmentedGraph.from_graph(graph)
    locked = [False] * total_nodes
    init_sides = [
        SUSPICIOUS if graph.rej_in[u] else LEGITIMATE for u in range(total_nodes)
    ]
    for u in legit_seeds:
        locked[u] = True
        init_sides[u] = LEGITIMATE
    for u in spammer_seeds:
        locked[u] = True
        init_sides[u] = SUSPICIOUS

    levels: List[WeightedAugmentedGraph] = [fine]
    mappings: List[List[int]] = []
    locked_levels: List[List[bool]] = [locked]
    sides_levels: List[List[int]] = [init_sides]
    for _ in range(config.max_levels):
        current = levels[-1]
        if current.num_nodes <= config.coarsest_nodes:
            break
        match = random_heavy_edge_matching(current, rng, locked_levels[-1])
        coarse, mapping = coarsen(current, match)
        if coarse.num_nodes > (1 - config.min_shrink) * current.num_nodes:
            break
        # Project locks and the rejection-init sides down to the coarse
        # level: a super-node is locked/suspicious if any member is.
        coarse_locked = [False] * coarse.num_nodes
        coarse_sides = [LEGITIMATE] * coarse.num_nodes
        fine_locked = locked_levels[-1]
        fine_sides = sides_levels[-1]
        for u, cu in enumerate(mapping):
            if fine_locked[u]:
                coarse_locked[cu] = True
                coarse_sides[cu] = fine_sides[u]
        for u, cu in enumerate(mapping):
            if not coarse_locked[cu] and fine_sides[u] == SUSPICIOUS:
                coarse_sides[cu] = SUSPICIOUS
        levels.append(coarse)
        mappings.append(mapping)
        locked_levels.append(coarse_locked)
        sides_levels.append(coarse_sides)
    logger.debug(
        "multilevel: %d levels, sizes %s",
        len(levels),
        [g.num_nodes for g in levels],
    )

    # --- Initial partitioning: k sweep on the coarsest level ---------------
    coarsest = levels[-1]
    best_sides: Optional[List[int]] = None
    best_key = (float("inf"), 0.0)
    best_k: Optional[float] = None
    for k in geometric_k_sequence(config.k_min, config.k_factor, config.k_steps):
        partition = weighted_extended_kl(
            coarsest,
            k,
            sides_levels[-1],
            locked=locked_levels[-1],
            max_passes=config.max_passes,
        )
        if not _is_valid(partition, total_nodes, config):
            continue
        rate = acceptance_rate(partition.f_cross, partition.r_cross)
        key = (rate, -partition.r_cross)
        if key < best_key:
            best_key = key
            best_sides = list(partition.sides)
            best_k = k
    if best_sides is None or best_k is None:
        return MultilevelResult(
            [], 1.0, None, level_sizes=[g.num_nodes for g in levels]
        )

    # --- Uncoarsening + refinement -----------------------------------------
    # Intermediate levels refine on the weighted graphs; the finest level
    # refines with the fast unweighted KL (the level-0 graph has unit
    # weights, so the two objectives coincide there).
    sides = best_sides
    for level in range(len(levels) - 2, 0, -1):
        mapping = mappings[level]
        projected = [sides[mapping[u]] for u in range(levels[level].num_nodes)]
        refined = weighted_extended_kl(
            levels[level],
            best_k,
            projected,
            locked=locked_levels[level],
            max_passes=config.refine_passes,
        )
        sides = refined.sides
    if mappings:
        mapping = mappings[0]
        sides = [sides[mapping[u]] for u in range(total_nodes)]
    fine_partition = extended_kl(
        graph,
        best_k,
        Partition(graph, sides),
        locked=locked_levels[0],
        config=KLConfig(max_passes=config.refine_passes),
    )
    # Dinkelbach polish: re-refine at the cut's own ratio (Theorem 1's
    # fixpoint), which corrects the coarse level's k estimate.
    for _ in range(2):
        if fine_partition.r_cross <= 0:
            break
        ratio = fine_partition.f_cross / fine_partition.r_cross
        if not ratio > 0:
            break
        candidate = extended_kl(
            graph,
            ratio,
            fine_partition,
            locked=locked_levels[0],
            config=KLConfig(max_passes=config.refine_passes),
        )
        if candidate.acceptance_rate() >= fine_partition.acceptance_rate():
            break
        fine_partition = candidate
        best_k = ratio
    sides = fine_partition.sides

    final = WeightedPartition(levels[0], sides)
    suspicious = [u for u, s in enumerate(sides) if s == SUSPICIOUS]
    rate = acceptance_rate(final.f_cross, final.r_cross)
    if not _is_valid(final, total_nodes, config):
        return MultilevelResult(
            [], 1.0, None, level_sizes=[g.num_nodes for g in levels]
        )
    return MultilevelResult(
        suspicious=suspicious,
        acceptance_rate=rate,
        k=best_k,
        level_sizes=[g.num_nodes for g in levels],
    )
