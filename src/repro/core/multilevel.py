"""Multilevel MAAR solving (coarsen → partition → uncoarsen + refine).

An extension beyond the paper, borrowed from the graph-partitioning
literature the paper's heuristic comes from: Kernighan-Lin/FM is the
*refinement* step of multilevel partitioners (METIS-style). The solver:

1. **Coarsens** the rejection-augmented graph through successive levels:
   a heavy-edge matching on the friendship layer merges matched pairs
   into super-nodes, accumulating friendship and rejection weights
   (parallel edges sum; intra-pair edges vanish — exactly the
   contraction semantics that keep every coarse cut's weight equal to
   the projected fine cut's weight);
2. runs the geometric ``k`` sweep on the **coarsest** graph, where each
   KL pass touches only a few hundred super-nodes;
3. **uncoarsens** level by level, projecting the sides onto the finer
   graph and re-refining with weighted KL at the chosen ``k``.

Because every projection preserves the cut weights exactly and each
refinement only improves the objective, the final fine-level cut is
never worse than the coarse solution it started from. The win is speed
on large graphs — the expensive full-graph sweep happens only at the
coarsest level — at a small quality cost versus the flat solver
(measured in ``bench_ablation_multilevel.py``).

Engines
-------
``engine="csr"`` (default) is CSR-native end to end, which makes
``solve_maar_multilevel`` the recommended entry point for large graphs:

* every level is a flat-array graph — the unit-weight level 0 plus
  int64-weighted :class:`~repro.core.csr.WeightedCSRGraph` coarse
  levels (contraction only ever *sums* unit edges, so coarse weights
  are exact integers);
* matching and contraction run as batch kernels
  (:func:`repro.core.kernels.heavy_edge_matching` /
  :func:`~repro.core.kernels.contract_arrays` — numpy scatter-adds with
  bit-identical python fallbacks);
* refinement uses the fused integer bucket engine of
  :mod:`repro.core.kl` on every level (weighted twin on coarse levels);
* the coarse-level ``k`` sweep fans out through
  :func:`repro.core.maar.sweep_k_states`, honouring
  ``MultilevelConfig(jobs, executor)`` exactly like the flat MAAR sweep.

``engine="legacy"`` keeps the original dict-adjacency coarsening with
scalar heap-based weighted refinement, as the baseline the benchmark
measures against; it has no parallel sweep (``jobs > 1`` warns).
"""

from __future__ import annotations

import logging
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .csr import CSRGraph, PartitionState, WeightedCSRGraph
from .graph import AugmentedSocialGraph
from .kernels import heavy_edge_matching, matching_to_mapping
from .kl import KLConfig, extended_kl, extended_kl_state
from .maar import check_seeds, geometric_k_sequence, sweep_k_states
from .parallel import warn_jobs_ignored
from .partition import Partition
from .objectives import LEGITIMATE, SUSPICIOUS, acceptance_rate
from .weighted import (
    WeightedAugmentedGraph,
    WeightedPartition,
    weighted_extended_kl,
)

logger = logging.getLogger(__name__)

__all__ = [
    "MultilevelConfig",
    "MultilevelResult",
    "random_heavy_edge_matching",
    "coarsen",
    "solve_maar_multilevel",
]


@dataclass(frozen=True)
class MultilevelConfig:
    """Coarsening and sweep parameters.

    Coarsening stops when the graph has at most ``coarsest_nodes`` nodes
    or a level shrinks by less than ``min_shrink`` (matching has stalled,
    e.g. on a star). The ``k`` grid mirrors :class:`MAARConfig`.

    ``engine`` selects the CSR-native pipeline (``"csr"``, default) or
    the original dict-adjacency path (``"legacy"``); ``backend`` is the
    CSR array backend (``"python"``/``"numpy"``/``"auto"``).
    ``matching_rounds`` bounds the mutual heavy-edge matching rounds per
    level. ``jobs``/``executor`` fan the coarse-level ``k`` sweep out
    through :mod:`repro.core.parallel` (csr engine only — the legacy
    engine warns and runs serially).
    """

    coarsest_nodes: int = 400
    max_levels: int = 24
    min_shrink: float = 0.05
    k_min: float = 0.125
    k_factor: float = 2.0
    k_steps: int = 10
    max_passes: int = 30
    refine_passes: int = 8
    min_suspicious: int = 1
    max_suspicious_fraction: float = 0.6
    seed: int = 0
    engine: str = "csr"
    backend: str = "auto"
    matching_rounds: int = 8
    jobs: int = 1
    executor: str = "auto"


@dataclass
class MultilevelResult:
    """Final fine-level cut plus per-level diagnostics.

    ``timings`` (csr engine) breaks the wall clock down into
    ``"coarsen"`` (seconds per built level), ``"coarse_sweep"`` (the
    coarsest-level ``k`` sweep), ``"refine"`` (seconds per uncoarsening
    level, finest last — the last entry includes the Dinkelbach polish)
    and ``"total_seconds"``.
    """

    suspicious: List[int]
    acceptance_rate: float
    k: Optional[float]
    level_sizes: List[int] = field(default_factory=list)
    timings: Dict[str, object] = field(default_factory=dict)

    @property
    def found(self) -> bool:
        return bool(self.suspicious)

    @property
    def levels(self) -> int:
        return len(self.level_sizes)


def random_heavy_edge_matching(
    graph: WeightedAugmentedGraph,
    rng: random.Random,
    locked: Optional[Sequence[bool]] = None,
) -> List[int]:
    """A maximal matching preferring heavy friendship edges (legacy
    engine: greedy over a shuffled node order).

    Returns ``match`` with ``match[u] == v`` for matched pairs and
    ``match[u] == u`` for singletons. Locked nodes (seeds) are never
    matched, so their identities — and pinned sides — survive
    coarsening unmerged.
    """
    n = graph.num_nodes
    locked = locked or [False] * n
    match = list(range(n))
    order = list(range(n))
    rng.shuffle(order)
    taken = [False] * n
    for u in order:
        if taken[u] or locked[u]:
            continue
        best_v = -1
        best_weight = 0.0
        for v, weight in graph.friends[u].items():
            if not taken[v] and not locked[v] and v != u and weight > best_weight:
                best_weight = weight
                best_v = v
        if best_v >= 0:
            match[u] = best_v
            match[best_v] = u
            taken[u] = taken[best_v] = True
    return match


def coarsen(
    graph: WeightedAugmentedGraph, match: Sequence[int]
) -> Tuple[WeightedAugmentedGraph, List[int]]:
    """Contract matched pairs into super-nodes (legacy dict walk).

    Returns ``(coarse_graph, mapping)`` where ``mapping[u]`` is the
    coarse id of fine node ``u``. Edge weights between distinct coarse
    nodes accumulate; edges internal to a merged pair disappear (their
    endpoints are now the same node). The csr engine does the same
    contraction through :func:`repro.core.kernels.contract_arrays`.
    """
    n = graph.num_nodes
    mapping = [-1] * n
    next_id = 0
    for u in range(n):
        if mapping[u] >= 0:
            continue
        v = match[u]
        mapping[u] = next_id
        if v != u:
            mapping[v] = next_id
        next_id += 1
    coarse = WeightedAugmentedGraph(next_id)
    for u in range(n):
        coarse.node_weight[mapping[u]] = 0
    for u in range(n):
        coarse.node_weight[mapping[u]] += graph.node_weight[u]
    for u in range(n):
        cu = mapping[u]
        for v, weight in graph.friends[u].items():
            if u < v and mapping[v] != cu:
                coarse.add_friendship(cu, mapping[v], weight)
        for v, weight in graph.rej_out[u].items():
            if mapping[v] != cu:
                coarse.add_rejection(cu, mapping[v], weight)
    return coarse, mapping


def _is_valid(
    partition: WeightedPartition, total_nodes: int, config: MultilevelConfig
) -> bool:
    size = partition.suspicious_size()
    return (
        config.min_suspicious <= size <= config.max_suspicious_fraction * total_nodes
        and size < total_nodes
        and partition.r_cross > 0
    )


def _project_coarse_labels(
    mapping: Sequence[int],
    num_coarse: int,
    fine_locked: Sequence[bool],
    fine_sides: Sequence[int],
) -> Tuple[List[bool], List[int]]:
    """Push locks and sides down one level: a super-node is locked iff a
    member is (locked fine nodes coarsen as singletons, so a locked
    super-node has exactly one member and inherits its pinned side), and
    an unlocked super-node is suspicious iff any member is."""
    coarse_locked = [False] * num_coarse
    coarse_sides = [LEGITIMATE] * num_coarse
    for u, cu in enumerate(mapping):
        if fine_locked[u]:
            coarse_locked[cu] = True
            coarse_sides[cu] = fine_sides[u]
    for u, cu in enumerate(mapping):
        if not coarse_locked[cu] and fine_sides[u] == SUSPICIOUS:
            coarse_sides[cu] = SUSPICIOUS
    return coarse_locked, coarse_sides


def solve_maar_multilevel(
    graph,
    config: Optional[MultilevelConfig] = None,
    legit_seeds: Sequence[int] = (),
    spammer_seeds: Sequence[int] = (),
) -> MultilevelResult:
    """Approximate the MAAR cut via the multilevel scheme.

    Interface mirrors :func:`repro.core.maar.solve_maar`: returns the
    suspicious node set of the best valid cut (empty when none exists).
    ``graph`` may be an :class:`AugmentedSocialGraph` builder or (csr
    engine only) an already-finalized unweighted
    :class:`~repro.core.csr.CSRGraph`.
    """
    config = config or MultilevelConfig()
    if config.engine == "legacy":
        if config.jobs > 1:
            warn_jobs_ignored(
                logger,
                "MultilevelConfig",
                config.jobs,
                "the legacy engine has no parallel coarse-level k-sweep; "
                "use engine='csr' for fan-out",
            )
        if not isinstance(graph, AugmentedSocialGraph):
            raise ValueError(
                "engine='legacy' needs the mutable AugmentedSocialGraph "
                f"builder, got {type(graph).__name__}"
            )
        return _solve_multilevel_legacy(graph, config, legit_seeds, spammer_seeds)
    if config.engine != "csr":
        raise ValueError(f"unknown engine {config.engine!r}")
    return _solve_multilevel_csr(graph, config, legit_seeds, spammer_seeds)


# ----------------------------------------------------------------------
# CSR engine
# ----------------------------------------------------------------------
def _solve_multilevel_csr(
    graph,
    config: MultilevelConfig,
    legit_seeds: Sequence[int],
    spammer_seeds: Sequence[int],
) -> MultilevelResult:
    t_start = time.perf_counter()
    rng = random.Random(config.seed)
    if isinstance(graph, AugmentedSocialGraph):
        csr0 = graph.csr(config.backend)
    elif isinstance(graph, CSRGraph):
        if graph.weighted:
            raise ValueError(
                "solve_maar_multilevel expects the unweighted fine graph "
                "(coarse weights are derived internally)"
            )
        csr0 = graph
    else:
        raise ValueError(
            f"unsupported graph type {type(graph).__name__}; expected "
            "AugmentedSocialGraph or CSRGraph"
        )
    total_nodes = csr0.num_nodes
    if total_nodes == 0:
        return MultilevelResult([], 1.0, None)
    check_seeds(total_nodes, legit_seeds, spammer_seeds)

    locked = [False] * total_nodes
    ri_ptr = csr0.ri_ptr
    init_sides = [
        SUSPICIOUS if ri_ptr[u + 1] > ri_ptr[u] else LEGITIMATE
        for u in range(total_nodes)
    ]
    for u in legit_seeds:
        locked[u] = True
        init_sides[u] = LEGITIMATE
    for u in spammer_seeds:
        locked[u] = True
        init_sides[u] = SUSPICIOUS

    # --- Coarsening phase -------------------------------------------------
    levels: List[CSRGraph] = [csr0]
    mappings: List[List[int]] = []
    locked_levels: List[List[bool]] = [locked]
    sides_levels: List[List[int]] = [init_sides]
    coarsen_times: List[float] = []
    for _ in range(config.max_levels):
        current = levels[-1]
        if current.num_nodes <= config.coarsest_nodes:
            break
        t_level = time.perf_counter()
        priority = list(range(current.num_nodes))
        rng.shuffle(priority)
        match = heavy_edge_matching(
            current,
            priority,
            locked=locked_levels[-1],
            rounds=config.matching_rounds,
        )
        mapping, num_coarse = matching_to_mapping(match, current.backend)
        if num_coarse > (1 - config.min_shrink) * current.num_nodes:
            break
        coarse = current.contract(mapping, num_coarse)
        coarse_locked, coarse_sides = _project_coarse_labels(
            mapping, num_coarse, locked_levels[-1], sides_levels[-1]
        )
        levels.append(coarse)
        mappings.append(mapping)
        locked_levels.append(coarse_locked)
        sides_levels.append(coarse_sides)
        coarsen_times.append(time.perf_counter() - t_level)
    level_sizes = [g.num_nodes for g in levels]
    logger.debug("multilevel: %d levels, sizes %s", len(levels), level_sizes)

    def timings(sweep: float = 0.0, refine: Optional[List[float]] = None):
        return {
            "coarsen": coarsen_times,
            "coarse_sweep": sweep,
            "refine": refine or [],
            "total_seconds": time.perf_counter() - t_start,
        }

    # --- Initial partitioning: k sweep on the coarsest level ---------------
    coarsest = levels[-1]
    t_sweep = time.perf_counter()
    init = PartitionState(coarsest.view(), sides_levels[-1], locked_levels[-1])
    k_values = geometric_k_sequence(config.k_min, config.k_factor, config.k_steps)
    states = sweep_k_states(
        init,
        k_values,
        KLConfig(max_passes=config.max_passes),
        jobs=config.jobs,
        executor=config.executor,
    )
    best_sides: Optional[List[int]] = None
    best_key = (float("inf"), 0.0)
    best_k: Optional[float] = None
    for k, state in zip(k_values, states):
        if isinstance(coarsest, WeightedCSRGraph):
            size = coarsest.weighted_suspicious_size(state.sides)
        else:
            size = state.suspicious_size
        valid = (
            config.min_suspicious
            <= size
            <= config.max_suspicious_fraction * total_nodes
            and size < total_nodes
            and state.r_cross > 0
        )
        if not valid:
            continue
        rate = acceptance_rate(state.f_cross, state.r_cross)
        key = (rate, -state.r_cross)
        if key < best_key:
            best_key = key
            best_sides = list(state.sides)
            best_k = k
    sweep_time = time.perf_counter() - t_sweep
    if best_sides is None or best_k is None:
        return MultilevelResult(
            [], 1.0, None, level_sizes=level_sizes, timings=timings(sweep_time)
        )

    # --- Uncoarsening + refinement -----------------------------------------
    refine_config = KLConfig(max_passes=config.refine_passes)
    refine_times: List[float] = []
    sides = best_sides
    for level in range(len(levels) - 2, 0, -1):
        t_level = time.perf_counter()
        mapping = mappings[level]
        projected = [sides[mapping[u]] for u in range(levels[level].num_nodes)]
        state = PartitionState(
            levels[level].view(), projected, locked_levels[level]
        )
        sides = extended_kl_state(state, best_k, refine_config).sides
        refine_times.append(time.perf_counter() - t_level)
    t_level = time.perf_counter()
    if mappings:
        mapping = mappings[0]
        sides = [sides[mapping[u]] for u in range(total_nodes)]
    fine = extended_kl_state(
        PartitionState(csr0.view(), sides, locked), best_k, refine_config
    )
    # Dinkelbach polish: re-refine at the cut's own ratio (Theorem 1's
    # fixpoint), which corrects the coarse level's k estimate.
    for _ in range(2):
        if fine.r_cross <= 0:
            break
        ratio = fine.f_cross / fine.r_cross
        if not ratio > 0:
            break
        candidate = extended_kl_state(fine, ratio, refine_config)
        if candidate.acceptance_rate() >= fine.acceptance_rate():
            break
        fine = candidate
        best_k = ratio
    refine_times.append(time.perf_counter() - t_level)

    suspicious = [u for u, s in enumerate(fine.sides) if s == SUSPICIOUS]
    size = len(suspicious)
    valid = (
        config.min_suspicious
        <= size
        <= config.max_suspicious_fraction * total_nodes
        and size < total_nodes
        and fine.r_cross > 0
    )
    if not valid:
        return MultilevelResult(
            [],
            1.0,
            None,
            level_sizes=level_sizes,
            timings=timings(sweep_time, refine_times),
        )
    return MultilevelResult(
        suspicious=suspicious,
        acceptance_rate=acceptance_rate(fine.f_cross, fine.r_cross),
        k=best_k,
        level_sizes=level_sizes,
        timings=timings(sweep_time, refine_times),
    )


# ----------------------------------------------------------------------
# Legacy engine (dict-adjacency coarsening, heap-based refinement)
# ----------------------------------------------------------------------
def _solve_multilevel_legacy(
    graph: AugmentedSocialGraph,
    config: MultilevelConfig,
    legit_seeds: Sequence[int],
    spammer_seeds: Sequence[int],
) -> MultilevelResult:
    rng = random.Random(config.seed)
    total_nodes = graph.num_nodes
    if total_nodes == 0:
        return MultilevelResult([], 1.0, None)
    check_seeds(total_nodes, legit_seeds, spammer_seeds)

    # The heap-based weighted KL of the original implementation, kept
    # behind an explicit config so this path stays the fixed baseline the
    # benchmark measures the csr engine against.
    sweep_config = KLConfig(gain_index="heap", max_passes=config.max_passes)
    refine_config = KLConfig(gain_index="heap", max_passes=config.refine_passes)

    # --- Coarsening phase -------------------------------------------------
    fine = WeightedAugmentedGraph.from_graph(graph)
    locked = [False] * total_nodes
    init_sides = [
        SUSPICIOUS if graph.rej_in[u] else LEGITIMATE for u in range(total_nodes)
    ]
    for u in legit_seeds:
        locked[u] = True
        init_sides[u] = LEGITIMATE
    for u in spammer_seeds:
        locked[u] = True
        init_sides[u] = SUSPICIOUS

    levels: List[WeightedAugmentedGraph] = [fine]
    mappings: List[List[int]] = []
    locked_levels: List[List[bool]] = [locked]
    sides_levels: List[List[int]] = [init_sides]
    for _ in range(config.max_levels):
        current = levels[-1]
        if current.num_nodes <= config.coarsest_nodes:
            break
        match = random_heavy_edge_matching(current, rng, locked_levels[-1])
        coarse, mapping = coarsen(current, match)
        if coarse.num_nodes > (1 - config.min_shrink) * current.num_nodes:
            break
        coarse_locked, coarse_sides = _project_coarse_labels(
            mapping, coarse.num_nodes, locked_levels[-1], sides_levels[-1]
        )
        levels.append(coarse)
        mappings.append(mapping)
        locked_levels.append(coarse_locked)
        sides_levels.append(coarse_sides)
    logger.debug(
        "multilevel: %d levels, sizes %s",
        len(levels),
        [g.num_nodes for g in levels],
    )

    # --- Initial partitioning: k sweep on the coarsest level ---------------
    coarsest = levels[-1]
    best_sides: Optional[List[int]] = None
    best_key = (float("inf"), 0.0)
    best_k: Optional[float] = None
    for k in geometric_k_sequence(config.k_min, config.k_factor, config.k_steps):
        partition = weighted_extended_kl(
            coarsest,
            k,
            sides_levels[-1],
            locked=locked_levels[-1],
            config=sweep_config,
        )
        if not _is_valid(partition, total_nodes, config):
            continue
        rate = acceptance_rate(partition.f_cross, partition.r_cross)
        key = (rate, -partition.r_cross)
        if key < best_key:
            best_key = key
            best_sides = list(partition.sides)
            best_k = k
    if best_sides is None or best_k is None:
        return MultilevelResult(
            [], 1.0, None, level_sizes=[g.num_nodes for g in levels]
        )

    # --- Uncoarsening + refinement -----------------------------------------
    # Intermediate levels refine on the weighted graphs; the finest level
    # refines with the fast unweighted KL (the level-0 graph has unit
    # weights, so the two objectives coincide there).
    sides = best_sides
    for level in range(len(levels) - 2, 0, -1):
        mapping = mappings[level]
        projected = [sides[mapping[u]] for u in range(levels[level].num_nodes)]
        refined = weighted_extended_kl(
            levels[level],
            best_k,
            projected,
            locked=locked_levels[level],
            config=refine_config,
        )
        sides = refined.sides
    if mappings:
        mapping = mappings[0]
        sides = [sides[mapping[u]] for u in range(total_nodes)]
    fine_partition = extended_kl(
        graph,
        best_k,
        Partition(graph, sides),
        locked=locked_levels[0],
        config=KLConfig(max_passes=config.refine_passes),
    )
    # Dinkelbach polish: re-refine at the cut's own ratio (Theorem 1's
    # fixpoint), which corrects the coarse level's k estimate.
    for _ in range(2):
        if fine_partition.r_cross <= 0:
            break
        ratio = fine_partition.f_cross / fine_partition.r_cross
        if not ratio > 0:
            break
        candidate = extended_kl(
            graph,
            ratio,
            fine_partition,
            locked=locked_levels[0],
            config=KLConfig(max_passes=config.refine_passes),
        )
        if candidate.acceptance_rate() >= fine_partition.acceptance_rate():
            break
        fine_partition = candidate
        best_k = ratio
    sides = fine_partition.sides

    final = WeightedPartition(levels[0], sides)
    suspicious = [u for u, s in enumerate(sides) if s == SUSPICIOUS]
    rate = acceptance_rate(final.f_cross, final.r_cross)
    if not _is_valid(final, total_nodes, config):
        return MultilevelResult(
            [], 1.0, None, level_sizes=[g.num_nodes for g in levels]
        )
    return MultilevelResult(
        suspicious=suspicious,
        acceptance_rate=rate,
        k=best_k,
        level_sizes=[g.num_nodes for g in levels],
    )
