"""Batch kernels over the flat CSR arrays.

Every KL pass used to open with a scalar O(V+E) sweep — initial switch
gains for all unlocked nodes, plus a from-scratch recount whenever a
:class:`~repro.core.csr.PartitionState` is built. Those sweeps are
*embarrassingly per-edge*: each edge slot contributes an independent
±1/±k term to its row's total, which is exactly the shape numpy's
segment reductions handle in a handful of whole-array operations. This
module collects those batch kernels in one place:

* :func:`gain_deltas` — per-node friend-delta and rejection-delta (the
  two integers every gain formula is assembled from);
* :func:`heap_gains` — per-node float gains ``-(fd − k·rd)`` for the
  heap engine;
* :func:`recount_active` — the boundary counters ``f_cross``/``r_cross``
  and the side-1 population in one shot;
* :func:`active_in_rejections` — in-rejection counts restricted to
  active rejecters (Rejecto's member-evidence ordering);
* :func:`scaled_gain_bound` — the integer-scaled lifetime gain bound
  that sizes the FM bucket array;
* :func:`shard_gain_deltas` / :func:`shard_cut_counts` — the same
  per-node deltas and boundary counters evaluated over one contiguous
  CSR *shard block* (a worker-resident slice of the graph, see
  :mod:`repro.cluster.blocks`), so the distributed engine's per-pass
  gain rebuild runs as whole-array kernels on each worker instead of a
  scalar loop over dict records.

Dispatch follows the graph's ``backend`` attribute: ``"numpy"`` runs the
vectorized ``_np`` variants over zero-copy ``frombuffer`` views,
``"python"`` runs the scalar ``_py`` fallbacks. Both produce
**bit-identical** results — all quantities are integers (or single
float expressions over integers, identical elementwise in IEEE double),
so the engines never see which backend filled their arrays. The
property tests in ``tests/core/test_kernels.py`` pin each pair to each
other and to the scalar reference ``PartitionState.switch_gain``.

All kernels are unweighted-only: the weighted multilevel coarse graphs
keep their scalar paths, where float summation *order* matters for
reproducibility.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "gain_deltas",
    "heap_gains",
    "recount_active",
    "active_in_rejections",
    "scaled_gain_bound",
    "shard_gain_deltas",
    "shard_cut_counts",
]


def _check_unweighted(csr) -> None:
    if csr.f_wt is not None:
        raise ValueError(
            "batch kernels are unweighted-only; weighted coarse graphs "
            "use the scalar paths (float summation order is part of "
            "their contract)"
        )


def _use_numpy(csr) -> bool:
    return csr.backend == "numpy"


def _np_state(view):
    """Numpy views of the CSR arrays plus the active mask and row ids."""
    import numpy as np

    csr = view.csr
    arrs = csr.numpy_arrays()
    rows = csr.numpy_rows()
    active = np.frombuffer(view.active, dtype=np.uint8).astype(bool)
    return np, arrs, rows, active


def _segment_sums(np, contrib, ptr):
    """Per-row sums of ``contrib`` under CSR ``ptr`` (empty rows -> 0)."""
    cumulative = np.zeros(len(contrib) + 1, dtype=np.int64)
    np.cumsum(contrib, out=cumulative[1:])
    return cumulative[ptr[1:]] - cumulative[ptr[:-1]]


# ----------------------------------------------------------------------
# Gain deltas
# ----------------------------------------------------------------------
def gain_deltas(view, sides: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Per-node ``(friend_delta, rejection_delta)`` of a switch.

    ``friend_delta[u]`` counts active friends on ``u``'s side minus
    active friends on the other side; ``rejection_delta[u]`` is
    ``(2·side(u)−1) · (out_susp(u) − in_legit(u))`` — the two integers
    the engines combine into ``gain(u) = -(fd − k·rd)`` and the scaled
    bucket index ``k_scaled·rd − fd·res``. Entries for inactive nodes
    are 0; entries for locked nodes are computed like any other (locks
    are the caller's concern).
    """
    csr = view.csr
    _check_unweighted(csr)
    if _use_numpy(csr):
        return _gain_deltas_np(view, sides)
    return _gain_deltas_py(view, sides)


def _gain_deltas_np(view, sides: Sequence[int]) -> Tuple[List[int], List[int]]:
    np, arrs, rows, active = _np_state(view)
    sides_np = np.asarray(sides, dtype=np.int64)
    f_row, ro_row, ri_row = rows

    act_v = active[arrs["f_idx"]]
    same = sides_np[arrs["f_idx"]] == sides_np[f_row]
    contrib = np.where(act_v, np.where(same, 1, -1), 0).astype(np.int64)
    fd = _segment_sums(np, contrib, arrs["f_ptr"])

    out_susp = _segment_sums(
        np,
        (active[arrs["ro_idx"]] & (sides_np[arrs["ro_idx"]] == 1)).astype(np.int64),
        arrs["ro_ptr"],
    )
    in_legit = _segment_sums(
        np,
        (active[arrs["ri_idx"]] & (sides_np[arrs["ri_idx"]] == 0)).astype(np.int64),
        arrs["ri_ptr"],
    )
    rd = (2 * sides_np - 1) * (out_susp - in_legit)

    zero = np.int64(0)
    fd = np.where(active, fd, zero)
    rd = np.where(active, rd, zero)
    return fd.tolist(), rd.tolist()


def _gain_deltas_py(view, sides: Sequence[int]) -> Tuple[List[int], List[int]]:
    csr = view.csr
    fp, fi, op, oi, ip_, ii = csr.hot()
    active = view.active
    n = csr.num_nodes
    fd = [0] * n
    rd = [0] * n
    for u in range(n):
        if not active[u]:
            continue
        s = sides[u]
        acc = 0
        for i in range(fp[u], fp[u + 1]):
            v = fi[i]
            if active[v]:
                acc += 1 if sides[v] == s else -1
        fd[u] = acc
        acc = 0
        if s:
            for i in range(op[u], op[u + 1]):
                v = oi[i]
                if active[v] and sides[v]:
                    acc += 1
            for i in range(ip_[u], ip_[u + 1]):
                w = ii[i]
                if active[w] and not sides[w]:
                    acc -= 1
        else:
            for i in range(op[u], op[u + 1]):
                v = oi[i]
                if active[v] and sides[v]:
                    acc -= 1
            for i in range(ip_[u], ip_[u + 1]):
                w = ii[i]
                if active[w] and not sides[w]:
                    acc += 1
        rd[u] = acc
    return fd, rd


def heap_gains(view, sides: Sequence[int], k: float) -> List[float]:
    """Per-node float gains ``-(fd − k·rd)``, the heap engine's initial
    index content. Bit-identical to ``PartitionState.switch_gain`` on
    active nodes: both evaluate the same single IEEE-double expression
    over the same integers."""
    fd, rd = gain_deltas(view, sides)
    return [-(fd[u] - k * rd[u]) for u in range(len(fd))]


# ----------------------------------------------------------------------
# Boundary counters
# ----------------------------------------------------------------------
def recount_active(view, sides: Sequence[int]) -> Tuple[int, int, int]:
    """``(f_cross, r_cross, side1_population)`` over the active mask.

    ``f_cross`` counts active-active cross friendships once per
    unordered pair; ``r_cross`` counts rejections cast by active side-0
    nodes onto active side-1 nodes — the exact quantities
    :meth:`PartitionState.recount` re-derives.
    """
    csr = view.csr
    _check_unweighted(csr)
    if _use_numpy(csr):
        return _recount_np(view, sides)
    return _recount_py(view, sides)


def _recount_np(view, sides: Sequence[int]) -> Tuple[int, int, int]:
    np, arrs, rows, active = _np_state(view)
    sides_np = np.asarray(sides, dtype=np.int64)
    f_row, ro_row, _ = rows
    f_idx, ro_idx = arrs["f_idx"], arrs["ro_idx"]
    f_cross = int(
        np.count_nonzero(
            (f_row < f_idx)
            & active[f_row]
            & active[f_idx]
            & (sides_np[f_row] != sides_np[f_idx])
        )
    )
    r_cross = int(
        np.count_nonzero(
            active[ro_row]
            & active[ro_idx]
            & (sides_np[ro_row] == 0)
            & (sides_np[ro_idx] == 1)
        )
    )
    ones = int(np.count_nonzero(active & (sides_np == 1)))
    return f_cross, r_cross, ones


def _recount_py(view, sides: Sequence[int]) -> Tuple[int, int, int]:
    csr = view.csr
    fp, fi, op, oi, _, _ = csr.hot()
    active = view.active
    f_cross = r_cross = ones = 0
    for u in range(csr.num_nodes):
        if not active[u]:
            continue
        s = sides[u]
        ones += s
        for i in range(fp[u], fp[u + 1]):
            v = fi[i]
            if u < v and active[v] and sides[v] != s:
                f_cross += 1
        if s == 0:
            for i in range(op[u], op[u + 1]):
                v = oi[i]
                if active[v] and sides[v] == 1:
                    r_cross += 1
    return f_cross, r_cross, ones


def active_in_rejections(view) -> List[int]:
    """Per-node in-rejection counts restricted to active rejecters —
    ``view.rejections_received(u)`` for every node in one sweep."""
    csr = view.csr
    _check_unweighted(csr)
    if _use_numpy(csr):
        np, arrs, _, active = _np_state(view)
        contrib = active[arrs["ri_idx"]].astype(np.int64)
        return _segment_sums(np, contrib, arrs["ri_ptr"]).tolist()
    _, _, _, _, ip_, ii = csr.hot()
    active = view.active
    return [
        sum(1 for i in range(ip_[u], ip_[u + 1]) if active[ii[i]])
        for u in range(csr.num_nodes)
    ]


# ----------------------------------------------------------------------
# Gain bounds
# ----------------------------------------------------------------------
def scaled_gain_bound(csr, resolution: int, k_scaled: int) -> int:
    """Graph-wide bound on the integer-scaled gain magnitude,
    ``max_u deg_F(u)·res + k_scaled·deg_R(u)``.

    Computed over *all* nodes: full-graph degrees bound the
    active-filtered ones, so one cached value stays valid for every
    residual view and every pass of a solve (a looser bound only sizes
    the bucket array — it never changes pop order, because gains are
    offset-shifted uniformly). Prefer :meth:`CSRGraph.bucket_gain_bound`,
    which memoizes this per ``(resolution, k_scaled)`` across the whole
    ``k``-sweep and Rejecto's rounds.
    """
    _check_unweighted(csr)
    if csr.num_nodes == 0:
        return 0
    if _use_numpy(csr):
        import numpy as np

        arrs = csr.numpy_arrays()
        weight = np.diff(arrs["f_ptr"]) * resolution + k_scaled * (
            np.diff(arrs["ro_ptr"]) + np.diff(arrs["ri_ptr"])
        )
        return int(weight.max())
    fp, _, op, _, ip_, _ = csr.hot()
    bound = 0
    for u in range(csr.num_nodes):
        weight = (fp[u + 1] - fp[u]) * resolution + k_scaled * (
            (op[u + 1] - op[u]) + (ip_[u + 1] - ip_[u])
        )
        if weight > bound:
            bound = weight
    return bound


# ----------------------------------------------------------------------
# Shard-block kernels (distributed engine, Section V)
# ----------------------------------------------------------------------
#: Duck-typed protocol of a shard block: ``lo``/``num_nodes`` delimit the
#: contiguous global node range, ``backend`` selects the variant,
#: ``hot()`` yields six plain-list arrays ``(f_ptr, f_idx, ro_ptr,
#: ro_idx, ri_ptr, ri_idx)`` with *local* (rebased-to-0) pointers and
#: *global* neighbour ids, and ``numpy_state()`` yields the matching
#: int64 views plus cached per-slot local row ids ``f_row``/``ro_row``/
#: ``ri_row``. ``repro.cluster.blocks.ShardBlock`` implements it.


def shard_gain_deltas(block, sides: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Per-node ``(friend_delta, rejection_delta)`` over one shard block.

    Exactly :func:`gain_deltas` restricted to the block's contiguous
    node range ``[lo, lo + num_nodes)`` with every node active — the
    cluster engine always partitions the *full* graph, so no mask is
    carried. ``sides`` is the full global side vector (a list on the
    python backend, an ``int64`` array on numpy). Both backends produce
    bit-identical integers.
    """
    if block.backend == "numpy":
        return _shard_gain_deltas_np(block, sides)
    return _shard_gain_deltas_py(block, sides)


def _shard_gain_deltas_np(block, sides) -> Tuple[List[int], List[int]]:
    import numpy as np

    arrs = block.numpy_state()
    sides_np = np.asarray(sides, dtype=np.int64)
    own = sides_np[block.lo : block.lo + block.num_nodes]

    same = sides_np[arrs["f_idx"]] == own[arrs["f_row"]]
    contrib = np.where(same, 1, -1).astype(np.int64)
    fd = _segment_sums(np, contrib, arrs["f_ptr"])

    out_susp = _segment_sums(
        np, (sides_np[arrs["ro_idx"]] == 1).astype(np.int64), arrs["ro_ptr"]
    )
    in_legit = _segment_sums(
        np, (sides_np[arrs["ri_idx"]] == 0).astype(np.int64), arrs["ri_ptr"]
    )
    rd = (2 * own - 1) * (out_susp - in_legit)
    return fd.tolist(), rd.tolist()


def _shard_gain_deltas_py(block, sides) -> Tuple[List[int], List[int]]:
    fp, fi, op, oi, ip_, ii = block.hot()
    lo = block.lo
    m = block.num_nodes
    fd = [0] * m
    rd = [0] * m
    for r in range(m):
        s = sides[lo + r]
        acc = 0
        for i in range(fp[r], fp[r + 1]):
            acc += 1 if sides[fi[i]] == s else -1
        fd[r] = acc
        acc = 0
        if s:
            for i in range(op[r], op[r + 1]):
                if sides[oi[i]]:
                    acc += 1
            for i in range(ip_[r], ip_[r + 1]):
                if not sides[ii[i]]:
                    acc -= 1
        else:
            for i in range(op[r], op[r + 1]):
                if sides[oi[i]]:
                    acc -= 1
            for i in range(ip_[r], ip_[r + 1]):
                if not sides[ii[i]]:
                    acc += 1
        rd[r] = acc
    return fd, rd


def shard_cut_counts(block, sides: Sequence[int]) -> Tuple[int, int]:
    """Boundary-counter contributions of one shard block.

    Returns ``(f_cross_part, r_cross_part)``: cross friendships counted
    once per unordered pair via the *global* ``u < v`` dedup (so the
    per-block parts sum to the exact graph-wide ``f_cross`` with no
    halving step), and rejections cast by the block's side-0 nodes onto
    side-1 targets (each rejection counted once, at its caster's row).
    """
    if block.backend == "numpy":
        return _shard_cut_counts_np(block, sides)
    return _shard_cut_counts_py(block, sides)


def _shard_cut_counts_np(block, sides) -> Tuple[int, int]:
    import numpy as np

    arrs = block.numpy_state()
    sides_np = np.asarray(sides, dtype=np.int64)
    own = sides_np[block.lo : block.lo + block.num_nodes]
    f_row_global = arrs["f_row"] + block.lo
    f_cross = int(
        np.count_nonzero(
            (f_row_global < arrs["f_idx"])
            & (own[arrs["f_row"]] != sides_np[arrs["f_idx"]])
        )
    )
    r_cross = int(
        np.count_nonzero(
            (own[arrs["ro_row"]] == 0) & (sides_np[arrs["ro_idx"]] == 1)
        )
    )
    return f_cross, r_cross


def _shard_cut_counts_py(block, sides) -> Tuple[int, int]:
    fp, fi, op, oi, _, _ = block.hot()
    lo = block.lo
    f_cross = r_cross = 0
    for r in range(block.num_nodes):
        u = lo + r
        s = sides[u]
        for i in range(fp[r], fp[r + 1]):
            v = fi[i]
            if u < v and sides[v] != s:
                f_cross += 1
        if s == 0:
            for i in range(op[r], op[r + 1]):
                if sides[oi[i]] == 1:
                    r_cross += 1
    return f_cross, r_cross
