"""Batch kernels over the flat CSR arrays.

Every KL pass used to open with a scalar O(V+E) sweep — initial switch
gains for all unlocked nodes, plus a from-scratch recount whenever a
:class:`~repro.core.csr.PartitionState` is built. Those sweeps are
*embarrassingly per-edge*: each edge slot contributes an independent
±1/±k term to its row's total, which is exactly the shape numpy's
segment reductions handle in a handful of whole-array operations. This
module collects those batch kernels in one place:

* :func:`gain_deltas` — per-node friend-delta and rejection-delta (the
  two integers every gain formula is assembled from);
* :func:`heap_gains` — per-node float gains ``-(fd − k·rd)`` for the
  heap engine;
* :func:`recount_active` — the boundary counters ``f_cross``/``r_cross``
  and the side-1 population in one shot;
* :func:`active_in_rejections` — in-rejection counts restricted to
  active rejecters (Rejecto's member-evidence ordering);
* :func:`scaled_gain_bound` — the integer-scaled lifetime gain bound
  that sizes the FM bucket array;
* :func:`shard_gain_deltas` / :func:`shard_cut_counts` — the same
  per-node deltas and boundary counters evaluated over one contiguous
  CSR *shard block* (a worker-resident slice of the graph, see
  :mod:`repro.cluster.blocks`), so the distributed engine's per-pass
  gain rebuild runs as whole-array kernels on each worker instead of a
  scalar loop over dict records;
* :func:`weighted_gain_deltas` / :func:`weighted_heap_gains` /
  :func:`weighted_recount_active` — the weighted twins of the three
  kernels above for int64-weighted coarse graphs
  (:class:`~repro.core.csr.WeightedCSRGraph`);
* :func:`boundary_nodes` / :func:`weighted_boundary_nodes` — the cut
  frontier of a partition: every active node on the cut or with a
  positive switch gain, plus their active neighbours, which is where
  the boundary-only KL refinement (``KLConfig.frontier="boundary"``)
  seeds its tentative passes instead of bulk-loading all gains;
* :func:`heavy_edge_matching` / :func:`matching_to_mapping` /
  :func:`contract_arrays` — the multilevel coarsening step as flat-array
  kernels: mutual heaviest-neighbour matching in rounds, matching →
  coarse-id mapping, and edge/node-weight contraction via int64
  scatter-adds.

Dispatch follows the graph's ``backend`` attribute: ``"numpy"`` runs the
vectorized ``_np`` variants over zero-copy ``frombuffer`` views,
``"python"`` runs the scalar ``_py`` fallbacks. Both produce
**bit-identical** results — all quantities are integers (or single
float expressions over integers, identical elementwise in IEEE double),
so the engines never see which backend filled their arrays. The
property tests in ``tests/core/test_kernels.py`` pin each pair to each
other and to the scalar reference ``PartitionState.switch_gain``.

The unweighted kernels stay unweighted-only, and *float*-weighted
graphs stay off every batch path (float summation order is part of
their contract). Int64-weighted graphs are different: contraction of a
unit-weight augmented graph only ever **sums unit edges**, so coarse
weights are exact integers, integer sums are order-insensitive, and
the ``weighted_*`` kernels here are bit-identical across backends just
like the unweighted ones. That is what restores bucket-index and batch
eligibility to the weighted multilevel path.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "buffer_typecode",
    "buffer_tolist",
    "gain_deltas",
    "heap_gains",
    "boundary_nodes",
    "weighted_boundary_nodes",
    "recount_active",
    "active_in_rejections",
    "scaled_gain_bound",
    "shard_gain_deltas",
    "shard_cut_counts",
    "weighted_gain_deltas",
    "weighted_heap_gains",
    "weighted_recount_active",
    "heavy_edge_matching",
    "matching_to_mapping",
    "contract_arrays",
]


def buffer_typecode(buf) -> Optional[str]:
    """The ``array``-style typecode of a flat int64/float64 buffer.

    The CSR arrays historically were always ``array("q")``/``array("d")``;
    memory-mapped snapshots (:mod:`repro.core.storage`) introduce
    ``np.memmap`` segments and ``memoryview`` casts as drop-in storage.
    This normalizes all three to the one-letter typecode the dispatch
    checks care about (``None`` for anything unrecognized, e.g. a plain
    list).
    """
    code = getattr(buf, "typecode", None)  # array.array
    if code is not None:
        return code
    fmt = getattr(buf, "format", None)  # memoryview over an mmap
    if fmt in ("q", "d"):
        return fmt
    dtype = getattr(buf, "dtype", None)  # numpy ndarray / memmap
    if dtype is not None:
        return {"int64": "q", "float64": "d"}.get(dtype.name)
    return None


def buffer_tolist(buf) -> List:
    """``list(buf)`` with native Python elements.

    ``array.tolist``/``memoryview.tolist``/``ndarray.tolist`` all yield
    plain ``int``/``float`` items; a bare ``list(...)`` over a numpy
    buffer would yield ``np.int64`` scalars instead, which the pure-
    Python hot loops must never see (slower arithmetic, and list
    contents would differ by backend).
    """
    tolist = getattr(buf, "tolist", None)
    if tolist is not None:
        return tolist()
    return list(buf)


def _check_unweighted(csr) -> None:
    if csr.f_wt is not None:
        raise ValueError(
            "these batch kernels are unweighted-only; int64-weighted "
            "graphs use the weighted_* twins, float-weighted graphs use "
            "the scalar paths (float summation order is part of their "
            "contract)"
        )


def _check_int_weighted(csr) -> None:
    if csr.f_wt is None or buffer_typecode(csr.f_wt) != "q":
        raise ValueError(
            "weighted kernels require an int64-weighted graph "
            "(WeightedCSRGraph); float-weighted graphs keep the scalar "
            "paths, unweighted graphs use the plain kernels"
        )


def _check_not_float_weighted(csr) -> None:
    if csr.f_wt is not None and buffer_typecode(csr.f_wt) != "q":
        raise ValueError(
            "float-weighted graphs have no exact integer kernels; only "
            "unweighted and int64-weighted CSR graphs are supported"
        )


def _use_numpy(csr) -> bool:
    return csr.backend == "numpy"


def _np_state(view):
    """Numpy views of the CSR arrays plus the active mask and row ids."""
    import numpy as np

    csr = view.csr
    arrs = csr.numpy_arrays()
    rows = csr.numpy_rows()
    active = np.frombuffer(view.active, dtype=np.uint8).astype(bool)
    return np, arrs, rows, active


def _segment_sums(np, contrib, ptr):
    """Per-row sums of ``contrib`` under CSR ``ptr`` (empty rows -> 0)."""
    cumulative = np.zeros(len(contrib) + 1, dtype=np.int64)
    np.cumsum(contrib, out=cumulative[1:])
    return cumulative[ptr[1:]] - cumulative[ptr[:-1]]


# ----------------------------------------------------------------------
# Gain deltas
# ----------------------------------------------------------------------
def gain_deltas(view, sides: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Per-node ``(friend_delta, rejection_delta)`` of a switch.

    ``friend_delta[u]`` counts active friends on ``u``'s side minus
    active friends on the other side; ``rejection_delta[u]`` is
    ``(2·side(u)−1) · (out_susp(u) − in_legit(u))`` — the two integers
    the engines combine into ``gain(u) = -(fd − k·rd)`` and the scaled
    bucket index ``k_scaled·rd − fd·res``. Entries for inactive nodes
    are 0; entries for locked nodes are computed like any other (locks
    are the caller's concern).
    """
    csr = view.csr
    _check_unweighted(csr)
    if _use_numpy(csr):
        return _gain_deltas_np(view, sides)
    return _gain_deltas_py(view, sides)


def _gain_deltas_np(view, sides: Sequence[int]) -> Tuple[List[int], List[int]]:
    fd, rd = _gain_delta_arrays_np(*_np_state(view), sides)
    return fd.tolist(), rd.tolist()


def _gain_delta_arrays_np(np, arrs, rows, active, sides):
    """Array-returning core of :func:`_gain_deltas_np` (shared with the
    boundary-frontier kernel, which consumes the deltas as arrays)."""
    sides_np = np.asarray(sides, dtype=np.int64)
    f_row, ro_row, ri_row = rows

    act_v = active[arrs["f_idx"]]
    same = sides_np[arrs["f_idx"]] == sides_np[f_row]
    contrib = np.where(act_v, np.where(same, 1, -1), 0).astype(np.int64)
    fd = _segment_sums(np, contrib, arrs["f_ptr"])

    out_susp = _segment_sums(
        np,
        (active[arrs["ro_idx"]] & (sides_np[arrs["ro_idx"]] == 1)).astype(np.int64),
        arrs["ro_ptr"],
    )
    in_legit = _segment_sums(
        np,
        (active[arrs["ri_idx"]] & (sides_np[arrs["ri_idx"]] == 0)).astype(np.int64),
        arrs["ri_ptr"],
    )
    rd = (2 * sides_np - 1) * (out_susp - in_legit)

    zero = np.int64(0)
    fd = np.where(active, fd, zero)
    rd = np.where(active, rd, zero)
    return fd, rd


def _gain_deltas_py(view, sides: Sequence[int]) -> Tuple[List[int], List[int]]:
    csr = view.csr
    fp, fi, op, oi, ip_, ii = csr.hot()
    active = view.active
    n = csr.num_nodes
    fd = [0] * n
    rd = [0] * n
    for u in range(n):
        if not active[u]:
            continue
        s = sides[u]
        acc = 0
        for i in range(fp[u], fp[u + 1]):
            v = fi[i]
            if active[v]:
                acc += 1 if sides[v] == s else -1
        fd[u] = acc
        acc = 0
        if s:
            for i in range(op[u], op[u + 1]):
                v = oi[i]
                if active[v] and sides[v]:
                    acc += 1
            for i in range(ip_[u], ip_[u + 1]):
                w = ii[i]
                if active[w] and not sides[w]:
                    acc -= 1
        else:
            for i in range(op[u], op[u + 1]):
                v = oi[i]
                if active[v] and sides[v]:
                    acc -= 1
            for i in range(ip_[u], ip_[u + 1]):
                w = ii[i]
                if active[w] and not sides[w]:
                    acc += 1
        rd[u] = acc
    return fd, rd


def heap_gains(view, sides: Sequence[int], k: float) -> List[float]:
    """Per-node float gains ``-(fd − k·rd)``, the heap engine's initial
    index content. Bit-identical to ``PartitionState.switch_gain`` on
    active nodes: both evaluate the same single IEEE-double expression
    over the same integers."""
    fd, rd = gain_deltas(view, sides)
    return [-(fd[u] - k * rd[u]) for u in range(len(fd))]


# ----------------------------------------------------------------------
# Weighted kernels (int64-weighted coarse graphs)
# ----------------------------------------------------------------------
def weighted_gain_deltas(view, sides: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Weighted per-node ``(friend_delta, rejection_delta)`` of a switch.

    Exactly :func:`gain_deltas` with each edge contributing its int64
    weight instead of 1, so both entries stay exact integers and both
    backends are bit-identical. Requires an int64-weighted graph
    (:func:`_check_int_weighted`); entries for inactive nodes are 0.
    """
    csr = view.csr
    _check_int_weighted(csr)
    if _use_numpy(csr):
        return _weighted_gain_deltas_np(view, sides)
    return _weighted_gain_deltas_py(view, sides)


def _weighted_gain_deltas_np(view, sides) -> Tuple[List[int], List[int]]:
    fd, rd = _weighted_gain_delta_arrays_np(*_np_state(view), sides)
    return fd.tolist(), rd.tolist()


def _weighted_gain_delta_arrays_np(np, arrs, rows, active, sides):
    """Array-returning core of :func:`_weighted_gain_deltas_np`."""
    sides_np = np.asarray(sides, dtype=np.int64)
    f_row, _, _ = rows

    act_v = active[arrs["f_idx"]]
    same = sides_np[arrs["f_idx"]] == sides_np[f_row]
    contrib = np.where(act_v, np.where(same, arrs["f_wt"], -arrs["f_wt"]), 0)
    fd = _segment_sums(np, contrib, arrs["f_ptr"])

    out_susp = _segment_sums(
        np,
        np.where(
            active[arrs["ro_idx"]] & (sides_np[arrs["ro_idx"]] == 1),
            arrs["ro_wt"],
            0,
        ),
        arrs["ro_ptr"],
    )
    in_legit = _segment_sums(
        np,
        np.where(
            active[arrs["ri_idx"]] & (sides_np[arrs["ri_idx"]] == 0),
            arrs["ri_wt"],
            0,
        ),
        arrs["ri_ptr"],
    )
    rd = (2 * sides_np - 1) * (out_susp - in_legit)

    zero = np.int64(0)
    fd = np.where(active, fd, zero)
    rd = np.where(active, rd, zero)
    return fd, rd


def _weighted_gain_deltas_py(view, sides) -> Tuple[List[int], List[int]]:
    csr = view.csr
    fp, fi, op, oi, ip_, ii = csr.hot()
    fw, ow, iw = csr.hot_weights()
    active = view.active
    n = csr.num_nodes
    fd = [0] * n
    rd = [0] * n
    for u in range(n):
        if not active[u]:
            continue
        s = sides[u]
        acc = 0
        for i in range(fp[u], fp[u + 1]):
            v = fi[i]
            if active[v]:
                acc += fw[i] if sides[v] == s else -fw[i]
        fd[u] = acc
        acc = 0
        if s:
            for i in range(op[u], op[u + 1]):
                v = oi[i]
                if active[v] and sides[v]:
                    acc += ow[i]
            for i in range(ip_[u], ip_[u + 1]):
                w = ii[i]
                if active[w] and not sides[w]:
                    acc -= iw[i]
        else:
            for i in range(op[u], op[u + 1]):
                v = oi[i]
                if active[v] and sides[v]:
                    acc -= ow[i]
            for i in range(ip_[u], ip_[u + 1]):
                w = ii[i]
                if active[w] and not sides[w]:
                    acc += iw[i]
        rd[u] = acc
    return fd, rd


def weighted_heap_gains(view, sides: Sequence[int], k: float) -> List[float]:
    """Weighted per-node float gains ``-(fd − k·rd)`` for the heap
    engine. ``fd``/``rd`` are exact integers, so this is the same single
    IEEE-double expression as the scalar ``switch_gain`` — bit-identical
    across backends."""
    fd, rd = weighted_gain_deltas(view, sides)
    return [-(fd[u] - k * rd[u]) for u in range(len(fd))]


def weighted_recount_active(view, sides: Sequence[int]) -> Tuple[int, int, int]:
    """Weighted ``(f_cross, r_cross, side1_population)`` over the active
    mask: cross friendships sum their int64 weights once per unordered
    pair, cast rejections sum theirs at the caster's row, and the third
    entry is the plain (unweighted) active side-1 node count that
    ``PartitionState.side_sizes`` tracks."""
    csr = view.csr
    _check_int_weighted(csr)
    if _use_numpy(csr):
        return _weighted_recount_np(view, sides)
    return _weighted_recount_py(view, sides)


def _weighted_recount_np(view, sides) -> Tuple[int, int, int]:
    np, arrs, rows, active = _np_state(view)
    sides_np = np.asarray(sides, dtype=np.int64)
    f_row, ro_row, _ = rows
    f_idx, ro_idx = arrs["f_idx"], arrs["ro_idx"]
    f_mask = (
        (f_row < f_idx)
        & active[f_row]
        & active[f_idx]
        & (sides_np[f_row] != sides_np[f_idx])
    )
    r_mask = (
        active[ro_row]
        & active[ro_idx]
        & (sides_np[ro_row] == 0)
        & (sides_np[ro_idx] == 1)
    )
    f_cross = int(arrs["f_wt"][f_mask].sum())
    r_cross = int(arrs["ro_wt"][r_mask].sum())
    ones = int(np.count_nonzero(active & (sides_np == 1)))
    return f_cross, r_cross, ones


def _weighted_recount_py(view, sides) -> Tuple[int, int, int]:
    csr = view.csr
    fp, fi, op, oi, _, _ = csr.hot()
    fw, ow, _ = csr.hot_weights()
    active = view.active
    f_cross = r_cross = ones = 0
    for u in range(csr.num_nodes):
        if not active[u]:
            continue
        s = sides[u]
        ones += s
        for i in range(fp[u], fp[u + 1]):
            v = fi[i]
            if u < v and active[v] and sides[v] != s:
                f_cross += fw[i]
        if s == 0:
            for i in range(op[u], op[u + 1]):
                v = oi[i]
                if active[v] and sides[v] == 1:
                    r_cross += ow[i]
    return f_cross, r_cross, ones


# ----------------------------------------------------------------------
# Boundary frontier (boundary-only KL refinement)
# ----------------------------------------------------------------------
def boundary_nodes(view, sides: Sequence[int], k: float) -> List[int]:
    """The cut frontier: ascending active node ids worth refining first.

    A node is a frontier *seed* when it is active and (a) incident to an
    active cross-side friendship, or (b) has a positive switch gain at
    ``k`` (``k·rd > fd``, which catches every rejection-driven
    profitable switch — e.g. a side-0 node whose in-rejections would
    start crossing once it switched — with no crossing edge required).
    Endpoints of crossing *rejections* are deliberately not seeds: a
    converged friend-spam cut crosses nearly every rejection edge, so
    that clause would blanket the graph, and a crossing-rejection
    endpoint whose switch gain is negative has nothing to offer the
    greedy prefix anyway. The returned frontier is the seeds plus their
    active neighbours across all three layers — one switch deep of
    look-ahead, so a seed's first move finds its chain partners already
    in scope.

    Entries for locked nodes are *not* filtered (locks are the caller's
    concern, as with :func:`gain_deltas`). Both backends return the
    identical sorted list: membership is decided by integer comparisons
    plus the single IEEE-double comparison ``k·rd > fd`` over the same
    exact integers.
    """
    csr = view.csr
    _check_unweighted(csr)
    if _use_numpy(csr):
        return _boundary_nodes_np(view, sides, k, weighted=False)
    return _boundary_nodes_py(view, sides, k, weighted=False)


def weighted_boundary_nodes(view, sides: Sequence[int], k: float) -> List[int]:
    """Weighted twin of :func:`boundary_nodes` for int64-weighted coarse
    graphs. Cut membership is structural (every weight is a positive
    integer, so a crossing edge crosses regardless of weight) and the
    positive-gain clause uses the weighted deltas — still exact
    integers, so both backends agree bit for bit."""
    csr = view.csr
    _check_int_weighted(csr)
    if _use_numpy(csr):
        return _boundary_nodes_np(view, sides, k, weighted=True)
    return _boundary_nodes_py(view, sides, k, weighted=True)


def _boundary_nodes_np(view, sides, k, weighted):
    np, arrs, rows, active = _np_state(view)
    sides_np = np.asarray(sides, dtype=np.int64)
    f_row, ro_row, ri_row = rows
    f_idx, ro_idx, ri_idx = arrs["f_idx"], arrs["ro_idx"], arrs["ri_idx"]
    n = len(active)

    seed = np.zeros(n, dtype=bool)
    # (a) cross-side friendships: symmetric storage marks both endpoints.
    cross = active[f_row] & active[f_idx] & (sides_np[f_row] != sides_np[f_idx])
    seed[f_row[cross]] = True
    # (b) positive switch gain: -(fd - k*rd) > 0 <=> k*rd > fd.
    if weighted:
        fd, rd = _weighted_gain_delta_arrays_np(np, arrs, rows, active, sides)
    else:
        fd, rd = _gain_delta_arrays_np(np, arrs, rows, active, sides)
    seed |= active & (k * rd > fd)

    # One-switch look-ahead: seeds plus their active neighbours. The
    # rejection layers mirror each other, so row->idx per layer covers
    # both directions of every rejection edge.
    out = seed.copy()
    for row, idx in ((f_row, f_idx), (ro_row, ro_idx), (ri_row, ri_idx)):
        mark = seed[row] & active[idx]
        out[idx[mark]] = True
    out &= active
    return np.nonzero(out)[0].tolist()


def _boundary_nodes_py(view, sides, k, weighted):
    csr = view.csr
    fp, fi, op, oi, ip_, ii = csr.hot()
    active = view.active
    n = csr.num_nodes
    if weighted:
        fd, rd = _weighted_gain_deltas_py(view, sides)
    else:
        fd, rd = _gain_deltas_py(view, sides)

    seed = bytearray(n)
    for u in range(n):
        if not active[u]:
            continue
        if k * rd[u] > fd[u]:
            seed[u] = 1
            continue
        s = sides[u]
        for i in range(fp[u], fp[u + 1]):
            v = fi[i]
            if active[v] and sides[v] != s:
                seed[u] = 1
                break

    out = bytearray(seed)
    for u in range(n):
        if not seed[u]:
            continue
        for ptr, idx in ((fp, fi), (op, oi), (ip_, ii)):
            for i in range(ptr[u], ptr[u + 1]):
                v = idx[i]
                if active[v]:
                    out[v] = 1
    return [u for u in range(n) if out[u]]


# ----------------------------------------------------------------------
# Boundary counters
# ----------------------------------------------------------------------
def recount_active(view, sides: Sequence[int]) -> Tuple[int, int, int]:
    """``(f_cross, r_cross, side1_population)`` over the active mask.

    ``f_cross`` counts active-active cross friendships once per
    unordered pair; ``r_cross`` counts rejections cast by active side-0
    nodes onto active side-1 nodes — the exact quantities
    :meth:`PartitionState.recount` re-derives.
    """
    csr = view.csr
    _check_unweighted(csr)
    if _use_numpy(csr):
        return _recount_np(view, sides)
    return _recount_py(view, sides)


def _recount_np(view, sides: Sequence[int]) -> Tuple[int, int, int]:
    np, arrs, rows, active = _np_state(view)
    sides_np = np.asarray(sides, dtype=np.int64)
    f_row, ro_row, _ = rows
    f_idx, ro_idx = arrs["f_idx"], arrs["ro_idx"]
    f_cross = int(
        np.count_nonzero(
            (f_row < f_idx)
            & active[f_row]
            & active[f_idx]
            & (sides_np[f_row] != sides_np[f_idx])
        )
    )
    r_cross = int(
        np.count_nonzero(
            active[ro_row]
            & active[ro_idx]
            & (sides_np[ro_row] == 0)
            & (sides_np[ro_idx] == 1)
        )
    )
    ones = int(np.count_nonzero(active & (sides_np == 1)))
    return f_cross, r_cross, ones


def _recount_py(view, sides: Sequence[int]) -> Tuple[int, int, int]:
    csr = view.csr
    fp, fi, op, oi, _, _ = csr.hot()
    active = view.active
    f_cross = r_cross = ones = 0
    for u in range(csr.num_nodes):
        if not active[u]:
            continue
        s = sides[u]
        ones += s
        for i in range(fp[u], fp[u + 1]):
            v = fi[i]
            if u < v and active[v] and sides[v] != s:
                f_cross += 1
        if s == 0:
            for i in range(op[u], op[u + 1]):
                v = oi[i]
                if active[v] and sides[v] == 1:
                    r_cross += 1
    return f_cross, r_cross, ones


def active_in_rejections(view) -> List[int]:
    """Per-node in-rejection counts restricted to active rejecters —
    ``view.rejections_received(u)`` for every node in one sweep."""
    csr = view.csr
    _check_unweighted(csr)
    if _use_numpy(csr):
        np, arrs, _, active = _np_state(view)
        contrib = active[arrs["ri_idx"]].astype(np.int64)
        return _segment_sums(np, contrib, arrs["ri_ptr"]).tolist()
    _, _, _, _, ip_, ii = csr.hot()
    active = view.active
    return [
        sum(1 for i in range(ip_[u], ip_[u + 1]) if active[ii[i]])
        for u in range(csr.num_nodes)
    ]


# ----------------------------------------------------------------------
# Gain bounds
# ----------------------------------------------------------------------
def scaled_gain_bound(csr, resolution: int, k_scaled: int) -> int:
    """Graph-wide bound on the integer-scaled gain magnitude,
    ``max_u deg_F(u)·res + k_scaled·deg_R(u)`` — with *weighted* degrees
    on int64-weighted graphs (each edge counts its weight), so the same
    bound sizes the weighted bucket array exactly.

    Computed over *all* nodes: full-graph degrees bound the
    active-filtered ones, so one cached value stays valid for every
    residual view and every pass of a solve (a looser bound only sizes
    the bucket array — it never changes pop order, because gains are
    offset-shifted uniformly). Prefer :meth:`CSRGraph.bucket_gain_bound`,
    which memoizes this per ``(resolution, k_scaled)`` across the whole
    ``k``-sweep and Rejecto's rounds.
    """
    _check_not_float_weighted(csr)
    if csr.num_nodes == 0:
        return 0
    weighted = csr.f_wt is not None
    if _use_numpy(csr):
        import numpy as np

        arrs = csr.numpy_arrays()
        if weighted:
            deg_f = _segment_sums(np, arrs["f_wt"], arrs["f_ptr"])
            deg_r = _segment_sums(np, arrs["ro_wt"], arrs["ro_ptr"])
            deg_r = deg_r + _segment_sums(np, arrs["ri_wt"], arrs["ri_ptr"])
        else:
            deg_f = np.diff(arrs["f_ptr"])
            deg_r = np.diff(arrs["ro_ptr"]) + np.diff(arrs["ri_ptr"])
        return int((deg_f * resolution + k_scaled * deg_r).max())
    fp, _, op, _, ip_, _ = csr.hot()
    weights = csr.hot_weights()
    bound = 0
    for u in range(csr.num_nodes):
        if weighted:
            fw, ow, iw = weights
            deg_f = sum(fw[fp[u] : fp[u + 1]])
            deg_r = sum(ow[op[u] : op[u + 1]]) + sum(iw[ip_[u] : ip_[u + 1]])
        else:
            deg_f = fp[u + 1] - fp[u]
            deg_r = (op[u + 1] - op[u]) + (ip_[u + 1] - ip_[u])
        weight = deg_f * resolution + k_scaled * deg_r
        if weight > bound:
            bound = weight
    return bound


# ----------------------------------------------------------------------
# Shard-block kernels (distributed engine, Section V)
# ----------------------------------------------------------------------
#: Duck-typed protocol of a shard block: ``lo``/``num_nodes`` delimit the
#: contiguous global node range, ``backend`` selects the variant,
#: ``hot()`` yields six plain-list arrays ``(f_ptr, f_idx, ro_ptr,
#: ro_idx, ri_ptr, ri_idx)`` with *local* (rebased-to-0) pointers and
#: *global* neighbour ids, and ``numpy_state()`` yields the matching
#: int64 views plus cached per-slot local row ids ``f_row``/``ro_row``/
#: ``ri_row``. ``repro.cluster.blocks.ShardBlock`` implements it.


def shard_gain_deltas(block, sides: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Per-node ``(friend_delta, rejection_delta)`` over one shard block.

    Exactly :func:`gain_deltas` restricted to the block's contiguous
    node range ``[lo, lo + num_nodes)`` with every node active — the
    cluster engine always partitions the *full* graph, so no mask is
    carried. ``sides`` is the full global side vector (a list on the
    python backend, an ``int64`` array on numpy). Both backends produce
    bit-identical integers.
    """
    if block.backend == "numpy":
        return _shard_gain_deltas_np(block, sides)
    return _shard_gain_deltas_py(block, sides)


def _shard_gain_deltas_np(block, sides) -> Tuple[List[int], List[int]]:
    import numpy as np

    arrs = block.numpy_state()
    sides_np = np.asarray(sides, dtype=np.int64)
    own = sides_np[block.lo : block.lo + block.num_nodes]

    same = sides_np[arrs["f_idx"]] == own[arrs["f_row"]]
    contrib = np.where(same, 1, -1).astype(np.int64)
    fd = _segment_sums(np, contrib, arrs["f_ptr"])

    out_susp = _segment_sums(
        np, (sides_np[arrs["ro_idx"]] == 1).astype(np.int64), arrs["ro_ptr"]
    )
    in_legit = _segment_sums(
        np, (sides_np[arrs["ri_idx"]] == 0).astype(np.int64), arrs["ri_ptr"]
    )
    rd = (2 * own - 1) * (out_susp - in_legit)
    return fd.tolist(), rd.tolist()


def _shard_gain_deltas_py(block, sides) -> Tuple[List[int], List[int]]:
    fp, fi, op, oi, ip_, ii = block.hot()
    lo = block.lo
    m = block.num_nodes
    fd = [0] * m
    rd = [0] * m
    for r in range(m):
        s = sides[lo + r]
        acc = 0
        for i in range(fp[r], fp[r + 1]):
            acc += 1 if sides[fi[i]] == s else -1
        fd[r] = acc
        acc = 0
        if s:
            for i in range(op[r], op[r + 1]):
                if sides[oi[i]]:
                    acc += 1
            for i in range(ip_[r], ip_[r + 1]):
                if not sides[ii[i]]:
                    acc -= 1
        else:
            for i in range(op[r], op[r + 1]):
                if sides[oi[i]]:
                    acc -= 1
            for i in range(ip_[r], ip_[r + 1]):
                if not sides[ii[i]]:
                    acc += 1
        rd[r] = acc
    return fd, rd


def shard_cut_counts(block, sides: Sequence[int]) -> Tuple[int, int]:
    """Boundary-counter contributions of one shard block.

    Returns ``(f_cross_part, r_cross_part)``: cross friendships counted
    once per unordered pair via the *global* ``u < v`` dedup (so the
    per-block parts sum to the exact graph-wide ``f_cross`` with no
    halving step), and rejections cast by the block's side-0 nodes onto
    side-1 targets (each rejection counted once, at its caster's row).
    """
    if block.backend == "numpy":
        return _shard_cut_counts_np(block, sides)
    return _shard_cut_counts_py(block, sides)


def _shard_cut_counts_np(block, sides) -> Tuple[int, int]:
    import numpy as np

    arrs = block.numpy_state()
    sides_np = np.asarray(sides, dtype=np.int64)
    own = sides_np[block.lo : block.lo + block.num_nodes]
    f_row_global = arrs["f_row"] + block.lo
    f_cross = int(
        np.count_nonzero(
            (f_row_global < arrs["f_idx"])
            & (own[arrs["f_row"]] != sides_np[arrs["f_idx"]])
        )
    )
    r_cross = int(
        np.count_nonzero(
            (own[arrs["ro_row"]] == 0) & (sides_np[arrs["ro_idx"]] == 1)
        )
    )
    return f_cross, r_cross


def _shard_cut_counts_py(block, sides) -> Tuple[int, int]:
    fp, fi, op, oi, _, _ = block.hot()
    lo = block.lo
    f_cross = r_cross = 0
    for r in range(block.num_nodes):
        u = lo + r
        s = sides[u]
        for i in range(fp[r], fp[r + 1]):
            v = fi[i]
            if u < v and sides[v] != s:
                f_cross += 1
        if s == 0:
            for i in range(op[r], op[r + 1]):
                if sides[oi[i]] == 1:
                    r_cross += 1
    return f_cross, r_cross


# ----------------------------------------------------------------------
# Multilevel coarsening (heavy-edge matching + contraction)
# ----------------------------------------------------------------------
def heavy_edge_matching(
    csr,
    priority: Sequence[int],
    locked: Optional[Sequence[bool]] = None,
    rounds: int = 4,
) -> List[int]:
    """Mutual heaviest-neighbour matching over the friendship layer.

    ``priority`` must be a permutation of ``range(num_nodes)`` — it
    breaks weight ties deterministically via the composite int64 key
    ``weight·n + priority[v]`` (unique per neighbour, so the per-row max
    is unambiguous and both backends agree bit-for-bit). In each round
    every free node picks its heaviest free neighbour; mutual picks
    ``cand[u] == v and cand[v] == u`` are matched and removed, and the
    rounds repeat until no pair forms (at most ``rounds`` times). A
    final greedy cleanup then resolves the non-mutual leftovers —
    mutual-only rounds stall on stars, where every leaf picks the hub
    but the hub answers one leaf per round: candidates are recomputed
    once more under the current free mask and awarded in ascending node
    order, a serial O(V) loop both backends run identically.
    Nodes flagged in ``locked`` are never matched — they survive
    coarsening as singletons so lock projection stays trivial. Returns
    ``match`` with ``match[u] == u`` for unmatched nodes. Works on
    unweighted (unit-weight) and int64-weighted graphs.
    """
    _check_not_float_weighted(csr)
    n = csr.num_nodes
    if len(priority) != n or sorted(priority) != list(range(n)):
        raise ValueError("priority must be a permutation of range(num_nodes)")
    if _use_numpy(csr):
        return _heavy_edge_matching_np(csr, priority, locked, rounds)
    return _heavy_edge_matching_py(csr, priority, locked, rounds)


def _heavy_edge_matching_py(csr, priority, locked, rounds) -> List[int]:
    fp, fi, *_ = csr.hot()
    weights = csr.hot_weights()
    fw = weights[0] if weights is not None else None
    n = csr.num_nodes
    free = [True] * n
    if locked is not None:
        for u in range(n):
            if locked[u]:
                free[u] = False
    match = list(range(n))
    cand = [-1] * n
    for _ in range(rounds):
        for u in range(n):
            best_key = -1
            best_v = -1
            if free[u]:
                for i in range(fp[u], fp[u + 1]):
                    v = fi[i]
                    if v == u or not free[v]:
                        continue
                    key = (fw[i] if fw is not None else 1) * n + priority[v]
                    if key > best_key:
                        best_key = key
                        best_v = v
            cand[u] = best_v
        paired = 0
        for u in range(n):
            v = cand[u]
            if v > u and cand[v] == u:
                match[u] = v
                match[v] = u
                free[u] = free[v] = False
                paired += 1
        if paired == 0:
            break
    # Greedy cleanup: candidates under the final free mask, resolved
    # serially in ascending node order.
    for u in range(n):
        best_key = -1
        best_v = -1
        if free[u]:
            for i in range(fp[u], fp[u + 1]):
                v = fi[i]
                if v == u or not free[v]:
                    continue
                key = (fw[i] if fw is not None else 1) * n + priority[v]
                if key > best_key:
                    best_key = key
                    best_v = v
        cand[u] = best_v
    for u in range(n):
        if not free[u]:
            continue
        v = cand[u]
        if v >= 0 and free[v]:
            match[u] = v
            match[v] = u
            free[u] = free[v] = False
    return match


def _heavy_edge_matching_np(csr, priority, locked, rounds) -> List[int]:
    import numpy as np

    arrs = csr.numpy_arrays()
    f_row, _, _ = csr.numpy_rows()
    f_ptr, f_idx = arrs["f_ptr"], arrs["f_idx"]
    n = csr.num_nodes
    pr = np.asarray(priority, dtype=np.int64)
    inv = np.empty(n, dtype=np.int64)
    inv[pr] = np.arange(n, dtype=np.int64)
    if "f_wt" in arrs:
        keys_base = arrs["f_wt"] * n + pr[f_idx]
    else:
        keys_base = n + pr[f_idx]
    free = np.ones(n, dtype=bool)
    if locked is not None:
        free &= ~np.asarray(locked, dtype=bool)
    match = np.arange(n, dtype=np.int64)
    ids = np.arange(n, dtype=np.int64)
    nonempty = np.diff(f_ptr) > 0
    starts = f_ptr[:-1][nonempty]
    row_max = np.empty(n, dtype=np.int64)
    for _ in range(rounds):
        valid = free[f_row] & free[f_idx] & (f_row != f_idx)
        keys = np.where(valid, keys_base, -1)
        row_max.fill(-1)
        if len(starts):
            row_max[nonempty] = np.maximum.reduceat(keys, starts)
        row_max[~free] = -1
        cand = np.where(row_max >= 0, inv[row_max % n], -1)
        cand_safe = np.where(cand >= 0, cand, 0)
        mutual = (cand > ids) & (cand[cand_safe] == ids)
        us = ids[mutual]
        if not len(us):
            break
        vs = cand[us]
        match[us] = vs
        match[vs] = us
        free[us] = False
        free[vs] = False
    # Greedy cleanup: one more vectorized candidate computation, then
    # the same ascending-node-order serial resolution as the python
    # fallback (free-mask state is identical, so the results are too).
    valid = free[f_row] & free[f_idx] & (f_row != f_idx)
    keys = np.where(valid, keys_base, -1)
    row_max.fill(-1)
    if len(starts):
        row_max[nonempty] = np.maximum.reduceat(keys, starts)
    row_max[~free] = -1
    cand = np.where(row_max >= 0, inv[row_max % n], -1)
    free_list = free.tolist()
    cand_list = cand.tolist()
    match_list = match.tolist()
    for u in range(n):
        if not free_list[u]:
            continue
        v = cand_list[u]
        if v >= 0 and free_list[v]:
            match_list[u] = v
            match_list[v] = u
            free_list[u] = free_list[v] = False
    return match_list


def matching_to_mapping(match: Sequence[int], backend: str) -> Tuple[List[int], int]:
    """Collapse a matching into ``(mapping, num_coarse)`` where
    ``mapping[u]`` is ``u``'s coarse node id: the rank of the pair
    representative ``min(u, match[u])`` among all representatives, so
    coarse ids follow fine-node order and both backends agree exactly."""
    if backend == "numpy":
        import numpy as np

        reps = np.minimum(
            np.arange(len(match), dtype=np.int64),
            np.asarray(match, dtype=np.int64),
        )
        uniq, inverse = np.unique(reps, return_inverse=True)
        return inverse.tolist(), len(uniq)
    mapping = [0] * len(match)
    next_id = 0
    for u, v in enumerate(match):
        if v >= u:
            mapping[u] = next_id
            if v > u:
                mapping[v] = next_id
            next_id += 1
    return mapping, next_id


def _to_q(np, arr):
    out = array("q")
    out.frombytes(np.ascontiguousarray(arr, dtype=np.int64).tobytes())
    return out


def contract_arrays(csr, mapping: Sequence[int], num_coarse: int) -> Tuple:
    """Contract ``csr`` under ``mapping`` into flat int64 coarse arrays.

    Returns the ten buffers a :class:`~repro.core.csr.WeightedCSRGraph`
    is built from, in constructor order: ``(f_ptr, f_idx, ro_ptr,
    ro_idx, ri_ptr, ri_idx, f_wt, ro_wt, ri_wt, node_weight)``. Each
    coarse edge weight is the exact int64 sum of the fine slots that
    map onto it (unit weight 1 on unweighted inputs); self-loops
    (``mapping[u] == mapping[v]``) are dropped, rows come out sorted
    ascending, and node weights accumulate per coarse node (unit on
    plain graphs). The numpy path runs ``np.unique`` + ``np.add.at``
    scatter-adds per layer; the python path sums into per-row dicts —
    both exact integers, hence bit-identical.
    """
    _check_not_float_weighted(csr)
    if _use_numpy(csr):
        return _contract_np(csr, mapping, num_coarse)
    return _contract_py(csr, mapping, num_coarse)


def _contract_np(csr, mapping, num_coarse):
    import numpy as np

    arrs = csr.numpy_arrays()
    f_row, ro_row, ri_row = csr.numpy_rows()
    mp = np.asarray(mapping, dtype=np.int64)

    def layer(row, idx, wts):
        cu = mp[row]
        cv = mp[idx]
        keep = cu != cv
        key = cu[keep] * num_coarse + cv[keep]
        uniq, inverse = np.unique(key, return_inverse=True)
        if wts is None:
            sums = np.bincount(inverse, minlength=len(uniq)).astype(np.int64)
        else:
            sums = np.zeros(len(uniq), dtype=np.int64)
            np.add.at(sums, inverse, wts[keep])
        counts = np.bincount(uniq // num_coarse, minlength=num_coarse)
        ptr = np.zeros(num_coarse + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        return ptr, uniq % num_coarse, sums

    f_ptr, f_idx, f_wt = layer(f_row, arrs["f_idx"], arrs.get("f_wt"))
    ro_ptr, ro_idx, ro_wt = layer(ro_row, arrs["ro_idx"], arrs.get("ro_wt"))
    ri_ptr, ri_idx, ri_wt = layer(ri_row, arrs["ri_idx"], arrs.get("ri_wt"))

    nw = getattr(csr, "node_weight", None)
    if nw is None:
        coarse_nw = np.bincount(mp, minlength=num_coarse).astype(np.int64)
    else:
        coarse_nw = np.zeros(num_coarse, dtype=np.int64)
        np.add.at(coarse_nw, mp, np.frombuffer(nw, dtype=np.int64))
    return (
        _to_q(np, f_ptr),
        _to_q(np, f_idx),
        _to_q(np, ro_ptr),
        _to_q(np, ro_idx),
        _to_q(np, ri_ptr),
        _to_q(np, ri_idx),
        _to_q(np, f_wt),
        _to_q(np, ro_wt),
        _to_q(np, ri_wt),
        _to_q(np, coarse_nw),
    )


def _contract_py(csr, mapping, num_coarse):
    fp, fi, op, oi, ip_, ii = csr.hot()
    weights = csr.hot_weights()
    fw, ow, iw = weights if weights is not None else (None, None, None)
    n = csr.num_nodes

    def pack(rows):
        ptr = array("q", [0]) * (num_coarse + 1)
        idx = array("q")
        wt = array("q")
        total = 0
        for cu in range(num_coarse):
            row = rows[cu]
            total += len(row)
            ptr[cu + 1] = total
            for cv in sorted(row):
                idx.append(cv)
                wt.append(row[cv])
        return ptr, idx, wt

    f_rows = [dict() for _ in range(num_coarse)]
    ro_rows = [dict() for _ in range(num_coarse)]
    ri_rows = [dict() for _ in range(num_coarse)]
    for u in range(n):
        cu = mapping[u]
        for rows, ptr_a, idx_a, wt_a in (
            (f_rows, fp, fi, fw),
            (ro_rows, op, oi, ow),
            (ri_rows, ip_, ii, iw),
        ):
            acc = rows[cu]
            for i in range(ptr_a[u], ptr_a[u + 1]):
                cv = mapping[idx_a[i]]
                if cv == cu:
                    continue
                acc[cv] = acc.get(cv, 0) + (wt_a[i] if wt_a is not None else 1)

    nw = getattr(csr, "node_weight", None)
    coarse_nw = array("q", [0]) * num_coarse
    for u in range(n):
        coarse_nw[mapping[u]] += nw[u] if nw is not None else 1
    f_ptr, f_idx, f_wt = pack(f_rows)
    ro_ptr, ro_idx, ro_wt = pack(ro_rows)
    ri_ptr, ri_idx, ri_wt = pack(ri_rows)
    return (
        f_ptr,
        f_idx,
        ro_ptr,
        ro_idx,
        ri_ptr,
        ri_idx,
        f_wt,
        ro_wt,
        ri_wt,
        coarse_nw,
    )
