"""Minimum Aggregate Acceptance Rate (MAAR) cut solver.

Section IV-B formulates friend-spammer detection as finding the cut
``C* = ⟨U*, Ū*⟩`` minimizing the aggregate acceptance rate of the friend
requests from ``U*`` to ``Ū*`` — an NP-hard problem (reduction from
MIN-RATIO-CUT). Theorem 1 shows the MAAR cut is the minimizer of the
*linear* objective ``|F(Ū,U)| − k*·|R⃗⟨Ū,U⟩|`` at ``k*`` equal to the
optimal friends-to-rejections ratio. Since ``k*`` is unknown, the solver
sweeps ``k`` through a geometric sequence, runs the extended KL search
for each value, and keeps the cut with the lowest aggregate acceptance
rate (Section IV-D).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import random

from .csr import CSRView, PartitionState
from .graph import AugmentedSocialGraph
from .kl import KLConfig, KLStats, extended_kl, extended_kl_state
from .objectives import LEGITIMATE, SUSPICIOUS
from .parallel import parallel_map, warn_jobs_ignored
from .partition import Partition

logger = logging.getLogger(__name__)

__all__ = [
    "MAARConfig",
    "KCandidate",
    "MAARResult",
    "check_seeds",
    "geometric_k_sequence",
    "initial_partition",
    "solve_maar",
    "sweep_k_states",
]


def check_seeds(
    num_nodes: int,
    legit_seeds: Sequence[int] = (),
    spammer_seeds: Sequence[int] = (),
) -> None:
    """Validate seed lists against a graph of ``num_nodes`` users.

    Rejects ids outside ``[0, num_nodes)`` — a negative id would
    otherwise wrap around via Python indexing and silently pin the
    *wrong* node — and rejects nodes listed as both legitimate and
    spammer seeds, which previously resolved to SUSPICIOUS merely
    because the spammer loop ran last.
    """
    for name, seeds in (
        ("legit_seeds", legit_seeds),
        ("spammer_seeds", spammer_seeds),
    ):
        for u in seeds:
            if not 0 <= u < num_nodes:
                raise ValueError(
                    f"{name} contains node id {u}, out of range for a "
                    f"graph with {num_nodes} nodes"
                )
    overlap = set(legit_seeds) & set(spammer_seeds)
    if overlap:
        raise ValueError(
            "seeds listed as both legitimate and spammer: "
            f"{sorted(overlap)}"
        )


def geometric_k_sequence(k_min: float, factor: float, steps: int) -> List[float]:
    """The geometric grid ``k_min · factor^i`` for ``i`` in ``[0, steps)``."""
    if k_min <= 0:
        raise ValueError(f"k_min must be positive, got {k_min}")
    if factor <= 1:
        raise ValueError(f"factor must exceed 1, got {factor}")
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    return [k_min * factor**i for i in range(steps)]


@dataclass
class MAARConfig:
    """Configuration of the MAAR sweep.

    Attributes
    ----------
    k_min, k_factor, k_steps:
        The geometric ``k`` grid. Defaults cover ``1/8 .. 64``, a ratio
        range wide enough for rejection rates between ~2% and ~90%, and
        every value is a multiple of 1/8 so the FM bucket list indexes
        gains exactly.
    init:
        Initial-partition strategy: ``"rejection"`` places every node
        that has received at least one rejection on the suspicious side
        (a strong, deterministic warm start); ``"all_legitimate"`` starts
        from the empty suspicious region; ``"random"`` assigns side 1
        with probability ``random_fraction``.
    min_suspicious:
        A cut is a valid spammer candidate only if the suspicious region
        holds at least this many nodes and at least one cross rejection.
    max_suspicious_fraction:
        A cut is valid only if the suspicious region holds at most this
        fraction of the nodes. Guards against degenerate *inverted*
        cuts that mark almost the whole graph suspicious, leaving a few
        rejection-casting users outside — such cuts can have a
        deceptively low acceptance rate. Seeds (Section IV-F) rule the
        same cuts out; the fraction guard covers seedless runs. The
        default (0.6) tolerates the paper's 1:1 stress workloads, where
        the fake region plus a few misplaced users can slightly exceed
        half of the graph.
    warm_start:
        When ``True``, each ``k`` step starts from the previous step's
        partition rather than from the initial partition; faster, but
        couples the steps.
    min_evidence:
        Minimum average rejection evidence — ``r_cross`` divided by the
        suspicious region's size — for a valid candidate. The paper's
        premise is that spammers receive a *significant* number of
        rejections; in sparse settings (e.g. single-day shards of the
        Section VII deployment) a handful of legitimate users whose only
        activity was one rejected request would otherwise form a
        zero-acceptance cut. Default 0 keeps the paper's plain
        formulation.
    refine_rounds:
        Optional Dinkelbach-style refinement after the sweep (an
        extension beyond the paper): repeatedly re-run the KL search at
        ``k`` equal to the best cut's own friends-to-rejections ratio,
        warm-started from that cut. By Theorem 1's logic, any cut with a
        *negative* linear objective at that ``k`` has a strictly lower
        ratio, so each accepted round improves the acceptance rate; the
        loop stops at the first non-improving round. Off by default (0
        rounds) to match the paper's plain grid sweep.
    jobs:
        Worker count for the ``k`` sweep. With ``warm_start=False``
        (the default) every ``k`` step is an independent KL run over the
        same immutable CSR snapshot, so ``jobs > 1`` fans the steps out
        through :mod:`repro.core.parallel` and reduces with the exact
        serial tie-break order — results are bit-identical to ``jobs=1``
        (property-tested in ``tests/core/test_parity.py``). Ignored —
        with a ``logger.warning`` naming the reason — when
        ``warm_start=True`` (the steps are coupled) and on the legacy
        engine (no parallel sweep there).
    executor:
        Backend for the parallel sweep: ``"auto"`` (process on fork
        platforms, thread otherwise), ``"serial"``, ``"thread"``, or
        ``"process"``.
    """

    k_min: float = 0.125
    k_factor: float = 2.0
    k_steps: int = 10
    kl: KLConfig = field(default_factory=KLConfig)
    init: str = "rejection"
    random_fraction: float = 0.5
    random_seed: int = 0
    min_suspicious: int = 1
    max_suspicious_fraction: float = 0.6
    min_evidence: float = 0.0
    warm_start: bool = False
    refine_rounds: int = 0
    jobs: int = 1
    executor: str = "auto"

    def k_values(self) -> List[float]:
        return geometric_k_sequence(self.k_min, self.k_factor, self.k_steps)


@dataclass
class KCandidate:
    """Outcome of one ``k`` step of the sweep."""

    k: float
    acceptance_rate: float
    ratio: float
    f_cross: int
    r_cross: int
    suspicious_size: int
    valid: bool


@dataclass
class MAARResult:
    """Best cut found by the sweep plus per-``k`` diagnostics."""

    partition: Optional[Partition]
    k: Optional[float]
    acceptance_rate: float
    per_k: List[KCandidate]
    stats: KLStats

    @property
    def found(self) -> bool:
        """Whether any valid (non-degenerate) spammer cut was found."""
        return self.partition is not None

    def suspicious_nodes(self) -> List[int]:
        """The detected suspicious region (empty when nothing was found)."""
        return self.partition.suspicious_nodes() if self.partition else []


def initial_partition(
    graph: AugmentedSocialGraph,
    config: MAARConfig,
    legit_seeds: Sequence[int] = (),
    spammer_seeds: Sequence[int] = (),
) -> Partition:
    """Build the sweep's starting partition.

    Seeds override the strategy: legitimate seeds always start (and stay)
    on side 0, spammer seeds on side 1. Seed ids are validated against
    the graph (:func:`check_seeds`); out-of-range or overlapping seed
    lists raise ``ValueError``.
    """
    n = graph.num_nodes
    check_seeds(n, legit_seeds, spammer_seeds)
    if config.init == "rejection":
        sides = [
            SUSPICIOUS if graph.rej_in[u] else LEGITIMATE for u in range(n)
        ]
    elif config.init == "all_legitimate":
        sides = [LEGITIMATE] * n
    elif config.init == "random":
        rng = random.Random(config.random_seed)
        sides = [
            SUSPICIOUS if rng.random() < config.random_fraction else LEGITIMATE
            for _ in range(n)
        ]
    else:
        raise ValueError(f"unknown init strategy {config.init!r}")
    for u in legit_seeds:
        sides[u] = LEGITIMATE
    for u in spammer_seeds:
        sides[u] = SUSPICIOUS
    return Partition(graph, sides)


def _is_valid_candidate(partition: Partition, config: MAARConfig) -> bool:
    """A cut counts as a spammer candidate only if the suspicious side is
    non-trivial, within the allowed size fraction, and actually receives
    cross rejections (otherwise there is no spam evidence and the
    acceptance rate is vacuous)."""
    limit = config.max_suspicious_fraction * partition.graph.num_nodes
    size = partition.suspicious_size
    return (
        config.min_suspicious <= size <= limit
        and size < partition.graph.num_nodes
        and partition.r_cross > 0
        and partition.r_cross >= config.min_evidence * size
    )


def _view_initial_sides(
    view: CSRView,
    config: MAARConfig,
    legit_seeds: Sequence[int] = (),
    spammer_seeds: Sequence[int] = (),
) -> List[int]:
    """Initial side assignment for a (possibly residual) CSR view.

    Mirrors :func:`initial_partition` with active-node filtering: the
    ``"rejection"`` strategy counts only rejections cast by still-active
    users, exactly as the legacy path sees them after a
    ``graph.subgraph()`` prune. Sides of inactive nodes are irrelevant
    to the counters and left at 0.
    """
    n = view.csr.num_nodes
    active = view.active
    sides = [LEGITIMATE] * n
    if config.init == "rejection":
        for u in range(n):
            if active[u] and view.rejections_received(u) > 0:
                sides[u] = SUSPICIOUS
    elif config.init == "all_legitimate":
        pass
    elif config.init == "random":
        rng = random.Random(config.random_seed)
        for u in range(n):
            if active[u] and rng.random() < config.random_fraction:
                sides[u] = SUSPICIOUS
    else:
        raise ValueError(f"unknown init strategy {config.init!r}")
    for u in legit_seeds:
        sides[u] = LEGITIMATE
    for u in spammer_seeds:
        sides[u] = SUSPICIOUS
    return sides


def _is_valid_state(state: PartitionState, config: MAARConfig) -> bool:
    """:func:`_is_valid_candidate` over a CSR partition state, with the
    *active* node count as the population (the residual graph's size)."""
    num_active = state.view.num_active
    limit = config.max_suspicious_fraction * num_active
    size = state.suspicious_size
    return (
        config.min_suspicious <= size <= limit
        and size < num_active
        and state.r_cross > 0
        and state.r_cross >= config.min_evidence * size
    )


def _sweep_k_task(k: float, shared) -> Tuple[List[int], float, float, List[int], KLStats]:
    """One ``k`` step of the parallel sweep, run inside a worker.

    ``shared`` carries the (read-only) initial :class:`PartitionState`
    and KL config; only ``k`` varies per task. Returns the switched
    sides plus counters and this step's own :class:`KLStats`, which the
    parent merges back in ``k`` order so the aggregate diagnostics match
    the serial sweep exactly.
    """
    init, kl_config = shared
    stats = KLStats()
    candidate = extended_kl_state(init, k, config=kl_config, stats=stats)
    return (
        candidate.sides,
        candidate.f_cross,
        candidate.r_cross,
        candidate.side_sizes,
        stats,
    )


def sweep_k_states(
    init: PartitionState,
    k_values: Sequence[float],
    kl_config: Optional[KLConfig] = None,
    jobs: int = 1,
    executor: str = "auto",
    stats: Optional[KLStats] = None,
) -> List[PartitionState]:
    """Run :func:`extended_kl_state` once per ``k``, all from ``init``.

    The independent runs fan out through
    :func:`repro.core.parallel.parallel_map` when ``jobs > 1``; results
    come back in ``k`` order and per-step stats merge in that same
    order, so the serial and parallel paths are indistinguishable to the
    caller (property-tested in ``tests/core/test_parity.py``). Shared by
    the flat MAAR sweep and the multilevel coarse-level sweep.
    """
    kl_config = kl_config or KLConfig()
    if jobs > 1 and len(k_values) > 1:
        outcomes = parallel_map(
            _sweep_k_task,
            list(k_values),
            shared=(init, kl_config),
            jobs=jobs,
            executor=executor,
        )
        candidates = []
        for sides, f_cross, r_cross, side_sizes, k_stats in outcomes:
            candidate = PartitionState.__new__(PartitionState)
            candidate.view = init.view
            candidate.sides = sides
            candidate.locked = init.locked
            candidate.f_cross = f_cross
            candidate.r_cross = r_cross
            candidate.side_sizes = side_sizes
            candidates.append(candidate)
            if stats is not None:
                stats.passes += k_stats.passes
                stats.switches_applied += k_stats.switches_applied
                stats.switches_tested += k_stats.switches_tested
                stats.objective_history.extend(k_stats.objective_history)
        return candidates
    return [
        extended_kl_state(init, k, config=kl_config, stats=stats)
        for k in k_values
    ]


def _sweep_candidates(
    init: PartitionState, config: MAARConfig, stats: KLStats
) -> List[PartitionState]:
    """Run the extended-KL search once per grid ``k``, in grid order.

    With ``config.jobs > 1`` (and no warm start, which couples the
    steps) the independent runs delegate to :func:`sweep_k_states`.
    """
    k_values = config.k_values()
    if config.jobs > 1 and config.warm_start:
        warn_jobs_ignored(
            logger,
            "MAARConfig",
            config.jobs,
            "warm_start=True couples the k steps (each starts from the "
            "previous cut), so the sweep runs serially",
        )
    if not config.warm_start:
        return sweep_k_states(
            init,
            k_values,
            config.kl,
            jobs=config.jobs,
            executor=config.executor,
            stats=stats,
        )
    candidates = []
    previous = init
    for k in k_values:
        candidate = extended_kl_state(previous, k, config=config.kl, stats=stats)
        previous = candidate
        candidates.append(candidate)
    return candidates


def _solve_maar_view(
    view: CSRView,
    config: MAARConfig,
    legit_seeds: Sequence[int] = (),
    spammer_seeds: Sequence[int] = (),
) -> MAARResult:
    """The MAAR sweep over a CSR residual view.

    Same grid, validity rules, tie-breaks and refinement as the legacy
    sweep, but every KL run operates on :class:`PartitionState` — no
    subgraph materialization. The returned result's ``partition`` is the
    winning :class:`PartitionState` (duck-compatible with
    :class:`Partition` for the queries the callers use).
    """
    n = view.csr.num_nodes
    check_seeds(n, legit_seeds, spammer_seeds)
    locked = [False] * n
    for u in legit_seeds:
        locked[u] = True
    for u in spammer_seeds:
        locked[u] = True

    init = PartitionState(
        view, _view_initial_sides(view, config, legit_seeds, spammer_seeds), locked
    )
    stats = KLStats()
    best: Optional[PartitionState] = None
    best_k: Optional[float] = None
    best_key: Tuple[float, float] = (float("inf"), 0)
    per_k: List[KCandidate] = []

    for k, candidate in zip(config.k_values(), _sweep_candidates(init, config, stats)):
        valid = _is_valid_state(candidate, config)
        acceptance = candidate.acceptance_rate()
        per_k.append(
            KCandidate(
                k=k,
                acceptance_rate=acceptance,
                ratio=candidate.ratio(),
                f_cross=candidate.f_cross,
                r_cross=candidate.r_cross,
                suspicious_size=candidate.suspicious_size,
                valid=valid,
            )
        )
        logger.debug(
            "k=%.4g: acceptance=%.3f F=%d R=%d size=%d valid=%s",
            k,
            acceptance,
            candidate.f_cross,
            candidate.r_cross,
            candidate.suspicious_size,
            valid,
        )
        if valid:
            key = (acceptance, -candidate.r_cross)
            if key < best_key:
                best_key = key
                best = candidate
                best_k = k

    for _ in range(config.refine_rounds if best is not None else 0):
        ratio = best.ratio()
        if not 0 < ratio < float("inf"):
            break
        candidate = extended_kl_state(best, ratio, config=config.kl, stats=stats)
        valid = _is_valid_state(candidate, config)
        acceptance = candidate.acceptance_rate()
        per_k.append(
            KCandidate(
                k=ratio,
                acceptance_rate=acceptance,
                ratio=candidate.ratio(),
                f_cross=candidate.f_cross,
                r_cross=candidate.r_cross,
                suspicious_size=candidate.suspicious_size,
                valid=valid,
            )
        )
        key = (acceptance, -candidate.r_cross)
        if not valid or key >= best_key:
            break
        best_key = key
        best = candidate
        best_k = ratio

    acceptance = best_key[0] if best is not None else 1.0
    return MAARResult(
        partition=best,
        k=best_k,
        acceptance_rate=acceptance,
        per_k=per_k,
        stats=stats,
    )


def solve_maar(
    graph,
    config: Optional[MAARConfig] = None,
    legit_seeds: Sequence[int] = (),
    spammer_seeds: Sequence[int] = (),
) -> MAARResult:
    """Approximate the MAAR cut of ``graph``.

    Runs the extended KL search once per ``k`` on the geometric grid and
    returns the valid cut with the lowest aggregate acceptance rate.
    Ties prefer the cut explaining more rejections (larger ``r_cross``),
    which captures more of the spammer region.

    ``graph`` may be an :class:`AugmentedSocialGraph` builder or an
    already-finalized :class:`repro.core.csr.CSRGraph`. With the default
    ``config.kl.engine == "csr"`` the sweep runs on the flat-array core;
    ``engine == "legacy"`` (builder inputs only) runs the original
    list-of-lists path. For builder inputs the result's ``partition`` is
    a :class:`Partition`; for CSR inputs it is the winning
    :class:`PartitionState`.
    """
    config = config or MAARConfig()
    is_builder = isinstance(graph, AugmentedSocialGraph)
    if is_builder and config.kl.engine == "legacy":
        return _solve_maar_legacy(graph, config, legit_seeds, spammer_seeds)
    result = _solve_maar_view(
        graph.csr().view(), config, legit_seeds, spammer_seeds
    )
    if is_builder and result.partition is not None:
        state = result.partition
        result.partition = Partition.from_counts(
            graph, state.sides, state.f_cross, state.r_cross
        )
    return result


def _solve_maar_legacy(
    graph: AugmentedSocialGraph,
    config: MAARConfig,
    legit_seeds: Sequence[int] = (),
    spammer_seeds: Sequence[int] = (),
) -> MAARResult:
    """The original sweep over the builder's list-of-lists adjacency."""
    if config.jobs > 1:
        warn_jobs_ignored(
            logger,
            "MAARConfig",
            config.jobs,
            "the legacy engine has no parallel k-sweep; use "
            "KLConfig(engine='csr') for fan-out",
        )
    check_seeds(graph.num_nodes, legit_seeds, spammer_seeds)
    locked = [False] * graph.num_nodes
    for u in legit_seeds:
        locked[u] = True
    for u in spammer_seeds:
        locked[u] = True

    init = initial_partition(graph, config, legit_seeds, spammer_seeds)
    stats = KLStats()
    best: Optional[Partition] = None
    best_k: Optional[float] = None
    best_key: Tuple[float, int] = (float("inf"), 0)
    per_k: List[KCandidate] = []
    previous = init

    for k in config.k_values():
        start = previous if config.warm_start else init
        candidate = extended_kl(
            graph, k, start, locked=locked, config=config.kl, stats=stats
        )
        previous = candidate
        valid = _is_valid_candidate(candidate, config)
        acceptance = candidate.acceptance_rate()
        per_k.append(
            KCandidate(
                k=k,
                acceptance_rate=acceptance,
                ratio=candidate.ratio(),
                f_cross=candidate.f_cross,
                r_cross=candidate.r_cross,
                suspicious_size=candidate.suspicious_size,
                valid=valid,
            )
        )
        logger.debug(
            "k=%.4g: acceptance=%.3f F=%d R=%d size=%d valid=%s",
            k,
            acceptance,
            candidate.f_cross,
            candidate.r_cross,
            candidate.suspicious_size,
            valid,
        )
        if valid:
            key = (acceptance, -candidate.r_cross)
            if key < best_key:
                best_key = key
                best = candidate
                best_k = k

    # Dinkelbach-style post-sweep refinement (see MAARConfig.refine_rounds).
    for _ in range(config.refine_rounds if best is not None else 0):
        ratio = best.ratio()
        if not 0 < ratio < float("inf"):
            break
        candidate = extended_kl(
            graph, ratio, best, locked=locked, config=config.kl, stats=stats
        )
        valid = _is_valid_candidate(candidate, config)
        acceptance = candidate.acceptance_rate()
        per_k.append(
            KCandidate(
                k=ratio,
                acceptance_rate=acceptance,
                ratio=candidate.ratio(),
                f_cross=candidate.f_cross,
                r_cross=candidate.r_cross,
                suspicious_size=candidate.suspicious_size,
                valid=valid,
            )
        )
        key = (acceptance, -candidate.r_cross)
        if not valid or key >= best_key:
            break
        best_key = key
        best = candidate
        best_k = ratio

    acceptance = best_key[0] if best is not None else 1.0
    return MAARResult(
        partition=best,
        k=best_k,
        acceptance_rate=acceptance,
        per_k=per_k,
        stats=stats,
    )
