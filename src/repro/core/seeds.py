"""Seed-selection strategies (Section IV-F).

Rejecto pre-places manually inspected users to prune misleading cuts
from the KL search space: "By distributing seeds over the entire graph,
Rejecto can effectively rule out those problematic legitimate-user
cuts... To ensure sufficient seed coverage, one could employ the
community-based seed selection as in SybilRank."

Three selectors, from weakest to strongest coverage guarantees:

* :func:`random_seeds` — uniform sampling (the paper's default).
* :func:`degree_stratified_seeds` — one slice per degree quantile, so
  both hubs and the periphery are pinned.
* :func:`community_seeds` — round-robin over known communities (the
  SybilRank recipe the paper recommends).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from .graph import AugmentedSocialGraph

__all__ = ["random_seeds", "degree_stratified_seeds", "community_seeds"]


def random_seeds(
    candidates: Sequence[int],
    count: int,
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Uniformly sampled seeds from the inspected-candidates pool."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = rng or random.Random(0)
    return sorted(rng.sample(list(candidates), min(count, len(candidates))))


def degree_stratified_seeds(
    graph: AugmentedSocialGraph,
    candidates: Sequence[int],
    count: int,
    rng: Optional[random.Random] = None,
    strata: int = 4,
) -> List[int]:
    """Seeds spread across friendship-degree quantiles.

    Candidates are sorted by degree and split into ``strata`` contiguous
    bands; seeds are drawn round-robin across the bands, so low-degree
    peripheral users — precisely the ones misleading legitimate-region
    cuts tend to capture — get pinned alongside hubs.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if strata < 1:
        raise ValueError(f"strata must be >= 1, got {strata}")
    rng = rng or random.Random(0)
    ordered = sorted(candidates, key=lambda u: (len(graph.friends[u]), u))
    if not ordered or not count:
        return []
    bands: List[List[int]] = []
    band_size = max(1, len(ordered) // strata)
    for start in range(0, len(ordered), band_size):
        bands.append(ordered[start : start + band_size])
    for band in bands:
        rng.shuffle(band)
    seeds: List[int] = []
    index = 0
    while len(seeds) < min(count, len(ordered)):
        band = bands[index % len(bands)]
        if band:
            seeds.append(band.pop())
        index += 1
    return sorted(seeds)


def community_seeds(
    communities: Sequence[int],
    count: int,
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Community-based selection [15]: seeds spread round-robin over the
    known community labels (``communities[u]`` is node ``u``'s label)."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = rng or random.Random(0)
    by_community: Dict[int, List[int]] = {}
    for node, community in enumerate(communities):
        by_community.setdefault(community, []).append(node)
    groups = list(by_community.values())
    seeds: List[int] = []
    index = 0
    while len(seeds) < count and any(groups):
        group = groups[index % len(groups)]
        if group:
            seeds.append(group.pop(rng.randrange(len(group))))
        index += 1
    return sorted(seeds)
