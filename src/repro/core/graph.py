"""Rejection-augmented social graph.

The paper (Section III-A) models an OSN under friend spam as an augmented
social graph ``G = (V, F, R⃗)``:

* ``V`` — the user set, represented here as dense integer ids ``0..n-1``.
* ``F`` — the set of *undirected* friendships ``(u, v)``, each created by a
  mutually accepted friend request.
* ``R⃗`` — the set of *directed* social rejections ``⟨u, v⟩`` meaning that
  user ``u`` rejected, ignored, or reported a friend request sent by ``v``.
  Multiple rejections between the same pair collapse into a single edge,
  exactly as in the paper.

:class:`AugmentedSocialGraph` is the mutable *builder*: adjacency lives in
``list[list[int]]`` structures convenient for incremental edge insertion.
The hot paths (extended KL, the MAAR sweep, Rejecto's rounds) do not run on
the builder — they run on its immutable flat-array finalization,
:class:`repro.core.csr.CSRGraph`, obtained from :meth:`AugmentedSocialGraph.csr`
(cached; invalidated by any mutation).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

__all__ = ["AugmentedSocialGraph", "GraphError"]


class GraphError(ValueError):
    """Raised for structurally invalid graph operations."""


def _pair(u: int, v: int) -> Tuple[int, int]:
    """Canonical undirected key for a friendship."""
    return (u, v) if u <= v else (v, u)


class AugmentedSocialGraph:
    """A social graph augmented with directed social rejections.

    Parameters
    ----------
    num_nodes:
        Number of users. Node ids are the dense integers ``0..num_nodes-1``.

    Notes
    -----
    Friendships are undirected and deduplicated; rejections are directed
    and deduplicated per direction (``⟨u, v⟩`` and ``⟨v, u⟩`` are distinct
    edges). Self-loops are rejected for both edge types because neither a
    self-friendship nor a self-rejection is meaningful in the model.
    """

    __slots__ = (
        "num_nodes",
        "friends",
        "rej_out",
        "rej_in",
        "_friend_set",
        "_rej_set",
        "_csr_cache",
        "_deg_maxima",
    )

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        self.num_nodes = num_nodes
        #: friends[u] lists the friends of u (undirected adjacency).
        self.friends: List[List[int]] = [[] for _ in range(num_nodes)]
        #: rej_out[u] lists users whose requests u rejected (u --> v).
        self.rej_out: List[List[int]] = [[] for _ in range(num_nodes)]
        #: rej_in[v] lists users that rejected v's requests.
        self.rej_in: List[List[int]] = [[] for _ in range(num_nodes)]
        self._friend_set: set = set()
        self._rej_set: set = set()
        self._csr_cache = None
        self._deg_maxima = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        friendships: Iterable[Tuple[int, int]] = (),
        rejections: Iterable[Tuple[int, int]] = (),
    ) -> "AugmentedSocialGraph":
        """Build a graph from explicit edge lists.

        ``friendships`` are undirected pairs; ``rejections`` are directed
        ``(rejecter, rejected_sender)`` pairs. Duplicate edges are ignored.
        """
        graph = cls(num_nodes)
        for u, v in friendships:
            graph.add_friendship(u, v)
        for u, v in rejections:
            graph.add_rejection(u, v)
        return graph

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise GraphError(f"node {u} out of range [0, {self.num_nodes})")

    def add_node(self) -> int:
        """Append a new isolated node and return its id."""
        self.friends.append([])
        self.rej_out.append([])
        self.rej_in.append([])
        self.num_nodes += 1
        self._csr_cache = None
        self._deg_maxima = None
        return self.num_nodes - 1

    def add_nodes(self, count: int) -> List[int]:
        """Append ``count`` isolated nodes, returning their ids."""
        if count < 0:
            raise GraphError(f"count must be non-negative, got {count}")
        return [self.add_node() for _ in range(count)]

    def add_friendship(self, u: int, v: int) -> bool:
        """Add the undirected friendship ``(u, v)``.

        Returns ``True`` if the edge was new, ``False`` if it already
        existed (the graph is left unchanged in that case).
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError(f"self-friendship on node {u} is not allowed")
        key = _pair(u, v)
        if key in self._friend_set:
            return False
        self._friend_set.add(key)
        self.friends[u].append(v)
        self.friends[v].append(u)
        self._csr_cache = None
        self._deg_maxima = None
        return True

    def add_rejection(self, rejecter: int, sender: int) -> bool:
        """Add the directed rejection ``⟨rejecter, sender⟩``.

        ``rejecter`` turned down (or reported) a friend request sent by
        ``sender``. Returns ``True`` if the edge was new.
        """
        self._check_node(rejecter)
        self._check_node(sender)
        if rejecter == sender:
            raise GraphError(f"self-rejection on node {rejecter} is not allowed")
        key = (rejecter, sender)
        if key in self._rej_set:
            return False
        self._rej_set.add(key)
        self.rej_out[rejecter].append(sender)
        self.rej_in[sender].append(rejecter)
        self._csr_cache = None
        self._deg_maxima = None
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_friendship(self, u: int, v: int) -> bool:
        """Whether the undirected friendship ``(u, v)`` exists."""
        return _pair(u, v) in self._friend_set

    def has_rejection(self, rejecter: int, sender: int) -> bool:
        """Whether ``rejecter`` has rejected a request from ``sender``."""
        return (rejecter, sender) in self._rej_set

    def degree(self, u: int) -> int:
        """Number of friends of ``u``."""
        self._check_node(u)
        return len(self.friends[u])

    def rejections_received(self, u: int) -> int:
        """Number of distinct users that rejected ``u``'s requests."""
        self._check_node(u)
        return len(self.rej_in[u])

    def rejections_cast(self, u: int) -> int:
        """Number of distinct users whose requests ``u`` rejected."""
        self._check_node(u)
        return len(self.rej_out[u])

    @property
    def num_friendships(self) -> int:
        """Total number of undirected friendships ``|F|``."""
        return len(self._friend_set)

    @property
    def num_rejections(self) -> int:
        """Total number of directed rejection edges ``|R⃗|``."""
        return len(self._rej_set)

    def friendships(self) -> Iterator[Tuple[int, int]]:
        """Iterate friendships as canonical ``(min, max)`` pairs."""
        return iter(self._friend_set)

    def rejections(self) -> Iterator[Tuple[int, int]]:
        """Iterate rejection edges as ``(rejecter, sender)`` pairs."""
        return iter(self._rej_set)

    def nodes(self) -> range:
        """All node ids."""
        return range(self.num_nodes)

    def degree_maxima(self) -> Tuple[int, int]:
        """``(max friend degree, max total rejection degree)``.

        Memoized until the next mutation, so the legacy ``k``-sweep's
        per-``k`` gain bound ``max_F + k·max_R`` costs O(1) instead of
        an O(V) scan per ``k`` value.
        """
        maxima = self._deg_maxima
        if maxima is None:
            maxima = (
                max((len(adj) for adj in self.friends), default=0),
                max(
                    (
                        len(self.rej_out[u]) + len(self.rej_in[u])
                        for u in range(self.num_nodes)
                    ),
                    default=0,
                ),
            )
            self._deg_maxima = maxima
        return maxima

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def csr(self, backend: str = "auto"):
        """Finalize into an immutable :class:`repro.core.csr.CSRGraph`.

        The snapshot is cached and reused until the next mutation
        (``add_node``/``add_friendship``/``add_rejection``), so repeated
        solver calls on the same graph pay the O(V+E) conversion once.
        Adjacency is sorted ascending in the snapshot, making downstream
        iteration order independent of edge insertion order.
        """
        from .csr import CSRGraph, resolve_backend

        backend = resolve_backend(backend)
        cache = self._csr_cache
        if cache is None or cache.backend != backend:
            cache = CSRGraph.from_builder(self, backend=backend)
            self._csr_cache = cache
        return cache

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "AugmentedSocialGraph":
        """Deep copy of the graph."""
        clone = AugmentedSocialGraph(self.num_nodes)
        clone.friends = [list(adj) for adj in self.friends]
        clone.rej_out = [list(adj) for adj in self.rej_out]
        clone.rej_in = [list(adj) for adj in self.rej_in]
        clone._friend_set = set(self._friend_set)
        clone._rej_set = set(self._rej_set)
        return clone

    def subgraph(
        self, keep: Sequence[int]
    ) -> Tuple["AugmentedSocialGraph", List[int]]:
        """Induced subgraph on the nodes in ``keep``.

        Returns ``(graph, old_ids)`` where ``old_ids[new_id]`` maps each
        node of the subgraph back to its id in this graph. The legacy
        engine of the iterative detector (:mod:`repro.core.rejecto`) uses
        this to prune detected spammer groups between rounds; the CSR
        engine uses zero-copy residual views instead. Edges are inserted
        in sorted order so the subgraph's adjacency lists are ascending —
        deterministic regardless of this graph's insertion history.
        """
        old_ids = sorted(set(keep))
        for u in old_ids:
            self._check_node(u)
        new_id: Dict[int, int] = {old: new for new, old in enumerate(old_ids)}
        sub = AugmentedSocialGraph(len(old_ids))
        for u, v in sorted(self._friend_set):
            if u in new_id and v in new_id:
                sub.add_friendship(new_id[u], new_id[v])
        for u, v in sorted(self._rej_set):
            if u in new_id and v in new_id:
                sub.add_rejection(new_id[u], new_id[v])
        return sub, old_ids

    def merged_with(self, other: "AugmentedSocialGraph") -> "AugmentedSocialGraph":
        """Disjoint union: ``other``'s node ids are shifted by ``num_nodes``."""
        merged = self.copy()
        offset = merged.num_nodes
        merged.add_nodes(other.num_nodes)
        for u, v in other.friendships():
            merged.add_friendship(u + offset, v + offset)
        for u, v in other.rejections():
            merged.add_rejection(u + offset, v + offset)
        return merged

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a ``networkx.MultiDiGraph``-free pair of graphs.

        Returns ``(friendship_graph, rejection_digraph)``; requires
        networkx to be importable (it is an optional dependency).
        """
        import networkx as nx

        fg = nx.Graph()
        fg.add_nodes_from(range(self.num_nodes))
        fg.add_edges_from(self._friend_set)
        rg = nx.DiGraph()
        rg.add_nodes_from(range(self.num_nodes))
        rg.add_edges_from(self._rej_set)
        return fg, rg

    @classmethod
    def from_networkx(cls, friendship_graph, rejection_digraph=None) -> "AugmentedSocialGraph":
        """Import from networkx graphs with integer node labels."""
        nodes = set(friendship_graph.nodes())
        if rejection_digraph is not None:
            nodes |= set(rejection_digraph.nodes())
        if not all(isinstance(n, int) and n >= 0 for n in nodes):
            raise GraphError("from_networkx requires non-negative integer node labels")
        num_nodes = max(nodes) + 1 if nodes else 0
        graph = cls(num_nodes)
        for u, v in friendship_graph.edges():
            graph.add_friendship(u, v)
        if rejection_digraph is not None:
            for u, v in rejection_digraph.edges():
                graph.add_rejection(u, v)
        return graph

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return (
            f"AugmentedSocialGraph(nodes={self.num_nodes}, "
            f"friendships={self.num_friendships}, rejections={self.num_rejections})"
        )
