"""Rejecto: iterative detection of friend-spammer groups.

Section IV-E: a single MAAR cut can miss disjoint fake-account groups and
is vulnerable to the *self-rejection* strategy, where an attacker crafts
an artificially low friends-to-rejections cut inside his own accounts to
whitewash the rejecting half. Rejecto therefore runs the MAAR solver over
multiple rounds: each round detects the residual graph's lowest-
acceptance-rate region, prunes it (nodes, friendships, and rejections),
and re-solves. Groups come out ordered by non-decreasing aggregate
acceptance rate, so self-rejections only expose the rejected accounts to
*earlier* detection.

Termination (Section IV-E) is by any combination of: an OSN-provided
estimate of the spammer population, an aggregate-acceptance-rate
threshold (stop once detected cuts look as accepted as normal users'
requests), and a round cap.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from .graph import AugmentedSocialGraph
from .kernels import active_in_rejections
from .maar import MAARConfig, _solve_maar_view, check_seeds, solve_maar

__all__ = ["RejectoConfig", "DetectedGroup", "RejectoResult", "Rejecto"]

logger = logging.getLogger(__name__)


@dataclass
class RejectoConfig:
    """Detector configuration.

    Attributes
    ----------
    maar:
        Configuration of the per-round MAAR sweep.
    estimated_spammers:
        Stop once at least this many accounts are detected (the paper's
        primary termination: OSNs estimate the fake population from
        sampled-account inspection).
    acceptance_threshold:
        Stop before admitting a group whose aggregate acceptance rate
        exceeds this value — e.g. an estimate of legitimate users'
        acceptance rate (the paper's alternative termination).
    max_rounds:
        Hard cap on detection rounds.
    """

    maar: MAARConfig = field(default_factory=MAARConfig)
    estimated_spammers: Optional[int] = None
    acceptance_threshold: Optional[float] = None
    max_rounds: int = 25


@dataclass
class DetectedGroup:
    """One spammer group cut off in one detection round.

    ``members`` are ids in the *original* graph, ordered by decreasing
    rejection evidence (in-rejections within the round's residual graph),
    so truncating the tail removes the least-implicated accounts first.
    """

    members: List[int]
    acceptance_rate: float
    ratio: float
    f_cross: int
    r_cross: int
    k: float
    round_index: int

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class RejectoResult:
    """Ordered detection outcome."""

    groups: List[DetectedGroup]
    rounds_run: int
    termination: str

    def detected(self, limit: Optional[int] = None) -> List[int]:
        """All detected account ids in detection order.

        With ``limit`` set, returns exactly the first ``limit`` accounts
        — the paper's evaluation declares as many suspicious users as the
        injected fake population, trimming the final group if needed.
        """
        ordered: List[int] = []
        for group in self.groups:
            ordered.extend(group.members)
        if limit is not None:
            ordered = ordered[:limit]
        return ordered

    def detected_set(self, limit: Optional[int] = None) -> Set[int]:
        return set(self.detected(limit))

    @property
    def total_detected(self) -> int:
        return sum(len(group) for group in self.groups)


class Rejecto:
    """The friend-spam detection system of the paper.

    Examples
    --------
    >>> from repro.core import AugmentedSocialGraph, Rejecto, RejectoConfig
    >>> graph = AugmentedSocialGraph.from_edges(
    ...     4, friendships=[(0, 1)], rejections=[(0, 2), (1, 2), (0, 3), (1, 3)]
    ... )
    >>> result = Rejecto(RejectoConfig()).detect(graph)
    >>> sorted(result.detected())
    [2, 3]
    """

    def __init__(self, config: Optional[RejectoConfig] = None) -> None:
        self.config = config or RejectoConfig()

    def detect(
        self,
        graph,
        legit_seeds: Sequence[int] = (),
        spammer_seeds: Sequence[int] = (),
    ) -> RejectoResult:
        """Iteratively uncover friend-spammer groups in ``graph``.

        ``graph`` may be an :class:`AugmentedSocialGraph` builder or a
        finalized :class:`repro.core.csr.CSRGraph`. Seeds are ids in
        ``graph``; legitimate seeds are pinned to the legitimate region
        in every round, spammer seeds to the suspicious region until the
        round that detects them.

        With the default ``config.maar.kl.engine == "csr"`` each round
        solves over a zero-copy residual *view* of one shared CSR
        snapshot — pruning a detected group costs O(V) mask bytes, not an
        O(V+E) ``subgraph()`` deep copy. ``engine == "legacy"`` keeps the
        original per-round subgraph materialization (builder inputs
        only); both report identical groups on sorted-adjacency inputs.

        With ``config.maar.jobs > 1`` every round's ``k`` sweep fans out
        through :mod:`repro.core.parallel` (rounds themselves stay
        sequential — each prunes the view the next one solves on); the
        detected groups are bit-identical to the serial sweep's.
        """
        check_seeds(graph.num_nodes, legit_seeds, spammer_seeds)
        if self.config.maar.kl.engine == "legacy" and isinstance(
            graph, AugmentedSocialGraph
        ):
            return self._detect_legacy(graph, legit_seeds, spammer_seeds)
        return self._detect_csr(graph, legit_seeds, spammer_seeds)

    def _detect_csr(
        self,
        graph,
        legit_seeds: Sequence[int] = (),
        spammer_seeds: Sequence[int] = (),
    ) -> RejectoResult:
        """Residual-view detection rounds over one shared CSR snapshot."""
        config = self.config
        view = graph.csr().view()
        legit_seed_set = set(legit_seeds)
        spammer_seed_set = set(spammer_seeds)
        groups: List[DetectedGroup] = []
        detected_total = 0
        termination = "max_rounds"

        for round_index in range(config.max_rounds):
            if view.num_active == 0:
                termination = "exhausted"
                break
            active = view.active
            result = _solve_maar_view(
                view,
                config.maar,
                legit_seeds=[u for u in sorted(legit_seed_set) if active[u]],
                spammer_seeds=[u for u in sorted(spammer_seed_set) if active[u]],
            )
            if not result.found:
                termination = "no_cut"
                logger.debug("round %d: no valid MAAR cut, stopping", round_index)
                break
            state = result.partition
            assert state is not None
            if (
                config.acceptance_threshold is not None
                and result.acceptance_rate > config.acceptance_threshold
            ):
                termination = "acceptance_threshold"
                logger.debug(
                    "round %d: acceptance rate %.3f above threshold %.3f, stopping",
                    round_index,
                    result.acceptance_rate,
                    config.acceptance_threshold,
                )
                break

            # Order members by in-rejection evidence within the residual
            # view (active rejecters only) so that detected(limit) trims
            # the weakest evidence last — same ordering as the legacy
            # path's per-residual ``rej_in`` lengths. One batch kernel
            # sweep replaces the per-member active-mask scans; the keys
            # are the same integers, so the sort is unchanged.
            members = state.suspicious_nodes()
            evidence = active_in_rejections(view)
            members.sort(key=evidence.__getitem__, reverse=True)
            groups.append(
                DetectedGroup(
                    members=members,
                    acceptance_rate=result.acceptance_rate,
                    ratio=state.ratio(),
                    f_cross=state.f_cross,
                    r_cross=state.r_cross,
                    k=result.k if result.k is not None else float("nan"),
                    round_index=round_index,
                )
            )
            detected_total += len(members)
            logger.info(
                "round %d: cut %d accounts at acceptance rate %.3f "
                "(k=%s, %d detected so far)",
                round_index,
                len(members),
                result.acceptance_rate,
                result.k,
                detected_total,
            )
            view = view.without(members)

            if (
                config.estimated_spammers is not None
                and detected_total >= config.estimated_spammers
            ):
                termination = "estimated_spammers"
                break

        return RejectoResult(
            groups=groups,
            rounds_run=len(groups),
            termination=termination,
        )

    def _detect_legacy(
        self,
        graph: AugmentedSocialGraph,
        legit_seeds: Sequence[int] = (),
        spammer_seeds: Sequence[int] = (),
    ) -> RejectoResult:
        """The original rounds: one ``graph.subgraph()`` deep copy each."""
        config = self.config
        legit_seed_set = set(legit_seeds)
        spammer_seed_set = set(spammer_seeds)
        remaining = list(range(graph.num_nodes))
        groups: List[DetectedGroup] = []
        detected_total = 0
        termination = "max_rounds"

        for round_index in range(config.max_rounds):
            if not remaining:
                termination = "exhausted"
                break
            residual, old_ids = graph.subgraph(remaining)
            position = {old: new for new, old in enumerate(old_ids)}
            result = solve_maar(
                residual,
                config.maar,
                legit_seeds=[position[u] for u in legit_seed_set if u in position],
                spammer_seeds=[position[u] for u in spammer_seed_set if u in position],
            )
            if not result.found:
                termination = "no_cut"
                logger.debug("round %d: no valid MAAR cut, stopping", round_index)
                break
            assert result.partition is not None
            if (
                config.acceptance_threshold is not None
                and result.acceptance_rate > config.acceptance_threshold
            ):
                termination = "acceptance_threshold"
                logger.debug(
                    "round %d: acceptance rate %.3f above threshold %.3f, stopping",
                    round_index,
                    result.acceptance_rate,
                    config.acceptance_threshold,
                )
                break

            suspicious_local = result.partition.suspicious_nodes()
            # Order members by in-rejection evidence in the residual graph
            # so that detected(limit) trims the weakest evidence last.
            suspicious_local.sort(
                key=lambda u: len(residual.rej_in[u]), reverse=True
            )
            members = [old_ids[u] for u in suspicious_local]
            groups.append(
                DetectedGroup(
                    members=members,
                    acceptance_rate=result.acceptance_rate,
                    ratio=result.partition.ratio(),
                    f_cross=result.partition.f_cross,
                    r_cross=result.partition.r_cross,
                    k=result.k if result.k is not None else float("nan"),
                    round_index=round_index,
                )
            )
            detected_total += len(members)
            logger.info(
                "round %d: cut %d accounts at acceptance rate %.3f "
                "(k=%s, %d detected so far)",
                round_index,
                len(members),
                result.acceptance_rate,
                result.k,
                detected_total,
            )
            member_set = set(members)
            remaining = [u for u in remaining if u not in member_set]

            if (
                config.estimated_spammers is not None
                and detected_total >= config.estimated_spammers
            ):
                termination = "estimated_spammers"
                break
        else:
            round_index = config.max_rounds - 1

        return RejectoResult(
            groups=groups,
            rounds_run=len(groups),
            termination=termination,
        )
