"""Weighted rejection-augmented graphs and weighted KL refinement.

The multilevel MAAR solver (:mod:`repro.core.multilevel`) coarsens the
social graph by merging matched node pairs; merged parallel edges must
keep their multiplicity, so the coarse levels need *weighted*
friendships and rejections. This module provides:

* :class:`WeightedAugmentedGraph` — adjacency dicts carrying float
  weights, for both the undirected friendship layer and the directed
  rejection layer;
* :class:`WeightedPartition` — the incremental MAAR cut counters over
  weighted edges;
* :func:`weighted_extended_kl` — the single-node-switch KL pass loop of
  :mod:`repro.core.kl` generalized to weighted edges.

Objective semantics are identical to the unweighted case with every
edge count replaced by a weight sum; an unweighted graph embedded with
all weights 1 reproduces the plain objective exactly (property-tested).

Only *float*-weighted graphs stay off the :mod:`repro.core.kernels`
batch paths: their gains are float *sums*, and the scalar loops fix the
summation order that is part of the reproducibility contract. But the
multilevel hierarchy never produces floats — contraction of a
unit-weight graph only ever sums unit edges, so
:meth:`repro.core.csr.CSRGraph.from_weighted` finalizes integral
builders into an int64-weighted
:class:`~repro.core.csr.WeightedCSRGraph`, whose gains are exact
integers. Those graphs get the full unweighted treatment: the fused FM
bucket engine on the on-grid ``k`` sweep, batch numpy kernels with
bit-identical python fallbacks, and dirty-frontier incremental passes
(see :mod:`repro.core.kl`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .csr import PartitionState
from .gains import HeapGainIndex
from .graph import AugmentedSocialGraph
from .kl import KLConfig, extended_kl_state
from .objectives import LEGITIMATE, SUSPICIOUS

__all__ = [
    "WeightedAugmentedGraph",
    "WeightedPartition",
    "weighted_extended_kl",
]

_EPS = 1e-9


class WeightedAugmentedGraph:
    """Weighted friendships (symmetric) and rejections (directed)."""

    __slots__ = (
        "num_nodes",
        "friends",
        "rej_out",
        "rej_in",
        "node_weight",
        "_csr_cache",
    )

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be >= 0, got {num_nodes}")
        self.num_nodes = num_nodes
        self.friends: List[Dict[int, float]] = [dict() for _ in range(num_nodes)]
        self.rej_out: List[Dict[int, float]] = [dict() for _ in range(num_nodes)]
        self.rej_in: List[Dict[int, float]] = [dict() for _ in range(num_nodes)]
        #: how many original nodes each node represents (coarsening)
        self.node_weight: List[int] = [1] * num_nodes
        self._csr_cache = None

    @classmethod
    def from_graph(cls, graph: AugmentedSocialGraph) -> "WeightedAugmentedGraph":
        """Embed an unweighted augmented graph with unit weights."""
        weighted = cls(graph.num_nodes)
        for u, v in graph.friendships():
            weighted.add_friendship(u, v, 1.0)
        for rejecter, sender in graph.rejections():
            weighted.add_rejection(rejecter, sender, 1.0)
        return weighted

    def add_friendship(self, u: int, v: int, weight: float) -> None:
        """Accumulate friendship weight between ``u`` and ``v``."""
        if u == v:
            raise ValueError(f"self-friendship on node {u}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.friends[u][v] = self.friends[u].get(v, 0.0) + weight
        self.friends[v][u] = self.friends[v].get(u, 0.0) + weight
        self._csr_cache = None

    def add_rejection(self, rejecter: int, sender: int, weight: float) -> None:
        """Accumulate rejection weight on the edge ``⟨rejecter, sender⟩``."""
        if rejecter == sender:
            raise ValueError(f"self-rejection on node {rejecter}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.rej_out[rejecter][sender] = (
            self.rej_out[rejecter].get(sender, 0.0) + weight
        )
        self.rej_in[sender][rejecter] = (
            self.rej_in[sender].get(rejecter, 0.0) + weight
        )
        self._csr_cache = None

    def csr(self, backend: str = "auto"):
        """Finalize into a weighted :class:`repro.core.csr.CSRGraph`.

        Cached until the next ``add_friendship``/``add_rejection``, same
        lifecycle as the unweighted builder's ``csr()``.
        """
        from .csr import CSRGraph, resolve_backend

        backend = resolve_backend(backend)
        cache = self._csr_cache
        if cache is None or cache.backend != backend:
            cache = CSRGraph.from_weighted(self, backend=backend)
            self._csr_cache = cache
        return cache

    def total_friendship_weight(self) -> float:
        return sum(sum(adj.values()) for adj in self.friends) / 2.0

    def total_rejection_weight(self) -> float:
        return sum(sum(adj.values()) for adj in self.rej_out)


class WeightedPartition:
    """Bipartition with weighted MAAR cut counters."""

    __slots__ = ("graph", "sides", "f_cross", "r_cross")

    def __init__(self, graph: WeightedAugmentedGraph, sides: Sequence[int]) -> None:
        if len(sides) != graph.num_nodes:
            raise ValueError(
                f"sides has length {len(sides)}, expected {graph.num_nodes}"
            )
        self.graph = graph
        self.sides: List[int] = list(sides)
        self.f_cross = 0.0
        self.r_cross = 0.0
        for u in range(graph.num_nodes):
            for v, weight in graph.friends[u].items():
                if u < v and self.sides[u] != self.sides[v]:
                    self.f_cross += weight
            if self.sides[u] == LEGITIMATE:
                for v, weight in graph.rej_out[u].items():
                    if self.sides[v] == SUSPICIOUS:
                        self.r_cross += weight

    def switch(self, u: int) -> None:
        """Move ``u`` to the other side, updating weighted counters."""
        graph, sides = self.graph, self.sides
        s = sides[u]
        for v, weight in graph.friends[u].items():
            self.f_cross += weight if sides[v] == s else -weight
        if s == LEGITIMATE:
            for v, weight in graph.rej_out[u].items():
                if sides[v] == SUSPICIOUS:
                    self.r_cross -= weight
            for w, weight in graph.rej_in[u].items():
                if sides[w] == LEGITIMATE:
                    self.r_cross += weight
        else:
            for v, weight in graph.rej_out[u].items():
                if sides[v] == SUSPICIOUS:
                    self.r_cross += weight
            for w, weight in graph.rej_in[u].items():
                if sides[w] == LEGITIMATE:
                    self.r_cross -= weight
        sides[u] = 1 - s

    def switch_gain(self, u: int, k: float) -> float:
        """Gain of switching ``u`` for ``W = f_cross − k·r_cross``."""
        graph, sides = self.graph, self.sides
        s = sides[u]
        friends_delta = 0.0
        for v, weight in graph.friends[u].items():
            friends_delta += weight if sides[v] == s else -weight
        rej_delta = 0.0
        if s == LEGITIMATE:
            for v, weight in graph.rej_out[u].items():
                if sides[v] == SUSPICIOUS:
                    rej_delta -= weight
            for w, weight in graph.rej_in[u].items():
                if sides[w] == LEGITIMATE:
                    rej_delta += weight
        else:
            for v, weight in graph.rej_out[u].items():
                if sides[v] == SUSPICIOUS:
                    rej_delta += weight
            for w, weight in graph.rej_in[u].items():
                if sides[w] == LEGITIMATE:
                    rej_delta -= weight
        return -(friends_delta - k * rej_delta)

    def suspicious_size(self) -> int:
        """Number of *original* nodes on the suspicious side."""
        return sum(
            self.graph.node_weight[u]
            for u, s in enumerate(self.sides)
            if s == SUSPICIOUS
        )

    def objective(self, k: float) -> float:
        return self.f_cross - k * self.r_cross


def weighted_extended_kl(
    graph: WeightedAugmentedGraph,
    k: float,
    initial_sides: Sequence[int],
    locked: Optional[Sequence[bool]] = None,
    max_passes: int = 30,
    engine: str = "csr",
    config: Optional[KLConfig] = None,
) -> WeightedPartition:
    """The extended KL pass loop over weighted edges.

    With ``engine="csr"`` (default) the search runs on the weighted CSR
    finalization via :func:`repro.core.kl.extended_kl_state` —
    integral-weight graphs finalize to int64 and take the fused bucket
    engine on on-grid ``k`` (``config.gain_index="auto"``), float
    weights fall back to the heap. ``engine="legacy"`` keeps the
    original dict-adjacency loop. All follow the same greedy discipline
    — results may differ only in float-summation order on ties.

    ``config`` overrides the full :class:`~repro.core.kl.KLConfig` for
    the csr engine (``max_passes`` is ignored then); pass
    ``KLConfig(gain_index="heap", max_passes=...)`` to reproduce the
    pre-integer-weight behaviour exactly.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    n = graph.num_nodes
    if locked is None:
        locked = [False] * n
    if engine == "csr":
        state = PartitionState(graph.csr().view(), initial_sides, locked)
        if config is None:
            config = KLConfig(max_passes=max_passes)
        out = extended_kl_state(state, k, config=config)
        result = WeightedPartition(graph, out.sides)
        return result
    if engine != "legacy":
        raise ValueError(f"unknown engine {engine!r}")
    partition = WeightedPartition(graph, initial_sides)
    sides = partition.sides

    for _ in range(max_passes):
        index = HeapGainIndex()
        index.bulk_load(
            (u, partition.switch_gain(u, k)) for u in range(n) if not locked[u]
        )

        sequence: List[int] = []
        cumulative = 0.0
        best_cumulative = 0.0
        best_length = 0
        while True:
            popped = index.pop_max()
            if popped is None:
                break
            u, gain = popped
            prev_side = sides[u]
            partition.switch(u)
            sequence.append(u)
            cumulative += gain
            if cumulative > best_cumulative + _EPS:
                best_cumulative = cumulative
                best_length = len(sequence)
            # O(1)-per-edge neighbour updates, weighted analogues of the
            # unweighted deltas in repro.core.kl.
            for v, weight in graph.friends[u].items():
                if v in index:
                    index.adjust(
                        v, 2.0 * weight if sides[v] == prev_side else -2.0 * weight
                    )
            rej_sign = k * (1 - 2 * prev_side)
            for v, weight in graph.rej_out[u].items():
                if v in index:
                    index.adjust(v, (2 * sides[v] - 1) * rej_sign * weight)
            for w, weight in graph.rej_in[u].items():
                if w in index:
                    index.adjust(w, (2 * sides[w] - 1) * rej_sign * weight)

        for u in reversed(sequence[best_length:]):
            partition.switch(u)
        if best_length == 0:
            break
    return partition
