"""Interval-sharded detection (the Section VII deployment).

Runs the Rejecto detector independently over a sequence of per-interval
augmented graphs and merges the outcomes: which accounts were flagged,
in which interval each was *first* flagged, and the per-interval group
details. Detecting an account in interval ``t`` but not ``t-1`` is the
paper's signal for a *compromise* at time ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Union

from .csr import CSRGraph
from .graph import AugmentedSocialGraph
from .rejecto import Rejecto, RejectoConfig, RejectoResult

__all__ = ["ShardedDetectionResult", "detect_over_shards"]


@dataclass
class ShardedDetectionResult:
    """Merged outcome of per-interval detection."""

    per_interval: List[RejectoResult]
    first_flagged: Dict[int, int]  # account -> first interval that flagged it

    @property
    def num_intervals(self) -> int:
        return len(self.per_interval)

    def flagged(self, interval: Optional[int] = None) -> Set[int]:
        """Accounts flagged in one interval (or in any, when omitted)."""
        if interval is None:
            return set(self.first_flagged)
        return self.per_interval[interval].detected_set()

    def newly_flagged(self, interval: int) -> Set[int]:
        """Accounts whose *first* flag happened in this interval — the
        compromise-onset signal of Section VII."""
        return {
            account
            for account, first in self.first_flagged.items()
            if first == interval
        }

    def flag_counts(self) -> List[int]:
        """Number of flagged accounts per interval."""
        return [result.total_detected for result in self.per_interval]


def detect_over_shards(
    shards: Sequence[Union[AugmentedSocialGraph, CSRGraph]],
    config: Optional[RejectoConfig] = None,
    legit_seeds: Sequence[int] = (),
    spammer_seeds: Sequence[int] = (),
) -> ShardedDetectionResult:
    """Run Rejecto over each interval's augmented graph.

    All shards must share the same node-id space (they describe the same
    user population at different times). Seeds apply to every interval.
    Shards may be builders or finalized :class:`CSRGraph` snapshots —
    loaders can hand CSR shards straight in without materializing
    builders.
    """
    if not shards:
        raise ValueError("need at least one shard")
    sizes = {shard.num_nodes for shard in shards}
    if len(sizes) != 1:
        raise ValueError(
            f"shards disagree on the user population: sizes {sorted(sizes)}"
        )
    detector = Rejecto(config or RejectoConfig())
    per_interval: List[RejectoResult] = []
    first_flagged: Dict[int, int] = {}
    for interval, shard in enumerate(shards):
        result = detector.detect(
            shard, legit_seeds=legit_seeds, spammer_seeds=spammer_seeds
        )
        per_interval.append(result)
        for account in result.detected():
            first_flagged.setdefault(account, interval)
    return ShardedDetectionResult(
        per_interval=per_interval, first_flagged=first_flagged
    )
