"""Cut accounting for the MAAR objective.

Section III-A of the paper defines, for disjoint user sets ``X`` and ``Y``:

* the group friendship set ``F(X, Y)`` — friendships straddling the two
  sets (symmetric);
* the group rejection set ``R⃗⟨X, Y⟩`` — rejections cast *by* users in
  ``X`` *onto* users in ``Y`` (directional);
* the aggregate acceptance rate
  ``AC⟨X, Y⟩ = |F(Y, X)| / (|F(Y, X)| + |R⃗⟨Y, X⟩|)`` — the fraction of
  the friend requests from ``X`` to ``Y`` that were accepted.

Throughout this package, a bipartition assigns side ``1`` to the candidate
*suspicious* region ``U`` and side ``0`` to the legitimate region ``Ū``.
The MAAR cut minimizes ``AC⟨U, Ū⟩``, whose numerator counts cross-region
friendships and whose rejection term counts only the rejections cast by
side 0 onto side 1 (``R⃗⟨Ū, U⟩``) — rejections *among* the suspicious
region, or cast by it, never enter the objective. That asymmetry is what
makes the scheme collusion-resistant.

These functions recompute the counters from scratch; they are the ground
truth against which the incremental counters of
:class:`repro.core.partition.Partition` are property-tested.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .graph import AugmentedSocialGraph

__all__ = [
    "cross_friendships",
    "cross_rejections_into_suspicious",
    "cut_counts",
    "acceptance_rate",
    "friends_to_rejections_ratio",
    "linear_objective",
    "SUSPICIOUS",
    "LEGITIMATE",
]

#: Side label of the candidate spammer region ``U``.
SUSPICIOUS = 1
#: Side label of the legitimate region ``Ū``.
LEGITIMATE = 0


def cross_friendships(graph: AugmentedSocialGraph, sides: Sequence[int]) -> int:
    """``|F(Ū, U)|`` — friendships crossing the partition (direction-free)."""
    return sum(1 for u, v in graph.friendships() if sides[u] != sides[v])


def cross_rejections_into_suspicious(
    graph: AugmentedSocialGraph, sides: Sequence[int]
) -> int:
    """``|R⃗⟨Ū, U⟩|`` — rejections cast by side 0 onto side 1.

    Only these rejections appear in the MAAR objective: a rejection is
    counted iff the rejecter sits in the legitimate region and the
    rejected request sender sits in the suspicious region.
    """
    return sum(
        1
        for rejecter, sender in graph.rejections()
        if sides[rejecter] == LEGITIMATE and sides[sender] == SUSPICIOUS
    )


def cut_counts(graph: AugmentedSocialGraph, sides: Sequence[int]) -> Tuple[int, int]:
    """``(|F(Ū, U)|, |R⃗⟨Ū, U⟩|)`` computed from scratch."""
    return (
        cross_friendships(graph, sides),
        cross_rejections_into_suspicious(graph, sides),
    )


def acceptance_rate(f_cross: int, r_cross: int) -> float:
    """Aggregate acceptance rate ``AC⟨U, Ū⟩ = F / (F + R)``.

    A cut with no cross requests at all (``F + R == 0``) carries no
    evidence of spamming, so it is treated as fully accepted (rate 1.0),
    which makes it the *least* suspicious possible cut.
    """
    total = f_cross + r_cross
    if total == 0:
        return 1.0
    return f_cross / total


def friends_to_rejections_ratio(f_cross: int, r_cross: int) -> float:
    """Aggregate friends-to-rejections ratio ``|F(Ū,U)| / |R⃗⟨Ū,U⟩|``.

    Minimizing this ratio is equivalent to minimizing the aggregate
    acceptance rate (Section IV-B). Returns ``inf`` when there are no
    cross rejections, mirroring :func:`acceptance_rate`'s treatment of
    evidence-free cuts.
    """
    if r_cross == 0:
        return float("inf")
    return f_cross / r_cross


def linear_objective(f_cross: int, r_cross: int, k: float) -> float:
    """The linearized objective ``W(U) = |F(Ū,U)| − k·|R⃗⟨Ū,U⟩|``.

    Theorem 1: at ``k = k*`` (the optimal friends-to-rejections ratio),
    the MAAR cut is exactly the minimizer of this linear objective; the
    extended KL search of :mod:`repro.core.kl` minimizes it for each
    ``k`` on a geometric grid.
    """
    return f_cross - k * r_cross
