"""Executor layer for fanning independent solver runs out to workers.

The MAAR sweep (Section IV-D) runs one extended-KL search per ``k`` on a
geometric grid; with the default ``warm_start=False`` every step starts
from the *same* initial partition over the *same* immutable
:class:`~repro.core.csr.CSRGraph` snapshot, so the steps are independent
— exactly the shape the paper's Spark implementation (Section V)
exploits across a cluster. This module provides the laptop-scale
equivalent: a tiny ordered-``map`` abstraction with three backends.

Backends
--------
``serial``
    Plain in-process loop. The reference every other backend is pinned
    to (``tests/core/test_parity.py`` asserts bit-identical results).
``thread``
    ``concurrent.futures.ThreadPoolExecutor``. Zero setup cost and
    shares every object directly, but the pure-Python KL loops hold the
    GIL, so it mostly helps as the portable fallback on platforms
    without ``fork``.
``process``
    ``concurrent.futures.ProcessPoolExecutor``. On fork platforms
    (Linux, macOS with the ``fork`` start method) the shared payload is
    published to a module-level registry *before* the pool forks, so
    workers inherit the immutable CSR arrays zero-copy via
    copy-on-write — nothing is pickled except the per-task items and
    the (small) results. On spawn-only platforms the payload is pickled
    once into each worker through the pool initializer;
    :class:`~repro.core.csr.CSRGraph` strips its derived caches on
    pickling so the transfer is just the flat ``array`` buffers.
``auto``
    ``process`` when ``fork`` is available, else ``thread``; ``serial``
    whenever ``jobs <= 1`` or there is at most one item.

Determinism
-----------
:func:`parallel_map` always returns results in input order, so any
reduction that iterates the returned list reproduces the serial loop's
tie-break order exactly. Worker exceptions propagate to the caller.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = [
    "BACKENDS",
    "available_backends",
    "chunk_evenly",
    "default_jobs",
    "fork_available",
    "parallel_map",
    "resolve_executor",
    "warn_jobs_ignored",
]

#: Concrete backend names (``"auto"`` resolves to one of these).
BACKENDS = ("serial", "thread", "process")


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def available_backends() -> List[str]:
    """The concrete backends usable on this platform (all three — the
    process backend falls back to spawn+pickle where fork is missing)."""
    return list(BACKENDS)


def default_jobs() -> int:
    """Worker count used when a caller asks for "all cores"."""
    return os.cpu_count() or 1


def warn_jobs_ignored(logger, owner: str, jobs: int, reason: str) -> None:
    """Emit the standard "``jobs`` ignored" warning.

    Every solver that accepts a ``jobs`` knob but cannot honour it for
    the current configuration (coupled steps, legacy engines, …) warns
    through this helper so the message shape — *which* config, *how
    many* jobs, *why* it runs serially — stays uniform and the tests can
    pin it once.
    """
    logger.warning("%s(jobs=%d) ignored: %s", owner, jobs, reason)


def chunk_evenly(items: Iterable[Any], jobs: int) -> List[List[Any]]:
    """Split ``items`` into at most ``jobs`` contiguous, near-equal chunks.

    Deterministic: chunk sizes differ by at most one (longer chunks
    first) and concatenating the chunks reproduces the input order
    exactly, so fanning chunks out through :func:`parallel_map` and
    merging the ordered results is independent of the worker count.
    Returns no empty chunks (an empty input yields an empty list).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    tasks = list(items)
    count = min(jobs, len(tasks))
    if count <= 1:
        return [tasks] if tasks else []
    base, extra = divmod(len(tasks), count)
    chunks: List[List[Any]] = []
    start = 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        chunks.append(tasks[start : start + size])
        start += size
    return chunks


def resolve_executor(executor: str, jobs: int) -> str:
    """Normalize an ``executor`` request to a concrete backend name.

    ``"auto"`` picks ``"serial"`` for ``jobs <= 1``, else ``"process"``
    on fork platforms and ``"thread"`` otherwise. Explicit backend names
    are honoured as given (useful for pinning tests); unknown names
    raise ``ValueError``.
    """
    if executor == "auto":
        if jobs <= 1:
            return "serial"
        return "process" if fork_available() else "thread"
    if executor not in BACKENDS:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of "
            f"{('auto',) + BACKENDS}"
        )
    return executor


# ----------------------------------------------------------------------
# Shared-payload registry
# ----------------------------------------------------------------------
# Parent processes publish the read-only payload here under a fresh token
# before creating a fork pool; forked workers find it in their inherited
# copy of this module (copy-on-write, zero transfer). Spawned workers
# populate their own registry via the pool initializer instead.
_SHARED: Dict[int, Any] = {}
_TOKENS = itertools.count(1)


def _init_spawn_worker(token: int, payload: bytes) -> None:
    """Pool initializer for spawn platforms: unpickle the shared payload
    once per worker instead of once per task."""
    _SHARED[token] = pickle.loads(payload)


def _call_with_shared(token: int, fn: Callable[[Any, Any], Any], item: Any) -> Any:
    """Per-task trampoline run inside process-pool workers."""
    return fn(item, _SHARED.get(token))


def parallel_map(
    fn: Callable[[Any, Any], Any],
    items: Iterable[Any],
    shared: Any = None,
    jobs: int = 1,
    executor: str = "auto",
) -> List[Any]:
    """Apply ``fn(item, shared)`` to every item, preserving input order.

    Parameters
    ----------
    fn:
        A module-level callable (the process backend pickles it by
        reference). Receives ``(item, shared)``.
    items:
        The per-task inputs. Consumed eagerly.
    shared:
        Read-only payload distributed to workers: shared directly by the
        serial/thread backends, inherited zero-copy via fork COW by the
        process backend on fork platforms, pickled once per worker on
        spawn platforms (so it must be picklable there).
    jobs:
        Worker count; values ``<= 1`` run serially.
    executor:
        ``"auto"``, ``"serial"``, ``"thread"``, or ``"process"``.

    Returns
    -------
    list
        ``[fn(item, shared) for item in items]`` — the serial semantics,
        whatever the backend. Exceptions raised by ``fn`` propagate.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    tasks = list(items)
    backend = resolve_executor(executor, jobs)
    if backend == "serial" or jobs <= 1 or len(tasks) <= 1:
        return [fn(item, shared) for item in tasks]
    workers = min(jobs, len(tasks))

    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(lambda item: fn(item, shared), tasks))

    # Process backend.
    token = next(_TOKENS)
    context = multiprocessing.get_context("fork" if fork_available() else None)
    initializer: Optional[Callable] = None
    initargs: tuple = ()
    if context.get_start_method() == "fork":
        _SHARED[token] = shared
    else:  # pragma: no cover - exercised only on spawn-only platforms
        initializer = _init_spawn_worker
        initargs = (token, pickle.dumps(shared))
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            return list(
                pool.map(
                    _call_with_shared,
                    itertools.repeat(token),
                    itertools.repeat(fn),
                    tasks,
                )
            )
    finally:
        _SHARED.pop(token, None)
