"""Structural validation of augmented social graphs.

Loaded or hand-built graphs (e.g. via :mod:`repro.io` or networkx
interop) can carry subtle inconsistencies; :func:`validate_graph` checks
every representation invariant the detection pipeline relies on and
returns human-readable findings. Used by the operator CLI before
detection, and handy in tests for anything that mutates adjacency
directly.
"""

from __future__ import annotations

from typing import List

from .graph import AugmentedSocialGraph

__all__ = ["validate_graph", "assert_valid_graph", "GraphValidationError"]


class GraphValidationError(ValueError):
    """Raised by :func:`assert_valid_graph` on an invalid graph."""


def validate_graph(graph: AugmentedSocialGraph) -> List[str]:
    """Check representation invariants; returns a list of problems
    (empty = valid).

    Checked invariants:

    * adjacency lists stay within ``[0, num_nodes)`` and carry no
      self-loops or duplicates;
    * friendship adjacency is symmetric and consistent with the
      friendship edge set;
    * rejection out/in adjacency are mutually consistent and match the
      rejection edge set;
    * edge-set sizes match the adjacency totals.
    """
    problems: List[str] = []
    n = graph.num_nodes

    def check_ids(kind: str, u: int, adjacency: List[int]) -> None:
        for v in adjacency:
            if not 0 <= v < n:
                problems.append(f"{kind}[{u}] references out-of-range node {v}")
            if v == u:
                problems.append(f"{kind}[{u}] contains a self-loop")
        if len(set(adjacency)) != len(adjacency):
            problems.append(f"{kind}[{u}] contains duplicates")

    for u in range(n):
        check_ids("friends", u, graph.friends[u])
        check_ids("rej_out", u, graph.rej_out[u])
        check_ids("rej_in", u, graph.rej_in[u])

    # Friendship symmetry and edge-set agreement.
    adjacency_pairs = set()
    for u in range(n):
        for v in graph.friends[u]:
            if 0 <= v < n and u not in graph.friends[v]:
                problems.append(f"friendship ({u}, {v}) is not symmetric")
            adjacency_pairs.add((min(u, v), max(u, v)))
    edge_pairs = {tuple(sorted(e)) for e in graph.friendships()}
    if adjacency_pairs != edge_pairs:
        missing = edge_pairs - adjacency_pairs
        extra = adjacency_pairs - edge_pairs
        if missing:
            problems.append(f"friendship set has edges absent from adjacency: {sorted(missing)[:5]}")
        if extra:
            problems.append(f"adjacency has friendships absent from edge set: {sorted(extra)[:5]}")

    # Rejection duality and edge-set agreement.
    out_pairs = set()
    for u in range(n):
        for v in graph.rej_out[u]:
            if 0 <= v < n and u not in graph.rej_in[v]:
                problems.append(f"rejection ⟨{u}, {v}⟩ missing from rej_in[{v}]")
            out_pairs.add((u, v))
    in_pairs = set()
    for v in range(n):
        for u in graph.rej_in[v]:
            if 0 <= u < n and v not in graph.rej_out[u]:
                problems.append(f"rejection ⟨{u}, {v}⟩ missing from rej_out[{u}]")
            in_pairs.add((u, v))
    edge_rejections = set(graph.rejections())
    if out_pairs != edge_rejections:
        problems.append(
            "rejection edge set disagrees with rej_out adjacency "
            f"({len(out_pairs ^ edge_rejections)} differing edges)"
        )
    if in_pairs != edge_rejections:
        problems.append(
            "rejection edge set disagrees with rej_in adjacency "
            f"({len(in_pairs ^ edge_rejections)} differing edges)"
        )

    if len(edge_pairs) != graph.num_friendships:
        problems.append(
            f"num_friendships={graph.num_friendships} but edge set has {len(edge_pairs)}"
        )
    if len(edge_rejections) != graph.num_rejections:
        problems.append(
            f"num_rejections={graph.num_rejections} but edge set has {len(edge_rejections)}"
        )
    return problems


def assert_valid_graph(graph: AugmentedSocialGraph) -> None:
    """Raise :class:`GraphValidationError` listing any invariant breaks."""
    problems = validate_graph(graph)
    if problems:
        summary = "; ".join(problems[:5])
        if len(problems) > 5:
            summary += f" (+{len(problems) - 5} more)"
        raise GraphValidationError(f"invalid graph: {summary}")
