"""Graduated responses to detected accounts (Section VII).

"To prevent detected accounts from sending out friend spam in the
future, an OSN provider can take actions, such as sending CAPTCHA
challenges, rate-limiting their online activities, or even suspending
the accounts. The actions taken before account suspension allow certain
degree of tolerance to the false positives (e.g., OSN creepers) in the
detection system."

:class:`ResponsePolicy` turns a detection outcome into per-account
actions graded by evidence strength: groups whose cut acceptance rate is
very low (overwhelming rejection evidence) earn suspension; borderline
groups get reversible friction (rate limits, CAPTCHAs) that a falsely
flagged real user can clear.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from .rejecto import RejectoResult

__all__ = ["Action", "ResponsePolicy", "ResponsePlan"]


class Action(enum.Enum):
    """Enforcement actions, weakest to strongest."""

    CAPTCHA = "captcha"
    RATE_LIMIT = "rate_limit"
    SUSPEND = "suspend"


@dataclass(frozen=True)
class ResponsePolicy:
    """Acceptance-rate thresholds mapping evidence to actions.

    A detected group's aggregate acceptance rate *is* its evidence
    strength: the lower the rate, the more of the group's requests were
    rejected. Groups at or below ``suspend_below`` are suspended; above
    that but at or below ``rate_limit_below`` are rate-limited; all
    remaining detections get a CAPTCHA challenge — the reversible floor
    every flagged account receives.
    """

    suspend_below: float = 0.2
    rate_limit_below: float = 0.4

    def __post_init__(self) -> None:
        if not 0 <= self.suspend_below <= self.rate_limit_below <= 1:
            raise ValueError(
                "thresholds must satisfy 0 <= suspend_below <= "
                f"rate_limit_below <= 1, got {self.suspend_below}, "
                f"{self.rate_limit_below}"
            )

    def action_for_rate(self, acceptance_rate: float) -> Action:
        """Action for one group's aggregate acceptance rate."""
        if acceptance_rate <= self.suspend_below:
            return Action.SUSPEND
        if acceptance_rate <= self.rate_limit_below:
            return Action.RATE_LIMIT
        return Action.CAPTCHA

    def plan(self, result: RejectoResult) -> "ResponsePlan":
        """Per-account actions for a whole detection outcome."""
        actions: Dict[int, Action] = {}
        for group in result.groups:
            action = self.action_for_rate(group.acceptance_rate)
            for account in group.members:
                actions[account] = action
        return ResponsePlan(actions=actions)


@dataclass
class ResponsePlan:
    """The per-account enforcement decisions."""

    actions: Dict[int, Action]

    def accounts_for(self, action: Action) -> List[int]:
        """Accounts assigned the given action, in id order."""
        return sorted(u for u, a in self.actions.items() if a is action)

    def counts(self) -> Dict[Action, int]:
        """How many accounts each action applies to."""
        counts = {action: 0 for action in Action}
        for action in self.actions.values():
            counts[action] += 1
        return counts

    def __len__(self) -> int:
        return len(self.actions)
