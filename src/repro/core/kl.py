"""Extended Kernighan-Lin search over rejection-augmented social graphs.

This module implements Algorithm 1 of the paper (Section IV-D). The
classic KL/FM bisection minimizes the number of cross-part edges of an
undirected graph; Rejecto's extension differs in three ways:

1. **Weighted, mixed edges.** Friendship edges carry weight ``+1`` and
   rejection edges carry weight ``−k``, so the search minimizes the
   linearized MAAR objective ``W(U) = |F(Ū,U)| − k·|R⃗⟨Ū,U⟩|``.
2. **Single-node switching.** The paper drops KL's node-*pair*
   interchange because the sizes of the spammer and legitimate regions
   are unknown a priori; part sizes must be free to drift.
3. **Directional rejection accounting.** Only rejections cast by the
   legitimate side onto the suspicious side enter the objective, so the
   gain of a switch is asymmetric in the rejection edges' direction.

Each *pass* tentatively switches every unlocked node exactly once, in
greedy max-gain order (a Fiduccia-Mattheyses-style bucket list yields the
max in O(1)); negative-gain switches are still performed to climb out of
local minima. The pass then keeps the prefix of switches with the highest
cumulative gain and rolls the rest back. Passes repeat until no prefix
improves the objective.

Seed nodes (Section IV-F) are *locked*: they are pre-placed on their
known side and never enter the gain index, which prunes the misleading
low-ratio cuts inside the legitimate region from the search space.

Engines
-------
Two engines implement the identical greedy discipline (same gain
arithmetic, same FM LIFO tie-breaks, same best-prefix rollback — parity
is asserted in ``tests/core/test_parity.py``):

* ``engine="csr"`` (default) — runs on the flat-array
  :class:`repro.core.csr.PartitionState`. On the default 1/8 ``k`` grid
  it uses an *inlined* integer-scaled bucket list: counter updates and
  neighbour gain adjustments happen in one fused sweep per switched
  node, with zero per-edge function calls. Int64-weighted coarse graphs
  (the multilevel hierarchy) run a weighted twin of the same fused
  engine; off-grid ``k`` (Dinkelbach refinement), float-weighted
  graphs, and weighted residual views fall back to the lazy heap.
* ``engine="legacy"`` — the original loop over the builder's
  list-of-lists adjacency and the :mod:`repro.core.gains` index objects;
  kept as the parity/benchmark reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from .csr import PartitionState
from .gains import HeapGainIndex, _on_grid, make_gain_index
from .graph import AugmentedSocialGraph
from .kernels import (
    boundary_nodes,
    gain_deltas,
    heap_gains,
    weighted_boundary_nodes,
    weighted_gain_deltas,
    weighted_heap_gains,
)
from .partition import Partition

__all__ = [
    "KLConfig",
    "KLStats",
    "extended_kl",
    "extended_kl_state",
    "refine_subset",
    "adjust_neighbor_gains",
]

_EPS = 1e-9


@dataclass
class KLConfig:
    """Tuning knobs for the extended KL search.

    Attributes
    ----------
    gain_index:
        ``"bucket"`` (FM bucket list), ``"heap"`` (lazy-deletion heap) or
        ``"auto"`` (bucket when ``k`` sits on the ``1/resolution`` grid
        and the graph is unweighted — or int64-weighted on an all-active
        view).
    resolution:
        Grid denominator for the bucket list. With the default geometric
        ``k`` sequence (k = 1/8 · 2^i) every gain is a multiple of 1/8.
    max_passes:
        Upper bound on improvement passes. KL converges in a handful of
        passes in practice [21]; the bound only guards pathologies.
    stall_limit:
        If set, a pass stops tentatively switching once this many
        consecutive switches failed to improve the best prefix gain.
        ``None`` performs the full pass (the paper's behaviour); a finite
        limit trades a little cut quality for a large speedup on big
        graphs (see the ablation benchmark).
    engine:
        ``"csr"`` (default) runs on the flat-array CSR core;
        ``"legacy"`` runs the original list-of-lists loop. Both produce
        identical results on sorted-adjacency inputs.
    incremental:
        When ``True`` (default), passes after the first rebuild their
        gain structure from the *dirty frontier* — the previous pass's
        applied prefix plus its neighbours, the only nodes whose
        start-of-pass gains can have changed — instead of re-sweeping
        all V+E edges. Bit-identical to the full rebuild (gains are
        recomputed to the same integers/floats and re-inserted in the
        same ascending node order); ``False`` forces the full O(V+E)
        re-sweep every pass, kept as the parity/benchmark reference.
    frontier:
        ``"full"`` (default) loads every unlocked active node into the
        gain index — the classic KL pass, whose tentative sweep costs
        O(V+E) even when the partition is nearly converged. When the
        start point is already good (multilevel uncoarsening projects a
        refined coarse cut), ``"boundary"`` seeds the pass from
        :func:`~repro.core.kernels.boundary_nodes` instead: the nodes on
        the cut or with a positive switch gain, plus their neighbours.
        The scope then *grows* — every applied prefix admits its dirty
        frontier, and at convergence a closure sweep readmits any
        positive-gain node the scope missed — so the scoped search never
        stops while a profitable single switch exists anywhere (the
        invariant ``tests/core/test_refinement.py`` checks on arbitrary
        workloads). On refinement workloads the scoped pass is almost
        always bit-identical to the full one — partitions, counters and
        objective history (pinned on fixed workloads in the same test
        file); rarely (~0.5 % of random refinement workloads) the two
        take different compound-move paths through interior nodes and
        settle on equally converged cuts whose objectives differ by a
        move or two, in either direction. On arbitrary start points the
        full engine may hill-climb through interior nodes the scope
        never admits, so ``"full"`` remains the default.
    """

    gain_index: str = "auto"
    resolution: int = 8
    max_passes: int = 30
    stall_limit: Optional[int] = None
    engine: str = "csr"
    incremental: bool = True
    frontier: str = "full"


@dataclass
class KLStats:
    """Diagnostics of one :func:`extended_kl` run."""

    passes: int = 0
    switches_applied: int = 0
    switches_tested: int = 0
    objective_history: List[float] = field(default_factory=list)


# ----------------------------------------------------------------------
# CSR engine
# ----------------------------------------------------------------------
def adjust_neighbor_gains(
    index, state: PartitionState, u: int, prev_side: int, k: float
) -> None:
    """Apply the O(1)-per-edge gain updates for the neighbours of a node
    that just switched away from ``prev_side``.

    This is the single shared update rule of every engine (core bucket,
    core heap, weighted, distributed): friends move by ``±2·w``; each
    rejection edge moves its *other* endpoint by ``(2·side−1)·k·(1−2·
    prev_side)·w``. Exported so the property tests can drive the gain
    indexes through the exact production update path.
    """
    _adjust_gains(index, state.view, state.sides, u, prev_side, k)


def _adjust_gains(index, view, sides, u: int, prev_side: int, k: float) -> None:
    """Body of :func:`adjust_neighbor_gains` over raw ``(view, sides)``
    (shared with :func:`refine_subset`, which carries no state object)."""
    csr = view.csr
    fp, fi, op, oi, ip_, ii = csr.hot()
    active = view.active
    weights = csr.hot_weights()
    rej_sign = k * (1 - 2 * prev_side)
    if weights is None:
        for i in range(fp[u], fp[u + 1]):
            v = fi[i]
            if active[v] and v in index:
                index.adjust(v, 2.0 if sides[v] == prev_side else -2.0)
        for i in range(op[u], op[u + 1]):
            v = oi[i]
            if active[v] and v in index:
                index.adjust(v, (2 * sides[v] - 1) * rej_sign)
        for i in range(ip_[u], ip_[u + 1]):
            w = ii[i]
            if active[w] and w in index:
                index.adjust(w, (2 * sides[w] - 1) * rej_sign)
    else:
        fw, ow, iw = weights
        for i in range(fp[u], fp[u + 1]):
            v = fi[i]
            if active[v] and v in index:
                index.adjust(
                    v, 2.0 * fw[i] if sides[v] == prev_side else -2.0 * fw[i]
                )
        for i in range(op[u], op[u + 1]):
            v = oi[i]
            if active[v] and v in index:
                index.adjust(v, (2 * sides[v] - 1) * rej_sign * ow[i])
        for i in range(ip_[u], ip_[u + 1]):
            w = ii[i]
            if active[w] and w in index:
                index.adjust(w, (2 * sides[w] - 1) * rej_sign * iw[i])


def _run_bucket_passes(
    state: PartitionState, k: float, config: KLConfig, stats: Optional[KLStats]
) -> None:
    """The fused integer-scaled FM bucket engine (unweighted, on-grid k).

    Gains are stored as integers scaled by ``resolution``; on the 1/8
    grid every legacy float gain is binary-exact, so the integer engine
    reproduces the legacy pop order and best-prefix decisions bit for
    bit. The per-switch loop fuses the cut-counter update with the
    neighbour bucket relinks — one sweep per incident edge, no function
    calls — which is where the end-to-end speedup over the legacy engine
    comes from (see ``BENCH_gain_index.json``).

    Pass-invariant setup (the gain bound) comes memoized from
    :meth:`CSRGraph.bucket_gain_bound`; pass 1 fills the start-of-pass
    bucket indices with the batch :func:`gain_deltas` kernel, and later
    passes refresh only the previous pass's dirty frontier (see
    ``KLConfig.incremental``). The full-graph bound can exceed the old
    active-only one on residual views — that only offset-shifts every
    bucket index uniformly, so pop order and recorded gains (``b −
    offset``) are untouched.
    """
    view = state.view
    csr = view.csr
    # Active-filtered adjacency: every neighbour in these arrays is
    # active, so the hot loops below carry no per-edge mask checks.
    fp, fi, op, oi, ip_, ii = view.hot_active()
    active = view.active
    sides = state.sides
    locked = state.locked
    n = csr.num_nodes
    res = config.resolution
    k_scaled = round(k * res)
    two_res = 2 * res
    f_cross = state.f_cross
    r_cross = state.r_cross
    stall_limit = config.stall_limit

    bound = csr.bucket_gain_bound(res, k_scaled)
    offset = bound + 1
    num_buckets = 2 * bound + 3
    absent = -1

    eligible = [u for u in range(n) if active[u] and not locked[u]]
    # Boundary frontier (KLConfig.frontier="boundary"): restrict the
    # tentative passes to the cut frontier instead of the whole graph.
    # The scope grows with every applied prefix's dirty frontier, and
    # the convergence closure below readmits any positive-gain node the
    # scope missed, so no profitable single switch is ever left behind.
    scope: Optional[List[bool]] = None
    if config.frontier == "boundary":
        scope = [False] * n
        scoped = []
        for u in boundary_nodes(view, sides, k):
            if not locked[u]:
                scope[u] = True
                scoped.append(u)
        eligible = scoped
    gain_b: Optional[List[int]] = None  # start-of-pass bucket index per node
    dirty: Optional[Set[int]] = None  # None -> full rebuild

    for _ in range(config.max_passes):
        if stats is not None:
            stats.passes += 1
            stats.objective_history.append(f_cross - k * r_cross)

        # Refresh start-of-pass bucket indices. Pass 1 (and the
        # non-incremental reference mode) rebuilds every eligible node
        # via the batch kernel; later passes recompute only the dirty
        # frontier — identical integers either way. On the numpy backend
        # a large frontier flips back to the batch kernel (a pure-speed
        # choice: both paths produce the same values).
        refresh_all = (
            gain_b is None
            or dirty is None
            or (csr.backend == "numpy" and 4 * len(dirty) > len(eligible))
        )
        if refresh_all and scope is not None and csr.backend != "numpy":
            # Scoped python rebuilds sweep only the frontier — the same
            # scalar recomputation as the dirty path, same integers —
            # so a small boundary never pays the full O(V+E) kernel.
            if gain_b is None:
                gain_b = [0] * n
            dirty = set(eligible)
            refresh_all = False
        if refresh_all:
            fd_all, rd_all = gain_deltas(view, sides)
            if gain_b is None:
                gain_b = [0] * n
            for u in eligible:
                gain_b[u] = k_scaled * rd_all[u] - fd_all[u] * res + offset
        else:
            # dirty ⊆ active (the prefix is eligible, the frontier comes
            # from the filtered adjacency), so only locks need checking.
            for u in dirty:
                if locked[u]:
                    continue
                s = sides[u]
                fd = 0
                for v in fi[fp[u] : fp[u + 1]]:
                    fd += 1 if sides[v] == s else -1
                rd = 0
                if s:
                    for v in oi[op[u] : op[u + 1]]:
                        if sides[v]:
                            rd += 1
                    for w in ii[ip_[u] : ip_[u + 1]]:
                        if not sides[w]:
                            rd -= 1
                else:
                    for v in oi[op[u] : op[u + 1]]:
                        if sides[v]:
                            rd -= 1
                    for w in ii[ip_[u] : ip_[u + 1]]:
                        if not sides[w]:
                            rd += 1
                gain_b[u] = k_scaled * rd - fd * res + offset

        heads = [absent] * num_buckets
        nxt = [absent] * n
        prv = [absent] * n
        bucket_of = [absent] * n
        max_b = -1
        size = 0

        # Insert in ascending node order (the legacy discipline — LIFO
        # within each bucket). The lists above are fresh, so only the
        # displaced head needs a prv write.
        for u in eligible:
            b = gain_b[u]
            h = heads[b]
            nxt[u] = h
            if h >= 0:
                prv[h] = u
            heads[b] = u
            bucket_of[u] = b
            if b > max_b:
                max_b = b
            size += 1

        sequence: List[tuple] = []
        cumulative = 0
        best_cumulative = 0
        best_length = 0
        stall = 0
        while size:
            if stall_limit is not None and stall >= stall_limit:
                break
            while heads[max_b] < 0:
                max_b -= 1
            b = max_b
            u = heads[b]
            nx = nxt[u]
            heads[b] = nx
            if nx >= 0:
                prv[nx] = absent
            bucket_of[u] = absent
            size -= 1

            s = sides[u]
            fd = 0
            rd = 0
            # Fused switch: counter deltas and neighbour bucket relinks in
            # one sweep per edge, in the legacy order (friends, rejections
            # cast, rejections received). Slice iteration over the
            # filtered adjacency — no index arithmetic, no mask checks.
            for v in fi[fp[u] : fp[u + 1]]:
                if sides[v] == s:
                    fd += 1
                    d = two_res
                else:
                    fd -= 1
                    d = -two_res
                bv = bucket_of[v]
                if bv >= 0:
                    nbv = bv + d
                    nx2 = nxt[v]
                    pv2 = prv[v]
                    if pv2 >= 0:
                        nxt[pv2] = nx2
                    else:
                        heads[bv] = nx2
                    if nx2 >= 0:
                        prv[nx2] = pv2
                    h = heads[nbv]
                    nxt[v] = h
                    prv[v] = absent
                    if h >= 0:
                        prv[h] = v
                    heads[nbv] = v
                    bucket_of[v] = nbv
                    if nbv > max_b:
                        max_b = nbv
            if s:
                rs = -k_scaled
                rd_on_susp = 1
                rd_on_legit = -1
            else:
                rs = k_scaled
                rd_on_susp = -1
                rd_on_legit = 1
            for v in oi[op[u] : op[u + 1]]:
                if sides[v]:
                    rd += rd_on_susp
                    d = rs
                else:
                    d = -rs
                bv = bucket_of[v]
                if bv >= 0:
                    nbv = bv + d
                    nx2 = nxt[v]
                    pv2 = prv[v]
                    if pv2 >= 0:
                        nxt[pv2] = nx2
                    else:
                        heads[bv] = nx2
                    if nx2 >= 0:
                        prv[nx2] = pv2
                    h = heads[nbv]
                    nxt[v] = h
                    prv[v] = absent
                    if h >= 0:
                        prv[h] = v
                    heads[nbv] = v
                    bucket_of[v] = nbv
                    if nbv > max_b:
                        max_b = nbv
            for v in ii[ip_[u] : ip_[u + 1]]:
                if sides[v]:
                    d = rs
                else:
                    rd += rd_on_legit
                    d = -rs
                bv = bucket_of[v]
                if bv >= 0:
                    nbv = bv + d
                    nx2 = nxt[v]
                    pv2 = prv[v]
                    if pv2 >= 0:
                        nxt[pv2] = nx2
                    else:
                        heads[bv] = nx2
                    if nx2 >= 0:
                        prv[nx2] = pv2
                    h = heads[nbv]
                    nxt[v] = h
                    prv[v] = absent
                    if h >= 0:
                        prv[h] = v
                    heads[nbv] = v
                    bucket_of[v] = nbv
                    if nbv > max_b:
                        max_b = nbv

            f_cross += fd
            r_cross += rd
            sides[u] = 1 - s
            sequence.append((u, fd, rd))
            cumulative += b - offset
            if stats is not None:
                stats.switches_tested += 1
            if cumulative > best_cumulative:
                best_cumulative = cumulative
                best_length = len(sequence)
                stall = 0
            else:
                stall += 1

        # Roll back every switch beyond the best prefix (exact integer
        # reversal of the recorded deltas).
        for u, fd, rd in reversed(sequence[best_length:]):
            f_cross -= fd
            r_cross -= rd
            sides[u] = 1 - sides[u]
        if stats is not None:
            stats.switches_applied += best_length
        if best_length == 0:
            if scope is None:
                break
            # Convergence closure: one batch sweep readmits every active
            # positive-gain node outside the scope. If none exists the
            # scoped search has genuinely converged — no profitable
            # single switch remains anywhere in the graph.
            fd_all, rd_all = gain_deltas(view, sides)
            fresh = [
                u
                for u in range(n)
                if active[u]
                and not locked[u]
                and not scope[u]
                and k_scaled * rd_all[u] - fd_all[u] * res > 0
            ]
            if not fresh:
                break
            for u in fresh:
                scope[u] = True
                gain_b[u] = k_scaled * rd_all[u] - fd_all[u] * res + offset
            # In-scope gains are untouched (the pass applied nothing),
            # and the fresh nodes' gains were just filled — nothing is
            # dirty for the next pass.
            eligible = sorted(eligible + fresh)
            dirty = set()
            continue
        track_dirty = config.incremental and not (
            csr.backend == "numpy" and 4 * best_length > len(eligible)
        )
        if track_dirty or scope is not None:
            # Rolled-back switches are net no-ops, so only the applied
            # prefix and its neighbourhood can enter the next pass with
            # a changed gain. (When the prefix alone already exceeds the
            # batch-rebuild threshold, skip collecting the frontier —
            # the next pass rebuilds in full either way. In boundary
            # mode the frontier is always collected: it is also how the
            # scope grows.)
            dirty = set()
            for u, _, _ in sequence[:best_length]:
                dirty.add(u)
                dirty.update(fi[fp[u] : fp[u + 1]])
                dirty.update(oi[op[u] : op[u + 1]])
                dirty.update(ii[ip_[u] : ip_[u + 1]])
            if scope is not None:
                grown = [v for v in dirty if not scope[v] and not locked[v]]
                if grown:
                    for v in grown:
                        scope[v] = True
                    eligible = sorted(eligible + grown)
            if not track_dirty:
                dirty = None
        else:
            dirty = None

    state.f_cross = f_cross
    state.r_cross = r_cross
    ones = 0
    for u in range(n):
        if active[u] and sides[u]:
            ones += 1
    state.side_sizes = [view.num_active - ones, ones]


def _run_bucket_passes_weighted(
    state: PartitionState, k: float, config: KLConfig, stats: Optional[KLStats]
) -> None:
    """The fused FM bucket engine for int64-weighted graphs.

    Same greedy discipline as :func:`_run_bucket_passes` with every edge
    contributing its integer weight: the bucket index is still the exact
    integer ``k_scaled·rd − fd·res + offset`` (weighted ``fd``/``rd`` are
    int64 sums — order-insensitive, hence backend-identical), the bound
    comes from the weighted :func:`~repro.core.kernels.scaled_gain_bound`
    via the same memoized :meth:`CSRGraph.bucket_gain_bound`, and the
    best-prefix comparison is exact integer arithmetic. This is what the
    integer-weight coarse representation buys: the multilevel refinement
    sheds the float heap without giving up bit-for-bit reproducibility.

    Weights are positional against the *full* CSR slot arrays, so this
    engine requires an all-active view (``hot_active`` re-packs slots and
    would misalign them); the dispatcher falls back to the heap on
    residual views.
    """
    view = state.view
    csr = view.csr
    fp, fi, op, oi, ip_, ii = csr.hot()
    fw, ow, iw = csr.hot_weights()
    sides = state.sides
    locked = state.locked
    n = csr.num_nodes
    res = config.resolution
    k_scaled = round(k * res)
    two_res = 2 * res
    f_cross = state.f_cross
    r_cross = state.r_cross
    stall_limit = config.stall_limit

    bound = csr.bucket_gain_bound(res, k_scaled)
    offset = bound + 1
    num_buckets = 2 * bound + 3
    absent = -1

    eligible = [u for u in range(n) if not locked[u]]
    # Boundary frontier: same scoped discipline as the unweighted engine
    # (seed from the weighted frontier kernel, grow with every applied
    # prefix, closure sweep at convergence).
    scope: Optional[List[bool]] = None
    if config.frontier == "boundary":
        scope = [False] * n
        scoped = []
        for u in weighted_boundary_nodes(view, sides, k):
            if not locked[u]:
                scope[u] = True
                scoped.append(u)
        eligible = scoped
    gain_b: Optional[List[int]] = None  # start-of-pass bucket index per node
    dirty: Optional[Set[int]] = None  # None -> full rebuild

    for _ in range(config.max_passes):
        if stats is not None:
            stats.passes += 1
            stats.objective_history.append(f_cross - k * r_cross)

        refresh_all = (
            gain_b is None
            or dirty is None
            or (csr.backend == "numpy" and 4 * len(dirty) > len(eligible))
        )
        if refresh_all and scope is not None and csr.backend != "numpy":
            if gain_b is None:
                gain_b = [0] * n
            dirty = set(eligible)
            refresh_all = False
        if refresh_all:
            fd_all, rd_all = weighted_gain_deltas(view, sides)
            if gain_b is None:
                gain_b = [0] * n
            for u in eligible:
                gain_b[u] = k_scaled * rd_all[u] - fd_all[u] * res + offset
        else:
            for u in dirty:
                if locked[u]:
                    continue
                s = sides[u]
                fd = 0
                for v, w in zip(fi[fp[u] : fp[u + 1]], fw[fp[u] : fp[u + 1]]):
                    fd += w if sides[v] == s else -w
                rd = 0
                if s:
                    for v, w in zip(
                        oi[op[u] : op[u + 1]], ow[op[u] : op[u + 1]]
                    ):
                        if sides[v]:
                            rd += w
                    for v, w in zip(
                        ii[ip_[u] : ip_[u + 1]], iw[ip_[u] : ip_[u + 1]]
                    ):
                        if not sides[v]:
                            rd -= w
                else:
                    for v, w in zip(
                        oi[op[u] : op[u + 1]], ow[op[u] : op[u + 1]]
                    ):
                        if sides[v]:
                            rd -= w
                    for v, w in zip(
                        ii[ip_[u] : ip_[u + 1]], iw[ip_[u] : ip_[u + 1]]
                    ):
                        if not sides[v]:
                            rd += w
                gain_b[u] = k_scaled * rd - fd * res + offset

        heads = [absent] * num_buckets
        nxt = [absent] * n
        prv = [absent] * n
        bucket_of = [absent] * n
        max_b = -1
        size = 0

        for u in eligible:
            b = gain_b[u]
            h = heads[b]
            nxt[u] = h
            if h >= 0:
                prv[h] = u
            heads[b] = u
            bucket_of[u] = b
            if b > max_b:
                max_b = b
            size += 1

        sequence: List[tuple] = []
        cumulative = 0
        best_cumulative = 0
        best_length = 0
        stall = 0
        while size:
            if stall_limit is not None and stall >= stall_limit:
                break
            while heads[max_b] < 0:
                max_b -= 1
            b = max_b
            u = heads[b]
            nx = nxt[u]
            heads[b] = nx
            if nx >= 0:
                prv[nx] = absent
            bucket_of[u] = absent
            size -= 1

            s = sides[u]
            fd = 0
            rd = 0
            for v, w in zip(fi[fp[u] : fp[u + 1]], fw[fp[u] : fp[u + 1]]):
                if sides[v] == s:
                    fd += w
                    d = two_res * w
                else:
                    fd -= w
                    d = -two_res * w
                bv = bucket_of[v]
                if bv >= 0:
                    nbv = bv + d
                    nx2 = nxt[v]
                    pv2 = prv[v]
                    if pv2 >= 0:
                        nxt[pv2] = nx2
                    else:
                        heads[bv] = nx2
                    if nx2 >= 0:
                        prv[nx2] = pv2
                    h = heads[nbv]
                    nxt[v] = h
                    prv[v] = absent
                    if h >= 0:
                        prv[h] = v
                    heads[nbv] = v
                    bucket_of[v] = nbv
                    if nbv > max_b:
                        max_b = nbv
            if s:
                rs = -k_scaled
                rd_on_susp = 1
                rd_on_legit = -1
            else:
                rs = k_scaled
                rd_on_susp = -1
                rd_on_legit = 1
            for v, w in zip(oi[op[u] : op[u + 1]], ow[op[u] : op[u + 1]]):
                if sides[v]:
                    rd += rd_on_susp * w
                    d = rs * w
                else:
                    d = -rs * w
                bv = bucket_of[v]
                if bv >= 0:
                    nbv = bv + d
                    nx2 = nxt[v]
                    pv2 = prv[v]
                    if pv2 >= 0:
                        nxt[pv2] = nx2
                    else:
                        heads[bv] = nx2
                    if nx2 >= 0:
                        prv[nx2] = pv2
                    h = heads[nbv]
                    nxt[v] = h
                    prv[v] = absent
                    if h >= 0:
                        prv[h] = v
                    heads[nbv] = v
                    bucket_of[v] = nbv
                    if nbv > max_b:
                        max_b = nbv
            for v, w in zip(ii[ip_[u] : ip_[u + 1]], iw[ip_[u] : ip_[u + 1]]):
                if sides[v]:
                    d = rs * w
                else:
                    rd += rd_on_legit * w
                    d = -rs * w
                bv = bucket_of[v]
                if bv >= 0:
                    nbv = bv + d
                    nx2 = nxt[v]
                    pv2 = prv[v]
                    if pv2 >= 0:
                        nxt[pv2] = nx2
                    else:
                        heads[bv] = nx2
                    if nx2 >= 0:
                        prv[nx2] = pv2
                    h = heads[nbv]
                    nxt[v] = h
                    prv[v] = absent
                    if h >= 0:
                        prv[h] = v
                    heads[nbv] = v
                    bucket_of[v] = nbv
                    if nbv > max_b:
                        max_b = nbv

            f_cross += fd
            r_cross += rd
            sides[u] = 1 - s
            sequence.append((u, fd, rd))
            cumulative += b - offset
            if stats is not None:
                stats.switches_tested += 1
            if cumulative > best_cumulative:
                best_cumulative = cumulative
                best_length = len(sequence)
                stall = 0
            else:
                stall += 1

        for u, fd, rd in reversed(sequence[best_length:]):
            f_cross -= fd
            r_cross -= rd
            sides[u] = 1 - sides[u]
        if stats is not None:
            stats.switches_applied += best_length
        if best_length == 0:
            if scope is None:
                break
            fd_all, rd_all = weighted_gain_deltas(view, sides)
            fresh = [
                u
                for u in range(n)
                if not locked[u]
                and not scope[u]
                and k_scaled * rd_all[u] - fd_all[u] * res > 0
            ]
            if not fresh:
                break
            for u in fresh:
                scope[u] = True
                gain_b[u] = k_scaled * rd_all[u] - fd_all[u] * res + offset
            eligible = sorted(eligible + fresh)
            dirty = set()
            continue
        track_dirty = config.incremental and not (
            csr.backend == "numpy" and 4 * best_length > len(eligible)
        )
        if track_dirty or scope is not None:
            dirty = set()
            for u, _, _ in sequence[:best_length]:
                dirty.add(u)
                dirty.update(fi[fp[u] : fp[u + 1]])
                dirty.update(oi[op[u] : op[u + 1]])
                dirty.update(ii[ip_[u] : ip_[u + 1]])
            if scope is not None:
                grown = [v for v in dirty if not scope[v] and not locked[v]]
                if grown:
                    for v in grown:
                        scope[v] = True
                    eligible = sorted(eligible + grown)
            if not track_dirty:
                dirty = None
        else:
            dirty = None

    state.f_cross = f_cross
    state.r_cross = r_cross
    ones = sum(sides)
    state.side_sizes = [n - ones, ones]


def _run_heap_passes(
    state: PartitionState, k: float, config: KLConfig, stats: Optional[KLStats]
) -> None:
    """The generic engine: lazy-deletion heap gains over the CSR state.

    Handles arbitrary float ``k`` (Dinkelbach refinement) and weighted
    coarse graphs; same greedy discipline as the bucket engine. Initial
    gains come from the batch :func:`heap_gains` /
    :func:`weighted_heap_gains` kernels on the numpy backend
    (bit-identical — one IEEE-double expression over the same integers)
    and from ``state.switch_gain`` otherwise; later passes refresh only
    the dirty frontier. Only *float*-weighted graphs stay on the scalar
    path (their summation order is part of the contract); int64-weighted
    coarse graphs vectorize like unweighted ones.
    """
    view = state.view
    csr = view.csr
    active = view.active
    sides = state.sides
    locked = state.locked
    n = csr.num_nodes
    stall_limit = config.stall_limit
    vectorize = csr.backend == "numpy" and (
        not csr.weighted or csr.int_weighted
    )

    eligible = [u for u in range(n) if active[u] and not locked[u]]
    # Boundary frontier: the heap engine serves off-grid k (Dinkelbach
    # polish) and weighted residual views, so it carries the same scoped
    # discipline as the bucket engines.
    scope: Optional[List[bool]] = None
    if config.frontier == "boundary":
        kernel = weighted_boundary_nodes if csr.weighted else boundary_nodes
        scope = [False] * n
        scoped = []
        for u in kernel(view, sides, k):
            if not locked[u]:
                scope[u] = True
                scoped.append(u)
        eligible = scoped
    gains: Optional[List[float]] = None  # start-of-pass gain per node
    dirty: Optional[Set[int]] = None  # None -> full rebuild

    for _ in range(config.max_passes):
        if stats is not None:
            stats.passes += 1
            stats.objective_history.append(state.objective(k))

        refresh_all = (
            gains is None
            or dirty is None
            or (vectorize and 4 * len(dirty) > len(eligible))
        )
        if refresh_all and scope is not None and not vectorize:
            if gains is None:
                gains = [0.0] * n
            dirty = set(eligible)
            refresh_all = False
        if refresh_all:
            if vectorize:
                if csr.weighted:
                    gains = weighted_heap_gains(view, sides, k)
                else:
                    gains = heap_gains(view, sides, k)
            else:
                if gains is None:
                    gains = [0.0] * n
                for u in eligible:
                    gains[u] = state.switch_gain(u, k)
        else:
            for u in dirty:
                if active[u] and not locked[u]:
                    gains[u] = state.switch_gain(u, k)

        index = HeapGainIndex()
        index.bulk_load((u, gains[u]) for u in eligible)

        sequence: List[int] = []
        cumulative = 0.0
        best_cumulative = 0.0
        best_length = 0
        stall = 0
        while True:
            if stall_limit is not None and stall >= stall_limit:
                break
            popped = index.pop_max()
            if popped is None:
                break
            u, gain = popped
            prev_side = sides[u]
            state.switch(u)
            sequence.append(u)
            cumulative += gain
            if stats is not None:
                stats.switches_tested += 1
            if cumulative > best_cumulative + _EPS:
                best_cumulative = cumulative
                best_length = len(sequence)
                stall = 0
            else:
                stall += 1
            adjust_neighbor_gains(index, state, u, prev_side, k)

        for u in reversed(sequence[best_length:]):
            state.switch(u)
        if stats is not None:
            stats.switches_applied += best_length
        if best_length == 0:
            if scope is None:
                break
            if vectorize:
                if csr.weighted:
                    all_gains = weighted_heap_gains(view, sides, k)
                else:
                    all_gains = heap_gains(view, sides, k)
            else:
                all_gains = None
            fresh = []
            for u in range(n):
                if active[u] and not locked[u] and not scope[u]:
                    g = (
                        all_gains[u]
                        if all_gains is not None
                        else state.switch_gain(u, k)
                    )
                    if g > 0.0:
                        fresh.append(u)
                        gains[u] = g
            if not fresh:
                break
            for u in fresh:
                scope[u] = True
            eligible = sorted(eligible + fresh)
            dirty = set()
            continue
        track_dirty = config.incremental and not (
            vectorize and 4 * best_length > len(eligible)
        )
        if track_dirty or scope is not None:
            fp, fi, op, oi, ip_, ii = csr.hot()
            dirty = set()
            for u in sequence[:best_length]:
                dirty.add(u)
                dirty.update(fi[fp[u] : fp[u + 1]])
                dirty.update(oi[op[u] : op[u + 1]])
                dirty.update(ii[ip_[u] : ip_[u + 1]])
            if scope is not None:
                grown = [
                    v
                    for v in dirty
                    if active[v] and not locked[v] and not scope[v]
                ]
                if grown:
                    for v in grown:
                        scope[v] = True
                    eligible = sorted(eligible + grown)
            if not track_dirty:
                dirty = None
        else:
            dirty = None


def extended_kl_state(
    state: PartitionState,
    k: float,
    config: Optional[KLConfig] = None,
    stats: Optional[KLStats] = None,
) -> PartitionState:
    """Minimize the linearized objective over a CSR partition state.

    The input state is copied, not mutated (it shares the residual view
    and lock vector). This is the engine entry point shared by
    :func:`extended_kl`, the MAAR sweep, Rejecto's residual rounds, and
    the weighted multilevel refinement.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    config = config or KLConfig()
    out = state.copy()
    kind = config.gain_index
    csr = out.view.csr
    weighted = csr.weighted
    if config.frontier not in ("full", "boundary"):
        raise ValueError(
            f"unknown frontier {config.frontier!r}; expected 'full' or "
            "'boundary'"
        )
    if config.frontier == "boundary" and weighted and not csr.int_weighted:
        raise ValueError(
            "frontier='boundary' requires an unweighted or int64-weighted "
            "graph; float-weighted graphs keep the full frontier"
        )
    # The weighted bucket engine indexes the positional weight arrays of
    # the *full* slot layout, so it needs an all-active view; residual
    # weighted views fall back to the heap. (Unweighted buckets run on
    # the re-packed hot_active adjacency, so any view works.)
    bucket_ok = not weighted or (
        csr.int_weighted and out.view.num_active == csr.num_nodes
    )
    if kind == "auto":
        kind = (
            "bucket" if bucket_ok and _on_grid(k, config.resolution) else "heap"
        )
    if kind == "bucket":
        if weighted and not csr.int_weighted:
            raise ValueError(
                "the bucket gain index requires an unweighted or "
                "int64-weighted graph; pass gain_index='heap' or 'auto'"
            )
        if weighted and not bucket_ok:
            raise ValueError(
                "the weighted bucket engine requires an all-active view "
                "(weights are positional); pass gain_index='heap' or 'auto'"
            )
        if not _on_grid(k, config.resolution):
            raise ValueError(
                f"k={k} is off the 1/{config.resolution} bucket grid; "
                "pass gain_index='heap' or 'auto'"
            )
        if weighted:
            _run_bucket_passes_weighted(out, k, config, stats)
        else:
            _run_bucket_passes(out, k, config, stats)
    elif kind == "heap":
        _run_heap_passes(out, k, config, stats)
    else:
        raise ValueError(f"unknown gain index kind {kind!r}")
    return out


def refine_subset(
    view,
    sides: List[int],
    locked: Sequence[bool],
    nodes: Sequence[int],
    k: float,
    config: Optional[KLConfig] = None,
):
    """Extended-KL passes restricted to a fixed candidate subset, in place.

    The region-parallel multilevel refinement decomposes the cut
    frontier into connected boundary regions
    (:func:`~repro.core.multilevel.solve_maar_multilevel`) and refines
    each through this entry point: the usual greedy tentative pass with
    FM LIFO tie-breaks and best-prefix rollback, but only ``nodes`` may
    switch — every other side is read-only context. Because the regions
    are closed under all three adjacency layers, two calls on distinct
    regions never read each other's writes: their ``(delta_f,
    delta_r)`` add exactly and their move sets are disjoint, which is
    what makes the region merge independent of worker count and
    execution order. Gains use the lazy-deletion heap, so any positive
    ``k`` and both unweighted and int64-weighted graphs work.

    ``sides`` is mutated to the refined labels. Returns ``(moved,
    delta_f, delta_r, tested, applied)``: the ascending list of nodes
    whose side net-changed, the exact cut-counter deltas those moves
    caused, and the tentative/applied switch counts.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    config = config or KLConfig()
    csr = view.csr
    fp, fi, op, oi, ip_, ii = csr.hot()
    weights = csr.hot_weights()
    fw, ow, iw = weights if weights is not None else (None, None, None)
    active = view.active
    cand = sorted(u for u in set(nodes) if active[u] and not locked[u])
    entry = {u: sides[u] for u in cand}
    delta_f = delta_r = 0
    tested = applied = 0

    def deltas(u):
        # The exact counter deltas of switching u now — the same scalar
        # arithmetic as PartitionState.switch/switch_gain, against the
        # full side vector (out-of-region neighbours included).
        s = sides[u]
        fd = 0
        rd = 0
        if fw is None:
            for i in range(fp[u], fp[u + 1]):
                v = fi[i]
                if active[v]:
                    fd += 1 if sides[v] == s else -1
            if s:
                for i in range(op[u], op[u + 1]):
                    v = oi[i]
                    if active[v] and sides[v]:
                        rd += 1
                for i in range(ip_[u], ip_[u + 1]):
                    w = ii[i]
                    if active[w] and not sides[w]:
                        rd -= 1
            else:
                for i in range(op[u], op[u + 1]):
                    v = oi[i]
                    if active[v] and sides[v]:
                        rd -= 1
                for i in range(ip_[u], ip_[u + 1]):
                    w = ii[i]
                    if active[w] and not sides[w]:
                        rd += 1
        else:
            for i in range(fp[u], fp[u + 1]):
                v = fi[i]
                if active[v]:
                    fd += fw[i] if sides[v] == s else -fw[i]
            if s:
                for i in range(op[u], op[u + 1]):
                    v = oi[i]
                    if active[v] and sides[v]:
                        rd += ow[i]
                for i in range(ip_[u], ip_[u + 1]):
                    w = ii[i]
                    if active[w] and not sides[w]:
                        rd -= iw[i]
            else:
                for i in range(op[u], op[u + 1]):
                    v = oi[i]
                    if active[v] and sides[v]:
                        rd -= ow[i]
                for i in range(ip_[u], ip_[u + 1]):
                    w = ii[i]
                    if active[w] and not sides[w]:
                        rd += iw[i]
        return fd, rd

    for _ in range(config.max_passes):
        index = HeapGainIndex()
        pairs = []
        for u in cand:
            fd, rd = deltas(u)
            pairs.append((u, -(fd - k * rd)))
        index.bulk_load(pairs)

        sequence: List[tuple] = []
        cumulative = 0.0
        best_cumulative = 0.0
        best_length = 0
        stall = 0
        while True:
            if config.stall_limit is not None and stall >= config.stall_limit:
                break
            popped = index.pop_max()
            if popped is None:
                break
            u, gain = popped
            fd, rd = deltas(u)
            prev_side = sides[u]
            sides[u] = 1 - prev_side
            sequence.append((u, fd, rd))
            cumulative += gain
            tested += 1
            if cumulative > best_cumulative + _EPS:
                best_cumulative = cumulative
                best_length = len(sequence)
                stall = 0
            else:
                stall += 1
            _adjust_gains(index, view, sides, u, prev_side, k)

        for u, _fd, _rd in reversed(sequence[best_length:]):
            sides[u] = 1 - sides[u]
        applied += best_length
        for _u, fd, rd in sequence[:best_length]:
            delta_f += fd
            delta_r += rd
        if best_length == 0:
            break

    moved = sorted(u for u in cand if sides[u] != entry[u])
    return moved, delta_f, delta_r, tested, applied


# ----------------------------------------------------------------------
# Legacy engine (list-of-lists adjacency + gain index objects)
# ----------------------------------------------------------------------
def _initial_gains(partition: Partition, k: float, locked: Sequence[bool]):
    """Per-node switch gains for all unlocked nodes."""
    return [
        (u, partition.switch_gain(u, k))
        for u in range(partition.graph.num_nodes)
        if not locked[u]
    ]


def _max_abs_gain(graph: AugmentedSocialGraph, k: float) -> float:
    """A lifetime bound on ``|gain(u)|``: each incident friendship edge
    contributes at most 1 and each incident rejection edge at most k.

    Derived O(1) from the builder's memoized degree maxima, so the
    legacy ``k``-sweep stops re-scanning all V nodes per ``k``. The
    maxima may come from two different nodes, making this bound looser
    than the old per-node maximum — harmless, since a gain bound only
    sizes the bucket array (a uniform offset shift) and never alters
    pop order.
    """
    max_f, max_r = graph.degree_maxima()
    return max_f + k * max_r


def _extended_kl_legacy(
    graph: AugmentedSocialGraph,
    k: float,
    initial: Partition,
    locked: Sequence[bool],
    config: KLConfig,
    stats: Optional[KLStats],
) -> Partition:
    partition = initial.copy()
    n = graph.num_nodes
    max_abs = _max_abs_gain(graph, k)
    sides = partition.sides

    for _ in range(config.max_passes):
        if stats is not None:
            stats.passes += 1
            stats.objective_history.append(partition.objective(k))

        index = make_gain_index(
            config.gain_index, n, max_abs, k, resolution=config.resolution
        )
        index.bulk_load(_initial_gains(partition, k, locked))

        # Tentatively switch nodes in greedy max-gain order, tracking the
        # best cumulative-gain prefix of the switch sequence.
        sequence: List[int] = []
        cumulative = 0.0
        best_cumulative = 0.0
        best_length = 0
        stall = 0
        while True:
            if config.stall_limit is not None and stall >= config.stall_limit:
                break
            popped = index.pop_max()
            if popped is None:
                break
            u, gain = popped
            partition.switch(u)
            sequence.append(u)
            cumulative += gain
            if stats is not None:
                stats.switches_tested += 1
            if cumulative > best_cumulative + _EPS:
                best_cumulative = cumulative
                best_length = len(sequence)
                stall = 0
            else:
                stall += 1

            # O(1) gain updates for u's still-indexed neighbours. u's
            # previous side determines every delta's sign.
            prev_side = 1 - sides[u]
            for v in graph.friends[u]:
                if v in index:
                    index.adjust(v, 2.0 if sides[v] == prev_side else -2.0)
            rej_sign = k * (1 - 2 * prev_side)
            for v in graph.rej_out[u]:
                if v in index:
                    index.adjust(v, (2 * sides[v] - 1) * rej_sign)
            for w in graph.rej_in[u]:
                if w in index:
                    index.adjust(w, (2 * sides[w] - 1) * rej_sign)

        # Roll back every switch beyond the best prefix.
        for u in reversed(sequence[best_length:]):
            partition.switch(u)
        if stats is not None:
            stats.switches_applied += best_length
        if best_length == 0:
            break

    return partition


def extended_kl(
    graph: AugmentedSocialGraph,
    k: float,
    initial: Partition,
    locked: Optional[Sequence[bool]] = None,
    config: Optional[KLConfig] = None,
    stats: Optional[KLStats] = None,
) -> Partition:
    """Minimize ``|F(Ū,U)| − k·|R⃗⟨Ū,U⟩|`` from the given initial partition.

    Parameters
    ----------
    graph:
        The rejection-augmented social graph.
    k:
        The rejection weight of the linearized objective (positive).
    initial:
        Starting partition; it is copied, not mutated.
    locked:
        Optional per-node flags; locked nodes (seeds) never switch.
    config:
        Search configuration; defaults to :class:`KLConfig`. The
        ``engine`` field selects the CSR core (default) or the legacy
        list-of-lists loop.
    stats:
        Optional diagnostics accumulator.

    Returns
    -------
    Partition
        The improved partition.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    config = config or KLConfig()
    n = graph.num_nodes
    if locked is None:
        locked = [False] * n
    elif len(locked) != n:
        raise ValueError(f"locked has length {len(locked)}, expected {n}")
    if config.engine == "legacy":
        if not isinstance(graph, AugmentedSocialGraph):
            raise ValueError(
                "engine='legacy' needs the mutable AugmentedSocialGraph "
                f"builder, got {type(graph).__name__}"
            )
        if config.frontier != "full":
            raise ValueError(
                "the legacy engine has no boundary frontier; use "
                "engine='csr' or frontier='full'"
            )
        return _extended_kl_legacy(graph, k, initial, locked, config, stats)
    if config.engine != "csr":
        raise ValueError(f"unknown engine {config.engine!r}")
    state = PartitionState(graph.csr().view(), initial.sides, locked)
    out = extended_kl_state(state, k, config, stats)
    return Partition.from_counts(graph, out.sides, out.f_cross, out.r_cross)
