"""Extended Kernighan-Lin search over rejection-augmented social graphs.

This module implements Algorithm 1 of the paper (Section IV-D). The
classic KL/FM bisection minimizes the number of cross-part edges of an
undirected graph; Rejecto's extension differs in three ways:

1. **Weighted, mixed edges.** Friendship edges carry weight ``+1`` and
   rejection edges carry weight ``−k``, so the search minimizes the
   linearized MAAR objective ``W(U) = |F(Ū,U)| − k·|R⃗⟨Ū,U⟩|``.
2. **Single-node switching.** The paper drops KL's node-*pair*
   interchange because the sizes of the spammer and legitimate regions
   are unknown a priori; part sizes must be free to drift.
3. **Directional rejection accounting.** Only rejections cast by the
   legitimate side onto the suspicious side enter the objective, so the
   gain of a switch is asymmetric in the rejection edges' direction.

Each *pass* tentatively switches every unlocked node exactly once, in
greedy max-gain order (a Fiduccia-Mattheyses-style bucket list yields the
max in O(1)); negative-gain switches are still performed to climb out of
local minima. The pass then keeps the prefix of switches with the highest
cumulative gain and rolls the rest back. Passes repeat until no prefix
improves the objective.

Seed nodes (Section IV-F) are *locked*: they are pre-placed on their
known side and never enter the gain index, which prunes the misleading
low-ratio cuts inside the legitimate region from the search space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .gains import make_gain_index
from .graph import AugmentedSocialGraph
from .partition import Partition

__all__ = ["KLConfig", "KLStats", "extended_kl"]

_EPS = 1e-9


@dataclass
class KLConfig:
    """Tuning knobs for the extended KL search.

    Attributes
    ----------
    gain_index:
        ``"bucket"`` (FM bucket list), ``"heap"`` (lazy-deletion heap) or
        ``"auto"`` (bucket when ``k`` sits on the ``1/resolution`` grid).
    resolution:
        Grid denominator for the bucket list. With the default geometric
        ``k`` sequence (k = 1/8 · 2^i) every gain is a multiple of 1/8.
    max_passes:
        Upper bound on improvement passes. KL converges in a handful of
        passes in practice [21]; the bound only guards pathologies.
    stall_limit:
        If set, a pass stops tentatively switching once this many
        consecutive switches failed to improve the best prefix gain.
        ``None`` performs the full pass (the paper's behaviour); a finite
        limit trades a little cut quality for a large speedup on big
        graphs (see the ablation benchmark).
    """

    gain_index: str = "auto"
    resolution: int = 8
    max_passes: int = 30
    stall_limit: Optional[int] = None


@dataclass
class KLStats:
    """Diagnostics of one :func:`extended_kl` run."""

    passes: int = 0
    switches_applied: int = 0
    switches_tested: int = 0
    objective_history: List[float] = field(default_factory=list)


def _initial_gains(partition: Partition, k: float, locked: Sequence[bool]):
    """Per-node switch gains for all unlocked nodes."""
    return [
        (u, partition.switch_gain(u, k))
        for u in range(partition.graph.num_nodes)
        if not locked[u]
    ]


def _max_abs_gain(graph: AugmentedSocialGraph, k: float) -> float:
    """A lifetime bound on ``|gain(u)|``: each incident friendship edge
    contributes at most 1 and each incident rejection edge at most k."""
    bound = 0.0
    for u in range(graph.num_nodes):
        weight = len(graph.friends[u]) + k * (
            len(graph.rej_out[u]) + len(graph.rej_in[u])
        )
        if weight > bound:
            bound = weight
    return bound


def extended_kl(
    graph: AugmentedSocialGraph,
    k: float,
    initial: Partition,
    locked: Optional[Sequence[bool]] = None,
    config: Optional[KLConfig] = None,
    stats: Optional[KLStats] = None,
) -> Partition:
    """Minimize ``|F(Ū,U)| − k·|R⃗⟨Ū,U⟩|`` from the given initial partition.

    Parameters
    ----------
    graph:
        The rejection-augmented social graph.
    k:
        The rejection weight of the linearized objective (positive).
    initial:
        Starting partition; it is copied, not mutated.
    locked:
        Optional per-node flags; locked nodes (seeds) never switch.
    config:
        Search configuration; defaults to :class:`KLConfig`.
    stats:
        Optional diagnostics accumulator.

    Returns
    -------
    Partition
        The improved partition.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    config = config or KLConfig()
    n = graph.num_nodes
    if locked is None:
        locked = [False] * n
    elif len(locked) != n:
        raise ValueError(f"locked has length {len(locked)}, expected {n}")

    partition = initial.copy()
    max_abs = _max_abs_gain(graph, k)
    sides = partition.sides

    for _ in range(config.max_passes):
        if stats is not None:
            stats.passes += 1
            stats.objective_history.append(partition.objective(k))

        index = make_gain_index(
            config.gain_index, n, max_abs, k, resolution=config.resolution
        )
        for u, gain in _initial_gains(partition, k, locked):
            index.insert(u, gain)

        # Tentatively switch nodes in greedy max-gain order, tracking the
        # best cumulative-gain prefix of the switch sequence.
        sequence: List[int] = []
        cumulative = 0.0
        best_cumulative = 0.0
        best_length = 0
        stall = 0
        while True:
            if config.stall_limit is not None and stall >= config.stall_limit:
                break
            popped = index.pop_max()
            if popped is None:
                break
            u, gain = popped
            partition.switch(u)
            sequence.append(u)
            cumulative += gain
            if stats is not None:
                stats.switches_tested += 1
            if cumulative > best_cumulative + _EPS:
                best_cumulative = cumulative
                best_length = len(sequence)
                stall = 0
            else:
                stall += 1

            # O(1) gain updates for u's still-indexed neighbours. u's
            # previous side determines every delta's sign.
            prev_side = 1 - sides[u]
            for v in graph.friends[u]:
                if v in index:
                    index.adjust(v, 2.0 if sides[v] == prev_side else -2.0)
            rej_sign = k * (1 - 2 * prev_side)
            for v in graph.rej_out[u]:
                if v in index:
                    index.adjust(v, (2 * sides[v] - 1) * rej_sign)
            for w in graph.rej_in[u]:
                if w in index:
                    index.adjust(w, (2 * sides[w] - 1) * rej_sign)

        # Roll back every switch beyond the best prefix.
        for u in reversed(sequence[best_length:]):
            partition.switch(u)
        if stats is not None:
            stats.switches_applied += best_length
        if best_length == 0:
            break

    return partition
