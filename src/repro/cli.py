"""Command-line interface: regenerate any table or figure.

Examples::

    rejecto table1 --scale 0.2
    rejecto fig9 --num-legit 1500 --num-fakes 300
    rejecto fig13 --dataset ca-HepTh
    rejecto fig16
    rejecto table2 --sizes 1000 2000 4000
    rejecto fig17 --datasets ca-HepTh synthetic --points 4
    rejecto all --quick
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from .experiments import (
    DefenseInDepthConfig,
    ScalingConfig,
    SweepConfig,
    appendix_sensitivity,
    appendix_strategies,
    collusion_sweep,
    datasets_table,
    defense_in_depth,
    legit_rejection_sweep,
    legit_victim_rejection_sweep,
    motivation_study,
    request_volume_sweep,
    scaling_study,
    self_rejection_sweep,
    spam_rejection_sweep,
    stealth_sweep,
)

__all__ = ["main", "build_parser"]

_SWEEPS: Dict[str, Callable] = {
    "fig9": request_volume_sweep,
    "fig10": stealth_sweep,
    "fig11": spam_rejection_sweep,
    "fig12": legit_rejection_sweep,
    "fig13": collusion_sweep,
    "fig14": self_rejection_sweep,
    "fig15": legit_victim_rejection_sweep,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rejecto",
        description=(
            "Rejecto reproduction: regenerate the paper's tables and figures."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sweep_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", default="facebook")
        p.add_argument("--num-legit", type=int, default=1500)
        p.add_argument("--num-fakes", type=int, default=300)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument(
            "--trials",
            type=int,
            default=1,
            help="average each sweep point over this many seeds",
        )
        p.add_argument(
            "--plot",
            action="store_true",
            help="render an ASCII chart alongside the table",
        )
        add_jobs_arg(p)

    def add_jobs_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker count for parallel execution (sweep points and "
            "the per-round MAAR k sweep); 0 means all cores",
        )

    for name in _SWEEPS:
        p = sub.add_parser(name, help=f"regenerate {name}")
        add_sweep_args(p)

    p = sub.add_parser("table1", help="Table I dataset summary")
    p.add_argument("--scale", type=float, default=0.2)
    p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("fig1", help="Fig. 1 purchased-account series (synthetic)")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "fig3-5", help="Figs. 3-5 friend-attribute CDFs (synthetic)"
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--num-friends", type=int, default=2804)

    p = sub.add_parser("fig16", help="Fig. 16 defense in depth")
    p.add_argument("--dataset", default="facebook")
    p.add_argument("--num-legit", type=int, default=1000)
    p.add_argument(
        "--num-fakes",
        type=int,
        default=None,
        help="defaults to num-legit (the paper's 1:1 Sybil region)",
    )
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("fig17", help="Appendix A sensitivity sweeps")
    p.add_argument("--datasets", nargs="+", default=None)
    p.add_argument("--points", type=int, default=5)
    p.add_argument("--num-legit", type=int, default=800)
    p.add_argument("--num-fakes", type=int, default=160)
    p.add_argument("--seed", type=int, default=7)
    add_jobs_arg(p)

    p = sub.add_parser("fig18", help="Appendix B strategy sweeps")
    p.add_argument("--datasets", nargs="+", default=None)
    p.add_argument("--points", type=int, default=5)
    p.add_argument("--num-legit", type=int, default=800)
    p.add_argument("--num-fakes", type=int, default=160)
    p.add_argument("--seed", type=int, default=7)
    add_jobs_arg(p)

    p = sub.add_parser("table2", help="Table II scaling study")
    p.add_argument("--sizes", nargs="+", type=int, default=[1000, 2000, 4000, 8000])
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("all", help="regenerate everything")
    p.add_argument("--quick", action="store_true", help="smaller workloads")
    add_jobs_arg(p)

    p = sub.add_parser(
        "report", help="run the evaluation and write a markdown report"
    )
    p.add_argument("--out", required=True, help="output markdown path")
    p.add_argument("--quick", action="store_true", help="smaller workloads")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--trials", type=int, default=1)
    p.add_argument(
        "--include",
        nargs="+",
        default=None,
        help="subset of experiments (default: all)",
    )

    p = sub.add_parser(
        "detect",
        help="run Rejecto on an augmented-graph file (operator mode)",
    )
    source = p.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--graph",
        help="graph file: F/R edge-line format (see repro.io) or a "
        ".csrbin binary snapshot (see `rejecto graph pack`)",
    )
    source.add_argument(
        "--requests",
        help="request log CSV (sender,target,accepted) to build the graph from",
    )
    p.add_argument(
        "--estimated",
        type=int,
        default=None,
        help="estimated spammer count (termination, §IV-E)",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="acceptance-rate termination threshold (§IV-E)",
    )
    p.add_argument(
        "--legit-seeds",
        type=int,
        nargs="*",
        default=[],
        help="known legitimate user ids (§IV-F)",
    )
    p.add_argument(
        "--spammer-seeds",
        type=int,
        nargs="*",
        default=[],
        help="known spammer ids (§IV-F)",
    )
    p.add_argument("--max-rounds", type=int, default=25)
    p.add_argument(
        "--report",
        default=None,
        help="write a JSON detection report to this path",
    )
    p.add_argument(
        "--actions",
        action="store_true",
        help="print a graduated response plan (§VII: CAPTCHA / rate "
        "limit / suspend by evidence strength)",
    )
    p.add_argument(
        "--forensics",
        action="store_true",
        help="print the per-group evidence breakdown",
    )
    add_jobs_arg(p)

    p = sub.add_parser(
        "graph",
        help="binary snapshot tooling: pack graphs to .csrbin, inspect them",
    )
    gsub = p.add_subparsers(dest="graph_command", required=True)

    gp = gsub.add_parser(
        "pack",
        help="pack an edge list or augmented graph into a binary snapshot",
    )
    gp.add_argument(
        "input",
        help="source graph: SNAP edge list (.gz ok) or F/R augmented file",
    )
    gp.add_argument(
        "--out",
        default=None,
        help="snapshot path (default: <input>.csrbin next to the source)",
    )
    gp.add_argument(
        "--no-remap",
        action="store_true",
        help="keep edge-list node ids verbatim instead of densifying them",
    )

    gi = gsub.add_parser("info", help="print a snapshot's header and layout")
    gi.add_argument("path", help="a .csrbin snapshot")
    gi.add_argument(
        "--segments",
        action="store_true",
        help="also list the per-segment offsets and sizes",
    )

    p = sub.add_parser(
        "shard-detect",
        help="per-interval detection over a sequence of graph files (§VII)",
    )
    p.add_argument(
        "--graphs",
        nargs="+",
        required=True,
        help="interval graphs in time order (F/R edge-line format)",
    )
    p.add_argument("--estimated", type=int, default=None)
    p.add_argument("--threshold", type=float, default=None)
    p.add_argument("--legit-seeds", type=int, nargs="*", default=[])
    p.add_argument("--max-rounds", type=int, default=25)
    add_jobs_arg(p)

    p = sub.add_parser(
        "multilevel",
        help="one multilevel MAAR solve on a graph file (large-graph mode)",
    )
    p.add_argument(
        "--graph",
        required=True,
        help="graph file: F/R edge-line format (see repro.io) or a "
        ".csrbin binary snapshot (see `rejecto graph pack`)",
    )
    p.add_argument(
        "--frontier",
        choices=("boundary", "full"),
        default="boundary",
        help="refinement scope per uncoarsened level: 'boundary' refines "
        "connected regions around the movable frontier, 'full' runs the "
        "classic whole-graph pass",
    )
    p.add_argument(
        "--refine-jobs",
        type=int,
        default=1,
        help="worker count for the boundary-region fan-out (results are "
        "bit-identical to --refine-jobs 1); 0 means all cores",
    )
    p.add_argument(
        "--refine-tolerance",
        type=float,
        default=0.0,
        help="early-exit: skip a level's refinement while the previous "
        "level improved the objective by at most this fraction of its "
        "magnitude (0 disables; the finest level always refines)",
    )
    p.add_argument(
        "--refine-stall",
        type=int,
        default=256,
        help="end a region pass after this many consecutive non-improving "
        "tentative switches (0 restores exhaustive FM passes)",
    )
    p.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable dirty-frontier gain rebuilds between passes (ablation)",
    )
    p.add_argument(
        "--engine",
        choices=("csr", "legacy"),
        default="csr",
        help="csr (flat-array kernels) or the legacy dict-adjacency baseline",
    )
    p.add_argument("--legit-seeds", type=int, nargs="*", default=[])
    p.add_argument("--spammer-seeds", type=int, nargs="*", default=[])
    p.add_argument(
        "--json",
        default=None,
        help="also write the result and per-level timings as JSON",
    )
    add_jobs_arg(p)

    return parser


def _resolve_jobs(args: argparse.Namespace) -> int:
    """``--jobs 0`` means "use every core"."""
    jobs = getattr(args, "jobs", 1)
    if jobs <= 0:
        from .core.parallel import default_jobs

        return default_jobs()
    return jobs


def _sweep_config(args: argparse.Namespace) -> SweepConfig:
    return SweepConfig(
        num_legit=args.num_legit,
        num_fakes=args.num_fakes,
        dataset=args.dataset,
        seed=args.seed,
        trials=getattr(args, "trials", 1),
        jobs=_resolve_jobs(args),
    )


def _run_command(args: argparse.Namespace, out=sys.stdout) -> None:
    command = args.command
    if command in _SWEEPS:
        result = _SWEEPS[command](_sweep_config(args))
        print(result.render(), file=out)
        if getattr(args, "plot", False):
            from .experiments import render_sweep_chart

            print(file=out)
            print(render_sweep_chart(result), file=out)
    elif command == "table1":
        print(datasets_table(scale=args.scale, seed=args.seed).render(), file=out)
    elif command == "fig1":
        print(motivation_study(seed=args.seed).render(), file=out)
    elif command == "fig3-5":
        from .experiments import friend_attribute_study

        print(
            friend_attribute_study(
                num_friends=args.num_friends, seed=args.seed
            ).render(),
            file=out,
        )
    elif command == "fig16":
        config = DefenseInDepthConfig(
            dataset=args.dataset,
            num_legit=args.num_legit,
            num_fakes=args.num_fakes,
            seed=args.seed,
        )
        print(defense_in_depth(config).render(), file=out)
    elif command in ("fig17", "fig18"):
        config = SweepConfig(
            num_legit=args.num_legit,
            num_fakes=args.num_fakes,
            seed=args.seed,
            jobs=_resolve_jobs(args),
        )
        run = appendix_sensitivity if command == "fig17" else appendix_strategies
        kwargs = {"points": args.points}
        if args.datasets:
            kwargs["datasets"] = args.datasets
        for dataset, sweeps in run(config, **kwargs).items():
            for sweep in sweeps:
                print(f"[{dataset}]", file=out)
                print(sweep.render(), file=out)
                print(file=out)
    elif command == "table2":
        config = ScalingConfig(user_counts=tuple(args.sizes), seed=args.seed)
        print(scaling_study(config).render(), file=out)
    elif command == "all":
        _run_all(quick=args.quick, out=out, jobs=_resolve_jobs(args))
    elif command == "report":
        from .experiments import ReportConfig, write_report

        config = ReportConfig(
            quick=args.quick,
            seed=args.seed,
            trials=args.trials,
            include=tuple(args.include)
            if args.include
            else ReportConfig().include,
        )
        path = write_report(args.out, config)
        print(f"report written to {path}", file=out)
    elif command == "detect":
        _run_detect(args, out)
    elif command == "multilevel":
        _run_multilevel(args, out)
    elif command == "graph":
        _run_graph(args, out)
    elif command == "shard-detect":
        _run_shard_detect(args, out)
    else:  # pragma: no cover - argparse enforces choices
        raise ValueError(f"unknown command {command!r}")


def _run_detect(args: argparse.Namespace, out) -> None:
    from .core import (
        MAARConfig,
        Rejecto,
        RejectoConfig,
        ResponsePolicy,
        assert_valid_graph,
    )
    from .core.graph import AugmentedSocialGraph
    from .experiments.runner import load_graph_source
    from .io import load_request_log, save_detection_report

    if args.graph:
        # Sniffed by content: a .csrbin snapshot memory-maps straight
        # into the detector (no text parse), an F/R file loads as the
        # mutable builder exactly as before.
        graph = load_graph_source(args.graph, as_csr=False)
    else:
        graph = load_request_log(args.requests).to_augmented_graph()
    if isinstance(graph, AugmentedSocialGraph):
        # CSR snapshots enforce their invariants at construction; the
        # adjacency-level validator only speaks the builder layout.
        assert_valid_graph(graph)
    config = RejectoConfig(
        maar=MAARConfig(jobs=_resolve_jobs(args)),
        estimated_spammers=args.estimated,
        acceptance_threshold=args.threshold,
        max_rounds=args.max_rounds,
    )
    result = Rejecto(config).detect(
        graph,
        legit_seeds=args.legit_seeds,
        spammer_seeds=args.spammer_seeds,
    )
    print(
        f"graph: {graph.num_nodes} users, {graph.num_friendships} friendships, "
        f"{graph.num_rejections} rejections",
        file=out,
    )
    for group in result.groups:
        print(
            f"round {group.round_index}: {len(group)} suspicious accounts, "
            f"aggregate acceptance rate {group.acceptance_rate:.3f}",
            file=out,
        )
    print(
        f"total detected: {result.total_detected} "
        f"(termination: {result.termination})",
        file=out,
    )
    if result.total_detected:
        print("detected ids:", " ".join(map(str, result.detected())), file=out)
    if args.forensics and result.total_detected:
        from .core import analyze_detection

        print(analyze_detection(graph, result).render(), file=out)
    if args.actions and result.total_detected:
        plan = ResponsePolicy().plan(result)
        counts = plan.counts()
        print("response plan (§VII):", file=out)
        for action, count in counts.items():
            if count:
                accounts = plan.accounts_for(action)
                shown = " ".join(map(str, accounts[:20]))
                suffix = " ..." if len(accounts) > 20 else ""
                print(f"  {action.value}: {count} accounts: {shown}{suffix}", file=out)
    if args.report:
        save_detection_report(result, args.report)
        print(f"report written to {args.report}", file=out)


def _run_multilevel(args: argparse.Namespace, out) -> None:
    import json as _json
    import time as _time

    from .core import solve_maar_multilevel
    from .core.multilevel import MultilevelConfig
    from .experiments.runner import load_graph_source

    graph = load_graph_source(args.graph, as_csr=args.engine == "csr")
    refine_jobs = args.refine_jobs
    if refine_jobs <= 0:
        from .core.parallel import default_jobs

        refine_jobs = default_jobs()
    config = MultilevelConfig(
        engine=args.engine,
        frontier=args.frontier,
        incremental=not args.no_incremental,
        refine_tolerance=args.refine_tolerance,
        refine_jobs=refine_jobs,
        refine_stall=args.refine_stall if args.refine_stall > 0 else None,
        jobs=_resolve_jobs(args),
    )
    if args.engine == "csr":
        graph = graph.csr()
    start = _time.perf_counter()
    result = solve_maar_multilevel(
        graph,
        config,
        legit_seeds=args.legit_seeds,
        spammer_seeds=args.spammer_seeds,
    )
    seconds = _time.perf_counter() - start
    print(
        f"graph: {graph.num_nodes} users, {graph.num_friendships} "
        f"friendships, {graph.num_rejections} rejections",
        file=out,
    )
    print(
        f"levels: {result.levels} (sizes {result.level_sizes})",
        file=out,
    )
    if result.found:
        print(
            f"detected {len(result.suspicious)} suspicious accounts at "
            f"k={result.k:.4f}, acceptance rate "
            f"{result.acceptance_rate:.4f} in {seconds:.2f}s",
            file=out,
        )
    else:
        print(f"no valid cut found ({seconds:.2f}s)", file=out)
    timings = result.timings
    if timings:
        coarsen = sum(timings.get("coarsen", []))
        refine = sum(timings.get("refine", []))
        print(
            f"timings: coarsen {coarsen:.2f}s, coarse sweep "
            f"{timings.get('coarse_sweep', 0.0):.2f}s, refine {refine:.2f}s, "
            f"early exits {timings.get('early_exits', 0)}",
            file=out,
        )
        for detail in timings.get("refine_detail", []):
            print(
                f"  level {detail['level']}: {detail['scope']}, frontier "
                f"{detail['boundary']}, regions {detail['regions']}, rounds "
                f"{detail['rounds']}, moves {detail['moves']}",
                file=out,
            )
    if result.found:
        shown = " ".join(map(str, result.suspicious[:20]))
        suffix = " ..." if len(result.suspicious) > 20 else ""
        print(f"suspicious ids: {shown}{suffix}", file=out)
    if args.json:
        payload = {
            "suspicious": result.suspicious,
            "acceptance_rate": result.acceptance_rate,
            "k": result.k,
            "level_sizes": result.level_sizes,
            "timings": timings,
            "seconds": seconds,
            "config": {
                "engine": args.engine,
                "frontier": args.frontier,
                "incremental": not args.no_incremental,
                "refine_tolerance": args.refine_tolerance,
                "refine_jobs": refine_jobs,
            },
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"json written to {args.json}", file=out)


def _run_graph(args: argparse.Namespace, out) -> None:
    from pathlib import Path

    if args.graph_command == "pack":
        from .experiments.runner import load_graph_source

        source = Path(args.input)
        graph = load_graph_source(source, as_csr=True)
        csr = graph.csr()
        if args.no_remap:
            # Re-parse honouring raw ids (only meaningful for edge lists).
            from .graphgen.loaders import load_snap_edgelist

            csr = load_snap_edgelist(source, remap=False, as_csr=True)
        out_path = Path(args.out) if args.out else source.with_name(
            source.name.removesuffix(".gz").removesuffix(".txt") + ".csrbin"
        )
        csr.save(out_path)
        size = out_path.stat().st_size
        print(
            f"packed {csr.num_nodes} nodes, {csr.num_friendships} "
            f"friendships, {csr.num_rejections} rejections "
            f"-> {out_path} ({size} bytes)",
            file=out,
        )
    elif args.graph_command == "info":
        from .core.storage import snapshot_info

        info = snapshot_info(args.path)
        print(f"snapshot: {args.path}", file=out)
        print(
            f"  version {info['version']}, alignment {info['alignment']}, "
            f"{info['file_bytes']} bytes",
            file=out,
        )
        print(
            f"  {info['num_nodes']} nodes, {info['friendships']} "
            f"friendships, {info['rejections']} rejections",
            file=out,
        )
        flags = [
            name
            for name, on in (
                ("weighted", info["weighted"]),
                ("int-weighted", info["int_weighted"]),
                ("node-weight", info["has_node_weight"]),
            )
            if on
        ]
        print(f"  flags: {', '.join(flags) if flags else 'none'}", file=out)
        if args.segments:
            for seg in info["segments"]:
                print(
                    f"  segment {seg['name']:<11} offset {seg['offset']:>12} "
                    f"bytes {seg['bytes']:>12}",
                    file=out,
                )
    else:  # pragma: no cover - argparse enforces choices
        raise ValueError(f"unknown graph command {args.graph_command!r}")


def _run_shard_detect(args: argparse.Namespace, out) -> None:
    from .core import MAARConfig, RejectoConfig, detect_over_shards
    from .io import load_augmented_graph

    shards = [load_augmented_graph(path) for path in args.graphs]
    config = RejectoConfig(
        maar=MAARConfig(jobs=_resolve_jobs(args)),
        estimated_spammers=args.estimated,
        acceptance_threshold=args.threshold,
        max_rounds=args.max_rounds,
    )
    result = detect_over_shards(shards, config, legit_seeds=args.legit_seeds)
    for interval in range(result.num_intervals):
        flagged = sorted(result.flagged(interval))
        newly = sorted(result.newly_flagged(interval))
        print(
            f"interval {interval}: flagged {len(flagged)} "
            f"(first-time: {len(newly)})",
            file=out,
        )
        if newly:
            shown = " ".join(map(str, newly[:30]))
            suffix = " ..." if len(newly) > 30 else ""
            print(f"  new: {shown}{suffix}", file=out)
    print(
        f"total distinct accounts flagged: {len(result.flagged())}",
        file=out,
    )


def _run_all(quick: bool, out, jobs: int = 1) -> None:
    scale = 0.1 if quick else 0.2
    num_legit = 600 if quick else 1500
    num_fakes = 120 if quick else 300
    sweep_config = SweepConfig(
        num_legit=num_legit, num_fakes=num_fakes, jobs=jobs
    )
    steps = [
        ("Table I", lambda: datasets_table(scale=scale).render()),
        ("Fig. 1", lambda: motivation_study().render()),
    ]
    steps += [
        (name, lambda fn=fn: fn(sweep_config).render())
        for name, fn in _SWEEPS.items()
    ]
    steps += [
        (
            "Fig. 16",
            lambda: defense_in_depth(
                DefenseInDepthConfig(num_legit=num_legit, num_fakes=num_fakes)
            ).render(),
        ),
        (
            "Table II",
            lambda: scaling_study(
                ScalingConfig(user_counts=(500, 1000, 2000) if quick else (1000, 2000, 4000))
            ).render(),
        ),
    ]
    for label, step in steps:
        start = time.perf_counter()
        print(step(), file=out)
        print(f"[{label} done in {time.perf_counter() - start:.1f}s]\n", file=out)


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point."""
    args = build_parser().parse_args(argv)
    _run_command(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
