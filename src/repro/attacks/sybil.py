"""Sybil-region injection.

The paper's workload (Section VI-A) adds a spamming region of fake
accounts to each social graph: "Upon the arrival of each fake account,
it connects to 6 other fake accounts." Both uniform and
degree-preferential intra-region attachment are supported — the paper
does not pin the rule down, and the choice has no effect on the MAAR
objective (those edges never cross the cut), which the tests verify.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..core.graph import AugmentedSocialGraph

__all__ = ["SybilRegionConfig", "inject_sybil_region"]


@dataclass(frozen=True)
class SybilRegionConfig:
    """Shape of the injected fake-account region.

    Attributes
    ----------
    num_fakes:
        Number of fake accounts to add.
    intra_links_per_fake:
        Links each arriving fake creates to already-present fakes
        (the paper uses 6).
    attachment:
        ``"random"`` (uniform over existing fakes) or ``"preferential"``
        (degree-proportional, BA-style).
    """

    num_fakes: int
    intra_links_per_fake: int = 6
    attachment: str = "random"


def inject_sybil_region(
    graph: AugmentedSocialGraph,
    config: SybilRegionConfig,
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Append a fake-account region to ``graph`` (mutating it).

    Returns the new fake-account ids. Intra-region links only; attack
    edges and rejections are added by the spam simulator.
    """
    if config.num_fakes < 1:
        raise ValueError(f"num_fakes must be >= 1, got {config.num_fakes}")
    if config.intra_links_per_fake < 0:
        raise ValueError(
            f"intra_links_per_fake must be >= 0, got {config.intra_links_per_fake}"
        )
    if config.attachment not in ("random", "preferential"):
        raise ValueError(f"unknown attachment {config.attachment!r}")
    rng = rng or random.Random(0)
    fakes = graph.add_nodes(config.num_fakes)
    endpoints: List[int] = []  # for preferential attachment
    for position, fake in enumerate(fakes):
        if position == 0:
            continue
        links = min(config.intra_links_per_fake, position)
        if config.attachment == "preferential" and endpoints:
            chosen = set()
            attempts = 0
            while len(chosen) < links and attempts < 50 * links:
                candidate = endpoints[rng.randrange(len(endpoints))]
                if candidate != fake:
                    chosen.add(candidate)
                attempts += 1
            targets = list(chosen)
        else:
            targets = rng.sample(fakes[:position], links)
        for target in targets:
            if graph.add_friendship(fake, target):
                endpoints.extend((fake, target))
    return fakes
