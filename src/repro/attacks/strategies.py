"""Strategic attacker behaviours (Sections VI-B, VI-C).

Each strategy is a mutation applied on top of the baseline friend-spam
workload:

* **Collusion** (Fig. 13) — fakes accept each other's requests, adding
  non-attack edges that drag each individual's rejection rate down
  without touching the aggregate acceptance rate of the cross cut.
* **Self-rejection** (Fig. 14) — a *whitewashed* half of the fakes
  rejects requests sent by the other half, crafting a low
  friends-to-rejections cut inside the fake region (Fig. 8).
* **Rejecting legitimate requests** (Fig. 15) — fakes trick legitimate
  users into sending requests and reject them all, planting rejections
  that point *at legitimate users*.
* **Stealth spamming** (Fig. 10) — only a fraction of the fakes send
  spam; the rest hide behind intra-region links.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..core.graph import AugmentedSocialGraph
from .requests import RequestLog
from .spam import SpamStats, _check_rate

__all__ = [
    "add_collusion_edges",
    "apply_self_rejection",
    "reject_legitimate_requests",
    "pick_stealth_senders",
]


def add_collusion_edges(
    graph: AugmentedSocialGraph,
    fakes: Sequence[int],
    extra_links_per_fake: int,
    rng: Optional[random.Random] = None,
) -> int:
    """Collusion: each fake gains ``extra_links_per_fake`` accepted
    intra-region requests (non-attack edges). Returns edges added."""
    if extra_links_per_fake < 0:
        raise ValueError(
            f"extra_links_per_fake must be >= 0, got {extra_links_per_fake}"
        )
    if extra_links_per_fake and len(fakes) < 2:
        raise ValueError("collusion needs at least two fakes")
    rng = rng or random.Random(0)
    fakes = list(fakes)
    added = 0
    for fake in fakes:
        created = 0
        attempts = 0
        budget = 50 * extra_links_per_fake + 50
        while created < extra_links_per_fake and attempts < budget:
            other = fakes[rng.randrange(len(fakes))]
            attempts += 1
            if other != fake and graph.add_friendship(fake, other):
                created += 1
                added += 1
    return added


def apply_self_rejection(
    graph: AugmentedSocialGraph,
    senders: Sequence[int],
    whitewashed: Sequence[int],
    requests_per_sender: int,
    rejection_rate: float,
    rng: Optional[random.Random] = None,
    log: Optional[RequestLog] = None,
) -> SpamStats:
    """Self-rejection: each sender fake sends ``requests_per_sender``
    requests to the whitewashed fakes, who reject a ``rejection_rate``
    fraction (mimicking legitimate users) and accept the rest.

    Rejections point *into the sender half* — cast by whitewashed
    accounts — so the crafted low-ratio cut isolates the senders.
    """
    _check_rate(rejection_rate, "rejection_rate")
    if requests_per_sender > len(whitewashed):
        raise ValueError(
            f"requests_per_sender={requests_per_sender} exceeds the "
            f"{len(whitewashed)} whitewashed accounts"
        )
    rng = rng or random.Random(0)
    stats = SpamStats()
    whitewashed = list(whitewashed)
    for sender in senders:
        for target in rng.sample(whitewashed, requests_per_sender):
            if target == sender:
                continue
            stats.requests += 1
            accepted = rng.random() >= rejection_rate
            if accepted:
                graph.add_friendship(sender, target)
                stats.accepted += 1
            else:
                graph.add_rejection(target, sender)
                stats.rejected += 1
            if log is not None:
                log.record(sender, target, accepted)
    return stats


def reject_legitimate_requests(
    graph: AugmentedSocialGraph,
    fakes: Sequence[int],
    legit: Sequence[int],
    num_rejections: int,
    rng: Optional[random.Random] = None,
    log: Optional[RequestLog] = None,
) -> int:
    """Fakes reject ``num_rejections`` requests from legitimate users.

    Models careless/tricked legitimate users whose requests into the
    spamming region are all turned down (Fig. 15): adds rejection edges
    ``⟨fake, legit⟩``. Returns the number of distinct edges added.
    """
    if num_rejections < 0:
        raise ValueError(f"num_rejections must be >= 0, got {num_rejections}")
    if num_rejections and (not fakes or not legit):
        raise ValueError("need both fakes and legitimate users")
    if num_rejections > len(fakes) * len(legit):
        raise ValueError(
            f"num_rejections={num_rejections} exceeds the "
            f"{len(fakes) * len(legit)} possible fake→legit pairs"
        )
    rng = rng or random.Random(0)
    fakes = list(fakes)
    legit = list(legit)
    added = 0
    attempts = 0
    budget = 50 * num_rejections + 100
    while added < num_rejections and attempts < budget:
        fake = fakes[rng.randrange(len(fakes))]
        user = legit[rng.randrange(len(legit))]
        attempts += 1
        if graph.add_rejection(fake, user):
            added += 1
            if log is not None:
                log.record(user, fake, False)
    return added


def pick_stealth_senders(
    fakes: Sequence[int],
    sender_fraction: float,
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Choose which fakes spam under the stealth strategy (Fig. 10)."""
    _check_rate(sender_fraction, "sender_fraction")
    rng = rng or random.Random(0)
    count = max(1, int(round(len(fakes) * sender_fraction))) if fakes else 0
    return sorted(rng.sample(list(fakes), count)) if count else []
