"""Time-stamped request timelines (for the Section VII deployment).

The paper's discussion proposes running Rejecto per *time interval*: "the
OSN provider can shard friend requests and rejections according to the
time intervals in which they have occurred, and then run Rejecto on an
augmented graph constructed from the sharded requests and rejections in
each interval" — detecting compromised accounts in their post-compromise
intervals.

This module simulates such a timeline: legitimate request traffic every
day, plus *compromise events* that flip chosen accounts to spamming
behaviour from a given day on. :meth:`Timeline.shard` materializes the
augmented graph of any interval (standing friendships plus the
interval's requests), the input
:func:`repro.core.sharding.detect_over_shards` consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..core.graph import AugmentedSocialGraph

__all__ = [
    "TimedRequest",
    "CompromiseEvent",
    "RecoveryEvent",
    "TimelineConfig",
    "Timeline",
    "simulate_timeline",
]


@dataclass(frozen=True)
class TimedRequest:
    """One friend request with its day and response."""

    day: int
    sender: int
    target: int
    accepted: bool


@dataclass(frozen=True)
class CompromiseEvent:
    """An account starts spamming on ``day`` (inclusive)."""

    account: int
    day: int


@dataclass(frozen=True)
class RecoveryEvent:
    """A compromised account is cleaned up on ``day`` (inclusive):
    from that day it behaves legitimately again. Models the OSN's
    remediation loop — per-interval detection should stop flagging the
    account in post-recovery shards."""

    account: int
    day: int


@dataclass(frozen=True)
class TimelineConfig:
    """Timeline simulation parameters.

    Legitimate users send ``legit_daily_requests`` requests per day on
    average (Bernoulli-thinned), rejected at ``legit_rejection_rate``;
    compromised accounts send ``spam_daily_requests`` per day, rejected
    at ``spam_rejection_rate``, from their compromise day on.
    """

    num_days: int = 7
    legit_daily_requests: float = 0.5
    legit_rejection_rate: float = 0.2
    spam_daily_requests: int = 20
    spam_rejection_rate: float = 0.7


class Timeline:
    """A base social graph plus a day-stamped request stream."""

    def __init__(
        self,
        base_graph: AugmentedSocialGraph,
        requests: Sequence[TimedRequest],
        num_days: int,
    ) -> None:
        if num_days < 1:
            raise ValueError(f"num_days must be >= 1, got {num_days}")
        for request in requests:
            if not 0 <= request.day < num_days:
                raise ValueError(
                    f"request day {request.day} outside [0, {num_days})"
                )
        self.base_graph = base_graph
        self.requests = list(requests)
        self.num_days = num_days

    @property
    def num_users(self) -> int:
        return self.base_graph.num_nodes

    def requests_in(self, start_day: int, end_day: int) -> List[TimedRequest]:
        """Requests with ``start_day <= day < end_day``."""
        return [r for r in self.requests if start_day <= r.day < end_day]

    def shard(
        self, start_day: int, end_day: int, include_base: bool = True
    ) -> AugmentedSocialGraph:
        """Augmented graph of one interval (Section VII's shard).

        Standing friendships are included by default — they are the
        social context the MAAR cut separates spammers from; only the
        *requests and rejections* are sharded by time.
        """
        if not 0 <= start_day < end_day <= self.num_days:
            raise ValueError(
                f"invalid interval [{start_day}, {end_day}) for "
                f"{self.num_days} days"
            )
        graph = (
            self.base_graph.copy()
            if include_base
            else AugmentedSocialGraph(self.num_users)
        )
        for request in self.requests_in(start_day, end_day):
            if request.accepted:
                graph.add_friendship(request.sender, request.target)
            else:
                graph.add_rejection(request.target, request.sender)
        return graph

    def daily_shards(self, include_base: bool = True) -> List[AugmentedSocialGraph]:
        """One shard per day, in order."""
        return [
            self.shard(day, day + 1, include_base=include_base)
            for day in range(self.num_days)
        ]

    def cumulative(self) -> AugmentedSocialGraph:
        """The whole-window graph (what a non-sharded batch job sees)."""
        return self.shard(0, self.num_days)


def simulate_timeline(
    base_graph: AugmentedSocialGraph,
    compromises: Iterable[CompromiseEvent],
    config: Optional[TimelineConfig] = None,
    rng: Optional[random.Random] = None,
    recoveries: Iterable[RecoveryEvent] = (),
) -> Timeline:
    """Simulate a request timeline over ``base_graph``.

    Every user emits legitimate traffic daily; accounts named in
    ``compromises`` switch to spamming behaviour from their compromise
    day onward, until a matching :class:`RecoveryEvent` (if any) flips
    them back to legitimate behaviour.
    """
    config = config or TimelineConfig()
    rng = rng or random.Random(0)
    num_users = base_graph.num_nodes
    if num_users < 2:
        raise ValueError("timeline needs at least two users")
    compromise_day: Dict[int, int] = {}
    for event in compromises:
        if not 0 <= event.account < num_users:
            raise ValueError(f"compromised account {event.account} out of range")
        if not 0 <= event.day < config.num_days:
            raise ValueError(f"compromise day {event.day} out of range")
        day = compromise_day.get(event.account)
        compromise_day[event.account] = event.day if day is None else min(day, event.day)
    recovery_day: Dict[int, int] = {}
    for event in recoveries:
        if not 0 <= event.account < num_users:
            raise ValueError(f"recovered account {event.account} out of range")
        if not 0 <= event.day <= config.num_days:
            raise ValueError(f"recovery day {event.day} out of range")
        day = recovery_day.get(event.account)
        recovery_day[event.account] = event.day if day is None else min(day, event.day)

    requests: List[TimedRequest] = []
    for day in range(config.num_days):
        for user in range(num_users):
            hijack_day = compromise_day.get(user)
            cleaned = recovery_day.get(user)
            hijacked_now = (
                hijack_day is not None
                and day >= hijack_day
                and (cleaned is None or day < cleaned)
            )
            if hijacked_now:
                count = config.spam_daily_requests
                rejection_rate = config.spam_rejection_rate
            else:
                # Bernoulli-thin the fractional daily rate.
                whole = int(config.legit_daily_requests)
                count = whole + (
                    1
                    if rng.random() < config.legit_daily_requests - whole
                    else 0
                )
                rejection_rate = config.legit_rejection_rate
            for _ in range(count):
                target = rng.randrange(num_users)
                if target == user:
                    continue
                accepted = rng.random() >= rejection_rate
                requests.append(TimedRequest(day, user, target, accepted))
    return Timeline(base_graph, requests, config.num_days)
