"""Composable end-to-end attack scenarios.

:func:`build_scenario` assembles the paper's full simulation setup
(Section VI-A) — legitimate region, injected Sybil region, friend spam,
legitimate rejections, careless users, and any strategic behaviours —
into a single :class:`Scenario` carrying the augmented graph and the
ground truth. Every figure's experiment is one
:class:`ScenarioConfig` away from the baseline.

Paper-scale defaults (10K fakes on the 10K-node Facebook sample) are
reachable by setting ``num_legit``/``num_fakes`` accordingly; the
defaults here are laptop-scale (2000 + 400) so sweeps over many
configurations finish in minutes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from ..core.graph import AugmentedSocialGraph
from ..graphgen.datasets import generate_dataset
from ..metrics.detection import DetectionMetrics, precision_recall
from .requests import RequestLog
from .spam import (
    SpamStats,
    add_careless_requests,
    send_friend_spam,
    simulate_legitimate_rejections,
)
from .strategies import (
    add_collusion_edges,
    apply_self_rejection,
    pick_stealth_senders,
    reject_legitimate_requests,
)
from .sybil import SybilRegionConfig, inject_sybil_region

__all__ = ["ScenarioConfig", "Scenario", "build_scenario"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Every knob of the paper's simulation setup.

    The defaults reproduce the baseline attack of Section VI-A at
    reduced scale: all fakes send 20 requests each, 70% rejected; the
    legitimate rejection rate is 20%; 15% of legitimate users are
    careless; each fake arrives with 6 intra-region links.
    """

    # Legitimate region.
    dataset: str = "facebook"
    scale: Optional[float] = None  # node-count scale of the dataset
    num_legit: Optional[int] = 2000  # overrides scale when set
    # Sybil region.
    num_fakes: int = 400
    intra_links_per_fake: int = 6
    attachment: str = "random"
    # Baseline friend spam.
    requests_per_fake: int = 20
    spam_rejection_rate: float = 0.7
    spam_sender_fraction: float = 1.0  # Fig. 10 stealth: 0.5
    spam_targeting: str = "random"  # or "high_degree": farm popular users
    # Legitimate behaviour.
    legit_rejection_rate: float = 0.2
    careless_fraction: float = 0.15
    # Collusion (Fig. 13): extra accepted intra-fake requests per fake.
    collusion_extra_links: int = 0
    # Self-rejection (Fig. 14).
    self_rejection_rate: Optional[float] = None
    whitewashed_fraction: float = 0.5
    self_rejection_requests: int = 20
    # Sybils rejecting legitimate requests (Fig. 15).
    rejections_on_legit: int = 0
    # Reproducibility.
    seed: int = 7

    def with_overrides(self, **changes) -> "ScenarioConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class Scenario:
    """A built attack instance: augmented graph plus ground truth."""

    graph: AugmentedSocialGraph
    legit: List[int]
    fakes: List[int]
    spammers: List[int]  # the fakes that actually sent friend spam
    whitewashed: List[int]  # fakes on the receiving side of self-rejection
    careless: List[int]
    config: ScenarioConfig
    spam_stats: SpamStats
    legit_rejections_added: int
    request_log: RequestLog

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def precision_recall(self, detected: Sequence[int]) -> DetectionMetrics:
        """Score a detected set against this scenario's fakes."""
        return precision_recall(detected, self.fakes)

    def sample_seeds(
        self, num_legit_seeds: int, num_spammer_seeds: int, seed: int = 0
    ) -> tuple:
        """Uniformly sampled known-label seeds (Section IV-F)."""
        rng = random.Random(seed)
        legit_seeds = rng.sample(self.legit, min(num_legit_seeds, len(self.legit)))
        spam_pool = self.spammers or self.fakes
        spammer_seeds = rng.sample(
            spam_pool, min(num_spammer_seeds, len(spam_pool))
        )
        return legit_seeds, spammer_seeds


def build_scenario(
    config: ScenarioConfig,
    base_graph: Optional[AugmentedSocialGraph] = None,
) -> Scenario:
    """Assemble a full attack scenario.

    Parameters
    ----------
    config:
        The scenario parameters.
    base_graph:
        Optional pre-built legitimate friendship graph (e.g. a real SNAP
        dataset); when omitted, the configured catalog dataset is
        generated. The graph is copied, never mutated.

    Construction order matches the paper: legitimate region → legitimate
    rejections → Sybil region (6 intra links each) → collusion edges →
    spam wave (all or a stealth fraction of fakes) → careless users →
    self-rejection wave → rejections of legitimate requests.
    """
    rng = random.Random(config.seed)
    log = RequestLog()
    if base_graph is not None:
        graph = base_graph.copy()
    else:
        spec_scale = config.scale
        if config.num_legit is not None:
            from ..graphgen.datasets import CATALOG

            spec_scale = config.num_legit / CATALOG[config.dataset].paper_nodes
        graph = generate_dataset(
            config.dataset, scale=min(spec_scale or 1.0, 1.0), seed=config.seed
        )
    legit = list(range(graph.num_nodes))

    # Base friendships came from accepted requests whose direction the
    # undirected graph erased; synthesize a uniform direction for the log.
    for u, v in graph.friendships():
        if rng.random() < 0.5:
            log.record(u, v, True)
        else:
            log.record(v, u, True)

    legit_rejections = simulate_legitimate_rejections(
        graph, legit, config.legit_rejection_rate, rng, log=log
    )

    edges_before_fakes = set(graph.friendships())
    fakes = inject_sybil_region(
        graph,
        SybilRegionConfig(
            num_fakes=config.num_fakes,
            intra_links_per_fake=config.intra_links_per_fake,
            attachment=config.attachment,
        ),
        rng,
    )

    if config.collusion_extra_links:
        add_collusion_edges(graph, fakes, config.collusion_extra_links, rng)

    # Intra-fake links are mutually accepted requests; log the arrival
    # direction (later id sent the request, matching the injection order).
    for u, v in graph.friendships():
        if (u, v) not in edges_before_fakes:
            log.record(max(u, v), min(u, v), True)

    spammers = pick_stealth_senders(fakes, config.spam_sender_fraction, rng)
    spam_stats = send_friend_spam(
        graph,
        spammers,
        legit,
        config.requests_per_fake,
        config.spam_rejection_rate,
        rng,
        log=log,
        targeting=config.spam_targeting,
    )

    careless = add_careless_requests(
        graph, legit, fakes, config.careless_fraction, rng, log=log
    )

    whitewashed: List[int] = []
    if config.self_rejection_rate is not None:
        split = int(round(len(fakes) * config.whitewashed_fraction))
        whitewashed = fakes[:split]
        senders = fakes[split:]
        apply_self_rejection(
            graph,
            senders,
            whitewashed,
            min(config.self_rejection_requests, len(whitewashed)),
            config.self_rejection_rate,
            rng,
            log=log,
        )

    if config.rejections_on_legit:
        reject_legitimate_requests(
            graph, fakes, legit, config.rejections_on_legit, rng, log=log
        )

    return Scenario(
        graph=graph,
        legit=legit,
        fakes=fakes,
        spammers=spammers,
        whitewashed=whitewashed,
        careless=careless,
        config=config,
        spam_stats=spam_stats,
        legit_rejections_added=legit_rejections,
        request_log=log,
    )
