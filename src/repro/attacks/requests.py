"""The directed friend-request log.

The augmented social graph keeps only the *outcome* of requests
(friendships and rejections); the direction of accepted requests is
erased by the undirected friendship edge. VoteTrust [35], however, ranks
users on the *directed friend-request graph*, so the simulators record
every request — sender, target, and response — into a
:class:`RequestLog` that the scenario builder exposes alongside the
graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["FriendRequest", "RequestLog"]


@dataclass(frozen=True)
class FriendRequest:
    """One friend request and its response."""

    sender: int
    target: int
    accepted: bool


class RequestLog:
    """Append-only log of friend requests.

    Duplicate (sender, target) pairs are kept: a user may re-request
    after a rejection, and VoteTrust's vote aggregation weighs each
    response.
    """

    __slots__ = ("requests",)

    def __init__(self) -> None:
        self.requests: List[FriendRequest] = []

    def record(self, sender: int, target: int, accepted: bool) -> None:
        """Append one request outcome."""
        self.requests.append(FriendRequest(sender, target, accepted))

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[FriendRequest]:
        return iter(self.requests)

    @property
    def num_accepted(self) -> int:
        return sum(1 for r in self.requests if r.accepted)

    @property
    def num_rejected(self) -> int:
        return len(self.requests) - self.num_accepted

    def out_requests(self) -> Dict[int, List[FriendRequest]]:
        """Requests grouped by sender."""
        grouped: Dict[int, List[FriendRequest]] = {}
        for request in self.requests:
            grouped.setdefault(request.sender, []).append(request)
        return grouped

    def edge_counts(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """Per (sender, target) pair: (accepted_count, rejected_count)."""
        counts: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for request in self.requests:
            accepted, rejected = counts.get((request.sender, request.target), (0, 0))
            if request.accepted:
                accepted += 1
            else:
                rejected += 1
            counts[(request.sender, request.target)] = (accepted, rejected)
        return counts

    def to_augmented_graph(self, num_users: Optional[int] = None):
        """Materialize the rejection-augmented graph the log implies.

        Accepted requests become friendships; rejected requests become
        rejection edges ``⟨target, sender⟩``. This is the operator
        pipeline's entry point: a logged request stream (e.g. loaded via
        :func:`repro.io.load_request_log`) in, a detectable graph out.

        ``num_users`` defaults to ``max id + 1`` over the log.
        """
        from ..core.graph import AugmentedSocialGraph

        if num_users is None:
            num_users = 1 + max(
                (max(r.sender, r.target) for r in self.requests), default=-1
            )
        graph = AugmentedSocialGraph(num_users)
        for request in self.requests:
            if request.accepted:
                graph.add_friendship(request.sender, request.target)
            else:
                graph.add_rejection(request.target, request.sender)
        return graph
