"""Attack and workload simulation (Sections II, VI-A, VI-B, VI-C).

Builds the paper's evaluation workloads: Sybil-region injection, friend
spam with social rejections, careless users, legitimate-user rejections,
the collusion / self-rejection / stealth / reject-legitimate strategies,
and the Section II purchased-account model. :func:`build_scenario`
composes them into one reproducible instance.
"""

from .accounts import (
    AccountModelConfig,
    FriendProfile,
    FriendProfileModelConfig,
    PurchasedAccount,
    sample_friend_profiles,
    sample_purchased_accounts,
)
from .requests import FriendRequest, RequestLog
from .scenario import Scenario, ScenarioConfig, build_scenario
from .spam import (
    SpamStats,
    add_careless_requests,
    send_friend_spam,
    simulate_legitimate_rejections,
)
from .strategies import (
    add_collusion_edges,
    apply_self_rejection,
    pick_stealth_senders,
    reject_legitimate_requests,
)
from .sybil import SybilRegionConfig, inject_sybil_region
from .timeline import (
    CompromiseEvent,
    RecoveryEvent,
    TimedRequest,
    Timeline,
    TimelineConfig,
    simulate_timeline,
)

__all__ = [
    "FriendRequest",
    "RequestLog",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "SybilRegionConfig",
    "inject_sybil_region",
    "SpamStats",
    "send_friend_spam",
    "simulate_legitimate_rejections",
    "add_careless_requests",
    "add_collusion_edges",
    "apply_self_rejection",
    "pick_stealth_senders",
    "reject_legitimate_requests",
    "AccountModelConfig",
    "PurchasedAccount",
    "sample_purchased_accounts",
    "FriendProfile",
    "FriendProfileModelConfig",
    "sample_friend_profiles",
    "TimedRequest",
    "CompromiseEvent",
    "RecoveryEvent",
    "TimelineConfig",
    "Timeline",
    "simulate_timeline",
]
