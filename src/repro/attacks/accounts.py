"""Generative model of purchased fake accounts (Section II).

The paper's motivation study examined 43 purchased Facebook accounts —
each at least a year old, with "more than 50 real US friends" — and
found that *every* one carried a significant pile of pending (ignored or
rejected) friend requests: the pending fraction ranged from 16.7% to
67.9% (Figure 1; 2804 friends and 2065 pending requests in total).

Purchased accounts are obviously not reproducible offline, so this
module provides a calibrated generative stand-in (DESIGN.md,
substitution 3): it samples per-account friend counts and pending
fractions consistent with the reported aggregates, for the Figure-1
benchmark and for seeding synthetic studies.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

__all__ = [
    "PurchasedAccount",
    "AccountModelConfig",
    "sample_purchased_accounts",
    "FriendProfile",
    "FriendProfileModelConfig",
    "sample_friend_profiles",
]


@dataclass(frozen=True)
class PurchasedAccount:
    """One synthetic purchased fake account."""

    friends: int
    pending_requests: int

    @property
    def pending_fraction(self) -> float:
        total = self.friends + self.pending_requests
        return self.pending_requests / total if total else 0.0


@dataclass(frozen=True)
class AccountModelConfig:
    """Calibration of the purchased-account model.

    Defaults reproduce the paper's aggregates: 43 accounts averaging
    ~65 friends each (lognormal, minimum 50 as the purchase required),
    with pending fractions uniform over the observed [0.167, 0.679]
    range.
    """

    num_accounts: int = 43
    min_friends: int = 50
    mean_friends: float = 65.0
    friends_sigma: float = 0.35
    min_pending_fraction: float = 0.167
    max_pending_fraction: float = 0.679


def sample_purchased_accounts(
    config: Optional[AccountModelConfig] = None,
    rng: Optional[random.Random] = None,
) -> List[PurchasedAccount]:
    """Sample a batch of synthetic purchased accounts.

    Friend counts are lognormal (clipped below at ``min_friends``);
    pending fractions are uniform over the configured range; the pending
    count is derived from the fraction:
    ``pending = friends · f / (1 − f)``.
    """
    config = config or AccountModelConfig()
    if config.num_accounts < 1:
        raise ValueError(f"num_accounts must be >= 1, got {config.num_accounts}")
    if not 0 <= config.min_pending_fraction <= config.max_pending_fraction < 1:
        raise ValueError("pending fractions must satisfy 0 <= min <= max < 1")
    rng = rng or random.Random(0)
    mu = math.log(config.mean_friends) - config.friends_sigma**2 / 2
    accounts = []
    for _ in range(config.num_accounts):
        friends = max(
            config.min_friends, int(round(rng.lognormvariate(mu, config.friends_sigma)))
        )
        fraction = rng.uniform(
            config.min_pending_fraction, config.max_pending_fraction
        )
        pending = int(round(friends * fraction / (1.0 - fraction)))
        accounts.append(PurchasedAccount(friends=friends, pending_requests=pending))
    return accounts


@dataclass(frozen=True)
class FriendProfile:
    """Observed attributes of one friend of a purchased account.

    The paper's Figures 3-5 plot CDFs of these attributes over the 2804
    friends of the purchased accounts: social-graph degree, wall posts
    (plus the comments and likes they received), and uploaded photos
    (plus their comments and likes).
    """

    degree: int
    posts: int
    post_comments: int
    post_likes: int
    photos: int
    photo_comments: int
    photo_likes: int


@dataclass(frozen=True)
class FriendProfileModelConfig:
    """Calibration of the friend-attribute model (Figures 3-5).

    Degrees are lognormal with a heavy tail — the paper observes both
    ordinary users and accounts with degree over 1000 ("either careless
    Facebook users or abusive fake accounts"). Activity counts are
    lognormal around modest medians with an ``inactive_fraction`` of
    friends showing no activity at all; comments and likes scale with
    the underlying posts/photos, matching the observation that "a large
    portion of the friend users ... are quite active".
    """

    median_degree: float = 180.0
    degree_sigma: float = 1.1
    max_degree: int = 5000
    inactive_fraction: float = 0.15
    median_posts: float = 25.0
    posts_sigma: float = 1.2
    median_photos: float = 15.0
    photos_sigma: float = 1.3
    comments_per_item: float = 0.8
    likes_per_item: float = 1.5


def sample_friend_profiles(
    count: int,
    config: Optional[FriendProfileModelConfig] = None,
    rng: Optional[random.Random] = None,
) -> List[FriendProfile]:
    """Sample the friends-of-purchased-accounts population (Figs. 3-5)."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    config = config or FriendProfileModelConfig()
    rng = rng or random.Random(0)

    def lognormal_count(median: float, sigma: float) -> int:
        return int(round(rng.lognormvariate(math.log(median), sigma)))

    profiles = []
    for _ in range(count):
        degree = min(
            config.max_degree, max(1, lognormal_count(config.median_degree, config.degree_sigma))
        )
        if rng.random() < config.inactive_fraction:
            posts = photos = 0
        else:
            posts = lognormal_count(config.median_posts, config.posts_sigma)
            photos = lognormal_count(config.median_photos, config.photos_sigma)
        post_comments = sum(
            _poisson(rng, config.comments_per_item) for _ in range(posts)
        )
        post_likes = sum(
            _poisson(rng, config.likes_per_item) for _ in range(posts)
        )
        photo_comments = sum(
            _poisson(rng, config.comments_per_item) for _ in range(photos)
        )
        photo_likes = sum(
            _poisson(rng, config.likes_per_item) for _ in range(photos)
        )
        profiles.append(
            FriendProfile(
                degree=degree,
                posts=posts,
                post_comments=post_comments,
                post_likes=post_likes,
                photos=photos,
                photo_comments=photo_comments,
                photo_likes=photo_likes,
            )
        )
    return profiles


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler (means here are small)."""
    if mean <= 0:
        return 0
    limit = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count
