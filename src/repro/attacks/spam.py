"""Friend-spam and rejection simulation.

Implements the paper's workload (Section VI-A):

* each (spamming) fake account sends ``requests_per_fake`` friend
  requests to random legitimate users; a ``spam_rejection_rate`` fraction
  are rejected (→ directed rejection edges from the targets) and the rest
  accepted (→ attack friendship edges);
* a fraction of *careless* legitimate users (15% in the paper) each send
  one friend request into the fake region, which is accepted;
* legitimate-to-legitimate rejections: a user with ``d`` friends accepted
  at rate ``1 − r`` must have sent ``≈ d / (1 − r)`` requests, so he
  carries ``⌊d · r / (1 − r)⌉`` rejections, assigned to uniformly random
  non-friend legitimate origins — the paper's "simple function of the
  rejection rate and the number of his friends".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.graph import AugmentedSocialGraph
from .requests import RequestLog

__all__ = [
    "SpamStats",
    "send_friend_spam",
    "simulate_legitimate_rejections",
    "add_careless_requests",
]


@dataclass
class SpamStats:
    """Outcome counts of one spam wave."""

    requests: int = 0
    accepted: int = 0
    rejected: int = 0

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.requests if self.requests else 0.0


def _check_rate(rate: float, name: str) -> None:
    if not 0 <= rate <= 1:
        raise ValueError(f"{name} must be in [0, 1], got {rate}")


def _degree_weighted_sample(
    graph: AugmentedSocialGraph,
    targets: Sequence[int],
    count: int,
    rng: random.Random,
) -> List[int]:
    """``count`` distinct targets sampled ∝ (1 + friendship degree)."""
    weights = [1 + len(graph.friends[t]) for t in targets]
    chosen: List[int] = []
    chosen_set = set()
    # Rejection sampling over the cumulative weights; fine for the
    # sparse counts the workloads use.
    total = sum(weights)
    attempts = 0
    while len(chosen) < count and attempts < 200 * count:
        pick = rng.uniform(0, total)
        acc = 0.0
        for target, weight in zip(targets, weights):
            acc += weight
            if pick <= acc:
                if target not in chosen_set:
                    chosen_set.add(target)
                    chosen.append(target)
                break
        attempts += 1
    # Top up uniformly if the weighted draw stalled on duplicates.
    if len(chosen) < count:
        for target in rng.sample(list(targets), len(targets)):
            if target not in chosen_set:
                chosen.append(target)
                chosen_set.add(target)
                if len(chosen) == count:
                    break
    return chosen


def send_friend_spam(
    graph: AugmentedSocialGraph,
    senders: Sequence[int],
    targets: Sequence[int],
    requests_per_sender: int,
    rejection_rate: float,
    rng: Optional[random.Random] = None,
    log: Optional[RequestLog] = None,
    targeting: str = "random",
) -> SpamStats:
    """Simulate a friend-spam wave from ``senders`` into ``targets``.

    Each sender picks ``requests_per_sender`` distinct targets —
    uniformly (``targeting="random"``, the paper's workload) or biased
    toward popular users (``targeting="high_degree"``, degree-weighted:
    attackers farming well-connected victims). Each request is rejected
    with probability ``rejection_rate`` (adding the rejection edge
    ``⟨target, sender⟩``) and accepted otherwise (adding the attack
    friendship). Repeat sender/target pairs collapse per the graph's
    dedup rules, exactly as repeated real-world requests collapse in the
    model.
    """
    _check_rate(rejection_rate, "rejection_rate")
    if requests_per_sender < 0:
        raise ValueError(
            f"requests_per_sender must be >= 0, got {requests_per_sender}"
        )
    if requests_per_sender > len(targets):
        raise ValueError(
            f"requests_per_sender={requests_per_sender} exceeds the "
            f"{len(targets)} available targets"
        )
    if targeting not in ("random", "high_degree"):
        raise ValueError(f"unknown targeting {targeting!r}")
    rng = rng or random.Random(0)
    stats = SpamStats()
    target_list = list(targets)
    for sender in senders:
        if targeting == "high_degree":
            picked = _degree_weighted_sample(
                graph, target_list, requests_per_sender, rng
            )
        else:
            picked = rng.sample(target_list, requests_per_sender)
        for target in picked:
            if target == sender:
                continue
            stats.requests += 1
            accepted = rng.random() >= rejection_rate
            if accepted:
                graph.add_friendship(sender, target)
                stats.accepted += 1
            else:
                graph.add_rejection(target, sender)
                stats.rejected += 1
            if log is not None:
                log.record(sender, target, accepted)
    return stats


def simulate_legitimate_rejections(
    graph: AugmentedSocialGraph,
    legit: Sequence[int],
    rejection_rate: float,
    rng: Optional[random.Random] = None,
    log: Optional[RequestLog] = None,
) -> int:
    """Add legit-to-legit rejection edges implied by the rejection rate.

    For each legitimate user ``u`` with ``d`` friends, adds
    ``round(d · r / (1 − r))`` rejections of ``u``'s (implied) requests,
    cast by uniformly random non-friend legitimate users. Returns the
    number of rejection edges added.
    """
    _check_rate(rejection_rate, "rejection_rate")
    if rejection_rate >= 1.0:
        raise ValueError("rejection_rate must be < 1 for legitimate users")
    rng = rng or random.Random(0)
    added = 0
    legit_list = list(legit)
    if len(legit_list) < 2:
        return 0
    ratio = rejection_rate / (1.0 - rejection_rate)
    for u in legit_list:
        degree = len(graph.friends[u])
        expected = degree * ratio
        count = int(expected)
        if rng.random() < expected - count:
            count += 1
        friends = set(graph.friends[u])
        attempts = 0
        while count > 0 and attempts < 50 * count + 100:
            origin = legit_list[rng.randrange(len(legit_list))]
            attempts += 1
            if origin == u or origin in friends:
                continue
            if graph.add_rejection(origin, u):
                count -= 1
                added += 1
                if log is not None:
                    log.record(u, origin, False)
    return added


def add_careless_requests(
    graph: AugmentedSocialGraph,
    legit: Sequence[int],
    fakes: Sequence[int],
    fraction: float,
    rng: Optional[random.Random] = None,
    log: Optional[RequestLog] = None,
) -> List[int]:
    """Careless legitimate users befriending the fake region.

    A ``fraction`` of legitimate users each send exactly one friend
    request to a uniformly random fake account, which accepts it (the
    paper's stress-test: 15%). Returns the careless users' ids.
    """
    _check_rate(fraction, "fraction")
    rng = rng or random.Random(0)
    if not fakes:
        return []
    count = int(round(len(legit) * fraction))
    careless = rng.sample(list(legit), count)
    for user in careless:
        fake = fakes[rng.randrange(len(fakes))]
        graph.add_friendship(user, fake)
        if log is not None:
            log.record(user, fake, True)
    return careless
