"""Persistence for augmented graphs, request logs, and detection reports.

Formats are deliberately plain so they interoperate with shell tooling
and the SNAP ecosystem:

* **Augmented graph** — one line per edge: ``F u v`` for a friendship,
  ``R rejecter sender`` for a directed rejection, with ``#`` comments
  and a ``# nodes: N`` header preserving isolated nodes.
* **Request log** — CSV ``sender,target,accepted`` with a header row.
* **Detection report** — JSON with per-group members and cut statistics,
  the artifact an OSN operator would feed into enforcement.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .attacks.requests import RequestLog
from .core.csr import CSRGraph
from .core.graph import AugmentedSocialGraph
from .core.rejecto import RejectoResult

__all__ = [
    "FormatError",
    "save_augmented_graph",
    "load_augmented_graph",
    "save_request_log",
    "load_request_log",
    "save_detection_report",
    "load_detection_report",
]

_PathLike = Union[str, Path]


class FormatError(ValueError):
    """Raised on malformed persisted data.

    Parse failures carry ``path:lineno`` plus a truncated excerpt of the
    offending line, so a bad row in a multi-gigabyte log is findable
    without the error message itself becoming multi-gigabyte.
    """


#: Longest raw-line excerpt quoted in a parse error.
_EXCERPT_CHARS = 80


def _excerpt(line: str) -> str:
    """The offending line as a repr, truncated for the error message."""
    if len(line) > _EXCERPT_CHARS:
        return repr(line[:_EXCERPT_CHARS]) + f"… ({len(line)} chars)"
    return repr(line)


# ----------------------------------------------------------------------
# Augmented graph
# ----------------------------------------------------------------------
def save_augmented_graph(
    graph: Union[AugmentedSocialGraph, CSRGraph], path: _PathLike
) -> None:
    """Write a graph in the ``F``/``R`` edge-line format.

    Accepts a builder or a finalized :class:`CSRGraph`; both expose the
    same ``friendships()``/``rejections()`` iteration surface and the
    output is identical (edges are written sorted).
    """
    path = Path(path)
    with path.open("w") as handle:
        handle.write("# rejecto augmented graph v1\n")
        handle.write(f"# nodes: {graph.num_nodes}\n")
        for u, v in sorted(graph.friendships()):
            handle.write(f"F {u} {v}\n")
        for rejecter, sender in sorted(graph.rejections()):
            handle.write(f"R {rejecter} {sender}\n")


def load_augmented_graph(
    path: _PathLike, as_csr: bool = False
) -> Union[AugmentedSocialGraph, CSRGraph]:
    """Read a graph written by :func:`save_augmented_graph`.

    The ``# nodes:`` header is optional; without it the node count is
    inferred as ``max id + 1``. With ``as_csr=True`` the edges are packed
    straight into an immutable :class:`CSRGraph` (the form the detector
    runs on) without materializing the mutable builder.
    """
    path = Path(path)
    declared_nodes = None
    friendships = []
    rejections = []
    max_id = -1
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.lower().startswith("nodes:"):
                    try:
                        declared_nodes = int(body.split(":", 1)[1])
                    except ValueError as exc:
                        raise FormatError(
                            f"{path}:{lineno}: bad nodes header "
                            f"{_excerpt(line)}"
                        ) from exc
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in ("F", "R"):
                raise FormatError(
                    f"{path}:{lineno}: expected 'F u v' or 'R u v', got "
                    f"{_excerpt(line)}"
                )
            try:
                u, v = int(parts[1]), int(parts[2])
            except ValueError as exc:
                raise FormatError(
                    f"{path}:{lineno}: non-integer id in {_excerpt(line)}"
                ) from exc
            if u < 0 or v < 0:
                raise FormatError(
                    f"{path}:{lineno}: negative id in {_excerpt(line)}"
                )
            max_id = max(max_id, u, v)
            if parts[0] == "F":
                friendships.append((u, v))
            else:
                rejections.append((u, v))
    num_nodes = declared_nodes if declared_nodes is not None else max_id + 1
    if num_nodes < max_id + 1:
        raise FormatError(
            f"{path}: nodes header says {num_nodes} but ids reach {max_id}"
        )
    if as_csr:
        return CSRGraph.from_edges(num_nodes, friendships, rejections)
    return AugmentedSocialGraph.from_edges(num_nodes, friendships, rejections)


# ----------------------------------------------------------------------
# Request log
# ----------------------------------------------------------------------
def save_request_log(log: RequestLog, path: _PathLike) -> None:
    """Write a request log as ``sender,target,accepted`` CSV."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write("sender,target,accepted\n")
        for request in log:
            handle.write(
                f"{request.sender},{request.target},{int(request.accepted)}\n"
            )


def load_request_log(path: _PathLike) -> RequestLog:
    """Read a request log written by :func:`save_request_log`."""
    path = Path(path)
    log = RequestLog()
    with path.open() as handle:
        header = handle.readline().strip()
        if header != "sender,target,accepted":
            raise FormatError(f"{path}:1: unexpected header {_excerpt(header)}")
        for lineno, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            parts = line.split(",")
            if len(parts) != 3:
                raise FormatError(
                    f"{path}:{lineno}: expected 3 fields, got {_excerpt(line)}"
                )
            try:
                sender, target, accepted = int(parts[0]), int(parts[1]), int(parts[2])
            except ValueError as exc:
                raise FormatError(
                    f"{path}:{lineno}: non-integer field in {_excerpt(line)}"
                ) from exc
            if accepted not in (0, 1):
                raise FormatError(f"{path}:{lineno}: accepted must be 0/1, got {accepted}")
            log.record(sender, target, bool(accepted))
    return log


# ----------------------------------------------------------------------
# Detection report
# ----------------------------------------------------------------------
def save_detection_report(result: RejectoResult, path: _PathLike) -> None:
    """Write a detection outcome as JSON."""
    payload = {
        "version": 1,
        "termination": result.termination,
        "rounds_run": result.rounds_run,
        "total_detected": result.total_detected,
        "groups": [
            {
                "round": group.round_index,
                "acceptance_rate": group.acceptance_rate,
                "friends_to_rejections_ratio": group.ratio,
                "f_cross": group.f_cross,
                "r_cross": group.r_cross,
                "k": group.k,
                "members": group.members,
            }
            for group in result.groups
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_detection_report(path: _PathLike) -> dict:
    """Read a JSON detection report (returned as a plain dict)."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise FormatError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "groups" not in payload:
        raise FormatError(f"{path}: not a detection report")
    return payload
