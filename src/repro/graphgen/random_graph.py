"""Erdős-Rényi random graphs.

A structureless control generator: no clustering, no hubs, no
communities. Useful for sensitivity studies that ask how much of a
result depends on social-graph structure at all (none of the paper's
datasets are ER, which is itself informative when a result replicates
on ER too).
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.graph import AugmentedSocialGraph

__all__ = ["erdos_renyi"]


def erdos_renyi(
    num_nodes: int,
    mean_degree: float,
    rng: Optional[random.Random] = None,
) -> AugmentedSocialGraph:
    """G(n, M)-style random friendship graph with the given mean degree.

    Exactly ``round(num_nodes * mean_degree / 2)`` distinct edges are
    placed uniformly at random (a fixed edge count keeps experiment
    workloads comparable across seeds).
    """
    if num_nodes < 2:
        raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
    if mean_degree <= 0:
        raise ValueError(f"mean_degree must be positive, got {mean_degree}")
    target_edges = int(round(num_nodes * mean_degree / 2))
    max_edges = num_nodes * (num_nodes - 1) // 2
    if target_edges > max_edges:
        raise ValueError(
            f"mean degree {mean_degree} needs {target_edges} edges; the "
            f"complete graph has only {max_edges}"
        )
    rng = rng or random.Random(0)
    graph = AugmentedSocialGraph(num_nodes)
    while graph.num_friendships < target_edges:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u != v:
            graph.add_friendship(u, v)
    return graph
