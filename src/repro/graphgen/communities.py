"""Community-structured social graphs.

Real OSN samples — like the paper's forest-fire Facebook sample — have
pronounced community structure: dense clusters joined by sparse bridges,
which makes trust propagation mix slowly. The expander-like single-block
generators can't reproduce that, and some experiments depend on it
(SybilRank's ranking quality in Figure 16 hinges on slow mixing within
the legitimate region).

:func:`community_graph` composes per-community Holme-Kim graphs with a
sparse ring of random bridges, giving controllable community count and
inter-community conductance.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.graph import AugmentedSocialGraph
from .powerlaw_cluster import powerlaw_cluster

__all__ = ["community_graph", "community_graph_with_labels"]


def community_graph(
    num_nodes: int,
    num_communities: int,
    m: float,
    triad_prob: float,
    bridges_per_community: int = 3,
    rng: Optional[random.Random] = None,
) -> AugmentedSocialGraph:
    """Like :func:`community_graph_with_labels`, without the labels."""
    graph, _ = community_graph_with_labels(
        num_nodes, num_communities, m, triad_prob, bridges_per_community, rng
    )
    return graph


def community_graph_with_labels(
    num_nodes: int,
    num_communities: int,
    m: float,
    triad_prob: float,
    bridges_per_community: int = 3,
    rng: Optional[random.Random] = None,
):
    """Generate a friendship graph of sparsely bridged communities.

    Parameters
    ----------
    num_nodes:
        Total nodes, split as evenly as possible across communities.
    num_communities:
        Number of dense blocks (at least 1).
    m, triad_prob:
        Holme-Kim parameters of each block (see
        :func:`repro.graphgen.powerlaw_cluster.powerlaw_cluster`).
    bridges_per_community:
        Random edges from each community to the next one around a ring —
        the graph stays connected while inter-community conductance
        remains low.

    Returns
    -------
    (graph, labels)
        ``labels[u]`` is the community index of node ``u`` — used e.g.
        for SybilRank's community-based seed selection [15], which the
        paper recommends for seed coverage (Section IV-F).
    """
    if num_communities < 1:
        raise ValueError(f"num_communities must be >= 1, got {num_communities}")
    if bridges_per_community < 1 and num_communities > 1:
        raise ValueError("bridges_per_community must be >= 1 to stay connected")
    rng = rng or random.Random(0)
    base = num_nodes // num_communities
    if base < m + 2:
        raise ValueError(
            f"{num_nodes} nodes over {num_communities} communities leaves "
            f"blocks of {base}, too small for m={m}"
        )
    sizes = [base] * num_communities
    sizes[0] += num_nodes - sum(sizes)

    graph = AugmentedSocialGraph(0)
    offsets = []
    labels = []
    for community, size in enumerate(sizes):
        block = powerlaw_cluster(size, m, triad_prob, rng)
        offsets.append(graph.num_nodes)
        labels.extend([community] * size)
        graph = graph.merged_with(block)

    if num_communities > 1:
        for i in range(num_communities):
            j = (i + 1) % num_communities
            for _ in range(bridges_per_community):
                a = offsets[i] + rng.randrange(sizes[i])
                b = offsets[j] + rng.randrange(sizes[j])
                if a != b:
                    graph.add_friendship(a, b)
    return graph, labels
