"""The Table I dataset catalog.

The paper simulates friend spam on seven social graphs (Table I): a
Facebook forest-fire sample, five public SNAP datasets, and a synthetic
Barabási-Albert graph. The SNAP files and the Facebook crawl are not
redistributable/reachable offline, so each dataset is represented by a
*structural stand-in*: a generated graph matched to the row's node count
and edge density, with the generator's clustering knob calibrated toward
the reported clustering coefficient (see DESIGN.md, substitution 1).

Calibration notes (measured at full scale, seed 1):

* Holme-Kim triad probabilities hit the reported clustering within a few
  points for every dataset except ``ca-AstroPh``, whose 0.3158 target
  exceeds what the model can produce at average degree 21 (we cap at
  ``p=1.0`` → ≈0.17).
* Generated diameters (6–9) are smaller than the reported ones (13–18):
  preferential-attachment graphs are more compact than real social
  graphs. Neither quantity enters Rejecto's objective.

Real SNAP files can replace any stand-in via
:func:`repro.graphgen.loaders.load_snap_edgelist`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.csr import CSRGraph
from ..core.graph import AugmentedSocialGraph
from .ba import barabasi_albert
from .powerlaw_cluster import powerlaw_cluster

__all__ = [
    "DatasetSpec",
    "CATALOG",
    "dataset_names",
    "generate_dataset",
    "dataset_csr",
]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table I row and the recipe for its structural stand-in."""

    name: str
    paper_nodes: int
    paper_edges: int
    paper_clustering: float
    paper_diameter: int
    generator: str  # "powerlaw_cluster" or "barabasi_albert"
    m: float
    triad_prob: float = 0.0

    def build(
        self, scale: float = 1.0, rng: Optional[random.Random] = None
    ) -> AugmentedSocialGraph:
        """Generate the stand-in graph at the given node-count scale."""
        if not 0 < scale <= 1:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        rng = rng or random.Random(1)
        nodes = max(int(self.paper_nodes * scale), int(self.m) + 2, 50)
        if self.generator == "powerlaw_cluster":
            return powerlaw_cluster(nodes, self.m, self.triad_prob, rng)
        if self.generator == "barabasi_albert":
            return barabasi_albert(nodes, int(round(self.m)), rng)
        raise ValueError(f"unknown generator {self.generator!r}")


#: Table I rows, in the paper's order. ``m`` is the paper's edge/node
#: ratio; ``triad_prob`` is calibrated to the reported clustering.
CATALOG: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="facebook",
            paper_nodes=10_000,
            paper_edges=40_013,
            paper_clustering=0.2332,
            paper_diameter=17,
            generator="powerlaw_cluster",
            m=4.0,
            triad_prob=0.68,
        ),
        DatasetSpec(
            name="ca-HepTh",
            paper_nodes=9_877,
            paper_edges=25_985,
            paper_clustering=0.2734,
            paper_diameter=18,
            generator="powerlaw_cluster",
            m=2.63,
            triad_prob=0.55,
        ),
        DatasetSpec(
            name="ca-AstroPh",
            paper_nodes=18_772,
            paper_edges=198_080,
            paper_clustering=0.3158,
            paper_diameter=14,
            generator="powerlaw_cluster",
            m=10.55,
            triad_prob=1.0,
        ),
        DatasetSpec(
            name="email-Enron",
            paper_nodes=33_696,
            paper_edges=180_811,
            paper_clustering=0.0848,
            paper_diameter=13,
            generator="powerlaw_cluster",
            m=5.37,
            triad_prob=0.30,
        ),
        DatasetSpec(
            name="soc-Epinions",
            paper_nodes=75_877,
            paper_edges=405_739,
            paper_clustering=0.0655,
            paper_diameter=15,
            generator="powerlaw_cluster",
            m=5.35,
            triad_prob=0.17,
        ),
        DatasetSpec(
            name="soc-Slashdot",
            paper_nodes=82_168,
            paper_edges=504_230,
            paper_clustering=0.0240,
            paper_diameter=13,
            generator="powerlaw_cluster",
            m=6.14,
            triad_prob=0.02,
        ),
        DatasetSpec(
            name="synthetic",
            paper_nodes=10_000,
            paper_edges=39_399,
            paper_clustering=0.0018,
            paper_diameter=7,
            generator="barabasi_albert",
            m=4.0,
        ),
    ]
}


def dataset_names() -> List[str]:
    """Catalog names in the paper's Table I order."""
    return list(CATALOG)


def generate_dataset(
    name: str, scale: float = 1.0, seed: int = 1
) -> AugmentedSocialGraph:
    """Generate the stand-in for a Table I dataset.

    Parameters
    ----------
    name:
        A catalog name (see :func:`dataset_names`).
    scale:
        Node-count scale in ``(0, 1]``; experiments default to reduced
        scales so a laptop regenerates every figure in minutes.
    seed:
        Generator seed (each seed yields a different sample).
    """
    try:
        spec = CATALOG[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        ) from None
    return spec.build(scale=scale, rng=random.Random(seed))


def dataset_csr(
    name: str,
    scale: float = 1.0,
    seed: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> CSRGraph:
    """The finalized CSR form of a Table I stand-in, packed once.

    Generation is deterministic in ``(name, scale, seed)``, so the
    snapshot cache is keyed by exactly those parameters — no content
    hash needed. With ``cache_dir=None`` the graph is generated fresh
    each call (the old behaviour); with a directory, the first call
    packs the generated CSR into ``<name>-s<scale>-seed<seed>.csrbin``
    there and every later call memory-maps it, which is what turns the
    cold start of the large-graph benchmarks into a millisecond open.
    """
    if cache_dir is None:
        return generate_dataset(name, scale=scale, seed=seed).csr()
    cache_dir = Path(cache_dir)
    cached = cache_dir / f"{name}-s{scale!r}-seed{seed}.csrbin"
    if cached.exists():
        return CSRGraph.open(cached)
    csr = generate_dataset(name, scale=scale, seed=seed).csr()
    cache_dir.mkdir(parents=True, exist_ok=True)
    csr.save(cached)
    csr.snapshot_path = str(cached.resolve())
    return csr
