"""Barabási-Albert preferential attachment.

The paper's synthetic dataset (Table I) is a 10,000-node scale-free graph
generated with the BA model [14] (39,399 edges, i.e. ``m ≈ 4``). The
implementation uses the classic repeated-endpoints trick: sampling a
uniform element of the running edge-endpoint list is exactly
degree-proportional sampling, giving ``O(|E|)`` generation.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.graph import AugmentedSocialGraph

__all__ = ["barabasi_albert"]


def barabasi_albert(
    num_nodes: int,
    m: int,
    rng: Optional[random.Random] = None,
) -> AugmentedSocialGraph:
    """Generate a BA scale-free friendship graph.

    Parameters
    ----------
    num_nodes:
        Total number of nodes; must be at least ``m + 1``.
    m:
        Edges attached from each new node to existing nodes.
    rng:
        Source of randomness (a fresh ``Random(0)`` when omitted).

    Returns
    -------
    AugmentedSocialGraph
        A friendship-only graph with roughly ``m · (num_nodes − m)`` edges.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if num_nodes < m + 1:
        raise ValueError(f"num_nodes must exceed m={m}, got {num_nodes}")
    rng = rng or random.Random(0)
    graph = AugmentedSocialGraph(num_nodes)

    # Seed: a star over the first m+1 nodes so every node has degree >= 1.
    endpoints = []
    for v in range(1, m + 1):
        graph.add_friendship(0, v)
        endpoints.extend((0, v))

    for new in range(m + 1, num_nodes):
        targets = set()
        while len(targets) < m:
            targets.add(endpoints[rng.randrange(len(endpoints))])
        for t in targets:
            graph.add_friendship(new, t)
            endpoints.extend((new, t))
    return graph
