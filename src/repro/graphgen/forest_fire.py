"""Forest-fire graph generation and sampling.

The paper's Facebook dataset is "a sample graph we obtained on Facebook
via the *forest fire* sampling method [28]" (Leskovec & Faloutsos, KDD
2006). Two tools are provided:

* :func:`forest_fire_graph` — the forest-fire *generative* model
  (Leskovec et al.): each arriving node picks an ambassador and
  recursively "burns" across its neighbourhood with geometrically
  distributed fan-out; burned nodes become friends. Produces heavy-tailed
  degrees and high clustering, the stand-in for the Facebook sample.
* :func:`forest_fire_sample` — forest-fire *sampling* of an existing
  graph, for carving laptop-sized subgraphs out of larger ones while
  roughly preserving their structure.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Optional

from ..core.graph import AugmentedSocialGraph

__all__ = ["forest_fire_graph", "forest_fire_sample"]


def _geometric_fanout(rng: random.Random, p: float, cap: int) -> int:
    """Number of neighbours to burn: geometric with mean ``p / (1 - p)``."""
    count = 0
    while count < cap and rng.random() < p:
        count += 1
    return count


def forest_fire_graph(
    num_nodes: int,
    forward_prob: float,
    rng: Optional[random.Random] = None,
    max_burn: int = 500,
) -> AugmentedSocialGraph:
    """Generate a friendship graph with the forest-fire model.

    Parameters
    ----------
    num_nodes:
        Total number of nodes.
    forward_prob:
        Forward burning probability; higher values densify the graph
        (mean fan-out per burned node is ``p / (1 − p)``).
    max_burn:
        Safety cap on the number of nodes burned per arrival.
    """
    if not 0 <= forward_prob < 1:
        raise ValueError(f"forward_prob must be in [0, 1), got {forward_prob}")
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    rng = rng or random.Random(0)
    graph = AugmentedSocialGraph(num_nodes)
    for new in range(1, num_nodes):
        ambassador = rng.randrange(new)
        burned = {new, ambassador}
        queue = deque([ambassador])
        graph.add_friendship(new, ambassador)
        while queue and len(burned) < max_burn:
            current = queue.popleft()
            unburned = [v for v in graph.friends[current] if v not in burned]
            rng.shuffle(unburned)
            fanout = _geometric_fanout(rng, forward_prob, len(unburned))
            for v in unburned[:fanout]:
                burned.add(v)
                graph.add_friendship(new, v)
                queue.append(v)
    return graph


def forest_fire_sample(
    graph: AugmentedSocialGraph,
    target_nodes: int,
    forward_prob: float = 0.7,
    rng: Optional[random.Random] = None,
) -> AugmentedSocialGraph:
    """Forest-fire sample of an existing friendship graph.

    Repeatedly ignites fires at random seed nodes and burns across
    friendship edges until ``target_nodes`` distinct nodes are collected,
    then returns the induced subgraph (ids remapped densely).
    """
    if target_nodes < 1:
        raise ValueError(f"target_nodes must be >= 1, got {target_nodes}")
    if target_nodes > graph.num_nodes:
        raise ValueError(
            f"target_nodes={target_nodes} exceeds graph size {graph.num_nodes}"
        )
    rng = rng or random.Random(0)
    collected = set()
    while len(collected) < target_nodes:
        seed = rng.randrange(graph.num_nodes)
        queue = deque([seed])
        collected.add(seed)
        while queue and len(collected) < target_nodes:
            current = queue.popleft()
            unvisited = [v for v in graph.friends[current] if v not in collected]
            rng.shuffle(unvisited)
            fanout = _geometric_fanout(rng, forward_prob, len(unvisited))
            for v in unvisited[:fanout]:
                collected.add(v)
                queue.append(v)
                if len(collected) >= target_nodes:
                    break
    sampled, _ = graph.subgraph(sorted(collected))
    return sampled
