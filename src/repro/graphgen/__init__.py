"""Social-graph substrates: generators, loaders, datasets, statistics.

Provides everything the evaluation needs in place of the paper's crawled
and downloaded graphs: Barabási-Albert, Holme-Kim powerlaw-cluster,
Watts-Strogatz, and forest-fire generators; forest-fire sampling; SNAP
edge-list I/O; the Table I dataset catalog of structural stand-ins; and
the graph statistics Table I reports.
"""

from .ba import barabasi_albert
from .communities import community_graph
from .datasets import CATALOG, DatasetSpec, dataset_names, generate_dataset
from .forest_fire import forest_fire_graph, forest_fire_sample
from .loaders import LoaderError, load_snap_edgelist, save_snap_edgelist
from .powerlaw_cluster import powerlaw_cluster
from .random_graph import erdos_renyi
from .smallworld import watts_strogatz
from .stats import (
    GraphStats,
    approximate_diameter,
    average_clustering,
    connected_components,
    degree_histogram,
    graph_stats,
    largest_component,
)

__all__ = [
    "barabasi_albert",
    "community_graph",
    "erdos_renyi",
    "powerlaw_cluster",
    "watts_strogatz",
    "forest_fire_graph",
    "forest_fire_sample",
    "load_snap_edgelist",
    "save_snap_edgelist",
    "LoaderError",
    "CATALOG",
    "DatasetSpec",
    "dataset_names",
    "generate_dataset",
    "GraphStats",
    "graph_stats",
    "average_clustering",
    "approximate_diameter",
    "connected_components",
    "largest_component",
    "degree_histogram",
]
