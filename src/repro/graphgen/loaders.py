"""SNAP-format edge-list I/O.

The paper evaluates on five public SNAP datasets [5]. This reproduction
runs offline, so the dataset catalog generates structural stand-ins —
but these loaders let real SNAP files drop in unchanged: the standard
format is one whitespace-separated edge per line with ``#`` comments,
arbitrary (possibly sparse) integer node ids, and optionally directed
duplicates, all of which are normalized here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from ..core.csr import CSRGraph
from ..core.graph import AugmentedSocialGraph

__all__ = ["load_snap_edgelist", "save_snap_edgelist", "LoaderError"]


class LoaderError(ValueError):
    """Raised on malformed edge-list input."""


def load_snap_edgelist(
    path: Union[str, Path], remap: bool = True, as_csr: bool = False
) -> Union[AugmentedSocialGraph, CSRGraph]:
    """Load a SNAP edge list as an undirected friendship graph.

    With ``remap=True`` (default), node ids are remapped to the dense
    range ``0..n-1`` in first-seen order — SNAP files routinely have
    sparse ids. With ``remap=False`` ids are kept verbatim (they must be
    non-negative; the graph gets ``max_id + 1`` nodes). In both modes
    duplicate and reverse-duplicate edges collapse and self-loops are
    dropped (several SNAP datasets contain them). With ``as_csr=True``
    the edges are packed straight into an immutable
    :class:`~repro.core.csr.CSRGraph` — the right choice when the graph
    goes directly into the detector and will not be mutated.
    """
    path = Path(path)
    id_map: Dict[int, int] = {}
    edges = []
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise LoaderError(f"{path}:{lineno}: expected two ids, got {line!r}")
            try:
                raw_u, raw_v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise LoaderError(f"{path}:{lineno}: non-integer id in {line!r}") from exc
            if raw_u == raw_v:
                continue
            if remap:
                for raw in (raw_u, raw_v):
                    if raw not in id_map:
                        id_map[raw] = len(id_map)
                edges.append((id_map[raw_u], id_map[raw_v]))
            else:
                if raw_u < 0 or raw_v < 0:
                    raise LoaderError(
                        f"{path}:{lineno}: negative id with remap=False"
                    )
                edges.append((raw_u, raw_v))
    if remap:
        num_nodes = len(id_map)
    else:
        num_nodes = 1 + max((max(u, v) for u, v in edges), default=-1)
    if as_csr:
        return CSRGraph.from_edges(num_nodes, friendships=edges)
    graph = AugmentedSocialGraph(num_nodes)
    for u, v in edges:
        graph.add_friendship(u, v)
    return graph


def save_snap_edgelist(
    graph: Union[AugmentedSocialGraph, CSRGraph], path: Union[str, Path]
) -> None:
    """Write the friendship edges of ``graph`` in SNAP format."""
    path = Path(path)
    with path.open("w") as handle:
        handle.write(f"# Nodes: {graph.num_nodes} Edges: {graph.num_friendships}\n")
        for u, v in sorted(graph.friendships()):
            handle.write(f"{u}\t{v}\n")
