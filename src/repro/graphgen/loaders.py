"""SNAP-format edge-list I/O.

The paper evaluates on five public SNAP datasets [5]. This reproduction
runs offline, so the dataset catalog generates structural stand-ins —
but these loaders let real SNAP files drop in unchanged: the standard
format is one whitespace-separated edge per line with ``#`` comments,
arbitrary (possibly sparse) integer node ids, and optionally directed
duplicates, all of which are normalized here. ``.gz`` paths are handled
transparently (SNAP distributes the soc-* datasets gzipped).

Parsing a large edge list is pure overhead on every run after the
first, so :func:`load_snap_edgelist` carries a *pack-once cache*: with
``cache=True`` (requires ``as_csr=True``) the parsed graph is saved as
a binary snapshot (:mod:`repro.core.storage`) keyed by the source
file's content hash, and subsequent loads memory-map the snapshot
instead of re-parsing — millisecond opens, shared read-only pages, and
a ``snapshot_path`` that lets the cluster engine ship shard references.
"""

from __future__ import annotations

import gzip
import hashlib
from pathlib import Path
from typing import Dict, Optional, Union

from ..core.csr import CSRGraph
from ..core.graph import AugmentedSocialGraph

__all__ = [
    "load_snap_edgelist",
    "save_snap_edgelist",
    "pack_edgelist",
    "edgelist_cache_path",
    "LoaderError",
]


class LoaderError(ValueError):
    """Raised on malformed edge-list input."""


def _open_text(path: Path, mode: str = "rt"):
    """Open an edge list for text I/O, gunzipping ``.gz`` paths."""
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return path.open(mode.rstrip("t") or "r")


def _content_hash(path: Path) -> str:
    """SHA-256 of the raw file bytes (the compressed bytes for ``.gz`` —
    recompression would change the key, re-parsing stays correct)."""
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def edgelist_cache_path(
    path: Union[str, Path],
    remap: bool = True,
    cache_dir: Optional[Union[str, Path]] = None,
) -> Path:
    """Where the pack-once cache stores the snapshot for ``path``.

    The name carries a 12-hex-digit prefix of the source file's content
    hash plus the remap flag, so an edited edge list (or a different
    normalization) never aliases a stale snapshot. Default directory is
    ``.csrbin/`` next to the source file.
    """
    path = Path(path)
    base = Path(cache_dir) if cache_dir is not None else path.parent / ".csrbin"
    digest = _content_hash(path)[:12]
    stem = path.name.removesuffix(".gz").removesuffix(".txt")
    flag = "remap" if remap else "raw"
    return base / f"{stem}-{flag}-{digest}.csrbin"


def load_snap_edgelist(
    path: Union[str, Path],
    remap: bool = True,
    as_csr: bool = False,
    cache: bool = False,
    cache_dir: Optional[Union[str, Path]] = None,
) -> Union[AugmentedSocialGraph, CSRGraph]:
    """Load a SNAP edge list as an undirected friendship graph.

    With ``remap=True`` (default), node ids are remapped to the dense
    range ``0..n-1`` in first-seen order — SNAP files routinely have
    sparse ids. With ``remap=False`` ids are kept verbatim (they must be
    non-negative; the graph gets ``max_id + 1`` nodes). In both modes
    duplicate and reverse-duplicate edges collapse and self-loops are
    dropped (several SNAP datasets contain them). With ``as_csr=True``
    the edges are packed straight into an immutable
    :class:`~repro.core.csr.CSRGraph` — the right choice when the graph
    goes directly into the detector and will not be mutated.

    ``.gz`` paths are decompressed on the fly.

    With ``cache=True`` (requires ``as_csr=True``) the parsed CSR is
    packed once into a content-hash-keyed binary snapshot and every
    subsequent load memory-maps it instead of re-parsing; pass
    ``cache_dir`` to redirect the snapshot directory.
    """
    path = Path(path)
    if cache:
        if not as_csr:
            raise ValueError("cache=True requires as_csr=True")
        cached = edgelist_cache_path(path, remap=remap, cache_dir=cache_dir)
        if cached.exists():
            return CSRGraph.open(cached)
    id_map: Dict[int, int] = {}
    edges = []
    with _open_text(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise LoaderError(f"{path}:{lineno}: expected two ids, got {line!r}")
            try:
                raw_u, raw_v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise LoaderError(f"{path}:{lineno}: non-integer id in {line!r}") from exc
            if raw_u == raw_v:
                continue
            if remap:
                for raw in (raw_u, raw_v):
                    if raw not in id_map:
                        id_map[raw] = len(id_map)
                edges.append((id_map[raw_u], id_map[raw_v]))
            else:
                if raw_u < 0 or raw_v < 0:
                    raise LoaderError(
                        f"{path}:{lineno}: negative id with remap=False"
                    )
                edges.append((raw_u, raw_v))
    if remap:
        num_nodes = len(id_map)
    else:
        num_nodes = 1 + max((max(u, v) for u, v in edges), default=-1)
    if as_csr:
        csr = CSRGraph.from_edges(num_nodes, friendships=edges)
        if cache:
            cached.parent.mkdir(parents=True, exist_ok=True)
            csr.save(cached)
            csr.snapshot_path = str(cached.resolve())
        return csr
    graph = AugmentedSocialGraph(num_nodes)
    for u, v in edges:
        graph.add_friendship(u, v)
    return graph


def pack_edgelist(
    path: Union[str, Path],
    out: Optional[Union[str, Path]] = None,
    remap: bool = True,
) -> Path:
    """Pack an edge list into a binary snapshot and return its path.

    With ``out=None`` the snapshot lands in the pack-once cache
    location, so a later ``load_snap_edgelist(..., cache=True)`` reuses
    it without re-parsing. This is ``rejecto graph pack`` behind the
    CLI.
    """
    path = Path(path)
    if out is None:
        out = edgelist_cache_path(path, remap=remap)
        if out.exists():
            return out
    out = Path(out)
    csr = load_snap_edgelist(path, remap=remap, as_csr=True)
    out.parent.mkdir(parents=True, exist_ok=True)
    csr.save(out)
    return out


def save_snap_edgelist(
    graph: Union[AugmentedSocialGraph, CSRGraph], path: Union[str, Path]
) -> None:
    """Write the friendship edges of ``graph`` in SNAP format (gzipped
    when ``path`` ends in ``.gz``)."""
    path = Path(path)
    with _open_text(path, "wt") as handle:
        handle.write(f"# Nodes: {graph.num_nodes} Edges: {graph.num_friendships}\n")
        for u, v in sorted(graph.friendships()):
            handle.write(f"{u}\t{v}\n")
