"""Graph statistics for the Table I dataset summary.

The paper reports, per dataset: node count, edge count, (average local)
clustering coefficient, and diameter. Exact diameters of 80K-node graphs
are expensive, so an iterated double-sweep BFS lower bound is used — the
standard approximation, exact on trees and within one or two hops on
social graphs — and reported as such in EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.graph import AugmentedSocialGraph

__all__ = [
    "GraphStats",
    "average_clustering",
    "approximate_diameter",
    "connected_components",
    "largest_component",
    "degree_histogram",
    "graph_stats",
]


def average_clustering(
    graph: AugmentedSocialGraph,
    sample: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> float:
    """Average local clustering coefficient of the friendship graph.

    ``sample`` bounds the number of nodes examined (uniformly sampled),
    turning the exact ``O(Σ deg²)`` computation into an estimate for
    large graphs.
    """
    n = graph.num_nodes
    if n == 0:
        return 0.0
    nodes: List[int] = list(range(n))
    if sample is not None and sample < n:
        rng = rng or random.Random(0)
        nodes = rng.sample(nodes, sample)
    total = 0.0
    for u in nodes:
        neighbours = graph.friends[u]
        degree = len(neighbours)
        if degree < 2:
            continue
        neighbour_set = set(neighbours)
        links = 0
        for v in neighbours:
            # Count each triangle edge once by scanning the smaller side.
            for w in graph.friends[v]:
                if w in neighbour_set and w > v:
                    links += 1
        total += 2.0 * links / (degree * (degree - 1))
    return total / len(nodes)


def _bfs_eccentricity(
    graph: AugmentedSocialGraph, source: int
) -> Tuple[int, int]:
    """(eccentricity within source's component, farthest node)."""
    dist = {source: 0}
    queue = deque([source])
    far_node, far_dist = source, 0
    while queue:
        u = queue.popleft()
        for v in graph.friends[u]:
            if v not in dist:
                dist[v] = dist[u] + 1
                if dist[v] > far_dist:
                    far_dist, far_node = dist[v], v
                queue.append(v)
    return far_dist, far_node


def approximate_diameter(
    graph: AugmentedSocialGraph,
    sweeps: int = 4,
    rng: Optional[random.Random] = None,
) -> int:
    """Double-sweep BFS lower bound on the diameter.

    Runs ``sweeps`` rounds: each starts a BFS at the farthest node found
    by the previous round (the first at a random node of the largest
    component) and keeps the largest eccentricity observed. The result
    never exceeds the true diameter of the largest component.
    """
    if graph.num_nodes == 0:
        return 0
    rng = rng or random.Random(0)
    component = largest_component(graph)
    source = component[rng.randrange(len(component))]
    best = 0
    for _ in range(max(1, sweeps)):
        ecc, far_node = _bfs_eccentricity(graph, source)
        if ecc > best:
            best = ecc
        source = far_node
    return best


def connected_components(graph: AugmentedSocialGraph) -> List[List[int]]:
    """Connected components of the friendship graph, largest first."""
    seen = [False] * graph.num_nodes
    components: List[List[int]] = []
    for start in range(graph.num_nodes):
        if seen[start]:
            continue
        seen[start] = True
        component = [start]
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.friends[u]:
                if not seen[v]:
                    seen[v] = True
                    component.append(v)
                    queue.append(v)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def largest_component(graph: AugmentedSocialGraph) -> List[int]:
    """Nodes of the largest friendship component (empty graph -> [])."""
    components = connected_components(graph)
    return components[0] if components else []


def degree_histogram(graph: AugmentedSocialGraph) -> List[int]:
    """``hist[d]`` = number of nodes with friendship degree ``d``."""
    if graph.num_nodes == 0:
        return []
    degrees = [len(adj) for adj in graph.friends]
    hist = [0] * (max(degrees) + 1)
    for d in degrees:
        hist[d] += 1
    return hist


@dataclass
class GraphStats:
    """The Table I row for one dataset."""

    nodes: int
    edges: int
    clustering: float
    diameter: int


def graph_stats(
    graph: AugmentedSocialGraph,
    clustering_sample: Optional[int] = 4000,
    diameter_sweeps: int = 4,
) -> GraphStats:
    """Compute the Table I statistics of a friendship graph."""
    return GraphStats(
        nodes=graph.num_nodes,
        edges=graph.num_friendships,
        clustering=average_clustering(graph, sample=clustering_sample),
        diameter=approximate_diameter(graph, sweeps=diameter_sweeps),
    )
