"""Watts-Strogatz small-world model.

Provided as an additional substrate generator: a ring lattice with
rewired edges gives very high clustering with short paths, useful for
stress-testing Rejecto on graph structure unlike the scale-free models
(and for sensitivity studies beyond the paper's datasets).
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.graph import AugmentedSocialGraph

__all__ = ["watts_strogatz"]


def watts_strogatz(
    num_nodes: int,
    k: int,
    rewire_prob: float,
    rng: Optional[random.Random] = None,
) -> AugmentedSocialGraph:
    """Generate a Watts-Strogatz small-world friendship graph.

    Parameters
    ----------
    num_nodes:
        Ring size.
    k:
        Each node connects to its ``k`` nearest ring neighbours
        (``k`` must be even and smaller than ``num_nodes``).
    rewire_prob:
        Probability of rewiring each lattice edge to a uniform endpoint.
    """
    if k % 2 != 0 or k < 2:
        raise ValueError(f"k must be a positive even integer, got {k}")
    if k >= num_nodes:
        raise ValueError(f"k={k} must be smaller than num_nodes={num_nodes}")
    if not 0 <= rewire_prob <= 1:
        raise ValueError(f"rewire_prob must be in [0, 1], got {rewire_prob}")
    rng = rng or random.Random(0)
    graph = AugmentedSocialGraph(num_nodes)
    half = k // 2
    for u in range(num_nodes):
        for offset in range(1, half + 1):
            v = (u + offset) % num_nodes
            if rng.random() < rewire_prob:
                # Rewire: pick a uniform non-self, non-duplicate endpoint.
                for _ in range(32):
                    w = rng.randrange(num_nodes)
                    if w != u and not graph.has_friendship(u, w):
                        graph.add_friendship(u, w)
                        break
                else:
                    graph.add_friendship(u, v)
            else:
                graph.add_friendship(u, v)
    return graph
