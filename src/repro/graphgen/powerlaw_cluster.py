"""Holme-Kim powerlaw-cluster model.

Extends Barabási-Albert with a *triad formation* step: after each
preferential attachment, with probability ``triad_prob`` the next edge
closes a triangle with a neighbour of the previously chosen target
instead of attaching preferentially. The result keeps the scale-free
degree distribution while tuning the clustering coefficient — which is
how the dataset catalog (:mod:`repro.graphgen.datasets`) approximates the
clustering of the paper's real social graphs (Table I).

A fractional ``m`` is supported (each new node brings ``floor(m)`` or
``ceil(m)`` edges with the matching probability) so a target edge count
``|E| ≈ m · |V|`` can be hit even when the paper's ratio is not integral.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..core.graph import AugmentedSocialGraph

__all__ = ["powerlaw_cluster"]


def powerlaw_cluster(
    num_nodes: int,
    m: float,
    triad_prob: float,
    rng: Optional[random.Random] = None,
) -> AugmentedSocialGraph:
    """Generate a Holme-Kim powerlaw-cluster friendship graph.

    Parameters
    ----------
    num_nodes:
        Total number of nodes.
    m:
        Average number of edges each new node brings (may be fractional,
        at least 1).
    triad_prob:
        Probability, for each edge beyond a node's first, of closing a
        triangle instead of attaching preferentially. Higher values give
        higher clustering.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if not 0 <= triad_prob <= 1:
        raise ValueError(f"triad_prob must be in [0, 1], got {triad_prob}")
    m_low = math.floor(m)
    m_high = math.ceil(m)
    frac_high = m - m_low
    if num_nodes < m_high + 1:
        raise ValueError(f"num_nodes must exceed m={m}, got {num_nodes}")
    rng = rng or random.Random(0)
    graph = AugmentedSocialGraph(num_nodes)

    endpoints = []
    for v in range(1, m_high + 1):
        graph.add_friendship(0, v)
        endpoints.extend((0, v))

    for new in range(m_high + 1, num_nodes):
        edges_to_add = m_high if rng.random() < frac_high else m_low
        # First edge always attaches preferentially.
        target = endpoints[rng.randrange(len(endpoints))]
        graph.add_friendship(new, target)
        endpoints.extend((new, target))
        last_target = target
        for _ in range(edges_to_add - 1):
            closed = False
            if rng.random() < triad_prob:
                # Triad step: befriend a random neighbour of the last target.
                neighbours = graph.friends[last_target]
                candidate = neighbours[rng.randrange(len(neighbours))]
                if candidate != new and not graph.has_friendship(new, candidate):
                    graph.add_friendship(new, candidate)
                    endpoints.extend((new, candidate))
                    closed = True
            if not closed:
                # Preferential-attachment step (retry on collisions).
                for _ in range(32):
                    candidate = endpoints[rng.randrange(len(endpoints))]
                    if candidate != new and not graph.has_friendship(new, candidate):
                        graph.add_friendship(new, candidate)
                        endpoints.extend((new, candidate))
                        last_target = candidate
                        break
    return graph
