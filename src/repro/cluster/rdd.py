"""Resilient-distributed-dataset-style partitioned collections.

The Rejecto prototype stores the social graph as Spark RDDs (Section V).
This module reimplements the slice of the RDD surface the system needs —
lazy transformations with lineage, explicit caching, hash-partitioned
shuffles, and collect/count actions — executing on the simulated workers
of :mod:`repro.cluster.worker` with all master↔worker traffic charged to
the :class:`repro.cluster.netsim.NetworkSimulator`.

Everything runs in one process; "distribution" means partition ownership
and traffic accounting, not parallel speedup. The point is to preserve
the *data layout* of the paper's implementation (graph on the workers,
algorithm state on the master) so Table II's scaling shape and the
prefetching ablation are measurable.
"""

from __future__ import annotations

import itertools
from array import array
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .blocks import (
    BlockRef,
    ShardBlock,
    ShardedCSR,
    block_payload_bytes,
    partition_bounds,
)
from .netsim import NetworkSimulator
from .worker import Worker

__all__ = ["ClusterContext", "PartitionedDataset", "estimate_bytes", "DataLossError"]


class DataLossError(RuntimeError):
    """Raised when every replica holding a source partition has failed.

    Mirrors Spark's unrecoverable case: lineage can recompute *derived*
    data, but a lost source block with no surviving replica is gone.
    """


#: Recursion guard for pathological nesting. The old implementation
#: silently returned 8 past depth 4, undercounting any deeply nested
#: adjacency payload; genuinely deeper structures now raise instead of
#: lying about their size.
_MAX_ESTIMATE_DEPTH = 100


def estimate_bytes(value: Any, _depth: int = 0) -> int:
    """Cheap structural size estimate used for traffic accounting.

    Exact O(1) fast paths cover the flat payloads the cluster actually
    ships — ``array.array`` buffers and numpy arrays — and homogeneous
    int sequences short-circuit to ``56 + 8·len`` without per-item
    recursion. Nesting deeper than :data:`_MAX_ESTIMATE_DEPTH` raises
    ``ValueError`` rather than silently undercounting.
    """
    if _depth > _MAX_ESTIMATE_DEPTH:
        raise ValueError(
            f"estimate_bytes: nesting deeper than {_MAX_ESTIMATE_DEPTH} "
            "(cyclic or pathological payload)"
        )
    if isinstance(value, bool) or value is None:
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return 49 + len(value)
    if isinstance(value, array):
        # Exact: header plus the packed buffer.
        return 56 + value.itemsize * len(value)
    if isinstance(value, (list, tuple)):
        # Fast path for the common adjacency shape: a flat run of ints
        # costs one header plus 8 bytes each, no per-item recursion.
        if all(type(item) is int for item in value):
            return 56 + 8 * len(value)
        return 56 + sum(estimate_bytes(item, _depth + 1) for item in value)
    if isinstance(value, (set, frozenset)):
        return 56 + sum(estimate_bytes(item, _depth + 1) for item in value)
    if isinstance(value, dict):
        return 64 + sum(
            estimate_bytes(k, _depth + 1) + estimate_bytes(v, _depth + 1)
            for k, v in value.items()
        )
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None and isinstance(nbytes, int):
        # numpy arrays (and buffer-protocol lookalikes): exact payload.
        return 16 + nbytes
    return 48


class ClusterContext:
    """The driver's handle on the simulated cluster.

    Parameters
    ----------
    num_workers:
        Cluster size (one master is implicit; these are the workers).
    network:
        Traffic accountant shared by all datasets created through this
        context.
    replication:
        Number of workers each *source* partition is stored on (Spark's
        fault tolerance: replicated blocks survive worker failures;
        derived data is recomputed from lineage).
    """

    def __init__(
        self,
        num_workers: int,
        network: Optional[NetworkSimulator] = None,
        replication: int = 1,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if not 1 <= replication <= num_workers:
            raise ValueError(
                f"replication must be in [1, {num_workers}], got {replication}"
            )
        self.workers = [Worker(i) for i in range(num_workers)]
        self.network = network or NetworkSimulator()
        self.replication = replication
        self._next_dataset_id = itertools.count()
        self._next_shard_id = itertools.count()

    def worker_for(self, partition_id: int) -> Worker:
        """Primary placement for a partition (round robin)."""
        return self.workers[partition_id % len(self.workers)]

    def workers_for(self, partition_id: int) -> List[Worker]:
        """All replicas of a partition, primary first."""
        count = len(self.workers)
        return [
            self.workers[(partition_id + offset) % count]
            for offset in range(self.replication)
        ]

    def alive_replica_for(self, partition_id: int) -> Worker:
        """The first surviving replica, or raise :class:`DataLossError`."""
        for worker in self.workers_for(partition_id):
            if worker.alive:
                return worker
        raise DataLossError(
            f"all {self.replication} replicas of partition {partition_id} "
            "have failed"
        )

    def store_source_partition(
        self, key, partition_id: int, records: List[Any]
    ) -> None:
        """Install a source chunk on every (alive) replica, charging the
        upload per copy."""
        for worker in self.workers_for(partition_id):
            if not worker.alive:
                continue
            worker.store_partition(key, records)
            self.network.send("upload", estimate_bytes(records))

    def distribute_csr(
        self, csr, num_partitions: int, transport: str = "auto"
    ) -> ShardedCSR:
        """Shard a finalized :class:`CSRGraph` across the workers as
        contiguous :class:`ShardBlock` ranges.

        ``transport`` picks how blocks travel. ``"payload"`` installs
        each partition's block on its replicas with the upload charged at
        the block's exact flat-array wire size. ``"reference"`` requires
        a snapshot-backed graph (``csr.snapshot_path`` set by
        :meth:`CSRGraph.open`) and ships O(1) :class:`BlockRef` messages
        instead — workers map their slices out of the shared file on
        first access, and the payload bytes that did *not* travel are
        recorded as ``bytes_avoided``. ``"auto"`` (default) uses
        references exactly when the graph is snapshot-backed. Returns the
        master-side :class:`ShardedCSR` handle (bounds + keys only).
        """
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        if transport not in ("auto", "payload", "reference"):
            raise ValueError(
                f"transport must be 'auto', 'payload', or 'reference', "
                f"got {transport!r}"
            )
        snapshot_path = getattr(csr, "snapshot_path", None)
        if transport == "reference" and snapshot_path is None:
            raise ValueError(
                "transport='reference' requires a snapshot-backed graph "
                "(open it with CSRGraph.open, or pack it first)"
            )
        use_refs = snapshot_path is not None and transport != "payload"
        bounds = partition_bounds(csr.num_nodes, num_partitions)
        sharded = ShardedCSR(next(self._next_shard_id), bounds, csr.backend)
        for pid in range(num_partitions):
            lo, hi = sharded.range_of(pid)
            key = sharded.key(pid)
            if use_refs:
                ref = BlockRef(snapshot_path, lo, hi)
                full_bytes = block_payload_bytes(csr, lo, hi)
                for worker in self.workers_for(pid):
                    if not worker.alive:
                        continue
                    worker.store_block_ref(key, ref)
                    self.network.send("upload", ref.payload_bytes())
                    self.network.avoided(
                        "upload", max(0, full_bytes - ref.payload_bytes())
                    )
            else:
                block = ShardBlock.from_csr(csr, lo, hi)
                for worker in self.workers_for(pid):
                    if not worker.alive:
                        continue
                    worker.store_block(key, block)
                    self.network.send("upload", block.payload_bytes())
        return sharded

    def block_replica_for(self, partition_id: int, key) -> Worker:
        """The first surviving replica still holding ``key``'s block, or
        raise :class:`DataLossError` when the block is gone everywhere."""
        for worker in self.workers_for(partition_id):
            if worker.alive and worker.has_block(key):
                return worker
        raise DataLossError(
            f"all {self.replication} replicas of block {key!r} "
            f"(partition {partition_id}) have failed"
        )

    def alive_workers(self) -> List[Worker]:
        return [worker for worker in self.workers if worker.alive]

    def parallelize(
        self, records: Iterable[Any], num_partitions: int = 4
    ) -> "PartitionedDataset":
        """Distribute ``records`` across the workers.

        The upload from the master is charged to the network simulator.
        """
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        records = list(records)
        chunks: List[List[Any]] = [[] for _ in range(num_partitions)]
        for index, record in enumerate(records):
            chunks[index % num_partitions].append(record)
        dataset = PartitionedDataset(self, num_partitions, source_chunks=chunks)
        for pid, chunk in enumerate(chunks):
            self.store_source_partition(dataset.partition_key(pid), pid, chunk)
        return dataset

    def total_resident_records(self) -> int:
        return sum(worker.memory_records() for worker in self.workers)


class PartitionedDataset:
    """A lazily evaluated, partitioned collection with lineage.

    Transformations (:meth:`map`, :meth:`filter`, :meth:`flat_map`,
    :meth:`map_partitions`) build a lineage chain and defer execution;
    actions (:meth:`collect`, :meth:`count`, :meth:`reduce`) pull results
    to the master, charging the traffic. :meth:`cache` materializes each
    partition on its worker on first evaluation and reuses it afterwards
    — the Spark feature the paper leans on for intermediate results.
    """

    def __init__(
        self,
        context: ClusterContext,
        num_partitions: int,
        source_chunks: Optional[List[List[Any]]] = None,
        parent: Optional["PartitionedDataset"] = None,
        transform: Optional[Callable[[List[Any]], List[Any]]] = None,
    ) -> None:
        self.context = context
        self.num_partitions = num_partitions
        self.dataset_id = next(context._next_dataset_id)
        self._parent = parent
        self._transform = transform
        self._is_source = source_chunks is not None
        self._cached = False

    # ------------------------------------------------------------------
    # Lineage plumbing
    # ------------------------------------------------------------------
    def partition_key(self, partition_id: int) -> Tuple[int, int]:
        """Storage key of a *source* partition on its worker."""
        return (self.dataset_id, partition_id)

    def _compute_partition(self, partition_id: int) -> List[Any]:
        """Evaluate one partition on a surviving replica (no traffic:
        lineage executes where the data lives).

        Fault tolerance: the first alive replica serves (or recomputes
        and re-caches) the partition; a failed worker's cache is simply
        gone and lineage recomputation fills it back in — unless every
        replica of the *source* chunk failed, which raises
        :class:`DataLossError`.
        """
        worker = self.context.alive_replica_for(partition_id)
        cache_key = (self.dataset_id, partition_id)
        if self._cached and cache_key in worker.cache:
            return worker.cache[cache_key]
        if self._is_source:
            source_key = self.partition_key(partition_id)
            records = None
            for replica in self.context.workers_for(partition_id):
                if replica.alive and replica.has_partition(source_key):
                    records = replica.partitions[source_key]
                    break
            if records is None:
                raise DataLossError(
                    f"source partition {partition_id} of dataset "
                    f"{self.dataset_id} lost on all replicas"
                )
        else:
            assert self._parent is not None and self._transform is not None
            records = self._transform(self._parent._compute_partition(partition_id))
        if self._cached:
            worker.cache[cache_key] = records
        return records

    def _derive(
        self, transform: Callable[[List[Any]], List[Any]]
    ) -> "PartitionedDataset":
        return PartitionedDataset(
            self.context,
            self.num_partitions,
            parent=self,
            transform=transform,
        )

    # ------------------------------------------------------------------
    # Transformations (lazy)
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any]) -> "PartitionedDataset":
        return self._derive(lambda records: [fn(r) for r in records])

    def filter(self, predicate: Callable[[Any], bool]) -> "PartitionedDataset":
        return self._derive(lambda records: [r for r in records if predicate(r)])

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "PartitionedDataset":
        return self._derive(
            lambda records: [out for r in records for out in fn(r)]
        )

    def map_partitions(
        self, fn: Callable[[List[Any]], Iterable[Any]]
    ) -> "PartitionedDataset":
        return self._derive(lambda records: list(fn(records)))

    def cache(self) -> "PartitionedDataset":
        """Materialize this dataset's partitions on first use."""
        self._cached = True
        return self

    # ------------------------------------------------------------------
    # Shuffle
    # ------------------------------------------------------------------
    def reduce_by_key(
        self,
        reducer: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "PartitionedDataset":
        """Hash-shuffle ``(key, value)`` records and reduce per key.

        The shuffle is eager (as a Spark stage boundary would be): every
        record that changes partition is charged as cross-worker traffic.
        """
        out_partitions = num_partitions or self.num_partitions
        buckets: List[Dict[Any, Any]] = [dict() for _ in range(out_partitions)]
        shuffled_bytes = 0
        shuffled_messages = 0
        for pid in range(self.num_partitions):
            source_worker = self.context.worker_for(pid)
            for key, value in self._compute_partition(pid):
                target = hash(key) % out_partitions
                if self.context.worker_for(target) is not source_worker:
                    shuffled_bytes += estimate_bytes((key, value))
                    shuffled_messages += 1
                bucket = buckets[target]
                bucket[key] = (
                    reducer(bucket[key], value) if key in bucket else value
                )
        # Batch the per-record transfers into one message per worker pair.
        self.context.network.send(
            "shuffle",
            shuffled_bytes,
            messages=min(
                shuffled_messages,
                len(self.context.workers) * max(1, len(self.context.workers) - 1),
            ),
        )
        chunks = [list(bucket.items()) for bucket in buckets]
        result = PartitionedDataset(
            self.context, out_partitions, source_chunks=chunks
        )
        for pid, chunk in enumerate(chunks):
            self.context.store_source_partition(
                result.partition_key(pid), pid, chunk
            )
        return result

    # ------------------------------------------------------------------
    # Actions (eager, pull to master)
    # ------------------------------------------------------------------
    def collect(self) -> List[Any]:
        """Pull every record to the master (charged per partition)."""
        output: List[Any] = []
        for pid in range(self.num_partitions):
            records = self._compute_partition(pid)
            self.context.network.send("collect", estimate_bytes(records))
            output.extend(records)
        return output

    def count(self) -> int:
        """Count records; only the per-partition counts travel."""
        total = 0
        for pid in range(self.num_partitions):
            total += len(self._compute_partition(pid))
            self.context.network.send("count", 8)
        return total

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        """Tree-reduce: one partial per partition travels to the master."""
        partials = []
        for pid in range(self.num_partitions):
            records = self._compute_partition(pid)
            if not records:
                continue
            partial = records[0]
            for record in records[1:]:
                partial = fn(partial, record)
            partials.append(partial)
            self.context.network.send("reduce", estimate_bytes(partial))
        if not partials:
            raise ValueError("reduce of an empty dataset")
        result = partials[0]
        for partial in partials[1:]:
            result = fn(result, partial)
        return result
