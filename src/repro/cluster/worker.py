"""Worker nodes of the mini-cluster.

A :class:`Worker` owns a set of dataset partitions (Section V: "we
distribute the large social graph structure to the workers") and serves
two kinds of requests from the master: run a task over a partition, and
look up records by key (the per-node graph structure the KL engine
pulls). Every response's size is charged to the network simulator by the
caller.

Workers can *fail* (:meth:`Worker.fail`), dropping everything they hold
— partitions, caches, indexes. The substrate recovers the way Spark
does: source partitions survive on replicas, and derived (cached) data
is recomputed from lineage on the next access.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List

__all__ = ["Worker", "WorkerFailure"]


class WorkerFailure(RuntimeError):
    """Raised when a request reaches a failed worker."""


class Worker:
    """One simulated cluster worker holding in-memory partitions."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.alive = True
        #: partition id -> list of records
        self.partitions: Dict[int, List[Any]] = {}
        #: cached materializations of lazy datasets: (dataset id, partition id)
        self.cache: Dict[tuple, List[Any]] = {}
        #: key -> record indexes, built on demand for keyed lookups
        self._indexes: Dict[int, Dict[Any, Any]] = {}
        self.tasks_run = 0

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash this worker: all resident state is lost."""
        self.alive = False
        self.partitions.clear()
        self.cache.clear()
        self._indexes.clear()

    def _check_alive(self) -> None:
        if not self.alive:
            raise WorkerFailure(f"worker {self.worker_id} is down")

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def store_partition(self, partition_id: int, records: List[Any]) -> None:
        """Install a partition's records on this worker."""
        self._check_alive()
        self.partitions[partition_id] = records
        self._indexes.pop(partition_id, None)

    def has_partition(self, partition_id: int) -> bool:
        return partition_id in self.partitions

    def memory_records(self) -> int:
        """Total records resident (partitions plus cache)."""
        return sum(len(p) for p in self.partitions.values()) + sum(
            len(p) for p in self.cache.values()
        )

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def run_task(
        self, partition_id: int, task: Callable[[List[Any]], Any]
    ) -> Any:
        """Execute ``task`` over one resident partition."""
        self._check_alive()
        if partition_id not in self.partitions:
            raise KeyError(
                f"worker {self.worker_id} does not hold partition {partition_id}"
            )
        self.tasks_run += 1
        return task(self.partitions[partition_id])

    # ------------------------------------------------------------------
    # Keyed lookup (used by the KL engine's prefetcher)
    # ------------------------------------------------------------------
    def build_index(
        self, partition_id: int, key_fn: Callable[[Any], Any]
    ) -> None:
        """Index a partition's records by ``key_fn`` for O(1) lookup."""
        self._check_alive()
        if partition_id not in self.partitions:
            raise KeyError(
                f"worker {self.worker_id} does not hold partition {partition_id}"
            )
        self._indexes[partition_id] = {
            key_fn(record): record for record in self.partitions[partition_id]
        }

    def lookup(self, partition_id: int, keys: Iterable[Any]) -> List[Any]:
        """Fetch the records with the given keys from an indexed partition."""
        self._check_alive()
        index = self._indexes.get(partition_id)
        if index is None:
            raise KeyError(
                f"partition {partition_id} on worker {self.worker_id} is not indexed"
            )
        return [index[key] for key in keys if key in index]
