"""Worker nodes of the mini-cluster.

A :class:`Worker` owns a set of dataset partitions (Section V: "we
distribute the large social graph structure to the workers") and serves
three kinds of requests from the master: run a task over a partition,
serve batched adjacency slices out of a resident CSR shard block, and
compute the per-pass gain/cut state of a block against its local replica
of the side vector. Every response's size is charged to the network
simulator by the caller.

The side-vector replica is what the delta-broadcast protocol keeps in
sync: the master installs the full vector once per run
(:meth:`install_sides`) and afterwards sends only the ids of nodes that
switched since the last sync (:meth:`apply_side_delta`), so broadcast
bytes scale with churn instead of graph size.

Workers can *fail* (:meth:`Worker.fail`), dropping everything they hold
— partitions, shard blocks, caches, the sides replica. The substrate
recovers the way Spark does: source partitions and blocks survive on
replicas, and derived (cached) data is recomputed from lineage on the
next access.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .blocks import BlockRef, BlockSlices, ShardBlock

__all__ = ["Worker", "WorkerFailure"]


class WorkerFailure(RuntimeError):
    """Raised when a request reaches a failed worker."""


class Worker:
    """One simulated cluster worker holding in-memory partitions."""

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.alive = True
        #: partition id -> list of records
        self.partitions: Dict[int, List[Any]] = {}
        #: cached materializations of lazy datasets: (dataset id, partition id)
        self.cache: Dict[tuple, List[Any]] = {}
        #: storage key -> resident CSR shard block
        self.blocks: Dict[Any, ShardBlock] = {}
        #: storage key -> snapshot reference, materialized into
        #: ``blocks`` on first access (reference-mode distribution)
        self.block_refs: Dict[Any, BlockRef] = {}
        #: local replica of the master's side vector (delta-synced)
        self.sides: Optional[List[int]] = None
        self._sides_np = None
        self.tasks_run = 0

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash this worker: all resident state is lost."""
        self.alive = False
        self.partitions.clear()
        self.cache.clear()
        self.blocks.clear()
        self.block_refs.clear()
        self.sides = None
        self._sides_np = None

    def _check_alive(self) -> None:
        if not self.alive:
            raise WorkerFailure(f"worker {self.worker_id} is down")

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def store_partition(self, partition_id: int, records: List[Any]) -> None:
        """Install a partition's records on this worker."""
        self._check_alive()
        self.partitions[partition_id] = records

    def has_partition(self, partition_id: int) -> bool:
        return partition_id in self.partitions

    def store_block(self, key: Any, block: ShardBlock) -> None:
        """Install one CSR shard block under its storage key."""
        self._check_alive()
        self.blocks[key] = block

    def store_block_ref(self, key: Any, ref: BlockRef) -> None:
        """Install a snapshot *reference* for a block. The adjacency is
        mapped out of the shared snapshot file on first access, not
        shipped over the wire."""
        self._check_alive()
        self.block_refs[key] = ref

    def has_block(self, key: Any) -> bool:
        return key in self.blocks or key in self.block_refs

    def _resolve_block(self, key: Any) -> Optional[ShardBlock]:
        """The resident block for ``key``, materializing a stored
        reference on first use (maps the slice; no network traffic —
        the file is local to every worker by construction)."""
        block = self.blocks.get(key)
        if block is None:
            ref = self.block_refs.get(key)
            if ref is not None:
                block = ref.materialize()
                self.blocks[key] = block
        return block

    def memory_records(self) -> int:
        """Total records resident (partitions, cache, and block nodes)."""
        return (
            sum(len(p) for p in self.partitions.values())
            + sum(len(p) for p in self.cache.values())
            + sum(b.num_nodes for b in self.blocks.values())
        )

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def run_task(
        self, partition_id: int, task: Callable[[List[Any]], Any]
    ) -> Any:
        """Execute ``task`` over one resident partition."""
        self._check_alive()
        if partition_id not in self.partitions:
            raise KeyError(
                f"worker {self.worker_id} does not hold partition {partition_id}"
            )
        self.tasks_run += 1
        return task(self.partitions[partition_id])

    # ------------------------------------------------------------------
    # Side-vector replica (delta-broadcast protocol)
    # ------------------------------------------------------------------
    def install_sides(self, sides: Sequence[int]) -> None:
        """Full sync: replace the local side-vector replica."""
        self._check_alive()
        self.sides = list(sides)
        self._sides_np = None

    def apply_side_delta(self, switched: Sequence[int]) -> None:
        """Delta sync: flip the side of each listed node."""
        self._check_alive()
        if self.sides is None:
            raise RuntimeError(
                f"worker {self.worker_id} received a side delta before any "
                "full side-vector sync"
            )
        sides = self.sides
        for node in switched:
            sides[node] = 1 - sides[node]
        if self._sides_np is not None:
            for node in switched:
                self._sides_np[node] = sides[node]

    def _sides_view(self, backend: str):
        """The replica in the form the block's kernel backend wants:
        a cached int64 array for numpy, the plain list otherwise."""
        if self.sides is None:
            raise RuntimeError(
                f"worker {self.worker_id} has no side-vector replica installed"
            )
        if backend != "numpy":
            return self.sides
        if self._sides_np is None:
            import numpy as np

            self._sides_np = np.asarray(self.sides, dtype=np.int64)
        return self._sides_np

    # ------------------------------------------------------------------
    # Block-slice fetches and per-pass gain state
    # ------------------------------------------------------------------
    def block_slices(self, key: Any, nodes: Sequence[int]) -> BlockSlices:
        """Serve one batched adjacency fetch out of a resident block."""
        self._check_alive()
        block = self._resolve_block(key)
        if block is None:
            raise KeyError(
                f"worker {self.worker_id} does not hold block {key!r}"
            )
        self.tasks_run += 1
        return block.slices(nodes)

    def block_pass_state(
        self, key: Any, k: float
    ) -> Tuple[List[float], int, int]:
        """Per-pass contribution of one block against the local side
        replica: ``(gains, f_cross_part, r_cross_part)``."""
        self._check_alive()
        block = self._resolve_block(key)
        if block is None:
            raise KeyError(
                f"worker {self.worker_id} does not hold block {key!r}"
            )
        self.tasks_run += 1
        return block.pass_state(self._sides_view(block.backend), k)
