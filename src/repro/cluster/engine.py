"""Distributed extended-KL engine on the mini-cluster.

Implements the architecture of Section V:

* the **workers** hold the graph — contiguous CSR *shard blocks*
  (:mod:`repro.cluster.blocks`), flat offset/adjacency arrays sliced out
  of the same :class:`~repro.core.csr.CSRGraph` the local engine runs
  on — plus a replica of the side vector, kept in sync by the broadcast
  protocol below;
* the **master** keeps the per-node status (side assignment) and the
  gain bucket list, so the hot update path never crosses the network;
* each pass opens with one **gains** exchange per partition: the owning
  worker runs the :func:`repro.core.kernels.shard_gain_deltas` /
  :func:`~repro.core.kernels.shard_cut_counts` batch kernels over its
  block (vectorized on the numpy backend) and replies with the block's
  per-node gains and its exact boundary-counter parts — the master never
  re-derives either from adjacency;
* node structure is pulled through an LRU **prefetch buffer**: each miss
  issues one batched *block-slice* fetch whose reply is a flat mini-CSR
  over the missed node plus the current top-gain candidates, which are
  exactly the nodes the greedy loop will pop next;
* status updates travel as **delta broadcasts**: the full side vector is
  installed once per run (1 byte per node), and each subsequent pass
  ships only the ids of the nodes its best prefix actually switched
  (8 bytes per id) — broadcast volume scales with churn, not graph size.
  ``ClusterConfig(broadcast_mode="full")`` restores the re-broadcast-
  everything behaviour as an ablation reference.

Every message's size follows from its array lengths (see the wire
constants in :mod:`repro.cluster.blocks`), so the per-kind byte
breakdown in :class:`~repro.cluster.netsim.NetworkStats` is exact.

The engine executes the same greedy single-node-switch discipline as
:func:`repro.core.kl.extended_kl` (same gain arithmetic, same LIFO
bucket tie-breaks, same best-prefix rollback), so given identical inputs
it returns *identical* partitions — and identical per-pass objective
histories — property-tested across backends in
``tests/cluster/test_engine.py``. The worker-side gains double as the
protocol check: they are computed from the *replica* side vectors, so
any delta-broadcast bug breaks parity immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.maar import MAARConfig, geometric_k_sequence
from ..core.objectives import LEGITIMATE, SUSPICIOUS, acceptance_rate
from .blocks import (
    COUNTER_BYTES,
    INT_BYTES,
    MESSAGE_HEADER_BYTES,
    SIDE_BYTE,
    BlockSlices,
)
from .master import MasterState, NodeRecord
from .netsim import NetworkSimulator, NetworkStats
from .prefetch import PrefetchBuffer
from .rdd import ClusterContext

__all__ = ["ClusterConfig", "ClusterRunStats", "DistributedKL", "distributed_maar"]

_EPS = 1e-9


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster and engine shape.

    Defaults mirror the paper's five-node evaluation cluster. A
    ``buffer_capacity`` of 0 disables prefetching (the "fetch per node
    on demand" strawman of Section V). ``broadcast_mode`` selects the
    status-sync protocol: ``"delta"`` (default) ships only switched node
    ids between passes, ``"full"`` re-broadcasts the whole side vector
    every pass (the ablation reference — results are identical either
    way, only the wire bytes differ). ``shard_transport`` selects how
    blocks reach the workers: ``"auto"`` (default) ships O(1) snapshot
    references when the graph was opened from a ``.csrbin`` snapshot
    and falls back to array payloads otherwise; ``"payload"`` /
    ``"reference"`` force one mode (reference requires a snapshot-backed
    graph). Results are identical either way — only the distribution
    bytes differ, recorded as ``NetworkStats.bytes_avoided``.
    """

    num_workers: int = 5
    num_partitions: int = 20
    buffer_capacity: int = 4096
    prefetch_batch: int = 64
    gain_index: str = "bucket"
    resolution: int = 8
    max_passes: int = 30
    replication: int = 1
    broadcast_mode: str = "delta"
    shard_transport: str = "auto"

    def __post_init__(self) -> None:
        if self.broadcast_mode not in ("delta", "full"):
            raise ValueError(
                f"broadcast_mode must be 'delta' or 'full', "
                f"got {self.broadcast_mode!r}"
            )
        if self.shard_transport not in ("auto", "payload", "reference"):
            raise ValueError(
                f"shard_transport must be 'auto', 'payload', or "
                f"'reference', got {self.shard_transport!r}"
            )


@dataclass
class ClusterRunStats:
    """Diagnostics of one (or several accumulated) distributed KL runs."""

    passes: int = 0
    switches_tested: int = 0
    switches_applied: int = 0
    network: NetworkStats = field(default_factory=NetworkStats)
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    fetch_batches: int = 0
    records_fetched: int = 0
    #: start-of-pass objective ``f_cross − k·r_cross``, one entry per
    #: pass — comparable entry-for-entry with ``KLStats.objective_history``
    objective_history: List[float] = field(default_factory=list)

    @property
    def prefetch_hit_rate(self) -> float:
        total = self.prefetch_hits + self.prefetch_misses
        return self.prefetch_hits / total if total else 0.0


class DistributedKL:
    """Extended KL with worker-resident graph and master-resident state."""

    def __init__(
        self,
        graph,
        config: Optional[ClusterConfig] = None,
        network: Optional[NetworkSimulator] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        # Blocks are sliced out of the CSR snapshot (builder inputs
        # finalize through their cache), so adjacency is sorted ascending
        # — the same iteration order as the core CSR engine, which keeps
        # the two engines' bucket tie-breaks, and hence their outputs,
        # identical.
        csr = graph.csr()
        self.graph_size = csr.num_nodes
        self.network = network or NetworkSimulator()
        self.context = ClusterContext(
            self.config.num_workers,
            self.network,
            replication=self.config.replication,
        )
        self.sharded = self.context.distribute_csr(
            csr,
            self.config.num_partitions,
            transport=self.config.shard_transport,
        )
        # Degree maxima for the gain-bound computation at each k. A bound
        # from two different nodes is looser than the per-node maximum,
        # which is harmless: a gain bound only sizes the bucket array
        # (a uniform offset shift) and never alters pop order.
        fp, _, op, _, ip_, _ = csr.hot()
        self._max_f_degree = max(
            (fp[u + 1] - fp[u] for u in range(csr.num_nodes)), default=1
        )
        self._max_r_degree = max(
            (
                (op[u + 1] - op[u]) + (ip_[u + 1] - ip_[u])
                for u in range(csr.num_nodes)
            ),
            default=0,
        )

    def _max_abs_gain(self, k: float) -> float:
        """Lifetime gain bound at weight ``k`` (cf. ``kl._max_abs_gain``)."""
        return max(self._max_f_degree + k * self._max_r_degree, 1.0)

    # ------------------------------------------------------------------
    # Wire protocol: broadcasts, gains collection, block-slice fetches
    # ------------------------------------------------------------------
    def _broadcast_full(self, sides: Sequence[int]) -> None:
        """Install the full side vector on every live worker (1 packed
        byte per node on the wire)."""
        targets = self.context.alive_workers()
        for worker in targets:
            worker.install_sides(sides)
        self.network.send(
            "broadcast",
            (MESSAGE_HEADER_BYTES + SIDE_BYTE * self.graph_size) * len(targets),
            messages=len(targets),
        )

    def _broadcast_delta(self, switched: Sequence[int]) -> None:
        """Ship only the switched node ids; each replica flips them."""
        targets = self.context.alive_workers()
        for worker in targets:
            worker.apply_side_delta(switched)
        self.network.send(
            "delta",
            (MESSAGE_HEADER_BYTES + INT_BYTES * len(switched)) * len(targets),
            messages=len(targets),
        )

    def _collect_pass_state(
        self, k: float
    ) -> Tuple[List[Tuple[int, float]], int, int]:
        """One gains exchange per partition: each owning worker runs the
        shard kernels over its block against its side replica and replies
        ``(gains, f_cross_part, r_cross_part)``.

        The per-block counter parts sum to the exact graph-wide counters
        (cross friendships are deduped globally by ``u < v``). Gains come
        back in ascending node order — partitions are contiguous
        ascending ranges — which is the insertion order the bucket
        index's LIFO tie-breaks are defined against.
        """
        sharded = self.sharded
        pairs: List[Tuple[int, float]] = []
        f_cross = r_cross = 0
        for pid in range(sharded.num_partitions):
            lo, hi = sharded.range_of(pid)
            if lo == hi:
                continue
            worker = self.context.block_replica_for(pid, sharded.key(pid))
            gains, f_part, r_part = worker.block_pass_state(sharded.key(pid), k)
            self.network.send(
                "gains",
                MESSAGE_HEADER_BYTES + INT_BYTES * len(gains) + COUNTER_BYTES,
            )
            f_cross += f_part
            r_cross += r_part
            pairs.extend((lo + r, gains[r]) for r in range(len(gains)))
        return pairs, f_cross, r_cross

    def _fetch_records(
        self, nodes: Sequence[int]
    ) -> List[Tuple[int, NodeRecord]]:
        """One batched block-slice fetch: group the wanted nodes by owning
        partition, pull each group's adjacency as a flat mini-CSR from a
        surviving replica, charge one message per partition touched at
        the reply's exact wire size."""
        sharded = self.sharded
        by_partition: Dict[int, List[int]] = {}
        for node in nodes:
            by_partition.setdefault(sharded.partition_of(node), []).append(node)
        fetched: List[Tuple[int, NodeRecord]] = []
        payload = 0
        for pid, wanted in by_partition.items():
            worker = self.context.block_replica_for(pid, sharded.key(pid))
            slices: BlockSlices = worker.block_slices(sharded.key(pid), wanted)
            payload += slices.payload_bytes()
            fetched.extend(
                (record[0], record) for record in slices.records()
            )
        self.network.send("fetch", payload, messages=len(by_partition))
        return fetched

    # ------------------------------------------------------------------
    # The KL pass loop
    # ------------------------------------------------------------------
    def run(
        self,
        k: float,
        initial_sides: Sequence[int],
        locked: Optional[Sequence[bool]] = None,
        stats: Optional[ClusterRunStats] = None,
    ) -> Tuple[List[int], int, int]:
        """Minimize ``|F(Ū,U)| − k·|R⃗⟨Ū,U⟩|`` from ``initial_sides``.

        Returns ``(sides, f_cross, r_cross)`` of the improved partition.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        n = self.graph_size
        config = self.config
        if locked is None:
            locked = [False] * n
        sides = list(initial_sides)
        if len(sides) != n:
            raise ValueError(f"initial_sides has length {len(sides)}, expected {n}")

        buffer = PrefetchBuffer(
            capacity=config.buffer_capacity,
            fetch_batch=self._fetch_records,
            batch_size=config.prefetch_batch,
        )
        # Full sync opens every run: replicas must start from this run's
        # initial sides, whatever a previous run left behind.
        self._broadcast_full(sides)
        f_cross = r_cross = 0
        for pass_index in range(config.max_passes):
            gains, f_cross, r_cross = self._collect_pass_state(k)
            if stats is not None:
                stats.passes += 1
                stats.objective_history.append(f_cross - k * r_cross)

            state = MasterState.for_pass(
                n,
                k,
                sides,
                f_cross,
                r_cross,
                gains,
                locked,
                gain_index_kind=config.gain_index,
                max_abs_gain=self._max_abs_gain(k),
                resolution=config.resolution,
            )

            cumulative = 0.0
            best_cumulative = 0.0
            best_length = 0
            while True:
                popped = state.pop_best()
                if popped is None:
                    break
                u, gain = popped
                # Offer a deep candidate list so the buffer can fill its
                # batch with nodes it does not already hold.
                record = buffer.get(
                    u,
                    prefetch_candidates=state.prefetch_candidates(
                        config.prefetch_batch * 4
                    ),
                )
                state.apply_switch(record)
                cumulative += gain
                if stats is not None:
                    stats.switches_tested += 1
                if cumulative > best_cumulative + _EPS:
                    best_cumulative = cumulative
                    best_length = state.switches_applied

            # Roll back past the best prefix (master-local state only).
            state.rollback_to(best_length)
            switched = state.applied_nodes()
            sides, f_cross, r_cross = state.snapshot()
            if stats is not None:
                stats.switches_applied += best_length
            if best_length == 0:
                break
            # Sync the replicas for the next pass: each surviving switch
            # flipped its node exactly once, so the applied prefix *is*
            # the side-vector delta.
            if config.broadcast_mode == "delta":
                self._broadcast_delta(switched)
            else:
                self._broadcast_full(sides)

        if stats is not None:
            stats.network = self.network.stats
            stats.prefetch_hits += buffer.stats.hits
            stats.prefetch_misses += buffer.stats.misses
            stats.fetch_batches += buffer.stats.fetch_batches
            stats.records_fetched += buffer.stats.records_fetched
        return sides, f_cross, r_cross


def distributed_maar(
    graph,
    cluster_config: Optional[ClusterConfig] = None,
    maar_config: Optional[MAARConfig] = None,
    stats: Optional[ClusterRunStats] = None,
) -> Tuple[List[int], float, Optional[float]]:
    """MAAR sweep on the cluster engine.

    Mirrors :func:`repro.core.maar.solve_maar`'s sweep (rejection-init
    partition, geometric ``k`` grid, lowest-acceptance-rate winner) and
    returns ``(suspicious_nodes, acceptance_rate, best_k)``. ``graph``
    may be an :class:`AugmentedSocialGraph` builder or a finalized
    :class:`repro.core.csr.CSRGraph`.
    """
    maar_config = maar_config or MAARConfig()
    csr = graph.csr()
    engine = DistributedKL(csr, cluster_config)
    init_sides = [
        SUSPICIOUS if csr.rejections_received(u) else LEGITIMATE
        for u in range(csr.num_nodes)
    ]
    best_sides: List[int] = []
    best_key = (float("inf"), 0)
    best_k: Optional[float] = None
    for k in geometric_k_sequence(
        maar_config.k_min, maar_config.k_factor, maar_config.k_steps
    ):
        sides, f_cross, r_cross = engine.run(k, init_sides, stats=stats)
        suspicious = sum(sides)
        size_ok = (
            maar_config.min_suspicious
            <= suspicious
            <= maar_config.max_suspicious_fraction * graph.num_nodes
        )
        if not size_ok or suspicious >= graph.num_nodes or r_cross == 0:
            continue
        rate = acceptance_rate(f_cross, r_cross)
        key = (rate, -r_cross)
        if key < best_key:
            best_key = key
            best_sides = list(sides)
            best_k = k
    suspicious_nodes = [u for u, s in enumerate(best_sides) if s == SUSPICIOUS]
    rate = best_key[0] if best_k is not None else 1.0
    return suspicious_nodes, rate, best_k
