"""Distributed extended-KL engine on the mini-cluster.

Implements the architecture of Section V:

* the **workers** hold the graph — one record per node carrying its
  friendship and rejection adjacency — as cached, indexed partitions;
* the **master** keeps the per-node status (side assignment) and the
  gain bucket list, so the hot update path never crosses the network;
* node structure is pulled through an LRU **prefetch buffer**: each miss
  also fetches the current top-gain nodes of the bucket list, which are
  exactly the nodes the greedy loop will pop next.

The engine executes the same greedy single-node-switch discipline as
:func:`repro.core.kl.extended_kl` (same gain updates, same LIFO bucket
tie-breaks, same best-prefix rollback), so given identical inputs it
returns *identical* partitions — property-tested in
``tests/cluster/test_engine.py``. What differs is the accounting: every
fetch, broadcast, and collect is charged to the network simulator,
which is what Table II's scaling study and the prefetch ablation
measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.maar import MAARConfig, geometric_k_sequence
from ..core.objectives import LEGITIMATE, SUSPICIOUS, acceptance_rate
from .master import MasterState, NodeRecord
from .netsim import NetworkSimulator, NetworkStats
from .prefetch import PrefetchBuffer
from .rdd import ClusterContext, DataLossError, PartitionedDataset, estimate_bytes

__all__ = ["ClusterConfig", "ClusterRunStats", "DistributedKL", "distributed_maar"]

_EPS = 1e-9


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster and engine shape.

    Defaults mirror the paper's five-node evaluation cluster. A
    ``buffer_capacity`` of 0 disables prefetching (the "fetch per node
    on demand" strawman of Section V).
    """

    num_workers: int = 5
    num_partitions: int = 20
    buffer_capacity: int = 4096
    prefetch_batch: int = 64
    gain_index: str = "bucket"
    resolution: int = 8
    max_passes: int = 30
    replication: int = 1


@dataclass
class ClusterRunStats:
    """Diagnostics of one distributed KL run."""

    passes: int = 0
    switches_tested: int = 0
    switches_applied: int = 0
    network: NetworkStats = field(default_factory=NetworkStats)
    prefetch_hits: int = 0
    prefetch_misses: int = 0

    @property
    def prefetch_hit_rate(self) -> float:
        total = self.prefetch_hits + self.prefetch_misses
        return self.prefetch_hits / total if total else 0.0


def _record_gain(
    record: NodeRecord, sides: Sequence[int], k: float
) -> float:
    """Switch gain of a node from its worker-resident record — the same
    arithmetic as ``Partition.switch_gain``."""
    node, friends, rej_out, rej_in = record
    s = sides[node]
    friends_delta = 0
    for v in friends:
        friends_delta += 1 if sides[v] == s else -1
    rej_delta = 0
    if s == LEGITIMATE:
        for v in rej_out:
            if sides[v] == SUSPICIOUS:
                rej_delta -= 1
        for w in rej_in:
            if sides[w] == LEGITIMATE:
                rej_delta += 1
    else:
        for v in rej_out:
            if sides[v] == SUSPICIOUS:
                rej_delta += 1
        for w in rej_in:
            if sides[w] == LEGITIMATE:
                rej_delta -= 1
    return -(friends_delta - k * rej_delta)


def _record_cut_contribution(
    record: NodeRecord, sides: Sequence[int]
) -> Tuple[int, int]:
    """(cross friendships counted from this endpoint, counted rejections
    cast by this node). Friendships are double-counted across the two
    endpoints; the caller halves the sum."""
    node, friends, rej_out, _rej_in = record
    s = sides[node]
    f_cross = sum(1 for v in friends if sides[v] != s)
    r_cross = 0
    if s == LEGITIMATE:
        r_cross = sum(1 for v in rej_out if sides[v] == SUSPICIOUS)
    return f_cross, r_cross


class DistributedKL:
    """Extended KL with worker-resident graph and master-resident state."""

    def __init__(
        self,
        graph,
        config: Optional[ClusterConfig] = None,
        network: Optional[NetworkSimulator] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        # Worker records are sliced out of the CSR snapshot (builder inputs
        # finalize through their cache), so adjacency is sorted ascending —
        # the same iteration order as the core CSR engine, which keeps the
        # two engines' bucket tie-breaks, and hence their outputs, identical.
        csr = graph.csr()
        self.graph_size = csr.num_nodes
        self.network = network or NetworkSimulator()
        self.context = ClusterContext(
            self.config.num_workers,
            self.network,
            replication=self.config.replication,
        )
        fp, fi, op, oi, ip_, ii = csr.hot()
        records: List[NodeRecord] = [
            (
                u,
                tuple(fi[fp[u] : fp[u + 1]]),
                tuple(oi[op[u] : op[u + 1]]),
                tuple(ii[ip_[u] : ip_[u + 1]]),
            )
            for u in range(csr.num_nodes)
        ]
        self.dataset: PartitionedDataset = self.context.parallelize(
            records, num_partitions=self.config.num_partitions
        ).cache()
        # Index every source partition (on every replica) by node id.
        for pid in range(self.config.num_partitions):
            for worker in self.context.workers_for(pid):
                worker.build_index(self.dataset.partition_key(pid), lambda r: r[0])
        # Per-node degree split, for the gain-bound computation at each k.
        self._degree_parts = [
            (len(r[1]), len(r[2]) + len(r[3])) for r in records
        ]

    def _max_abs_gain(self, k: float) -> float:
        """Lifetime gain bound at weight ``k`` (cf. ``kl._max_abs_gain``)."""
        return max(
            (friends + k * rejections for friends, rejections in self._degree_parts),
            default=1.0,
        )

    # ------------------------------------------------------------------
    # Worker access
    # ------------------------------------------------------------------
    def _fetch_records(self, nodes: Sequence[int]) -> List[Tuple[int, NodeRecord]]:
        """One batched fetch: group nodes by partition, pull from the
        owning workers, charge one message per partition touched."""
        by_partition: Dict[int, List[int]] = {}
        for node in nodes:
            by_partition.setdefault(node % self.config.num_partitions, []).append(
                node
            )
        fetched: List[Tuple[int, NodeRecord]] = []
        payload = 0
        for pid, keys in by_partition.items():
            # Failover: the first surviving replica serves the lookup.
            records = None
            for worker in self.context.workers_for(pid):
                if not worker.alive:
                    continue
                records = worker.lookup(self.dataset.partition_key(pid), keys)
                break
            if records is None:
                raise DataLossError(
                    f"all replicas of partition {pid} have failed"
                )
            payload += estimate_bytes(records)
            fetched.extend((record[0], record) for record in records)
        self.network.send("fetch", payload, messages=len(by_partition))
        return fetched

    def _broadcast_sides(self, sides: Sequence[int]) -> None:
        """Charge the broadcast of the side vector to every worker."""
        self.network.send(
            "broadcast",
            estimate_bytes(list(sides)) * self.config.num_workers,
            messages=self.config.num_workers,
        )

    def _distributed_initial_state(
        self, sides: Sequence[int], k: float
    ) -> Tuple[Dict[int, float], int, int]:
        """Initial per-node gains and cut counters via a cluster map."""
        self._broadcast_sides(sides)
        gains_dataset = self.dataset.map(
            lambda record: (
                record[0],
                _record_gain(record, sides, k),
                _record_cut_contribution(record, sides),
            )
        )
        gains: Dict[int, float] = {}
        double_f = 0
        r_cross = 0
        for node, gain, (f_part, r_part) in gains_dataset.collect():
            gains[node] = gain
            double_f += f_part
            r_cross += r_part
        return gains, double_f // 2, r_cross

    # ------------------------------------------------------------------
    # The KL pass loop
    # ------------------------------------------------------------------
    def run(
        self,
        k: float,
        initial_sides: Sequence[int],
        locked: Optional[Sequence[bool]] = None,
        stats: Optional[ClusterRunStats] = None,
    ) -> Tuple[List[int], int, int]:
        """Minimize ``|F(Ū,U)| − k·|R⃗⟨Ū,U⟩|`` from ``initial_sides``.

        Returns ``(sides, f_cross, r_cross)`` of the improved partition.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        n = self.graph_size
        config = self.config
        if locked is None:
            locked = [False] * n
        sides = list(initial_sides)
        if len(sides) != n:
            raise ValueError(f"initial_sides has length {len(sides)}, expected {n}")

        buffer = PrefetchBuffer(
            capacity=config.buffer_capacity,
            fetch_batch=self._fetch_records,
            batch_size=config.prefetch_batch,
        )
        f_cross = r_cross = 0
        for pass_index in range(config.max_passes):
            if stats is not None:
                stats.passes += 1
            gains, f_cross, r_cross = self._distributed_initial_state(sides, k)

            state = MasterState.for_pass(
                n,
                k,
                sides,
                f_cross,
                r_cross,
                sorted(gains.items()),
                locked,
                gain_index_kind=config.gain_index,
                max_abs_gain=self._max_abs_gain(k),
                resolution=config.resolution,
            )

            cumulative = 0.0
            best_cumulative = 0.0
            best_length = 0
            while True:
                popped = state.pop_best()
                if popped is None:
                    break
                u, gain = popped
                # Offer a deep candidate list so the buffer can fill its
                # batch with nodes it does not already hold.
                record = buffer.get(
                    u,
                    prefetch_candidates=state.prefetch_candidates(
                        config.prefetch_batch * 4
                    ),
                )
                state.apply_switch(record)
                cumulative += gain
                if stats is not None:
                    stats.switches_tested += 1
                if cumulative > best_cumulative + _EPS:
                    best_cumulative = cumulative
                    best_length = state.switches_applied

            # Roll back past the best prefix (master-local state only).
            state.rollback_to(best_length)
            sides, f_cross, r_cross = state.snapshot()
            if stats is not None:
                stats.switches_applied += best_length
                stats.prefetch_hits = buffer.stats.hits
                stats.prefetch_misses = buffer.stats.misses
            if best_length == 0:
                break

        if stats is not None:
            stats.network = self.network.stats
        return sides, f_cross, r_cross


def distributed_maar(
    graph,
    cluster_config: Optional[ClusterConfig] = None,
    maar_config: Optional[MAARConfig] = None,
    stats: Optional[ClusterRunStats] = None,
) -> Tuple[List[int], float, Optional[float]]:
    """MAAR sweep on the cluster engine.

    Mirrors :func:`repro.core.maar.solve_maar`'s sweep (rejection-init
    partition, geometric ``k`` grid, lowest-acceptance-rate winner) and
    returns ``(suspicious_nodes, acceptance_rate, best_k)``. ``graph``
    may be an :class:`AugmentedSocialGraph` builder or a finalized
    :class:`repro.core.csr.CSRGraph`.
    """
    maar_config = maar_config or MAARConfig()
    csr = graph.csr()
    engine = DistributedKL(csr, cluster_config)
    init_sides = [
        SUSPICIOUS if csr.rejections_received(u) else LEGITIMATE
        for u in range(csr.num_nodes)
    ]
    best_sides: List[int] = []
    best_key = (float("inf"), 0)
    best_k: Optional[float] = None
    for k in geometric_k_sequence(
        maar_config.k_min, maar_config.k_factor, maar_config.k_steps
    ):
        sides, f_cross, r_cross = engine.run(k, init_sides, stats=stats)
        suspicious = sum(sides)
        size_ok = (
            maar_config.min_suspicious
            <= suspicious
            <= maar_config.max_suspicious_fraction * graph.num_nodes
        )
        if not size_ok or suspicious >= graph.num_nodes or r_cross == 0:
            continue
        rate = acceptance_rate(f_cross, r_cross)
        key = (rate, -r_cross)
        if key < best_key:
            best_key = key
            best_sides = list(sides)
            best_k = k
    suspicious_nodes = [u for u, s in enumerate(best_sides) if s == SUSPICIOUS]
    rate = best_key[0] if best_k is not None else 1.0
    return suspicious_nodes, rate, best_k
