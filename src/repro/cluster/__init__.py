"""Spark-like mini-cluster substrate (Section V, Table II).

A single-process stand-in for the paper's Spark/EC2 deployment that
preserves its *data layout* and traffic patterns: partitioned datasets
with lineage and caching on simulated workers, master-resident node
status and gain buckets, LRU prefetching of node structure, and full
network-I/O accounting. See DESIGN.md, substitution 2.
"""

from .blocks import BlockSlices, ShardBlock, ShardedCSR, partition_bounds
from .engine import (
    ClusterConfig,
    ClusterRunStats,
    DistributedKL,
    distributed_maar,
)
from .netsim import NetworkModel, NetworkSimulator, NetworkStats
from .prefetch import PrefetchBuffer, PrefetchStats
from .rdd import ClusterContext, DataLossError, PartitionedDataset, estimate_bytes
from .worker import Worker, WorkerFailure

__all__ = [
    "ClusterConfig",
    "ClusterRunStats",
    "DistributedKL",
    "distributed_maar",
    "NetworkModel",
    "NetworkSimulator",
    "NetworkStats",
    "PrefetchBuffer",
    "PrefetchStats",
    "ClusterContext",
    "PartitionedDataset",
    "estimate_bytes",
    "Worker",
    "WorkerFailure",
    "DataLossError",
    "BlockSlices",
    "ShardBlock",
    "ShardedCSR",
    "partition_bounds",
]
