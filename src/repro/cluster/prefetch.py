"""LRU prefetch buffer for per-node graph structure.

Section V: "we prefetch a set of nodes each time instead of just one
node... The prefetched nodes are those with the highest potential move
gains in the bucket list... Rejecto uses a LRU replacement strategy to
evict nodes from the buffer."

The buffer fronts the workers' block-slice reads: a hit costs nothing; a
miss triggers one batched *block-slice* fetch — the missed node *plus*
the current top-gain candidates travel back as a single flat mini-CSR
per partition touched (see :class:`repro.cluster.blocks.BlockSlices`) —
so the next pops of the bucket list land in the buffer. The buffer
itself is key→record and protocol-agnostic; the engine's fetch callback
does the grouping and the byte-exact accounting.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Iterable, List, Sequence

__all__ = ["PrefetchBuffer", "PrefetchStats"]


class PrefetchStats:
    """Hit/miss counters of one buffer lifetime."""

    __slots__ = ("hits", "misses", "fetch_batches", "records_fetched", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fetch_batches = 0
        self.records_fetched = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PrefetchBuffer:
    """LRU cache of keyed records with batched miss handling.

    Parameters
    ----------
    capacity:
        Maximum resident records; 0 disables caching entirely (every
        access is a miss of batch size 1 — the "no prefetch" ablation).
    fetch_batch:
        Callback fetching a list of records for the requested keys from
        the workers (one network round trip per call).
    batch_size:
        How many extra candidate keys to pull per miss.
    """

    def __init__(
        self,
        capacity: int,
        fetch_batch: Callable[[Sequence[Any]], List[tuple]],
        batch_size: int = 64,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.capacity = capacity
        self.batch_size = batch_size
        self._fetch_batch = fetch_batch
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self.stats = PrefetchStats()

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, key: Any, prefetch_candidates: Iterable[Any] = ()
    ) -> Any:
        """Fetch one record, prefetching candidates on a miss.

        ``prefetch_candidates`` should be the current highest-gain nodes
        (likely next accesses); at most ``batch_size − 1`` of them ride
        along with the missed key. The effective batch is further capped
        at ``capacity``, and the requested key is inserted as the most
        recently used entry — so a fetch batch can never evict the very
        record it was issued for.
        """
        if key in self._entries:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]

        self.stats.misses += 1
        wanted: List[Any] = [key]
        if self.capacity:
            limit = min(self.batch_size, self.capacity)
            seen = {key}
            for candidate in prefetch_candidates:
                if len(wanted) >= limit:
                    break
                if candidate not in seen and candidate not in self._entries:
                    wanted.append(candidate)
                    seen.add(candidate)
        fetched = self._fetch_batch(wanted)
        self.stats.fetch_batches += 1
        self.stats.records_fetched += len(fetched)
        result = None
        found = False
        for fetched_key, record in fetched:
            if fetched_key == key:
                result = record
                found = True
            else:
                self._insert(fetched_key, record)
        if not found:
            raise KeyError(f"fetch_batch did not return requested key {key!r}")
        # Inserted last: the requested key ends up most recently used, so
        # the ride-along candidates can neither evict it nor thrash it
        # out before the caller's next access.
        self._insert(key, result)
        return result

    def _insert(self, key: Any, record: Any) -> None:
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = record
            return
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = record

    def invalidate(self, key: Any) -> None:
        """Drop one entry (e.g. after the node is pruned)."""
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()
