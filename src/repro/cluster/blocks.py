"""CSR shard blocks — the worker-resident graph representation.

Section V distributes "the large social graph structure to the workers";
this module holds the flat form it travels and lives in. Each worker
stores one :class:`ShardBlock` per owned partition: a contiguous node
range ``[lo, hi)`` carrying three rebased CSR pairs (friendships,
rejections cast, rejections received) as flat ``array("q")`` buffers,
with cached plain-list and numpy views mirroring
:class:`repro.core.csr.CSRGraph`. Replacing the earlier one-dict-record
-per-node layout with contiguous blocks buys three things:

* **batched block-slice fetches** — one request pulls the adjacency of
  many nodes as a single mini-CSR (:class:`BlockSlices`) whose payload
  is byte-accurate (8 bytes per int64 element plus a fixed header)
  instead of a per-tuple structural estimate;
* **vectorized per-pass state** — the master's gain rebuild and
  cross-cut recount run the :func:`repro.core.kernels.shard_gain_deltas`
  / :func:`~repro.core.kernels.shard_cut_counts` batch kernels over each
  block (numpy on the numpy backend, bit-identical scalar loops
  otherwise);
* **delta-friendly wire accounting** — every message's size follows
  from array lengths, so the delta-broadcast protocol's byte savings
  are exact in ``NetworkSimulator``, not estimated.

:class:`ShardedCSR` is the master's O(#partitions) handle on a
distributed graph: the partition bounds and storage keys, but no
adjacency.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.kernels import buffer_tolist, shard_cut_counts, shard_gain_deltas

__all__ = [
    "ShardBlock",
    "BlockRef",
    "BlockSlices",
    "ShardedCSR",
    "partition_bounds",
    "block_payload_bytes",
    "MESSAGE_HEADER_BYTES",
    "COUNTER_BYTES",
    "SIDE_BYTE",
    "INT_BYTES",
]

#: Fixed per-message framing: kind tag, shard/partition key, length field.
MESSAGE_HEADER_BYTES = 24
#: The two int64 cut counters riding along with a gains reply.
COUNTER_BYTES = 16
#: One packed status byte per node in a full side-vector broadcast.
SIDE_BYTE = 1
#: Wire width of one node id / pointer / gain (int64 / float64).
INT_BYTES = 8


def block_payload_bytes(csr, lo: int, hi: int) -> int:
    """Exact wire size a ``[lo, hi)`` block upload *would* cost, read
    straight off the graph's pointer arrays — no block is built. This is
    what reference-mode distribution charges as avoided bytes."""
    f_ptr, ro_ptr, ri_ptr = csr.f_ptr, csr.ro_ptr, csr.ri_ptr
    elements = 3 * (hi - lo + 1) + (
        (int(f_ptr[hi]) - int(f_ptr[lo]))
        + (int(ro_ptr[hi]) - int(ro_ptr[lo]))
        + (int(ri_ptr[hi]) - int(ri_ptr[lo]))
    )
    return MESSAGE_HEADER_BYTES + INT_BYTES * elements


def partition_bounds(num_nodes: int, num_partitions: int) -> List[int]:
    """Near-even contiguous ranges: partition ``p`` owns nodes
    ``[bounds[p], bounds[p+1])``. The first ``num_nodes %
    num_partitions`` partitions take one extra node."""
    if num_partitions < 1:
        raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
    base, rem = divmod(num_nodes, num_partitions)
    bounds = [0]
    for p in range(num_partitions):
        bounds.append(bounds[-1] + base + (1 if p < rem else 0))
    return bounds


class BlockSlices:
    """The wire form of one batched adjacency fetch: a mini-CSR over the
    requested nodes (in request order), with offsets local to the reply
    and neighbour ids global."""

    __slots__ = ("nodes", "f_off", "f_idx", "ro_off", "ro_idx", "ri_off", "ri_idx")

    def __init__(
        self,
        nodes: List[int],
        f_off: List[int],
        f_idx: List[int],
        ro_off: List[int],
        ro_idx: List[int],
        ri_off: List[int],
        ri_idx: List[int],
    ) -> None:
        self.nodes = nodes
        self.f_off, self.f_idx = f_off, f_idx
        self.ro_off, self.ro_idx = ro_off, ro_idx
        self.ri_off, self.ri_idx = ri_off, ri_idx

    def payload_bytes(self) -> int:
        """Exact wire size: every id/offset is one int64."""
        elements = (
            len(self.nodes)
            + len(self.f_off)
            + len(self.f_idx)
            + len(self.ro_off)
            + len(self.ro_idx)
            + len(self.ri_off)
            + len(self.ri_idx)
        )
        return MESSAGE_HEADER_BYTES + INT_BYTES * elements

    def records(self) -> List[Tuple[int, List[int], List[int], List[int]]]:
        """Unpack into per-node ``(node, friends, rej_out, rej_in)``
        records — the master-side shape ``MasterState.apply_switch``
        consumes."""
        out = []
        f_off, f_idx = self.f_off, self.f_idx
        ro_off, ro_idx = self.ro_off, self.ro_idx
        ri_off, ri_idx = self.ri_off, self.ri_idx
        for j, node in enumerate(self.nodes):
            out.append(
                (
                    node,
                    f_idx[f_off[j] : f_off[j + 1]],
                    ro_idx[ro_off[j] : ro_off[j + 1]],
                    ri_idx[ri_off[j] : ri_off[j + 1]],
                )
            )
        return out


class ShardBlock:
    """One contiguous CSR slice of the graph, resident on a worker.

    Pointers are rebased to the block (``f_ptr[0] == 0``); neighbour ids
    stay global, so gain kernels index the full side vector directly.
    Canonical storage is ``array("q")``; :meth:`hot` and
    :meth:`numpy_state` cache the plain-list and ``int64`` views the two
    kernel backends run on.
    """

    __slots__ = (
        "lo",
        "hi",
        "backend",
        "f_ptr",
        "f_idx",
        "ro_ptr",
        "ro_idx",
        "ri_ptr",
        "ri_idx",
        "_hot_cache",
        "_np_cache",
    )

    def __init__(self, lo: int, hi: int, arrays: Tuple[array, ...], backend: str) -> None:
        self.lo, self.hi = lo, hi
        (
            self.f_ptr,
            self.f_idx,
            self.ro_ptr,
            self.ro_idx,
            self.ri_ptr,
            self.ri_idx,
        ) = arrays
        self.backend = backend
        self._hot_cache: Optional[Tuple[List[int], ...]] = None
        self._np_cache: Optional[Dict[str, object]] = None

    @classmethod
    def from_csr(cls, csr, lo: int, hi: int) -> "ShardBlock":
        """Slice a block out of a finalized :class:`CSRGraph`."""
        return cls(lo, hi, csr.block_arrays(lo, hi), csr.backend)

    @property
    def num_nodes(self) -> int:
        return self.hi - self.lo

    @property
    def num_edges(self) -> int:
        return len(self.f_idx) + len(self.ro_idx) + len(self.ri_idx)

    def payload_bytes(self) -> int:
        """Exact upload size of the block's six flat arrays."""
        elements = (
            len(self.f_ptr)
            + len(self.f_idx)
            + len(self.ro_ptr)
            + len(self.ro_idx)
            + len(self.ri_ptr)
            + len(self.ri_idx)
        )
        return MESSAGE_HEADER_BYTES + INT_BYTES * elements

    def hot(self) -> Tuple[List[int], ...]:
        """Cached plain-list views, mirroring :meth:`CSRGraph.hot`."""
        cache = self._hot_cache
        if cache is None:
            # buffer_tolist (not list()) so blocks sliced as views of a
            # memory-mapped snapshot still yield native ints here — the
            # scalar kernels' backend parity depends on it.
            cache = (
                buffer_tolist(self.f_ptr),
                buffer_tolist(self.f_idx),
                buffer_tolist(self.ro_ptr),
                buffer_tolist(self.ro_idx),
                buffer_tolist(self.ri_ptr),
                buffer_tolist(self.ri_idx),
            )
            self._hot_cache = cache
        return cache

    def numpy_state(self) -> Dict[str, object]:
        """Cached zero-copy ``int64`` views plus per-slot *local* row ids
        (``f_row[i]`` is the block-local row owning slot ``i``)."""
        cache = self._np_cache
        if cache is None:
            import numpy as np

            def view(buf):
                # frombuffer keeps array("q") zero-copy; asarray keeps
                # the ndarray views a snapshot-mapped block slices out.
                if isinstance(buf, array):
                    return np.frombuffer(buf, dtype=np.int64)
                return np.asarray(buf, dtype=np.int64)

            cache = {
                "f_ptr": view(self.f_ptr),
                "f_idx": view(self.f_idx),
                "ro_ptr": view(self.ro_ptr),
                "ro_idx": view(self.ro_idx),
                "ri_ptr": view(self.ri_ptr),
                "ri_idx": view(self.ri_idx),
            }
            rows = np.arange(self.num_nodes, dtype=np.int64)
            cache["f_row"] = np.repeat(rows, np.diff(cache["f_ptr"]))
            cache["ro_row"] = np.repeat(rows, np.diff(cache["ro_ptr"]))
            cache["ri_row"] = np.repeat(rows, np.diff(cache["ri_ptr"]))
            self._np_cache = cache
        return cache

    def slices(self, nodes: Sequence[int]) -> BlockSlices:
        """Batched block-slice read: the adjacency of the requested
        (global-id) nodes as one flat mini-CSR, in request order."""
        fp, fi, op, oi, ip_, ii = self.hot()
        lo = self.lo
        ids: List[int] = []
        f_off, o_off, i_off = [0], [0], [0]
        f_out: List[int] = []
        o_out: List[int] = []
        i_out: List[int] = []
        for node in nodes:
            r = node - lo
            if not 0 <= r < self.num_nodes:
                raise KeyError(
                    f"node {node} outside block range [{lo}, {self.hi})"
                )
            ids.append(node)
            f_out.extend(fi[fp[r] : fp[r + 1]])
            f_off.append(len(f_out))
            o_out.extend(oi[op[r] : op[r + 1]])
            o_off.append(len(o_out))
            i_out.extend(ii[ip_[r] : ip_[r + 1]])
            i_off.append(len(i_out))
        return BlockSlices(ids, f_off, f_out, o_off, o_out, i_off, i_out)

    def pass_state(self, sides: Sequence[int], k: float):
        """Worker-side per-pass contribution: the block's per-node switch
        gains (the single IEEE expression ``-(fd − k·rd)`` over the
        kernel integers, so both backends are bit-identical) plus its
        exact ``(f_cross, r_cross)`` parts."""
        fd, rd = shard_gain_deltas(self, sides)
        gains = [-(fd[r] - k * rd[r]) for r in range(len(fd))]
        f_part, r_part = shard_cut_counts(self, sides)
        return gains, f_part, r_part

    def __repr__(self) -> str:
        return (
            f"ShardBlock([{self.lo}, {self.hi}), edges={self.num_edges}, "
            f"backend={self.backend!r})"
        )


class BlockRef:
    """The wire form of a shard block when a snapshot file backs the
    graph: the snapshot path plus the block's node bounds, instead of
    the six flat arrays.

    A reference costs a fixed header plus the path string and two int64
    bounds — O(1) regardless of block size — and the receiving worker
    *maps* its slice out of the shared snapshot
    (:func:`repro.core.storage.open_snapshot_cached` +
    :meth:`CSRGraph.block_arrays`), so distribution ships kilobytes
    where payload mode ships the graph. The master-side accounting
    records the difference as avoided bytes
    (:class:`repro.cluster.netsim.NetworkStats`).
    """

    __slots__ = ("path", "lo", "hi")

    def __init__(self, path: str, lo: int, hi: int) -> None:
        self.path = path
        self.lo, self.hi = lo, hi

    def payload_bytes(self) -> int:
        """Exact wire size of the reference message: header, the UTF-8
        path, and the two int64 bounds."""
        return MESSAGE_HEADER_BYTES + len(self.path.encode("utf-8")) + 2 * INT_BYTES

    def materialize(self, backend: str = "auto") -> ShardBlock:
        """Map the referenced slice out of the snapshot. Workers share
        one cached open per file, so N blocks of the same graph cost one
        mapping — the in-process analogue of shared read-only pages."""
        from ..core.storage import open_snapshot_cached

        csr = open_snapshot_cached(self.path, mode="mmap", backend=backend)
        return ShardBlock.from_csr(csr, self.lo, self.hi)

    def __repr__(self) -> str:
        return f"BlockRef({self.path!r}, [{self.lo}, {self.hi}))"


class ShardedCSR:
    """The master's handle on a block-distributed CSR graph: partition
    bounds and storage keys only — O(#partitions) memory, no adjacency
    (Section V's master never holds graph structure)."""

    __slots__ = ("shard_id", "bounds", "backend")

    def __init__(self, shard_id: int, bounds: Sequence[int], backend: str) -> None:
        self.shard_id = shard_id
        self.bounds = list(bounds)
        self.backend = backend

    @property
    def num_partitions(self) -> int:
        return len(self.bounds) - 1

    @property
    def num_nodes(self) -> int:
        return self.bounds[-1]

    def key(self, partition_id: int) -> Tuple[str, int, int]:
        """Storage key of one block on its workers."""
        return ("csr", self.shard_id, partition_id)

    def partition_of(self, node: int) -> int:
        """Owning partition of a node (contiguous ranges, O(log P))."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                f"node id {node} out of range for sharded graph with "
                f"{self.num_nodes} nodes"
            )
        return bisect_right(self.bounds, node) - 1

    def range_of(self, partition_id: int) -> Tuple[int, int]:
        return self.bounds[partition_id], self.bounds[partition_id + 1]
