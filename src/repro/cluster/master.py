"""Master-resident algorithm state (Section V).

"We keep on the master the node status with the potential switching gain
and the bucket list that indexes the nodes. This reduces the network I/O
during node status updates, at the cost of constant memory consumption
per node on the master."

:class:`MasterState` is exactly that object: the side assignment, the
incremental cut counters, and the gain index — everything the KL loop
touches per switch — with the O(1)-per-edge update rules shared with the
single-machine implementation. The engine drives it; the workers only
ever see structure fetches.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.gains import GainIndex, make_gain_index
from ..core.objectives import LEGITIMATE, SUSPICIOUS

__all__ = ["MasterState", "NodeRecord"]

#: Per-node adjacency as unpacked from a block-slice fetch:
#: ``(node, friends, rej_out, rej_in)`` with each adjacency an id
#: sequence (list slices off the wire arrays; tuples in older tests).
NodeRecord = Tuple[int, Sequence[int], Sequence[int], Sequence[int]]


class MasterState:
    """Side assignments, cut counters, and the gain index, master-side.

    Memory cost is O(1) per node (the paper's 20-bytes-per-node
    estimate); no adjacency is stored here — switch application takes
    the switched node's record, fetched by the caller.
    """

    __slots__ = ("num_nodes", "k", "sides", "f_cross", "r_cross", "index", "_sequence")

    def __init__(
        self,
        num_nodes: int,
        k: float,
        sides: Sequence[int],
        f_cross: int,
        r_cross: int,
        gain_index: GainIndex,
    ) -> None:
        if len(sides) != num_nodes:
            raise ValueError(
                f"sides has length {len(sides)}, expected {num_nodes}"
            )
        self.num_nodes = num_nodes
        self.k = k
        self.sides: List[int] = list(sides)
        self.f_cross = f_cross
        self.r_cross = r_cross
        self.index = gain_index
        #: applied switches this pass: (node, friends_delta, rej_delta)
        self._sequence: List[Tuple[int, int, int]] = []

    @classmethod
    def for_pass(
        cls,
        num_nodes: int,
        k: float,
        sides: Sequence[int],
        f_cross: int,
        r_cross: int,
        gains: Sequence[Tuple[int, float]],
        locked: Sequence[bool],
        gain_index_kind: str = "bucket",
        max_abs_gain: float = 1.0,
        resolution: int = 8,
    ) -> "MasterState":
        """Build the state for one KL pass, loading unlocked gains."""
        index = make_gain_index(
            gain_index_kind, num_nodes, max_abs_gain, k, resolution
        )
        state = cls(num_nodes, k, sides, f_cross, r_cross, index)
        for node, gain in gains:
            if not locked[node]:
                index.insert(node, gain)
        return state

    # ------------------------------------------------------------------
    # The per-switch hot path
    # ------------------------------------------------------------------
    def pop_best(self) -> Optional[Tuple[int, float]]:
        """Next node to tentatively switch (max gain), or ``None``."""
        return self.index.pop_max()

    def prefetch_candidates(self, count: int) -> List[int]:
        """Current top-gain nodes — the prefetcher's ride-along set."""
        return self.index.top_nodes(count)

    def apply_switch(self, record: NodeRecord) -> None:
        """Apply one tentative switch given the node's adjacency record.

        Updates side, cut counters, and the still-indexed neighbours'
        gains — all O(deg) with O(1) per incident edge, entirely
        master-local (Section V's design goal).
        """
        node, friends, rej_out, rej_in = record
        sides = self.sides
        s = sides[node]
        friends_delta = 0
        for v in friends:
            friends_delta += 1 if sides[v] == s else -1
        rej_delta = 0
        if s == LEGITIMATE:
            for v in rej_out:
                if sides[v] == SUSPICIOUS:
                    rej_delta -= 1
            for w in rej_in:
                if sides[w] == LEGITIMATE:
                    rej_delta += 1
        else:
            for v in rej_out:
                if sides[v] == SUSPICIOUS:
                    rej_delta += 1
            for w in rej_in:
                if sides[w] == LEGITIMATE:
                    rej_delta -= 1
        self.f_cross += friends_delta
        self.r_cross += rej_delta
        sides[node] = 1 - s
        self._sequence.append((node, friends_delta, rej_delta))

        index = self.index
        prev_side = s
        for v in friends:
            if v in index:
                index.adjust(v, 2.0 if sides[v] == prev_side else -2.0)
        rej_sign = self.k * (1 - 2 * prev_side)
        for v in rej_out:
            if v in index:
                index.adjust(v, (2 * sides[v] - 1) * rej_sign)
        for w in rej_in:
            if w in index:
                index.adjust(w, (2 * sides[w] - 1) * rej_sign)

    # ------------------------------------------------------------------
    # Pass bookkeeping
    # ------------------------------------------------------------------
    @property
    def switches_applied(self) -> int:
        return len(self._sequence)

    def applied_nodes(self) -> List[int]:
        """Ids of the currently applied switches, in application order.

        After :meth:`rollback_to`, this is exactly the set of nodes whose
        side differs from the start of the pass (each node is popped at
        most once per pass), i.e. the delta the broadcast protocol ships
        to the worker replicas.
        """
        return [node for node, _, _ in self._sequence]

    def rollback_to(self, keep: int) -> None:
        """Undo every switch beyond the best prefix of length ``keep``."""
        if keep < 0 or keep > len(self._sequence):
            raise ValueError(
                f"keep must be in [0, {len(self._sequence)}], got {keep}"
            )
        for node, friends_delta, rej_delta in reversed(self._sequence[keep:]):
            self.sides[node] = 1 - self.sides[node]
            self.f_cross -= friends_delta
            self.r_cross -= rej_delta
        del self._sequence[keep:]

    def snapshot(self) -> Tuple[List[int], int, int]:
        """(sides, f_cross, r_cross) copies of the current partition."""
        return list(self.sides), self.f_cross, self.r_cross
