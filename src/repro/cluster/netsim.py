"""Simulated network accounting for the mini-cluster.

The real Rejecto prototype runs on Spark over an EC2 cluster (Section V);
this reproduction executes in one process but *accounts* every
master↔worker exchange — message counts and payload bytes — through a
:class:`NetworkSimulator`. A simple latency/bandwidth model converts the
counters into simulated network time, which is what the prefetching
ablation (Section V's "Reducing the network I/O with prefetching")
measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["NetworkModel", "NetworkStats", "NetworkSimulator"]


@dataclass(frozen=True)
class NetworkModel:
    """Cost model for one master↔worker exchange.

    Defaults approximate an intra-datacenter cluster: 0.2 ms per round
    trip and 1 GbE effective bandwidth.
    """

    latency_seconds: float = 0.0002
    bandwidth_bytes_per_second: float = 125_000_000.0

    def transfer_time(self, messages: int, payload_bytes: int) -> float:
        return (
            messages * self.latency_seconds
            + payload_bytes / self.bandwidth_bytes_per_second
        )


@dataclass
class NetworkStats:
    """Accumulated traffic counters.

    ``by_kind`` counts *messages* per kind label; ``bytes_by_kind``
    counts payload bytes per kind, so benchmark reports can attribute
    wire volume (e.g. delta broadcasts vs block fetches) and not just
    round trips.
    """

    messages: int = 0
    bytes_sent: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Bytes a cheaper protocol did *not* put on the wire — e.g. shard
    #: blocks shipped as snapshot references instead of array payloads.
    #: Not part of ``bytes_sent``; purely a savings ledger.
    bytes_avoided: int = 0
    avoided_by_kind: Dict[str, int] = field(default_factory=dict)

    def simulated_seconds(self, model: NetworkModel) -> float:
        return model.transfer_time(self.messages, self.bytes_sent)


class NetworkSimulator:
    """Counts simulated master↔worker traffic."""

    def __init__(self, model: NetworkModel = NetworkModel()) -> None:
        self.model = model
        self.stats = NetworkStats()

    def send(self, kind: str, payload_bytes: int, messages: int = 1) -> None:
        """Record an exchange of ``messages`` messages carrying
        ``payload_bytes`` bytes total, tagged with a ``kind`` label."""
        if payload_bytes < 0 or messages < 0:
            raise ValueError("payload_bytes and messages must be non-negative")
        self.stats.messages += messages
        self.stats.bytes_sent += payload_bytes
        self.stats.by_kind[kind] = self.stats.by_kind.get(kind, 0) + messages
        self.stats.bytes_by_kind[kind] = (
            self.stats.bytes_by_kind.get(kind, 0) + payload_bytes
        )

    def avoided(self, kind: str, payload_bytes: int) -> None:
        """Record bytes that would have travelled under the baseline
        protocol but did not (snapshot references vs block payloads)."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        self.stats.bytes_avoided += payload_bytes
        self.stats.avoided_by_kind[kind] = (
            self.stats.avoided_by_kind.get(kind, 0) + payload_bytes
        )

    def reset(self) -> NetworkStats:
        """Return the current stats and start a fresh accounting window."""
        old = self.stats
        self.stats = NetworkStats()
        return old

    @property
    def simulated_seconds(self) -> float:
        return self.stats.simulated_seconds(self.model)
