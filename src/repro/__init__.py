"""Rejecto — combating friend spam using social rejections.

A from-scratch Python reproduction of the ICDCS 2015 paper: the
rejection-augmented social graph, the extended Kernighan-Lin MAAR cut
solver, the iterative Rejecto detector, the VoteTrust and SybilRank
comparison systems, an attack/workload simulator, a Spark-like
mini-cluster substrate, and an experiment harness regenerating every
figure and table of the paper's evaluation.

Quickstart::

    from repro import Rejecto, RejectoConfig
    from repro.attacks import ScenarioConfig, build_scenario

    scenario = build_scenario(ScenarioConfig(num_legit=2000, num_fakes=400))
    result = Rejecto(RejectoConfig()).detect(scenario.graph)
    print(scenario.precision_recall(result.detected(limit=400)))
"""

from .core import (
    AugmentedSocialGraph,
    KLConfig,
    MAARConfig,
    Partition,
    Rejecto,
    RejectoConfig,
    RejectoResult,
    extended_kl,
    solve_maar,
)

__version__ = "1.0.0"

__all__ = [
    "AugmentedSocialGraph",
    "Partition",
    "KLConfig",
    "MAARConfig",
    "Rejecto",
    "RejectoConfig",
    "RejectoResult",
    "extended_kl",
    "solve_maar",
    "__version__",
]
