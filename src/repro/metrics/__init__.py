"""Evaluation metrics: precision/recall (Section VI-A) and ROC/AUC
(Section VI-D)."""

from .detection import DetectionMetrics, precision_recall
from .distributions import cdf_at, empirical_cdf
from .ranking import average_precision, precision_at_k
from .roc import auc_from_scores, roc_curve

__all__ = [
    "DetectionMetrics",
    "precision_recall",
    "auc_from_scores",
    "roc_curve",
    "empirical_cdf",
    "cdf_at",
    "precision_at_k",
    "average_precision",
]
