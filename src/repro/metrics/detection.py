"""Detection-accuracy metrics.

The paper's headline metric (Section VI-A) is *precision*: the fraction
of declared-suspicious accounts that are actually fake. Because every
scheme is made to declare exactly as many suspicious accounts as the
number of injected fakes, precision and recall coincide — hence the
figures' "Precision/recall" axes. :func:`precision_recall` computes the
full confusion picture and checks that identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set

__all__ = ["DetectionMetrics", "precision_recall"]


@dataclass(frozen=True)
class DetectionMetrics:
    """Confusion counts and derived rates for one detection outcome."""

    true_positives: int
    false_positives: int
    false_negatives: int
    precision: float
    recall: float
    f1: float

    @property
    def declared(self) -> int:
        """Number of accounts declared suspicious."""
        return self.true_positives + self.false_positives


def precision_recall(
    detected: Iterable[int], true_fakes: Iterable[int]
) -> DetectionMetrics:
    """Score a detected-account set against the injected fakes.

    Parameters
    ----------
    detected:
        Account ids declared suspicious by the scheme under test.
    true_fakes:
        Ground-truth fake-account ids.
    """
    detected_set: Set[int] = set(detected)
    fake_set: Set[int] = set(true_fakes)
    tp = len(detected_set & fake_set)
    fp = len(detected_set - fake_set)
    fn = len(fake_set - detected_set)
    precision = tp / len(detected_set) if detected_set else 0.0
    recall = tp / len(fake_set) if fake_set else 1.0
    denominator = precision + recall
    f1 = 2 * precision * recall / denominator if denominator else 0.0
    return DetectionMetrics(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        precision=precision,
        recall=recall,
        f1=f1,
    )
