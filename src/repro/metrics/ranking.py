"""Ranking metrics for scored detections.

SybilRank-style schemes output rankings rather than sets; besides the
AUC (:mod:`repro.metrics.roc`), the operator-facing questions are "how
pure are the first k accounts I act on?" (:func:`precision_at_k`) and
"how good is the ranking overall, weighted toward the top?"
(:func:`average_precision`).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set

__all__ = ["precision_at_k", "average_precision"]


def precision_at_k(
    ranked: Sequence[int], positives: Iterable[int], k: int
) -> float:
    """Fraction of the first ``k`` ranked items that are positive."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not ranked:
        raise ValueError("ranked is empty")
    positive_set: Set[int] = set(positives)
    top = ranked[: min(k, len(ranked))]
    return sum(1 for item in top if item in positive_set) / len(top)


def average_precision(ranked: Sequence[int], positives: Iterable[int]) -> float:
    """Mean of precision@rank over the ranks of the positives.

    Positives absent from the ranking contribute zero, so the score
    penalizes both misordering and omission. 1.0 iff every positive
    occupies the top of the ranking.
    """
    positive_set: Set[int] = set(positives)
    if not positive_set:
        raise ValueError("need at least one positive")
    hits = 0
    precision_sum = 0.0
    for rank, item in enumerate(ranked, start=1):
        if item in positive_set:
            hits += 1
            precision_sum += hits / rank
    return precision_sum / len(positive_set)
