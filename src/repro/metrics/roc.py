"""ROC analysis for ranked Sybil detection.

SybilRank (Section VI-D) outputs a trust *ranking*; the paper measures
its quality as the area under the ROC curve of that ranking — the
probability that a uniformly random Sybil ranks below (is less trusted
than) a uniformly random legitimate user. The AUC here is computed via
the rank-sum (Mann-Whitney) statistic with midrank tie handling, which
is exact and O(n log n); an explicit ROC curve is also provided for
plotting.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["auc_from_scores", "roc_curve"]


def _midranks(values: Sequence[float]) -> List[float]:
    """1-based midranks of ``values`` (ties share their average rank)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and values[order[j + 1]] == values[order[i]]:
            j += 1
        midrank = (i + j) / 2 + 1
        for idx in order[i : j + 1]:
            ranks[idx] = midrank
        i = j + 1
    return ranks


def auc_from_scores(
    scores: Dict[int, float], positives: Iterable[int]
) -> float:
    """AUC of separating positives from negatives by *ascending* score.

    ``scores`` maps each node to its suspiciousness-inverse (e.g.
    SybilRank's degree-normalized trust): positives (Sybils) are expected
    to score *low*. Returns the probability that a random positive scores
    below a random negative, with ties counted half.
    """
    positive_set = set(positives)
    nodes = list(scores)
    if not nodes:
        raise ValueError("scores is empty")
    values = [scores[u] for u in nodes]
    labels = [u in positive_set for u in nodes]
    num_pos = sum(labels)
    num_neg = len(nodes) - num_pos
    if num_pos == 0 or num_neg == 0:
        raise ValueError("need at least one positive and one negative")
    ranks = _midranks(values)
    pos_rank_sum = sum(r for r, is_pos in zip(ranks, labels) if is_pos)
    # Mann-Whitney U for "negative > positive" comparisons.
    u_statistic = pos_rank_sum - num_pos * (num_pos + 1) / 2
    return 1.0 - u_statistic / (num_pos * num_neg)


def roc_curve(
    scores: Dict[int, float], positives: Iterable[int]
) -> List[Tuple[float, float]]:
    """(FPR, TPR) points sweeping the threshold from lowest score up.

    A node is declared positive (Sybil) when its score falls at or below
    the threshold, matching :func:`auc_from_scores`'s orientation.
    """
    positive_set = set(positives)
    ordered = sorted(scores.items(), key=lambda item: item[1])
    num_pos = sum(1 for u, _ in ordered if u in positive_set)
    num_neg = len(ordered) - num_pos
    if num_pos == 0 or num_neg == 0:
        raise ValueError("need at least one positive and one negative")
    points = [(0.0, 0.0)]
    tp = fp = 0
    index = 0
    while index < len(ordered):
        threshold = ordered[index][1]
        while index < len(ordered) and ordered[index][1] == threshold:
            if ordered[index][0] in positive_set:
                tp += 1
            else:
                fp += 1
            index += 1
        points.append((fp / num_neg, tp / num_pos))
    return points
