"""Empirical distribution utilities.

The paper's Section II figures (3-5) are CDFs of account attributes;
:func:`empirical_cdf` computes the standard step-function CDF points and
:func:`cdf_at` evaluates one.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["empirical_cdf", "cdf_at"]


def empirical_cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Points ``(v, P[X <= v])`` of the empirical CDF, one per distinct
    value, in increasing order."""
    if not values:
        raise ValueError("values is empty")
    ordered = sorted(values)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if index == n or ordered[index] != value:
            points.append((value, index / n))
    return points


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """``P[X <= threshold]`` under the empirical distribution."""
    if not values:
        raise ValueError("values is empty")
    return sum(1 for v in values if v <= threshold) / len(values)
