"""Sparse-matrix backend for trust propagation.

The pure-Python power iterations in :mod:`repro.baselines.sybilrank` and
:mod:`repro.baselines.sybilfence` are clear but loop-heavy; this module
provides the equivalent computation on a ``scipy.sparse`` CSR transition
matrix, typically 10-50x faster on large graphs. Both backends are
tested to agree to numerical precision.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np
from scipy import sparse

from ..core.graph import AugmentedSocialGraph

__all__ = ["friendship_transition_matrix", "weighted_transition_matrix", "propagate"]


def friendship_transition_matrix(graph: AugmentedSocialGraph) -> sparse.csr_matrix:
    """Column-stochastic-ish transition matrix ``T`` with
    ``T[v, u] = 1/deg(u)`` for each friendship ``(u, v)``.

    Multiplying a trust vector by ``T`` spreads each node's trust
    equally over its friends — one SybilRank iteration.
    """
    n = graph.num_nodes
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for u in range(n):
        friends = graph.friends[u]
        if not friends:
            continue
        share = 1.0 / len(friends)
        for v in friends:
            rows.append(v)
            cols.append(u)
            data.append(share)
    return sparse.csr_matrix((data, (rows, cols)), shape=(n, n))


def weighted_transition_matrix(
    graph: AugmentedSocialGraph, node_discount: Sequence[float]
) -> sparse.csr_matrix:
    """Transition matrix over feedback-discounted edge weights.

    Edge ``(u, v)`` carries ``discount[u] * discount[v]``; each column
    ``u`` is normalized by ``u``'s total incident weight (SybilFence's
    propagation rule).
    """
    n = graph.num_nodes
    weights: List[Dict[int, float]] = [dict() for _ in range(n)]
    for u, v in graph.friendships():
        weight = node_discount[u] * node_discount[v]
        weights[u][v] = weight
        weights[v][u] = weight
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for u in range(n):
        total = sum(weights[u].values())
        if not total:
            continue
        for v, weight in weights[u].items():
            rows.append(v)
            cols.append(u)
            data.append(weight / total)
    return sparse.csr_matrix((data, (rows, cols)), shape=(n, n))


def propagate(
    transition: sparse.csr_matrix,
    seeds: Sequence[int],
    total_trust: float,
    iterations: int,
) -> np.ndarray:
    """Early-terminated power iteration from the seed distribution."""
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    n = transition.shape[0]
    trust = np.zeros(n)
    share = total_trust / len(seeds)
    for seed in seeds:
        trust[seed] += share
    for _ in range(iterations):
        trust = transition @ trust
    return trust
