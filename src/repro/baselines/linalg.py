"""Sparse-matrix backend plus the shared backend-dispatch helpers.

The pure-Python power iterations in :mod:`repro.baselines.sybilrank` and
:mod:`repro.baselines.sybilfence` are clear but loop-heavy; this module
provides the equivalent computation on a ``scipy.sparse`` CSR transition
matrix, typically 10-50x faster on large graphs. Both backends are
tested to agree to numerical precision.

It also owns the pieces both propagation baselines previously duplicated:
the ``backend`` name validation (the ``"python"|"numpy"`` convention,
shared with :func:`repro.core.csr.resolve_backend`), the default
``ceil(log2 n)`` early-termination count, and the degree-normalized
ranking scores. numpy/scipy are imported lazily inside the matrix
functions so the helpers stay importable without them.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence

from ..core.graph import AugmentedSocialGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np
    from scipy import sparse

__all__ = [
    "friendship_transition_matrix",
    "request_transition_matrix",
    "weighted_transition_matrix",
    "propagate",
    "damped_propagate",
    "default_iterations",
    "validate_backend",
    "resolve_backend",
    "degree_normalized_scores",
]


def default_iterations(num_nodes: int) -> int:
    """The early-termination iteration count ``max(1, ceil(log2 n))``.

    SybilRank's ``O(log n)`` walk length: long enough for trust to reach
    the whole legitimate region, short enough that it has not mixed into
    the Sybil region through the few attack edges.
    """
    return max(1, math.ceil(math.log2(max(2, num_nodes))))


def validate_backend(backend: str) -> str:
    """Check a propagation ``backend`` name (``"python"`` or ``"numpy"``)."""
    if backend not in ("python", "numpy"):
        raise ValueError(f"unknown backend {backend!r}")
    return backend


def _scipy_available() -> bool:
    try:  # pragma: no cover - trivial import probe
        import scipy.sparse  # noqa: F401
    except ImportError:  # pragma: no cover - exercised on scipy-free hosts
        return False
    return True


def resolve_backend(backend: str) -> str:
    """Normalize a propagation ``backend`` request to a concrete name.

    ``"auto"`` prefers ``"numpy"`` when scipy is importable and falls
    back to ``"python"`` otherwise; the ``REPRO_BACKEND`` environment
    variable overrides the ``"auto"`` resolution, mirroring
    :func:`repro.core.csr.resolve_backend`. Explicit names are honoured
    as given — except that requesting ``"numpy"`` without scipy raises
    immediately instead of failing at the first sparse matrix build.
    """
    if backend == "auto":
        override = os.environ.get("REPRO_BACKEND")
        if override and override != "auto":
            return resolve_backend(override)
        return "numpy" if _scipy_available() else "python"
    validate_backend(backend)
    if backend == "numpy" and not _scipy_available():
        raise ValueError("backend 'numpy' requested but scipy is not importable")
    return backend


def degree_normalized_scores(
    graph: AugmentedSocialGraph, trust: Mapping[int, float]
) -> Dict[int, float]:
    """Per-node trust divided by friend degree (zero for isolated nodes).

    ``trust`` is any indexable per-node container — a plain list from the
    python backend or a numpy vector from :func:`propagate`; values are
    coerced to builtin floats so both backends rank identically.
    """
    scores: Dict[int, float] = {}
    for u in range(graph.num_nodes):
        degree = graph.degree(u)
        scores[u] = float(trust[u]) / degree if degree else 0.0
    return scores


def friendship_transition_matrix(graph: AugmentedSocialGraph) -> "sparse.csr_matrix":
    """Column-stochastic-ish transition matrix ``T`` with
    ``T[v, u] = 1/deg(u)`` for each friendship ``(u, v)``.

    Multiplying a trust vector by ``T`` spreads each node's trust
    equally over its friends — one SybilRank iteration.
    """
    from scipy import sparse

    n = graph.num_nodes
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for u in range(n):
        friends = graph.friends[u]
        if not friends:
            continue
        share = 1.0 / len(friends)
        for v in friends:
            rows.append(v)
            cols.append(u)
            data.append(share)
    return sparse.csr_matrix((data, (rows, cols)), shape=(n, n))


def weighted_transition_matrix(
    graph: AugmentedSocialGraph, node_discount: Sequence[float]
) -> "sparse.csr_matrix":
    """Transition matrix over feedback-discounted edge weights.

    Edge ``(u, v)`` carries ``discount[u] * discount[v]``; each column
    ``u`` is normalized by ``u``'s total incident weight (SybilFence's
    propagation rule).
    """
    from scipy import sparse

    n = graph.num_nodes
    weights: List[Dict[int, float]] = [dict() for _ in range(n)]
    for u, v in graph.friendships():
        weight = node_discount[u] * node_discount[v]
        weights[u][v] = weight
        weights[v][u] = weight
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for u in range(n):
        total = sum(weights[u].values())
        if not total:
            continue
        for v, weight in weights[u].items():
            rows.append(v)
            cols.append(u)
            data.append(weight / total)
    return sparse.csr_matrix((data, (rows, cols)), shape=(n, n))


def request_transition_matrix(num_users: int, log) -> "sparse.csr_matrix":
    """Transition matrix over a friend-request log with
    ``T[target, sender] = 1/outdeg(sender)`` per request (duplicate
    requests stack).

    Multiplying a vote vector by ``T`` spreads each sender's votes
    equally over the targets of his requests — one step of VoteTrust's
    vote assignment.
    """
    from scipy import sparse

    out_degree: Dict[int, int] = {}
    for request in log:
        out_degree[request.sender] = out_degree.get(request.sender, 0) + 1
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for request in log:
        rows.append(request.target)
        cols.append(request.sender)
        data.append(1.0 / out_degree[request.sender])
    return sparse.csr_matrix((data, (rows, cols)), shape=(num_users, num_users))


def propagate(
    transition: "sparse.csr_matrix",
    seeds: Sequence[int],
    total_trust: float,
    iterations: int,
) -> "np.ndarray":
    """Early-terminated power iteration from the seed distribution."""
    import numpy as np

    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    n = transition.shape[0]
    trust = np.zeros(n)
    share = total_trust / len(seeds)
    for seed in seeds:
        trust[seed] += share
    for _ in range(iterations):
        trust = transition @ trust
    return trust


def damped_propagate(
    transition: "sparse.csr_matrix",
    restart: Mapping[int, float],
    damping: float,
    iterations: int,
) -> "np.ndarray":
    """Damped (personalized-PageRank-style) power iteration.

    Starts from the restart distribution and iterates
    ``x ← (1 − d)·restart + d·T·x`` — the matrix form of VoteTrust's
    vote-assignment loop.
    """
    import numpy as np

    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    n = transition.shape[0]
    restart_vector = np.zeros(n)
    for u, mass in restart.items():
        restart_vector[u] += mass
    votes = restart_vector.copy()
    for _ in range(iterations):
        votes = (1.0 - damping) * restart_vector + damping * (transition @ votes)
    return votes
