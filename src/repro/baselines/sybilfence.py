"""SybilFence [16] — social-graph defense with negative feedback.

Cao & Yang's technical report (cited as [16]) proposed improving
social-graph-based Sybil defenses with user negative feedback: discount
the social edges of accounts that accumulated negative feedback, then
run the usual early-terminated trust propagation on the reweighted
graph. The paper positions Rejecto against it: "that design does not
seek the aggregate acceptance ratio and is susceptible to attack
strategies."

Implementation: each node's incident edges are discounted by a factor
``1 / (1 + α · rejections_received)``; trust propagates from seeds for
``O(log n)`` iterations proportionally to the discounted edge weights;
users are ranked by trust normalized by weighted degree. The
self-rejection evasion (Section IV-E) transfers directly: sacrificial
accounts absorb rejections while the whitewashed ones keep clean
feedback records — a weakness the tests demonstrate and Rejecto's
iterative cuts do not share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.graph import AugmentedSocialGraph
from .linalg import default_iterations, degree_normalized_scores, resolve_backend

__all__ = ["SybilFenceConfig", "SybilFence"]


@dataclass(frozen=True)
class SybilFenceConfig:
    """SybilFence parameters.

    ``feedback_alpha`` controls how strongly received rejections
    discount a node's edges; ``iterations`` overrides the default
    ``ceil(log2 n)`` early termination; ``total_trust`` is the seed
    mass; ``backend`` is ``"python"`` or ``"numpy"`` (scipy sparse,
    identical results).
    """

    feedback_alpha: float = 0.5
    iterations: Optional[int] = None
    total_trust: float = 1000.0
    backend: str = "python"


class SybilFence:
    """Negative-feedback-weighted trust propagation."""

    def __init__(self, config: Optional[SybilFenceConfig] = None) -> None:
        self.config = config or SybilFenceConfig()

    def _edge_weights(
        self, graph: AugmentedSocialGraph
    ) -> List[Dict[int, float]]:
        """Symmetric discounted weights: an edge carries the product of
        its endpoints' feedback discounts."""
        alpha = self.config.feedback_alpha
        discount = [
            1.0 / (1.0 + alpha * len(graph.rej_in[u]))
            for u in range(graph.num_nodes)
        ]
        weights: List[Dict[int, float]] = [dict() for _ in range(graph.num_nodes)]
        for u, v in graph.friendships():
            weight = discount[u] * discount[v]
            weights[u][v] = weight
            weights[v][u] = weight
        return weights

    def rank(
        self,
        graph: AugmentedSocialGraph,
        trusted_seeds: Sequence[int],
    ) -> Dict[int, float]:
        """Weighted-degree-normalized trust (higher = more trusted)."""
        if not trusted_seeds:
            raise ValueError("SybilFence needs at least one trusted seed")
        config = self.config
        n = graph.num_nodes
        backend = resolve_backend(config.backend)
        iterations = config.iterations
        if iterations is None:
            iterations = default_iterations(n)
        if backend == "numpy":
            from .linalg import propagate, weighted_transition_matrix

            discount = [
                1.0 / (1.0 + config.feedback_alpha * len(graph.rej_in[u]))
                for u in range(n)
            ]
            trust_vector = propagate(
                weighted_transition_matrix(graph, discount),
                trusted_seeds,
                config.total_trust,
                iterations,
            )
            return degree_normalized_scores(graph, trust_vector)
        weights = self._edge_weights(graph)
        strength = [sum(w.values()) for w in weights]
        trust = [0.0] * n
        share = config.total_trust / len(trusted_seeds)
        for seed in trusted_seeds:
            trust[seed] += share
        for _ in range(iterations):
            nxt = [0.0] * n
            for u in range(n):
                mass = trust[u]
                if not mass or not strength[u]:
                    continue
                scale = mass / strength[u]
                for v, weight in weights[u].items():
                    nxt[v] += scale * weight
            trust = nxt
        # Normalize by the *raw* degree: the weighted walk's stationary
        # trust is proportional to discounted strength, so dividing by
        # raw degree leaves exactly the feedback discount as the ranking
        # signal (normalizing by strength would cancel it out).
        return degree_normalized_scores(graph, trust)

    def most_suspicious(
        self,
        graph: AugmentedSocialGraph,
        trusted_seeds: Sequence[int],
        count: int,
    ) -> List[int]:
        """The ``count`` least-trusted users."""
        scores = self.rank(graph, trusted_seeds)
        return sorted(scores, key=lambda u: (scores[u], u))[:count]
