"""Signed-network trust propagation (PageTrust-style) — related work.

Section VIII discusses trust propagation in signed social networks
(PageTrust [20], Guha et al. [23], Ziegler & Lausen [40]): rank users by
propagating trust along positive edges and *distrust* along negative
ones. The paper's critique: "they consider negative votes and ratings
that malicious users can arbitrarily cast. As a result, they are not
resilient to user distortion" — in contrast to social rejections, which
only exist if the *victim* sent a request (Section II-B's
non-manipulability argument).

This module implements a representative such scheme so the critique is
runnable (see ``tests/baselines/test_related_work.py`` and
``benchmarks/bench_related_work.py``): a damped trust walk over the
positive (friendship) edges from trusted seeds, discounted by the
trust-weighted negative ratings each user received. Negative ratings are
a free-form input — *anyone may rate anyone* — which is precisely the
attack surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.graph import AugmentedSocialGraph

__all__ = ["SignedTrustConfig", "SignedTrust"]


@dataclass(frozen=True)
class SignedTrustConfig:
    """Parameters of the signed trust propagation.

    ``distrust_weight`` scales how strongly received negative ratings
    discount a user's propagated trust; ``iterations`` bounds the trust
    walk; ``damping`` is the restart probability mass kept at the seeds.
    """

    damping: float = 0.85
    iterations: int = 30
    distrust_weight: float = 1.0


class SignedTrust:
    """Trust/distrust ranking over a friendship graph plus ratings."""

    def __init__(self, config: Optional[SignedTrustConfig] = None) -> None:
        self.config = config or SignedTrustConfig()

    def rank(
        self,
        graph: AugmentedSocialGraph,
        trusted_seeds: Sequence[int],
        negative_ratings: Iterable[Tuple[int, int]] = (),
    ) -> Dict[int, float]:
        """Final scores (higher = more trusted).

        ``negative_ratings`` are ``(rater, target)`` pairs. Unlike the
        rejection edges of the augmented graph, they carry no structural
        precondition — any account can rate any other, which is exactly
        what makes the scheme manipulable.
        """
        if not trusted_seeds:
            raise ValueError("signed trust needs at least one trusted seed")
        config = self.config
        n = graph.num_nodes
        restart = [0.0] * n
        share = 1.0 / len(trusted_seeds)
        for seed in trusted_seeds:
            restart[seed] += share
        trust = list(restart)
        for _ in range(config.iterations):
            nxt = [(1 - config.damping) * r for r in restart]
            for u in range(n):
                mass = trust[u]
                friends = graph.friends[u]
                if not mass or not friends:
                    continue
                spread = config.damping * mass / len(friends)
                for v in friends:
                    nxt[v] += spread
            trust = nxt

        # Distrust: each negative rating discounts the target with weight
        # ``1 + n·trust(rater)`` — a baseline unit so *every* account's
        # ratings count for something (the standard design, and exactly
        # the manipulation opening), boosted by the rater's trust so
        # well-trusted raters count for more. ``n·trust`` makes an
        # average-trust rater's boost ~1 regardless of graph size.
        distrust = [0.0] * n
        for rater, target in negative_ratings:
            distrust[target] += (1.0 + n * trust[rater]) * config.distrust_weight
        scores: Dict[int, float] = {}
        for u in range(n):
            scores[u] = trust[u] / (1.0 + distrust[u])
        return scores

    def most_suspicious(
        self,
        graph: AugmentedSocialGraph,
        trusted_seeds: Sequence[int],
        count: int,
        negative_ratings: Iterable[Tuple[int, int]] = (),
    ) -> List[int]:
        """The ``count`` lowest-scored users."""
        scores = self.rank(graph, trusted_seeds, negative_ratings)
        return sorted(scores, key=lambda u: (scores[u], u))[:count]
