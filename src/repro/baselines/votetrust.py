"""VoteTrust [35] — the paper's comparison system (Section VI).

VoteTrust ranks users on the directed friend-request graph in two steps:

1. **Vote assignment** — a PageRank-like computation over request edges
   seeded at trusted users assigns each user a number of *votes*. Fake
   accounts attract few organic requests, so their votes are low — but
   the paper notes this is manipulable, since attackers can request
   among themselves [18].
2. **Vote aggregation** — each user's *rating* is the weighted average
   of the responses (1 = accepted, 0 = rejected) that his outgoing
   requests received; the weight of the request to target ``w`` is
   ``votes(w) · rating(w)``, so being accepted by well-voted, well-rated
   users counts for more. Ratings are computed iteratively because they
   appear in their own weights.

The lowest-rated users are declared suspicious. Exactly this two-step
design is what Section VI shows to be fragile under collusion (weights
among fakes rise together) and to *benefit* from self-rejection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..attacks.requests import RequestLog
from .linalg import resolve_backend

__all__ = ["VoteTrustConfig", "VoteTrustResult", "VoteTrust"]


@dataclass(frozen=True)
class VoteTrustConfig:
    """VoteTrust parameters.

    ``damping``/``vote_iterations`` drive the PageRank-like vote
    assignment; ``rating_iterations`` drives the aggregation;
    ``default_rating`` is assigned to users who never sent a request
    (no evidence, treated as legitimate-looking).

    ``prior_weight``/``prior_rating`` smooth the aggregation with a
    pseudo-observation worth ``prior_weight`` mean-vote-weighted
    accepted requests: a legitimate user with one or two sporadic
    rejections is pulled toward the prior instead of collapsing to a
    zero rating, while a spammer's 20 mostly-rejected requests swamp
    it. Without smoothing the scheme misranks low-activity legitimate
    users far below the paper's reported accuracy.

    ``vote_floor`` gives every response a baseline voting capacity of
    ``vote_floor`` times the mean vote, on top of the propagated votes —
    every OSN user can respond to requests, not only those reachable
    from the trust seeds. The floor is also what makes VoteTrust exhibit
    its documented collusion sensitivity (Fig. 13): intra-fake accepted
    responses carry this baseline weight, so dense collusion inflates
    colluders' ratings — exactly the manipulability the paper points out
    (its [18]: PageRank-style scores can be gamed by accounts requesting
    among themselves).

    ``backend`` selects the pure-Python dict loops (``"python"``) or the
    scipy-sparse / numpy implementation of both steps (``"numpy"``,
    agrees to numerical precision, much faster on large request logs);
    ``"auto"`` resolves like the other propagation baselines
    (:func:`repro.baselines.linalg.resolve_backend`).
    """

    damping: float = 0.85
    vote_iterations: int = 30
    rating_iterations: int = 10
    default_rating: float = 1.0
    prior_weight: float = 5.0
    prior_rating: float = 1.0
    vote_floor: float = 1.0
    backend: str = "python"


@dataclass
class VoteTrustResult:
    """Votes, ratings, and the derived suspicious ranking."""

    votes: Dict[int, float]
    ratings: Dict[int, float]

    def ranked_suspicious(self) -> List[int]:
        """All users, most suspicious first.

        Primary key: ascending rating (low acceptance of one's requests);
        secondary: ascending votes (few organic incoming requests);
        ternary: node id, for determinism.
        """
        return sorted(
            self.ratings,
            key=lambda u: (self.ratings[u], self.votes.get(u, 0.0), u),
        )

    def most_suspicious(self, count: int) -> List[int]:
        """The ``count`` users with the lowest ratings."""
        return self.ranked_suspicious()[:count]


class VoteTrust:
    """The VoteTrust fake-account detector.

    Operates on a :class:`repro.attacks.requests.RequestLog` — the
    directed friend-request graph with responses — plus a set of trusted
    seed users for the vote assignment.
    """

    def __init__(self, config: Optional[VoteTrustConfig] = None) -> None:
        self.config = config or VoteTrustConfig()

    # ------------------------------------------------------------------
    # Step 1: PageRank-like vote assignment.
    # ------------------------------------------------------------------
    def assign_votes(
        self,
        num_users: int,
        log: RequestLog,
        trusted_seeds: Sequence[int],
    ) -> Dict[int, float]:
        """Votes via damped power iteration along request edges.

        Trust is injected at the seeds and flows along each request
        ``u → v`` in proportion to ``u``'s out-degree; the total vote
        mass is ``num_users``, mirroring PageRank with a personalized
        restart vector.
        """
        if not trusted_seeds:
            raise ValueError("vote assignment needs at least one trusted seed")
        config = self.config
        backend = resolve_backend(config.backend)
        seed_share = num_users / len(trusted_seeds)
        restart = {seed: seed_share for seed in trusted_seeds}
        if backend == "numpy":
            from .linalg import damped_propagate, request_transition_matrix

            final = damped_propagate(
                request_transition_matrix(num_users, log),
                restart,
                config.damping,
                config.vote_iterations,
            )
            # Same key set as the dict loop: every node holding vote
            # mass, plus the restart nodes (whose mass can only vanish
            # at damping=1).
            return {
                u: float(final[u])
                for u in range(num_users)
                if final[u] > 0.0 or u in restart
            }
        out_edges: Dict[int, List[int]] = {}
        for request in log:
            out_edges.setdefault(request.sender, []).append(request.target)
        votes = dict(restart)
        for _ in range(config.vote_iterations):
            incoming: Dict[int, float] = {}
            for sender, targets in out_edges.items():
                mass = votes.get(sender, 0.0)
                if not mass:
                    continue
                share = mass / len(targets)
                for target in targets:
                    incoming[target] = incoming.get(target, 0.0) + share
            votes = {
                u: (1 - config.damping) * restart.get(u, 0.0)
                + config.damping * incoming.get(u, 0.0)
                for u in set(restart) | set(incoming)
            }
        return votes

    # ------------------------------------------------------------------
    # Step 2: iterative vote aggregation.
    # ------------------------------------------------------------------
    def aggregate_ratings(
        self,
        num_users: int,
        log: RequestLog,
        votes: Dict[int, float],
    ) -> Dict[int, float]:
        """Ratings as vote-weighted acceptance averages of sent requests."""
        config = self.config
        backend = resolve_backend(config.backend)
        mean_vote = sum(votes.values()) / len(votes) if votes else 0.0
        prior_mass = config.prior_weight * mean_vote
        floor = config.vote_floor * mean_vote
        if backend == "numpy":
            return self._aggregate_ratings_numpy(
                num_users, log, votes, prior_mass, floor
            )
        out_requests = log.out_requests()
        ratings = {u: config.default_rating for u in range(num_users)}
        for _ in range(config.rating_iterations):
            updated = dict(ratings)
            for sender, requests in out_requests.items():
                numerator = prior_mass * config.prior_rating
                denominator = prior_mass
                for request in requests:
                    weight = (votes.get(request.target, 0.0) + floor) * ratings.get(
                        request.target, config.default_rating
                    )
                    denominator += weight
                    if request.accepted:
                        numerator += weight
                if denominator > 0:
                    updated[sender] = numerator / denominator
            ratings = updated
        return ratings

    def _aggregate_ratings_numpy(
        self,
        num_users: int,
        log: RequestLog,
        votes: Dict[int, float],
        prior_mass: float,
        floor: float,
    ) -> Dict[int, float]:
        """Vectorized aggregation: one scatter-add per Jacobi sweep.

        Mirrors the dict loop exactly — all senders update
        simultaneously from the previous sweep's ratings — so the two
        backends agree to summation-order precision.
        """
        import numpy as np

        config = self.config
        senders = np.fromiter(
            (request.sender for request in log), dtype=np.int64, count=len(log)
        )
        targets = np.fromiter(
            (request.target for request in log), dtype=np.int64, count=len(log)
        )
        accepted = np.fromiter(
            (request.accepted for request in log), dtype=bool, count=len(log)
        )
        votes_vector = np.zeros(num_users)
        for u, mass in votes.items():
            votes_vector[u] = mass
        base_weight = votes_vector[targets] + floor
        has_requests = np.zeros(num_users, dtype=bool)
        has_requests[senders] = True
        ratings = np.full(num_users, config.default_rating)
        for _ in range(config.rating_iterations):
            weight = base_weight * ratings[targets]
            denominator = np.full(num_users, prior_mass)
            np.add.at(denominator, senders, weight)
            numerator = np.full(num_users, prior_mass * config.prior_rating)
            np.add.at(numerator, senders, np.where(accepted, weight, 0.0))
            update = has_requests & (denominator > 0)
            updated = ratings.copy()
            updated[update] = numerator[update] / denominator[update]
            ratings = updated
        return {u: float(ratings[u]) for u in range(num_users)}

    # ------------------------------------------------------------------
    # End to end.
    # ------------------------------------------------------------------
    def rank(
        self,
        num_users: int,
        log: RequestLog,
        trusted_seeds: Sequence[int],
    ) -> VoteTrustResult:
        """Run both steps and return the full result."""
        votes = self.assign_votes(num_users, log, trusted_seeds)
        ratings = self.aggregate_ratings(num_users, log, votes)
        return VoteTrustResult(votes=votes, ratings=ratings)

    def detect(
        self,
        num_users: int,
        log: RequestLog,
        trusted_seeds: Sequence[int],
        suspicious_count: int,
    ) -> List[int]:
        """The ``suspicious_count`` lowest-rated users (the paper's
        evaluation declares as many suspicious users as injected fakes)."""
        return self.rank(num_users, log, trusted_seeds).most_suspicious(
            suspicious_count
        )
