"""VoteTrust [35] — the paper's comparison system (Section VI).

VoteTrust ranks users on the directed friend-request graph in two steps:

1. **Vote assignment** — a PageRank-like computation over request edges
   seeded at trusted users assigns each user a number of *votes*. Fake
   accounts attract few organic requests, so their votes are low — but
   the paper notes this is manipulable, since attackers can request
   among themselves [18].
2. **Vote aggregation** — each user's *rating* is the weighted average
   of the responses (1 = accepted, 0 = rejected) that his outgoing
   requests received; the weight of the request to target ``w`` is
   ``votes(w) · rating(w)``, so being accepted by well-voted, well-rated
   users counts for more. Ratings are computed iteratively because they
   appear in their own weights.

The lowest-rated users are declared suspicious. Exactly this two-step
design is what Section VI shows to be fragile under collusion (weights
among fakes rise together) and to *benefit* from self-rejection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..attacks.requests import RequestLog

__all__ = ["VoteTrustConfig", "VoteTrustResult", "VoteTrust"]


@dataclass(frozen=True)
class VoteTrustConfig:
    """VoteTrust parameters.

    ``damping``/``vote_iterations`` drive the PageRank-like vote
    assignment; ``rating_iterations`` drives the aggregation;
    ``default_rating`` is assigned to users who never sent a request
    (no evidence, treated as legitimate-looking).

    ``prior_weight``/``prior_rating`` smooth the aggregation with a
    pseudo-observation worth ``prior_weight`` mean-vote-weighted
    accepted requests: a legitimate user with one or two sporadic
    rejections is pulled toward the prior instead of collapsing to a
    zero rating, while a spammer's 20 mostly-rejected requests swamp
    it. Without smoothing the scheme misranks low-activity legitimate
    users far below the paper's reported accuracy.

    ``vote_floor`` gives every response a baseline voting capacity of
    ``vote_floor`` times the mean vote, on top of the propagated votes —
    every OSN user can respond to requests, not only those reachable
    from the trust seeds. The floor is also what makes VoteTrust exhibit
    its documented collusion sensitivity (Fig. 13): intra-fake accepted
    responses carry this baseline weight, so dense collusion inflates
    colluders' ratings — exactly the manipulability the paper points out
    (its [18]: PageRank-style scores can be gamed by accounts requesting
    among themselves).
    """

    damping: float = 0.85
    vote_iterations: int = 30
    rating_iterations: int = 10
    default_rating: float = 1.0
    prior_weight: float = 5.0
    prior_rating: float = 1.0
    vote_floor: float = 1.0


@dataclass
class VoteTrustResult:
    """Votes, ratings, and the derived suspicious ranking."""

    votes: Dict[int, float]
    ratings: Dict[int, float]

    def ranked_suspicious(self) -> List[int]:
        """All users, most suspicious first.

        Primary key: ascending rating (low acceptance of one's requests);
        secondary: ascending votes (few organic incoming requests);
        ternary: node id, for determinism.
        """
        return sorted(
            self.ratings,
            key=lambda u: (self.ratings[u], self.votes.get(u, 0.0), u),
        )

    def most_suspicious(self, count: int) -> List[int]:
        """The ``count`` users with the lowest ratings."""
        return self.ranked_suspicious()[:count]


class VoteTrust:
    """The VoteTrust fake-account detector.

    Operates on a :class:`repro.attacks.requests.RequestLog` — the
    directed friend-request graph with responses — plus a set of trusted
    seed users for the vote assignment.
    """

    def __init__(self, config: Optional[VoteTrustConfig] = None) -> None:
        self.config = config or VoteTrustConfig()

    # ------------------------------------------------------------------
    # Step 1: PageRank-like vote assignment.
    # ------------------------------------------------------------------
    def assign_votes(
        self,
        num_users: int,
        log: RequestLog,
        trusted_seeds: Sequence[int],
    ) -> Dict[int, float]:
        """Votes via damped power iteration along request edges.

        Trust is injected at the seeds and flows along each request
        ``u → v`` in proportion to ``u``'s out-degree; the total vote
        mass is ``num_users``, mirroring PageRank with a personalized
        restart vector.
        """
        if not trusted_seeds:
            raise ValueError("vote assignment needs at least one trusted seed")
        config = self.config
        out_edges: Dict[int, List[int]] = {}
        for request in log:
            out_edges.setdefault(request.sender, []).append(request.target)
        seed_share = num_users / len(trusted_seeds)
        restart = {seed: seed_share for seed in trusted_seeds}
        votes = dict(restart)
        for _ in range(config.vote_iterations):
            incoming: Dict[int, float] = {}
            for sender, targets in out_edges.items():
                mass = votes.get(sender, 0.0)
                if not mass:
                    continue
                share = mass / len(targets)
                for target in targets:
                    incoming[target] = incoming.get(target, 0.0) + share
            votes = {
                u: (1 - config.damping) * restart.get(u, 0.0)
                + config.damping * incoming.get(u, 0.0)
                for u in set(restart) | set(incoming)
            }
        return votes

    # ------------------------------------------------------------------
    # Step 2: iterative vote aggregation.
    # ------------------------------------------------------------------
    def aggregate_ratings(
        self,
        num_users: int,
        log: RequestLog,
        votes: Dict[int, float],
    ) -> Dict[int, float]:
        """Ratings as vote-weighted acceptance averages of sent requests."""
        config = self.config
        out_requests = log.out_requests()
        ratings = {u: config.default_rating for u in range(num_users)}
        mean_vote = sum(votes.values()) / len(votes) if votes else 0.0
        prior_mass = config.prior_weight * mean_vote
        floor = config.vote_floor * mean_vote
        for _ in range(config.rating_iterations):
            updated = dict(ratings)
            for sender, requests in out_requests.items():
                numerator = prior_mass * config.prior_rating
                denominator = prior_mass
                for request in requests:
                    weight = (votes.get(request.target, 0.0) + floor) * ratings.get(
                        request.target, config.default_rating
                    )
                    denominator += weight
                    if request.accepted:
                        numerator += weight
                if denominator > 0:
                    updated[sender] = numerator / denominator
            ratings = updated
        return ratings

    # ------------------------------------------------------------------
    # End to end.
    # ------------------------------------------------------------------
    def rank(
        self,
        num_users: int,
        log: RequestLog,
        trusted_seeds: Sequence[int],
    ) -> VoteTrustResult:
        """Run both steps and return the full result."""
        votes = self.assign_votes(num_users, log, trusted_seeds)
        ratings = self.aggregate_ratings(num_users, log, votes)
        return VoteTrustResult(votes=votes, ratings=ratings)

    def detect(
        self,
        num_users: int,
        log: RequestLog,
        trusted_seeds: Sequence[int],
        suspicious_count: int,
    ) -> List[int]:
        """The ``suspicious_count`` lowest-rated users (the paper's
        evaluation declares as many suspicious users as injected fakes)."""
        return self.rank(num_users, log, trusted_seeds).most_suspicious(
            suspicious_count
        )
