"""SybilRank [15] — the social-graph-based Sybil detector used for the
defense-in-depth study (Sections II-C, VI-D).

SybilRank distributes trust from known legitimate seeds via an
early-terminated power iteration over the *friendship* graph:

* trust starts concentrated on the seeds,
* each iteration spreads every node's trust equally over its friends,
* after ``O(log n)`` iterations (before trust mixes into the Sybil
  region through the few attack edges) the per-node trust is
  *degree-normalized* and users are ranked by it — Sybils sink to the
  bottom of the ranking.

The ranking quality is measured by the AUC of separating Sybils from
legitimate users (:func:`repro.metrics.roc.auc_from_scores`). Removing
friend spammers with Rejecto first cuts most attack edges, which is what
Figure 16 shows driving the AUC toward 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.graph import AugmentedSocialGraph
from .linalg import default_iterations, degree_normalized_scores, resolve_backend

__all__ = ["SybilRankConfig", "SybilRank"]


@dataclass(frozen=True)
class SybilRankConfig:
    """SybilRank parameters.

    ``iterations`` overrides the default early-termination count of
    ``ceil(log2(n))`` when set; ``total_trust`` is the trust mass
    injected at the seeds. ``backend`` selects the pure-Python loop
    (``"python"``) or the scipy sparse-matrix implementation
    (``"numpy"``, identical results, much faster on large graphs).
    """

    iterations: Optional[int] = None
    total_trust: float = 1000.0
    backend: str = "python"


class SybilRank:
    """Early-terminated trust propagation over the friendship graph."""

    def __init__(self, config: Optional[SybilRankConfig] = None) -> None:
        self.config = config or SybilRankConfig()

    def rank(
        self,
        graph: AugmentedSocialGraph,
        trusted_seeds: Sequence[int],
    ) -> Dict[int, float]:
        """Degree-normalized trust of every node (higher = more trusted).

        Isolated nodes keep zero trust and a degree-normalized score of
        zero — they are maximally suspicious, matching SybilRank's
        treatment of nodes unreachable from the seeds. Rejection edges
        are ignored: SybilRank predates rejection-augmented graphs.
        """
        if not trusted_seeds:
            raise ValueError("SybilRank needs at least one trusted seed")
        n = graph.num_nodes
        config = self.config
        backend = resolve_backend(config.backend)
        iterations = config.iterations
        if iterations is None:
            iterations = default_iterations(n)
        if backend == "numpy":
            from .linalg import friendship_transition_matrix, propagate

            trust_vector = propagate(
                friendship_transition_matrix(graph),
                trusted_seeds,
                config.total_trust,
                iterations,
            )
            return degree_normalized_scores(graph, trust_vector)
        trust = [0.0] * n
        share = config.total_trust / len(trusted_seeds)
        for seed in trusted_seeds:
            trust[seed] += share
        for _ in range(iterations):
            nxt = [0.0] * n
            for u in range(n):
                mass = trust[u]
                friends = graph.friends[u]
                if not mass or not friends:
                    continue
                spread = mass / len(friends)
                for v in friends:
                    nxt[v] += spread
            trust = nxt
        return degree_normalized_scores(graph, trust)

    def most_suspicious(
        self,
        graph: AugmentedSocialGraph,
        trusted_seeds: Sequence[int],
        count: int,
    ) -> List[int]:
        """The ``count`` lowest-scored (least trusted) users."""
        scores = self.rank(graph, trusted_seeds)
        return sorted(scores, key=lambda u: (scores[u], u))[:count]
