"""Naive per-user rejection-rate filter.

The "simple spam filter" the paper argues collusion defeats (Section
VI-C, [16], [36]): score each user by the rejection rate of his own
requests, estimated from the augmented graph as
``rejections_received / (rejections_received + friends)``, and declare
the highest-scoring users suspicious.

Collusion breaks it directly: intra-fake accepted requests inflate the
denominator of every colluder, dragging individual rates down to
legitimate levels while the *aggregate* cross-region rate — what Rejecto
measures — is untouched. Kept as an ablation baseline to demonstrate
exactly that failure mode.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.graph import AugmentedSocialGraph

__all__ = ["rejection_rate_scores", "naive_rejection_filter"]


def rejection_rate_scores(graph: AugmentedSocialGraph) -> Dict[int, float]:
    """Per-user estimated request-rejection rate (higher = worse)."""
    scores: Dict[int, float] = {}
    for u in range(graph.num_nodes):
        rejected = len(graph.rej_in[u])
        accepted = len(graph.friends[u])
        total = rejected + accepted
        scores[u] = rejected / total if total else 0.0
    return scores


def naive_rejection_filter(
    graph: AugmentedSocialGraph, suspicious_count: int
) -> List[int]:
    """The ``suspicious_count`` users with the highest rejection rates.

    Ties break toward more absolute rejections, then by id.
    """
    scores = rejection_rate_scores(graph)
    return sorted(
        scores,
        key=lambda u: (-scores[u], -len(graph.rej_in[u]), u),
    )[:suspicious_count]
