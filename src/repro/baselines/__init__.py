"""Comparison and companion systems.

* :class:`VoteTrust` — the paper's experimental comparison [35]
  (PageRank-like votes + iterative vote aggregation on the directed
  friend-request graph).
* :class:`SybilRank` — the social-graph-based detector [15] composed
  with Rejecto in the defense-in-depth study (Section VI-D).
* :func:`naive_rejection_filter` — the per-user rejection-rate filter
  that collusion defeats (ablation baseline).
* :class:`SignedTrust`, :func:`triad_census`/:func:`balance_filter`,
  :class:`SybilFence` — the related approaches of Section VIII
  ([20]/[23]/[40] signed trust, [29] structural balance, [16]
  SybilFence), implemented so the paper's critiques of them are
  runnable.
"""

from .balance import TriadCensus, balance_filter, balance_scores, triad_census
from .rejection_filter import naive_rejection_filter, rejection_rate_scores
from .signed_trust import SignedTrust, SignedTrustConfig
from .sybilfence import SybilFence, SybilFenceConfig
from .sybilrank import SybilRank, SybilRankConfig
from .votetrust import VoteTrust, VoteTrustConfig, VoteTrustResult

__all__ = [
    "VoteTrust",
    "VoteTrustConfig",
    "VoteTrustResult",
    "SybilRank",
    "SybilRankConfig",
    "naive_rejection_filter",
    "rejection_rate_scores",
    "SignedTrust",
    "SignedTrustConfig",
    "SybilFence",
    "SybilFenceConfig",
    "TriadCensus",
    "triad_census",
    "balance_scores",
    "balance_filter",
]
