"""Structural balance analysis of the signed social graph — related work.

Section VIII: recent signed-network work studies *structural balance*
[29] — a triad (three mutually connected users) is balanced if its edge
signs respect "the friend of my friend is my friend / the enemy of my
enemy is my friend" (an even number of negative edges). The paper
remarks that "it is unclear how the structure balance theory could be
used to detect friend spammers."

This module makes that remark testable: it computes the signed triad
census of an augmented graph (friendships as ``+``, rejections collapsed
to undirected ``−``) and derives the obvious per-node spam score — the
fraction of a user's triads that are unbalanced. The tests and the
related-work benchmark show the score separates friend spammers far
worse than the MAAR cut does, substantiating the remark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.graph import AugmentedSocialGraph

__all__ = ["TriadCensus", "triad_census", "balance_scores", "balance_filter"]


@dataclass
class TriadCensus:
    """Counts of signed triads by number of negative edges."""

    all_positive: int = 0  # +++ balanced
    one_negative: int = 0  # ++- unbalanced
    two_negative: int = 0  # +-- balanced
    all_negative: int = 0  # --- unbalanced

    @property
    def total(self) -> int:
        return (
            self.all_positive
            + self.one_negative
            + self.two_negative
            + self.all_negative
        )

    @property
    def balanced(self) -> int:
        return self.all_positive + self.two_negative

    @property
    def unbalanced(self) -> int:
        return self.one_negative + self.all_negative

    @property
    def balance_fraction(self) -> float:
        return self.balanced / self.total if self.total else 1.0


def _signed_adjacency(graph: AugmentedSocialGraph) -> List[Dict[int, int]]:
    """Per-node map neighbour -> sign (+1 friendship, -1 any rejection).

    A pair with both a friendship and a rejection counts as negative:
    the negative interaction is the anomaly balance theory keys on.
    """
    signs: List[Dict[int, int]] = [dict() for _ in range(graph.num_nodes)]
    for u, v in graph.friendships():
        signs[u][v] = 1
        signs[v][u] = 1
    for rejecter, sender in graph.rejections():
        signs[rejecter][sender] = -1
        signs[sender][rejecter] = -1
    return signs


def triad_census(graph: AugmentedSocialGraph) -> TriadCensus:
    """Census of all signed triads (triangles in the signed graph)."""
    signs = _signed_adjacency(graph)
    census = TriadCensus()
    for u in range(graph.num_nodes):
        neighbours = [v for v in signs[u] if v > u]
        for i, v in enumerate(neighbours):
            for w in neighbours[i + 1 :]:
                sign_vw = signs[v].get(w)
                if sign_vw is None:
                    continue
                negatives = (
                    (signs[u][v] < 0) + (signs[u][w] < 0) + (sign_vw < 0)
                )
                if negatives == 0:
                    census.all_positive += 1
                elif negatives == 1:
                    census.one_negative += 1
                elif negatives == 2:
                    census.two_negative += 1
                else:
                    census.all_negative += 1
    return census


def balance_scores(graph: AugmentedSocialGraph) -> Dict[int, float]:
    """Per-node fraction of *unbalanced* incident triads (higher = worse).

    Nodes in no triads score 0 (no evidence either way).
    """
    signs = _signed_adjacency(graph)
    unbalanced = [0] * graph.num_nodes
    total = [0] * graph.num_nodes
    for u in range(graph.num_nodes):
        neighbours = [v for v in signs[u] if v > u]
        for i, v in enumerate(neighbours):
            for w in neighbours[i + 1 :]:
                sign_vw = signs[v].get(w)
                if sign_vw is None:
                    continue
                negatives = (
                    (signs[u][v] < 0) + (signs[u][w] < 0) + (sign_vw < 0)
                )
                is_unbalanced = negatives % 2 == 1
                for node in (u, v, w):
                    total[node] += 1
                    if is_unbalanced:
                        unbalanced[node] += 1
    return {
        u: (unbalanced[u] / total[u] if total[u] else 0.0)
        for u in range(graph.num_nodes)
    }


def balance_filter(graph: AugmentedSocialGraph, suspicious_count: int) -> List[int]:
    """The ``suspicious_count`` users with the most unbalanced triads.

    Ties break toward more absolute unbalanced involvement, then by id.
    """
    scores = balance_scores(graph)
    signs = _signed_adjacency(graph)
    return sorted(
        scores,
        key=lambda u: (-scores[u], -len(signs[u]), u),
    )[:suspicious_count]
