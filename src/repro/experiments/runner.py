"""Shared machinery for running detection schemes over scenarios.

Every figure of the evaluation compares Rejecto against VoteTrust under
one scenario family; this module runs both (plus the naive filter, for
ablations) with the paper's protocol: each scheme declares exactly as
many suspicious accounts as the number of injected fakes, making
precision equal recall (Section VI-A).
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from ..attacks.scenario import Scenario
from ..baselines.rejection_filter import naive_rejection_filter
from ..baselines.votetrust import VoteTrust, VoteTrustConfig
from ..core.maar import MAARConfig
from ..core.rejecto import Rejecto, RejectoConfig
from ..metrics.detection import DetectionMetrics

__all__ = [
    "SchemeSetup",
    "load_graph_source",
    "run_rejecto",
    "run_votetrust",
    "run_naive_filter",
    "evaluate_schemes",
]


def _sniff_format(path: Path) -> str:
    """Classify an on-disk graph: ``"snapshot"`` (binary magic),
    ``"augmented"`` (F/R edge lines), or ``"snap"`` (plain edge list)."""
    from ..core.storage import MAGIC

    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rb") as handle:
        head = handle.read(len(MAGIC))
    if head == MAGIC:
        return "snapshot"
    text_opener = (lambda p: gzip.open(p, "rt")) if path.suffix == ".gz" else open
    with text_opener(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            token = line.split(None, 1)[0]
            return "augmented" if token in ("F", "R") else "snap"
    return "snap"


def load_graph_source(
    source: Union[str, Path],
    as_csr: bool = True,
    mode: str = "mmap",
    cache: bool = False,
):
    """Open a graph from any of the on-disk forms the repo reads.

    The format is sniffed, not guessed from the extension: a binary
    snapshot (``repro.core.storage`` magic) is memory-mapped — the
    cold-start-free path the experiment drivers prefer; an ``F``/``R``
    augmented edge-line file goes through
    :func:`repro.io.load_augmented_graph`; anything else parses as a
    SNAP edge list (``.gz`` transparently), with ``cache=True`` packing
    it once into the loader's content-hash cache. Snapshot sources are
    always CSR; text sources honour ``as_csr``.
    """
    source = Path(source)
    kind = _sniff_format(source)
    if kind == "snapshot":
        from ..core.csr import CSRGraph

        return CSRGraph.open(source, mode=mode)
    if kind == "augmented":
        from ..io import load_augmented_graph

        return load_augmented_graph(source, as_csr=as_csr)
    from ..graphgen.loaders import load_snap_edgelist

    return load_snap_edgelist(
        source, as_csr=as_csr, cache=cache and as_csr
    )


@dataclass(frozen=True)
class SchemeSetup:
    """Per-scheme knobs shared across an experiment.

    ``num_trusted_seeds`` feeds VoteTrust's vote assignment;
    ``rejecto_legit_seeds``/``rejecto_spammer_seeds`` pin nodes in
    Rejecto's KL search. Both schemes get seed knowledge because the
    paper assumes OSN providers know a small set of inspected users
    (Section III-B) and pre-places them to rule out the problematic
    legitimate-region cuts (Section IV-F). ``k_steps`` bounds Rejecto's
    ``k`` sweep; ``jobs``/``executor`` fan that sweep out through
    :mod:`repro.core.parallel` inside every detection round (results
    are bit-identical to the serial sweep).
    """

    num_trusted_seeds: int = 20
    rejecto_legit_seeds: int = 30
    rejecto_spammer_seeds: int = 0
    k_steps: int = 10
    max_rounds: int = 25
    jobs: int = 1
    executor: str = "auto"
    votetrust: VoteTrustConfig = field(default_factory=VoteTrustConfig)


def run_rejecto(
    scenario: Scenario, setup: Optional[SchemeSetup] = None
) -> DetectionMetrics:
    """Rejecto with the paper's termination: cut until the estimated
    spammer count (= injected fakes) is reached, then trim."""
    setup = setup or SchemeSetup()
    declared = len(scenario.fakes)
    legit_seeds: Sequence[int] = ()
    spammer_seeds: Sequence[int] = ()
    if setup.rejecto_legit_seeds or setup.rejecto_spammer_seeds:
        legit_seeds, spammer_seeds = scenario.sample_seeds(
            setup.rejecto_legit_seeds, setup.rejecto_spammer_seeds
        )
    config = RejectoConfig(
        maar=MAARConfig(
            k_steps=setup.k_steps, jobs=setup.jobs, executor=setup.executor
        ),
        estimated_spammers=declared,
        max_rounds=setup.max_rounds,
    )
    result = Rejecto(config).detect(
        scenario.graph, legit_seeds=legit_seeds, spammer_seeds=spammer_seeds
    )
    return scenario.precision_recall(result.detected(limit=declared))


def run_votetrust(
    scenario: Scenario, setup: Optional[SchemeSetup] = None
) -> DetectionMetrics:
    """VoteTrust declaring the ``|fakes|`` lowest-rated users suspicious."""
    setup = setup or SchemeSetup()
    declared = len(scenario.fakes)
    trusted_seeds, _ = scenario.sample_seeds(setup.num_trusted_seeds, 0)
    detected = VoteTrust(setup.votetrust).detect(
        scenario.num_nodes, scenario.request_log, trusted_seeds, declared
    )
    return scenario.precision_recall(detected)


def run_naive_filter(scenario: Scenario) -> DetectionMetrics:
    """The per-user rejection-rate filter (ablation only)."""
    detected = naive_rejection_filter(scenario.graph, len(scenario.fakes))
    return scenario.precision_recall(detected)


def evaluate_schemes(
    scenario: Scenario,
    setup: Optional[SchemeSetup] = None,
    include_naive: bool = False,
) -> Dict[str, DetectionMetrics]:
    """Run the figure's scheme pair (plus optionally the naive filter)."""
    results = {
        "Rejecto": run_rejecto(scenario, setup),
        "VoteTrust": run_votetrust(scenario, setup),
    }
    if include_naive:
        results["NaiveFilter"] = run_naive_filter(scenario)
    return results
