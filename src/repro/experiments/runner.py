"""Shared machinery for running detection schemes over scenarios.

Every figure of the evaluation compares Rejecto against VoteTrust under
one scenario family; this module runs both (plus the naive filter, for
ablations) with the paper's protocol: each scheme declares exactly as
many suspicious accounts as the number of injected fakes, making
precision equal recall (Section VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..attacks.scenario import Scenario
from ..baselines.rejection_filter import naive_rejection_filter
from ..baselines.votetrust import VoteTrust, VoteTrustConfig
from ..core.maar import MAARConfig
from ..core.rejecto import Rejecto, RejectoConfig
from ..metrics.detection import DetectionMetrics

__all__ = ["SchemeSetup", "run_rejecto", "run_votetrust", "run_naive_filter", "evaluate_schemes"]


@dataclass(frozen=True)
class SchemeSetup:
    """Per-scheme knobs shared across an experiment.

    ``num_trusted_seeds`` feeds VoteTrust's vote assignment;
    ``rejecto_legit_seeds``/``rejecto_spammer_seeds`` pin nodes in
    Rejecto's KL search. Both schemes get seed knowledge because the
    paper assumes OSN providers know a small set of inspected users
    (Section III-B) and pre-places them to rule out the problematic
    legitimate-region cuts (Section IV-F). ``k_steps`` bounds Rejecto's
    ``k`` sweep; ``jobs``/``executor`` fan that sweep out through
    :mod:`repro.core.parallel` inside every detection round (results
    are bit-identical to the serial sweep).
    """

    num_trusted_seeds: int = 20
    rejecto_legit_seeds: int = 30
    rejecto_spammer_seeds: int = 0
    k_steps: int = 10
    max_rounds: int = 25
    jobs: int = 1
    executor: str = "auto"
    votetrust: VoteTrustConfig = field(default_factory=VoteTrustConfig)


def run_rejecto(
    scenario: Scenario, setup: Optional[SchemeSetup] = None
) -> DetectionMetrics:
    """Rejecto with the paper's termination: cut until the estimated
    spammer count (= injected fakes) is reached, then trim."""
    setup = setup or SchemeSetup()
    declared = len(scenario.fakes)
    legit_seeds: Sequence[int] = ()
    spammer_seeds: Sequence[int] = ()
    if setup.rejecto_legit_seeds or setup.rejecto_spammer_seeds:
        legit_seeds, spammer_seeds = scenario.sample_seeds(
            setup.rejecto_legit_seeds, setup.rejecto_spammer_seeds
        )
    config = RejectoConfig(
        maar=MAARConfig(
            k_steps=setup.k_steps, jobs=setup.jobs, executor=setup.executor
        ),
        estimated_spammers=declared,
        max_rounds=setup.max_rounds,
    )
    result = Rejecto(config).detect(
        scenario.graph, legit_seeds=legit_seeds, spammer_seeds=spammer_seeds
    )
    return scenario.precision_recall(result.detected(limit=declared))


def run_votetrust(
    scenario: Scenario, setup: Optional[SchemeSetup] = None
) -> DetectionMetrics:
    """VoteTrust declaring the ``|fakes|`` lowest-rated users suspicious."""
    setup = setup or SchemeSetup()
    declared = len(scenario.fakes)
    trusted_seeds, _ = scenario.sample_seeds(setup.num_trusted_seeds, 0)
    detected = VoteTrust(setup.votetrust).detect(
        scenario.num_nodes, scenario.request_log, trusted_seeds, declared
    )
    return scenario.precision_recall(detected)


def run_naive_filter(scenario: Scenario) -> DetectionMetrics:
    """The per-user rejection-rate filter (ablation only)."""
    detected = naive_rejection_filter(scenario.graph, len(scenario.fakes))
    return scenario.precision_recall(detected)


def evaluate_schemes(
    scenario: Scenario,
    setup: Optional[SchemeSetup] = None,
    include_naive: bool = False,
) -> Dict[str, DetectionMetrics]:
    """Run the figure's scheme pair (plus optionally the naive filter)."""
    results = {
        "Rejecto": run_rejecto(scenario, setup),
        "VoteTrust": run_votetrust(scenario, setup),
    }
    if include_naive:
        results["NaiveFilter"] = run_naive_filter(scenario)
    return results
