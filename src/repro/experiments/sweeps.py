"""Parameter sweeps for Figures 9-15, 17, and 18.

Each function regenerates one figure's x-axis sweep and returns a
:class:`SweepResult` whose series are precision/recall values per scheme
— the same rows the paper plots. Figures 17 and 18 (appendices A and B)
repeat the sensitivity and strategy sweeps on the other six Table I
graphs.

Workload sizes default to a laptop-scale reduction of the paper's setup
(the paper: 10K-node graphs + 10K fakes; here: configurable, default
1500 + 300). Per-fake quantities (requests, rejection rates, collusion
links) are kept at paper values so crossovers land in the same places.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..attacks.scenario import ScenarioConfig, build_scenario
from ..core.parallel import parallel_map
from .runner import SchemeSetup, evaluate_schemes
from .tables import format_series

__all__ = [
    "SweepConfig",
    "SweepResult",
    "request_volume_sweep",
    "stealth_sweep",
    "spam_rejection_sweep",
    "legit_rejection_sweep",
    "collusion_sweep",
    "self_rejection_sweep",
    "legit_victim_rejection_sweep",
    "appendix_sensitivity",
    "appendix_strategies",
    "APPENDIX_DATASETS",
]

#: The six non-Facebook graphs of Table I, as used in Figs. 17 and 18.
APPENDIX_DATASETS = [
    "ca-HepTh",
    "ca-AstroPh",
    "email-Enron",
    "soc-Epinions",
    "soc-Slashdot",
    "synthetic",
]


@dataclass(frozen=True)
class SweepConfig:
    """Scale and base-scenario knobs shared by all sweeps.

    ``trials`` repeats every sweep point over consecutive seeds
    (``seed``, ``seed+1``, …) and reports the mean precision per point;
    the per-trial spread is kept in :attr:`SweepResult.spread`.
    ``jobs > 1`` fans the sweep points out through
    :mod:`repro.core.parallel` (each point is an independent simulation,
    so this is embarrassingly parallel); ``executor`` picks the backend
    (``"auto"`` → worker processes on fork platforms).
    """

    num_legit: int = 1500
    num_fakes: int = 300
    dataset: str = "facebook"
    seed: int = 7
    trials: int = 1
    jobs: int = 1
    executor: str = "auto"
    setup: SchemeSetup = field(default_factory=SchemeSetup)

    def base_scenario(self, trial: int = 0, **overrides) -> ScenarioConfig:
        return ScenarioConfig(
            dataset=self.dataset,
            num_legit=self.num_legit,
            num_fakes=self.num_fakes,
            seed=self.seed + trial,
        ).with_overrides(**overrides)


@dataclass
class SweepResult:
    """One figure's data: x values and a precision series per scheme.

    ``series`` holds per-point mean precision over the configured
    trials; ``spread`` holds the matching max−min range per point
    (zero for single-trial runs).
    """

    figure: str
    x_label: str
    x_values: List[float]
    series: Dict[str, List[float]]
    spread: Dict[str, List[float]] = field(default_factory=dict)
    trials: int = 1

    def render(self) -> str:
        title = self.figure
        if self.trials > 1:
            title += f" (mean of {self.trials} trials)"
        return format_series(
            self.x_label, self.x_values, self.series, title=title
        )


def _evaluate_point(
    job: Tuple[ScenarioConfig, SchemeSetup], shared: object = None
) -> Dict[str, float]:
    """One (scenario, setup) evaluation — module-level so worker
    processes can unpickle and run it. ``shared`` is unused (each point
    builds its own scenario) but part of the ``parallel_map`` task
    signature."""
    scenario_config, setup = job
    scenario = build_scenario(scenario_config)
    outcome = evaluate_schemes(scenario, setup)
    return {scheme: metrics.precision for scheme, metrics in outcome.items()}


def _run_sweep(
    figure: str,
    x_label: str,
    x_values: Sequence[float],
    config: SweepConfig,
    scenario_for: Callable[..., ScenarioConfig],
) -> SweepResult:
    trials = max(1, config.trials)
    jobs = [
        (scenario_for(x, trial=trial), config.setup)
        for x in x_values
        for trial in range(trials)
    ]
    outcomes = parallel_map(
        _evaluate_point, jobs, jobs=config.jobs, executor=config.executor
    )

    series: Dict[str, List[float]] = {}
    spread: Dict[str, List[float]] = {}
    for index in range(len(x_values)):
        per_scheme: Dict[str, List[float]] = {}
        for trial in range(trials):
            outcome = outcomes[index * trials + trial]
            for scheme, precision in outcome.items():
                per_scheme.setdefault(scheme, []).append(precision)
        for scheme, values in per_scheme.items():
            series.setdefault(scheme, []).append(sum(values) / len(values))
            spread.setdefault(scheme, []).append(max(values) - min(values))
    return SweepResult(
        figure=figure,
        x_label=x_label,
        x_values=list(x_values),
        series=series,
        spread=spread,
        trials=trials,
    )


# ----------------------------------------------------------------------
# Figure 9: request volume, all fakes spamming.
# ----------------------------------------------------------------------
def request_volume_sweep(
    config: Optional[SweepConfig] = None,
    request_counts: Sequence[int] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50),
) -> SweepResult:
    """Precision/recall vs requests per fake account (Fig. 9)."""
    config = config or SweepConfig()
    return _run_sweep(
        "Fig. 9 — request volume (all fakes spam)",
        "requests/fake",
        list(request_counts),
        config,
        lambda x, trial=0: config.base_scenario(trial=trial, requests_per_fake=int(x)),
    )


# ----------------------------------------------------------------------
# Figure 10: request volume, half the fakes spamming (stealth).
# ----------------------------------------------------------------------
def stealth_sweep(
    config: Optional[SweepConfig] = None,
    request_counts: Sequence[int] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50),
) -> SweepResult:
    """Precision/recall vs requests per fake, half of the fakes sending
    (Fig. 10)."""
    config = config or SweepConfig()
    return _run_sweep(
        "Fig. 10 — request volume (half of the fakes spam)",
        "requests/fake",
        list(request_counts),
        config,
        lambda x, trial=0: config.base_scenario(
            trial=trial, requests_per_fake=int(x), spam_sender_fraction=0.5
        ),
    )


# ----------------------------------------------------------------------
# Figure 11: rejection rate of spam requests.
# ----------------------------------------------------------------------
def spam_rejection_sweep(
    config: Optional[SweepConfig] = None,
    rates: Sequence[float] = (0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95),
) -> SweepResult:
    """Precision/recall vs spam-request rejection rate (Fig. 11)."""
    config = config or SweepConfig()
    return _run_sweep(
        "Fig. 11 — rejection rate of spam requests",
        "spam rejection rate",
        list(rates),
        config,
        lambda x, trial=0: config.base_scenario(trial=trial, spam_rejection_rate=float(x)),
    )


# ----------------------------------------------------------------------
# Figure 12: rejection rate among legitimate users.
# ----------------------------------------------------------------------
def legit_rejection_sweep(
    config: Optional[SweepConfig] = None,
    rates: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
) -> SweepResult:
    """Precision/recall vs legitimate-request rejection rate, spam rate
    fixed at 0.7 (Fig. 12)."""
    config = config or SweepConfig()
    return _run_sweep(
        "Fig. 12 — rejection rate of legitimate requests",
        "legit rejection rate",
        list(rates),
        config,
        lambda x, trial=0: config.base_scenario(trial=trial, legit_rejection_rate=float(x)),
    )


# ----------------------------------------------------------------------
# Figure 13: collusion (dense intra-fake connections).
# ----------------------------------------------------------------------
def collusion_sweep(
    config: Optional[SweepConfig] = None,
    extra_links: Sequence[int] = (0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40),
) -> SweepResult:
    """Precision/recall vs accepted intra-fake requests per fake
    (Fig. 13). The per-account rejection rate falls from 70% toward ~23%
    as the extra links dilute it — Rejecto's aggregate rate is immune."""
    config = config or SweepConfig()
    return _run_sweep(
        "Fig. 13 — collusion: non-attack edges per fake",
        "extra links/fake",
        list(extra_links),
        config,
        lambda x, trial=0: config.base_scenario(trial=trial, collusion_extra_links=int(x)),
    )


# ----------------------------------------------------------------------
# Figure 14: self-rejection.
# ----------------------------------------------------------------------
def self_rejection_sweep(
    config: Optional[SweepConfig] = None,
    rates: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95),
) -> SweepResult:
    """Precision/recall vs self-rejection rate among fakes (Fig. 14).

    Half of the fakes are whitewashed: the other half send them requests
    rejected at the x-axis rate (Section VI-C)."""
    config = config or SweepConfig()
    return _run_sweep(
        "Fig. 14 — self-rejection among fake accounts",
        "self-rejection rate",
        list(rates),
        config,
        lambda x, trial=0: config.base_scenario(trial=trial, self_rejection_rate=float(x)),
    )


# ----------------------------------------------------------------------
# Figure 15: Sybils rejecting legitimate users' requests.
# ----------------------------------------------------------------------
def legit_victim_rejection_sweep(
    config: Optional[SweepConfig] = None,
    per_fake_rejections: Sequence[float] = (0, 1.6, 3.2, 4.8, 6.4, 8, 9.6, 11.2, 12.8, 14.4, 16),
) -> SweepResult:
    """Precision/recall vs rejections planted on legitimate users
    (Fig. 15).

    The paper's x axis is absolute (16K-160K rejections against 10K
    fakes); here it is expressed per fake (1.6-16) so the crossover —
    where the planted volume overtakes the ~14/fake legitimate-user
    rejections — lands at the same relative position at any scale."""
    config = config or SweepConfig()
    return _run_sweep(
        "Fig. 15 — rejections of legitimate requests by Sybils",
        "rejections/fake",
        list(per_fake_rejections),
        config,
        lambda x, trial=0: config.base_scenario(
            trial=trial, rejections_on_legit=int(x * config.num_fakes)
        ),
    )


# ----------------------------------------------------------------------
# Appendices A and B: the other six graphs.
# ----------------------------------------------------------------------
def appendix_sensitivity(
    config: Optional[SweepConfig] = None,
    datasets: Sequence[str] = tuple(APPENDIX_DATASETS),
    points: int = 5,
) -> Dict[str, List[SweepResult]]:
    """Fig. 17: the four sensitivity sweeps (request volume all/half,
    spam rejection rate, legit rejection rate) on each other graph."""
    config = config or SweepConfig()
    results: Dict[str, List[SweepResult]] = {}
    request_counts = _subsample((5, 10, 15, 20, 25, 30, 35, 40, 45, 50), points)
    spam_rates = _subsample((0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95), points)
    legit_rates = _subsample((0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9), points)
    for dataset in datasets:
        dataset_config = replace(config, dataset=dataset)
        results[dataset] = [
            request_volume_sweep(dataset_config, request_counts),
            stealth_sweep(dataset_config, request_counts),
            spam_rejection_sweep(dataset_config, spam_rates),
            legit_rejection_sweep(dataset_config, legit_rates),
        ]
    return results


def appendix_strategies(
    config: Optional[SweepConfig] = None,
    datasets: Sequence[str] = tuple(APPENDIX_DATASETS),
    points: int = 5,
) -> Dict[str, List[SweepResult]]:
    """Fig. 18: the three strategy sweeps (collusion, self-rejection,
    rejecting legitimate requests) on each other graph."""
    config = config or SweepConfig()
    results: Dict[str, List[SweepResult]] = {}
    links = _subsample((0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40), points)
    self_rates = _subsample(
        (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95), points
    )
    per_fake = _subsample((0, 1.6, 3.2, 4.8, 6.4, 8, 9.6, 11.2, 12.8, 14.4, 16), points)
    for dataset in datasets:
        dataset_config = replace(config, dataset=dataset)
        results[dataset] = [
            collusion_sweep(dataset_config, links),
            self_rejection_sweep(dataset_config, self_rates),
            legit_victim_rejection_sweep(dataset_config, per_fake),
        ]
    return results


def _subsample(values: Sequence[float], count: int) -> List[float]:
    """Evenly pick ``count`` values (always keeping the endpoints)."""
    if count >= len(values):
        return list(values)
    if count < 2:
        return [values[0]]
    step = (len(values) - 1) / (count - 1)
    return [values[round(i * step)] for i in range(count)]
