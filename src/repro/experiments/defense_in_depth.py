"""Defense in depth with SybilRank (Figure 16, Sections II-C and VI-D).

The paper's composition: run Rejecto first, remove the accounts it
flags (with their links and rejections), then run SybilRank over the
residual friendship graph and measure the AUC of its Sybil/legitimate
ranking. Removing friend spammers cuts most attack edges, so the AUC
climbs toward 1 as the removal budget grows.

Workload per Section VI-D: a Sybil region as large as the legitimate
graph, where only half of the fakes send spam (20 requests each, 70%
rejected) — the spamming half is what Rejecto can see; the silent half
is what SybilRank must catch.

The legitimate region is a *community-structured* stand-in
(:func:`repro.graphgen.communities.community_graph`): SybilRank's
pre-removal ranking quality depends on slow trust mixing inside the
legitimate region, which the paper's real Facebook sample has and a
single-block expander-like generator does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import random

from ..attacks.scenario import Scenario, ScenarioConfig, build_scenario
from ..baselines.sybilrank import SybilRank, SybilRankConfig
from ..core.seeds import community_seeds
from ..graphgen.communities import community_graph_with_labels
from ..graphgen.datasets import CATALOG
from ..core.maar import MAARConfig
from ..core.rejecto import Rejecto, RejectoConfig
from ..metrics.roc import auc_from_scores
from .tables import format_series

__all__ = ["DefenseInDepthConfig", "DefenseInDepthResult", "defense_in_depth"]


@dataclass(frozen=True)
class DefenseInDepthConfig:
    """Figure 16 parameters.

    The paper's Sybil region is as large as the legitimate graph (10K
    Sybils on the 10K-node Facebook sample), half of it spamming, and
    the removal budget sweeps up to that spamming half — defaults mirror
    those proportions at reduced scale. ``num_fakes=None`` means "equal
    to ``num_legit``"; ``removal_fractions`` are fractions of the fake
    population.
    """

    dataset: str = "facebook"
    num_legit: int = 1000
    num_fakes: Optional[int] = None
    removal_fractions: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
    num_trusted_seeds: int = 10
    num_communities: int = 8
    bridges_per_community: int = 3
    k_steps: int = 10
    seed: int = 7

    @property
    def fake_count(self) -> int:
        return self.num_fakes if self.num_fakes is not None else self.num_legit

    @property
    def removal_budgets(self) -> List[int]:
        return [int(round(f * self.fake_count)) for f in self.removal_fractions]


@dataclass
class DefenseInDepthResult:
    """AUC of SybilRank's ranking per Rejecto removal budget."""

    dataset: str
    removal_budgets: List[int]
    auc_values: List[float]
    removed_fakes: List[int]  # how many of the removed were actually fake

    def render(self) -> str:
        return format_series(
            "#removed",
            self.removal_budgets,
            {"SybilRank AUC": self.auc_values},
            title=f"Fig. 16 — defense in depth ({self.dataset})",
        )


def _sybilrank_auc_after_removal(
    scenario: Scenario,
    removed: Sequence[int],
    trusted_seeds: Sequence[int],
) -> float:
    """SybilRank AUC on the graph with ``removed`` pruned.

    Fakes that were removed count as caught: they are excluded from the
    ranking, and the AUC is computed over the remaining fakes. If no
    fakes remain the ranking is vacuously perfect (AUC 1.0)."""
    removed_set = set(removed)
    keep = [u for u in range(scenario.num_nodes) if u not in removed_set]
    residual, old_ids = scenario.graph.subgraph(keep)
    position = {old: new for new, old in enumerate(old_ids)}
    seeds = [position[s] for s in trusted_seeds if s in position]
    remaining_fakes = [position[f] for f in scenario.fakes if f in position]
    if not remaining_fakes:
        return 1.0
    scores = SybilRank(SybilRankConfig()).rank(residual, seeds)
    return auc_from_scores(scores, remaining_fakes)


def defense_in_depth(
    config: Optional[DefenseInDepthConfig] = None,
) -> DefenseInDepthResult:
    """Regenerate Figure 16: SybilRank AUC vs Rejecto removal budget."""
    config = config or DefenseInDepthConfig()
    spec = CATALOG[config.dataset]
    base_graph, communities = community_graph_with_labels(
        config.num_legit,
        config.num_communities,
        spec.m,
        spec.triad_prob,
        bridges_per_community=config.bridges_per_community,
        rng=random.Random(config.seed),
    )
    scenario = build_scenario(
        ScenarioConfig(
            dataset=config.dataset,
            num_legit=config.num_legit,
            num_fakes=config.fake_count,
            spam_sender_fraction=0.5,
            seed=config.seed,
        ),
        base_graph=base_graph,
    )
    trusted_seeds = community_seeds(
        communities, config.num_trusted_seeds, random.Random(config.seed)
    )

    budgets = config.removal_budgets
    max_budget = max(budgets)
    rejecto = Rejecto(
        RejectoConfig(
            maar=MAARConfig(k_steps=config.k_steps),
            estimated_spammers=max_budget if max_budget else None,
        )
    )
    # The trusted seeds serve both systems, as in the paper: SybilRank's
    # trust sources and Rejecto's pre-placed legitimate users (§IV-F).
    detection = rejecto.detect(scenario.graph, legit_seeds=trusted_seeds)
    ranked_removals = detection.detected()

    fake_set = set(scenario.fakes)
    auc_values: List[float] = []
    removed_fakes: List[int] = []
    for budget in budgets:
        removed = ranked_removals[:budget]
        auc_values.append(
            _sybilrank_auc_after_removal(scenario, removed, trusted_seeds)
        )
        removed_fakes.append(sum(1 for u in removed if u in fake_set))
    return DefenseInDepthResult(
        dataset=config.dataset,
        removal_budgets=list(budgets),
        auc_values=auc_values,
        removed_fakes=removed_fakes,
    )
