"""ASCII line charts for figure series.

The paper's figures are precision/recall curves; the CLI renders them as
tables by default, but a terminal chart makes the *shapes* — flat
Rejecto lines, VoteTrust slopes, the Fig. 15 cliff — immediately
visible. Pure text, no plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["ascii_chart", "render_sweep_chart"]

_MARKERS = "*o+x#@%&"


def ascii_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    y_min: float = 0.0,
    y_max: float = 1.0,
    x_label: str = "",
    title: Optional[str] = None,
) -> str:
    """Render named series as an ASCII chart.

    Each series gets a marker character; points are plotted on a
    ``width x height`` grid spanning ``[min(x), max(x)]`` by
    ``[y_min, y_max]``. Overlapping points show the *later* series'
    marker. Values outside the y range are clamped.
    """
    if not x_values:
        raise ValueError("x_values is empty")
    if not series:
        raise ValueError("series is empty")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, "
                f"expected {len(x_values)}"
            )
    if y_max <= y_min:
        raise ValueError("y_max must exceed y_min")
    if width < 8 or height < 4:
        raise ValueError("chart must be at least 8x4")

    x_lo, x_hi = min(x_values), max(x_values)
    x_span = (x_hi - x_lo) or 1.0
    y_span = y_max - y_min
    grid = [[" "] * width for _ in range(height)]

    def column(x: float) -> int:
        return min(width - 1, int((x - x_lo) / x_span * (width - 1) + 0.5))

    def row(y: float) -> int:
        clamped = min(y_max, max(y_min, y))
        # Row 0 is the top of the chart.
        return min(
            height - 1,
            int((y_max - clamped) / y_span * (height - 1) + 0.5),
        )

    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(x_values, values):
            grid[row(y)][column(x)] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_max:.2f}"), len(f"{y_min:.2f}"))
    for r, cells in enumerate(grid):
        if r == 0:
            label = f"{y_max:.2f}".rjust(label_width)
        elif r == height - 1:
            label = f"{y_min:.2f}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(cells)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_left = f"{x_lo:g}"
    x_right = f"{x_hi:g}"
    padding = width - len(x_left) - len(x_right)
    lines.append(
        " " * (label_width + 2) + x_left + " " * max(1, padding) + x_right
    )
    if x_label:
        lines.append(" " * (label_width + 2) + x_label)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def render_sweep_chart(sweep, width: int = 60, height: int = 16) -> str:
    """Chart a :class:`repro.experiments.sweeps.SweepResult`."""
    return ascii_chart(
        sweep.x_values,
        sweep.series,
        width=width,
        height=height,
        x_label=sweep.x_label,
        title=sweep.figure,
    )
