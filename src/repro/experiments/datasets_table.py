"""Table I: the dataset summary.

Generates each catalog stand-in and reports measured node/edge counts,
clustering coefficient, and (double-sweep lower-bound) diameter next to
the paper's published values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..graphgen.datasets import CATALOG, dataset_names, generate_dataset
from ..graphgen.stats import graph_stats
from .tables import format_table

__all__ = ["DatasetRow", "DatasetTableResult", "datasets_table"]


@dataclass
class DatasetRow:
    """One measured-vs-paper Table I row."""

    name: str
    nodes: int
    edges: int
    clustering: float
    diameter: int
    paper_nodes: int
    paper_edges: int
    paper_clustering: float
    paper_diameter: int


@dataclass
class DatasetTableResult:
    rows: List[DatasetRow]
    scale: float

    def render(self) -> str:
        return format_table(
            [
                "dataset",
                "nodes",
                "edges",
                "clustering",
                "diam>=",
                "paper nodes",
                "paper edges",
                "paper cc",
                "paper diam",
            ],
            [
                [
                    row.name,
                    row.nodes,
                    row.edges,
                    row.clustering,
                    row.diameter,
                    row.paper_nodes,
                    row.paper_edges,
                    row.paper_clustering,
                    row.paper_diameter,
                ]
                for row in self.rows
            ],
            title=f"Table I — social graphs (stand-ins at scale {self.scale})",
        )


def datasets_table(
    scale: float = 1.0,
    names: Optional[Sequence[str]] = None,
    seed: int = 1,
) -> DatasetTableResult:
    """Generate every catalog stand-in and measure its Table I row."""
    rows: List[DatasetRow] = []
    for name in names or dataset_names():
        spec = CATALOG[name]
        graph = generate_dataset(name, scale=scale, seed=seed)
        stats = graph_stats(graph)
        rows.append(
            DatasetRow(
                name=name,
                nodes=stats.nodes,
                edges=stats.edges,
                clustering=stats.clustering,
                diameter=stats.diameter,
                paper_nodes=spec.paper_nodes,
                paper_edges=spec.paper_edges,
                paper_clustering=spec.paper_clustering,
                paper_diameter=spec.paper_diameter,
            )
        )
    return DatasetTableResult(rows=rows, scale=scale)
