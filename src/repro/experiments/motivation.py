"""Figure 1 (Section II): friends vs pending requests on fake accounts.

The original figure plots, per purchased account, the number of
delivered friends and the number of pending (ignored/rejected) requests.
The accounts themselves are irreproducible, so the series here comes
from the calibrated generative model of
:mod:`repro.attacks.accounts` (DESIGN.md, substitution 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import random

from ..attacks.accounts import (
    AccountModelConfig,
    FriendProfileModelConfig,
    sample_friend_profiles,
    sample_purchased_accounts,
)
from ..metrics.distributions import cdf_at
from .tables import format_table, format_series

__all__ = [
    "MotivationResult",
    "motivation_study",
    "FriendAttributeResult",
    "friend_attribute_study",
]


@dataclass
class MotivationResult:
    """The Figure 1 series, plus the paper's aggregate comparison."""

    friends: List[int]
    pending: List[int]

    @property
    def total_friends(self) -> int:
        return sum(self.friends)

    @property
    def total_pending(self) -> int:
        return sum(self.pending)

    @property
    def pending_fractions(self) -> List[float]:
        return [
            p / (f + p) if f + p else 0.0
            for f, p in zip(self.friends, self.pending)
        ]

    def render(self) -> str:
        table = format_series(
            "account",
            list(range(len(self.friends))),
            {
                "friends": [float(f) for f in self.friends],
                "pending": [float(p) for p in self.pending],
            },
            title="Fig. 1 — friends and pending requests per fake account (synthetic)",
        )
        summary = (
            f"\ntotals: {self.total_friends} friends, {self.total_pending} pending"
            f" (paper: 2804 friends, 2065 pending over 43 accounts)"
        )
        return table + summary


def motivation_study(
    config: Optional[AccountModelConfig] = None, seed: int = 0
) -> MotivationResult:
    """Regenerate the Figure 1 series from the account model."""
    accounts = sample_purchased_accounts(config, rng=random.Random(seed))
    return MotivationResult(
        friends=[a.friends for a in accounts],
        pending=[a.pending_requests for a in accounts],
    )


@dataclass
class FriendAttributeResult:
    """CDF checkpoints of the friends' attributes (Figures 3-5).

    ``cdf_rows`` holds, per attribute, the CDF evaluated at fixed
    thresholds — the textual equivalent of the paper's CDF plots.
    """

    num_friends: int
    degree_over_1000: int
    active_fraction: float
    cdf_rows: List[tuple]

    def render(self) -> str:
        table = format_table(
            ["attribute", "P<=10", "P<=50", "P<=100", "P<=500", "P<=1000"],
            self.cdf_rows,
            title=(
                "Figs. 3-5 — CDFs of the purchased accounts' friends "
                "(synthetic)"
            ),
        )
        summary = (
            f"\n{self.num_friends} friends; {self.degree_over_1000} with "
            f"degree > 1000 (the paper observes such accounts); "
            f"{self.active_fraction:.0%} active (posted or uploaded)"
        )
        return table + summary


def friend_attribute_study(
    num_friends: int = 2804,
    config: Optional[FriendProfileModelConfig] = None,
    seed: int = 0,
) -> FriendAttributeResult:
    """Regenerate the Figures 3-5 CDF checkpoints.

    The paper plots, over its purchased accounts' 2804 friends, CDFs of
    social-graph degree (Fig. 3), wall posts with their comments/likes
    (Fig. 4), and photos with their comments/likes (Fig. 5). The friend
    population is synthetic (DESIGN.md, substitution 3); what carries
    over is the qualitative picture: heavy-tailed degrees including
    >1000-degree accounts, and a largely active friend population.
    """
    profiles = sample_friend_profiles(
        num_friends, config, rng=random.Random(seed)
    )
    attributes = {
        "degree (Fig. 3)": [p.degree for p in profiles],
        "posts (Fig. 4)": [p.posts for p in profiles],
        "comments on posts": [p.post_comments for p in profiles],
        "likes on posts": [p.post_likes for p in profiles],
        "photos (Fig. 5)": [p.photos for p in profiles],
        "comments on photos": [p.photo_comments for p in profiles],
        "likes on photos": [p.photo_likes for p in profiles],
    }
    thresholds = (10, 50, 100, 500, 1000)
    cdf_rows = [
        tuple([name] + [cdf_at(values, t) for t in thresholds])
        for name, values in attributes.items()
    ]
    return FriendAttributeResult(
        num_friends=num_friends,
        degree_over_1000=sum(1 for p in profiles if p.degree > 1000),
        active_fraction=sum(
            1 for p in profiles if p.posts or p.photos
        )
        / num_friends,
        cdf_rows=cdf_rows,
    )
