"""Computational-cost scaling on the mini-cluster (Table II).

The paper runs Rejecto on Spark over a 5-node EC2 cluster and reports
near-linear runtime growth with graph size (0.5M-10M users at ~16
edges/user). This experiment reproduces the *shape* on the simulated
cluster: for each scaled graph size it measures wall-clock time of a
distributed MAAR solve plus the simulated network traffic, and reports
the per-edge cost so linearity is directly visible in the rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..attacks.scenario import ScenarioConfig, build_scenario
from ..cluster.engine import ClusterConfig, ClusterRunStats, distributed_maar
from ..cluster.netsim import NetworkModel
from ..core.maar import MAARConfig
from .tables import format_table

__all__ = ["ScalingConfig", "ScalingRow", "ScalingResult", "scaling_study"]


@dataclass(frozen=True)
class ScalingConfig:
    """Table II parameters, scaled to laptop sizes.

    Each row keeps the paper's 10:1 legit:fake proportion and per-fake
    request budget so edge density stays comparable across sizes.
    ``k_steps`` is reduced: runtime scaling, not detection quality, is
    under test here.
    """

    user_counts: Sequence[int] = (1000, 2000, 4000, 8000)
    fake_fraction: float = 0.1
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    k_steps: int = 4
    seed: int = 7


@dataclass
class ScalingRow:
    """One Table II row."""

    users: int
    edges: int
    rejections: int
    wall_seconds: float
    network_messages: int
    network_bytes: int
    simulated_network_seconds: float
    prefetch_hit_rate: float = 0.0
    fetch_batches: int = 0
    bytes_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Scenario generation time — kept separate from ``wall_seconds`` so
    #: the solve timing never silently absorbs graph acquisition cost.
    build_seconds: float = 0.0
    #: Upload bytes not shipped thanks to shard references (0 in the
    #: default payload path; see ``ClusterConfig.shard_transport``).
    bytes_avoided: int = 0

    @property
    def microseconds_per_edge(self) -> float:
        return 1e6 * self.wall_seconds / max(1, self.edges)


@dataclass
class ScalingResult:
    rows: List[ScalingRow]
    cluster_workers: int

    def render(self) -> str:
        return format_table(
            [
                "#users",
                "#edges",
                "#rejections",
                "workers",
                "time (s)",
                "us/edge",
                "net msgs",
                "net MB",
                "net time (s)",
            ],
            [
                [
                    row.users,
                    row.edges,
                    row.rejections,
                    self.cluster_workers,
                    row.wall_seconds,
                    row.microseconds_per_edge,
                    row.network_messages,
                    row.network_bytes / 1e6,
                    row.simulated_network_seconds,
                ]
                for row in self.rows
            ],
            title="Table II — execution time vs input graph size (mini-cluster)",
        )


def scaling_study(config: Optional[ScalingConfig] = None) -> ScalingResult:
    """Regenerate Table II's scaling rows on the simulated cluster."""
    config = config or ScalingConfig()
    rows: List[ScalingRow] = []
    for users in config.user_counts:
        num_fakes = max(10, int(users * config.fake_fraction))
        build_start = time.perf_counter()
        scenario = build_scenario(
            ScenarioConfig(
                num_legit=users - num_fakes,
                num_fakes=num_fakes,
                seed=config.seed,
            )
        )
        scenario.graph.csr()  # finalize here: acquisition, not solve
        build_seconds = time.perf_counter() - build_start
        stats = ClusterRunStats()
        start = time.perf_counter()
        distributed_maar(
            scenario.graph,
            cluster_config=config.cluster,
            maar_config=MAARConfig(k_steps=config.k_steps),
            stats=stats,
        )
        elapsed = time.perf_counter() - start
        rows.append(
            ScalingRow(
                users=scenario.num_nodes,
                edges=scenario.graph.num_friendships,
                rejections=scenario.graph.num_rejections,
                wall_seconds=elapsed,
                network_messages=stats.network.messages,
                network_bytes=stats.network.bytes_sent,
                simulated_network_seconds=stats.network.simulated_seconds(
                    NetworkModel()
                ),
                prefetch_hit_rate=stats.prefetch_hit_rate,
                fetch_batches=stats.fetch_batches,
                bytes_by_kind=dict(stats.network.bytes_by_kind),
                build_seconds=build_seconds,
                bytes_avoided=stats.network.bytes_avoided,
            )
        )
    return ScalingResult(rows=rows, cluster_workers=config.cluster.num_workers)
