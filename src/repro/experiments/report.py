"""One-shot results report: every experiment, one markdown document.

``rejecto report --out results.md`` regenerates the evaluation and
writes a self-contained markdown file — the machine-written counterpart
of EXPERIMENTS.md, with this machine's actual numbers. Individual
experiments can be cherry-picked via ``include``.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from .datasets_table import datasets_table
from .defense_in_depth import DefenseInDepthConfig, defense_in_depth
from .motivation import friend_attribute_study, motivation_study
from .scaling import ScalingConfig, scaling_study
from .sweeps import (
    SweepConfig,
    collusion_sweep,
    legit_rejection_sweep,
    legit_victim_rejection_sweep,
    request_volume_sweep,
    self_rejection_sweep,
    spam_rejection_sweep,
    stealth_sweep,
)

__all__ = ["ReportConfig", "generate_report", "write_report", "EXPERIMENT_NAMES"]

#: Experiments the report can include, in presentation order.
EXPERIMENT_NAMES = [
    "table1",
    "fig1",
    "fig3-5",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "table2",
]


@dataclass(frozen=True)
class ReportConfig:
    """Report scope and scale.

    ``quick`` shrinks every workload for a minutes-long full run;
    ``include`` selects a subset of :data:`EXPERIMENT_NAMES`.
    """

    quick: bool = False
    include: Sequence[str] = tuple(EXPERIMENT_NAMES)
    seed: int = 7
    trials: int = 1

    def sweep_config(self) -> SweepConfig:
        scale = 300 if self.quick else 800
        return SweepConfig(
            num_legit=scale,
            num_fakes=scale,
            seed=self.seed,
            trials=self.trials,
        )


def _runners(config: ReportConfig) -> Dict[str, Callable[[], object]]:
    sweep = config.sweep_config()
    table1_scale = 0.05 if config.quick else 0.2
    fig16_legit = 400 if config.quick else 1000
    table2_sizes = (500, 1000) if config.quick else (1000, 2000, 4000)
    return {
        "table1": lambda: datasets_table(scale=table1_scale),
        "fig1": lambda: motivation_study(seed=config.seed),
        "fig3-5": lambda: friend_attribute_study(seed=config.seed),
        "fig9": lambda: request_volume_sweep(sweep),
        "fig10": lambda: stealth_sweep(sweep),
        "fig11": lambda: spam_rejection_sweep(sweep),
        "fig12": lambda: legit_rejection_sweep(sweep),
        "fig13": lambda: collusion_sweep(sweep),
        "fig14": lambda: self_rejection_sweep(sweep),
        "fig15": lambda: legit_victim_rejection_sweep(sweep),
        "fig16": lambda: defense_in_depth(
            DefenseInDepthConfig(num_legit=fig16_legit, seed=config.seed)
        ),
        "table2": lambda: scaling_study(
            ScalingConfig(user_counts=table2_sizes, seed=config.seed)
        ),
    }


def generate_report(config: Optional[ReportConfig] = None) -> str:
    """Run the selected experiments and return the markdown report."""
    config = config or ReportConfig()
    unknown = [name for name in config.include if name not in EXPERIMENT_NAMES]
    if unknown:
        raise ValueError(
            f"unknown experiments {unknown}; choose from {EXPERIMENT_NAMES}"
        )
    runners = _runners(config)
    lines: List[str] = [
        "# Rejecto reproduction — measured results",
        "",
        f"- python {platform.python_version()} on {platform.system()}",
        f"- scale: {'quick' if config.quick else 'default'}, "
        f"seed {config.seed}, trials {config.trials}",
        "",
    ]
    for name in EXPERIMENT_NAMES:
        if name not in config.include:
            continue
        start = time.perf_counter()
        result = runners[name]()
        elapsed = time.perf_counter() - start
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```")
        lines.append(result.render())
        lines.append("```")
        lines.append("")
        lines.append(f"_regenerated in {elapsed:.1f}s_")
        lines.append("")
    return "\n".join(lines)


def write_report(
    path: Union[str, Path], config: Optional[ReportConfig] = None
) -> Path:
    """Generate and write the report; returns the path."""
    path = Path(path)
    path.write_text(generate_report(config))
    return path
