"""Plain-text rendering of experiment results.

Every experiment runner returns structured results; these helpers print
them as the rows/series the paper reports, for the benchmark harness and
the CLI.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width table with a header rule."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Any],
    series: Dict[str, Sequence[float]],
    title: Optional[str] = None,
) -> str:
    """One row per x value, one column per named series — the textual
    equivalent of a paper figure."""
    headers = [x_label] + list(series)
    rows: List[List[Any]] = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def format_kv(pairs: Dict[str, Any], title: Optional[str] = None) -> str:
    """Aligned key/value block."""
    width = max(len(k) for k in pairs) if pairs else 0
    lines = [title] if title else []
    for key, value in pairs.items():
        lines.append(f"{key.ljust(width)}  {_fmt(value)}")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
