"""Experiment harness: one runner per table and figure of the paper.

* Table I — :func:`datasets_table`
* Fig. 1 — :func:`motivation_study` (synthetic substitute, Section II)
* Figs. 9-15 — the sweeps in :mod:`repro.experiments.sweeps`
* Fig. 16 — :func:`defense_in_depth`
* Figs. 17-18 — :func:`appendix_sensitivity` / :func:`appendix_strategies`
* Table II — :func:`scaling_study`
"""

from .datasets_table import DatasetRow, DatasetTableResult, datasets_table
from .defense_in_depth import (
    DefenseInDepthConfig,
    DefenseInDepthResult,
    defense_in_depth,
)
from .motivation import (
    FriendAttributeResult,
    MotivationResult,
    friend_attribute_study,
    motivation_study,
)
from .runner import (
    SchemeSetup,
    evaluate_schemes,
    load_graph_source,
    run_naive_filter,
    run_rejecto,
    run_votetrust,
)
from .scaling import ScalingConfig, ScalingResult, ScalingRow, scaling_study
from .sweeps import (
    APPENDIX_DATASETS,
    SweepConfig,
    SweepResult,
    appendix_sensitivity,
    appendix_strategies,
    collusion_sweep,
    legit_rejection_sweep,
    legit_victim_rejection_sweep,
    request_volume_sweep,
    self_rejection_sweep,
    spam_rejection_sweep,
    stealth_sweep,
)
from .plot import ascii_chart, render_sweep_chart
from .report import EXPERIMENT_NAMES, ReportConfig, generate_report, write_report
from .tables import format_kv, format_series, format_table

__all__ = [
    "SchemeSetup",
    "load_graph_source",
    "evaluate_schemes",
    "run_rejecto",
    "run_votetrust",
    "run_naive_filter",
    "SweepConfig",
    "SweepResult",
    "request_volume_sweep",
    "stealth_sweep",
    "spam_rejection_sweep",
    "legit_rejection_sweep",
    "collusion_sweep",
    "self_rejection_sweep",
    "legit_victim_rejection_sweep",
    "appendix_sensitivity",
    "appendix_strategies",
    "APPENDIX_DATASETS",
    "DefenseInDepthConfig",
    "DefenseInDepthResult",
    "defense_in_depth",
    "ScalingConfig",
    "ScalingResult",
    "ScalingRow",
    "scaling_study",
    "DatasetRow",
    "DatasetTableResult",
    "datasets_table",
    "MotivationResult",
    "motivation_study",
    "FriendAttributeResult",
    "friend_attribute_study",
    "format_table",
    "format_series",
    "format_kv",
    "ascii_chart",
    "render_sweep_chart",
    "ReportConfig",
    "generate_report",
    "write_report",
    "EXPERIMENT_NAMES",
]
