"""Tests for the empirical-distribution utilities."""

import pytest

from repro.metrics import cdf_at, empirical_cdf


class TestEmpiricalCdf:
    def test_simple_case(self):
        points = empirical_cdf([1, 2, 2, 4])
        assert points == [(1, 0.25), (2, 0.75), (4, 1.0)]

    def test_single_value(self):
        assert empirical_cdf([7]) == [(7, 1.0)]

    def test_monotone_and_terminal(self):
        points = empirical_cdf([5, 3, 9, 3, 1])
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
        values = [v for v, _ in points]
        assert values == sorted(values)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])


class TestCdfAt:
    def test_thresholds(self):
        values = [1, 2, 3, 4]
        assert cdf_at(values, 0) == 0.0
        assert cdf_at(values, 2) == 0.5
        assert cdf_at(values, 2.5) == 0.5
        assert cdf_at(values, 10) == 1.0

    def test_consistent_with_empirical_cdf(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        for v, fraction in empirical_cdf(values):
            assert cdf_at(values, v) == pytest.approx(fraction)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_at([], 1)
