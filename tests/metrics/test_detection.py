"""Tests for detection metrics."""

import pytest

from repro.metrics import precision_recall


class TestPrecisionRecall:
    def test_perfect_detection(self):
        m = precision_recall([1, 2, 3], [1, 2, 3])
        assert m.precision == 1.0
        assert m.recall == 1.0
        assert m.f1 == 1.0
        assert m.true_positives == 3
        assert m.false_positives == 0
        assert m.false_negatives == 0

    def test_partial_detection(self):
        m = precision_recall([1, 2, 9], [1, 2, 3, 4])
        assert m.precision == pytest.approx(2 / 3)
        assert m.recall == pytest.approx(0.5)
        assert m.false_positives == 1
        assert m.false_negatives == 2

    def test_paper_identity_when_counts_match(self):
        """Declaring exactly |fakes| suspicious makes precision == recall
        (Section VI-A)."""
        detected = [1, 2, 3, 10]
        fakes = [1, 2, 4, 5]
        m = precision_recall(detected, fakes)
        assert len(detected) == len(fakes)
        assert m.precision == m.recall

    def test_empty_detected(self):
        m = precision_recall([], [1, 2])
        assert m.precision == 0.0
        assert m.recall == 0.0
        assert m.f1 == 0.0

    def test_empty_fakes(self):
        m = precision_recall([1], [])
        assert m.recall == 1.0
        assert m.precision == 0.0

    def test_duplicates_deduplicated(self):
        m = precision_recall([1, 1, 2], [1, 2])
        assert m.declared == 2
        assert m.precision == 1.0

    def test_declared_property(self):
        m = precision_recall([1, 2, 3], [2])
        assert m.declared == 3
