"""Tests for ranking metrics."""

import pytest

from repro.metrics import average_precision, precision_at_k


class TestPrecisionAtK:
    def test_basic(self):
        ranked = [5, 3, 9, 1]
        assert precision_at_k(ranked, [5, 9], 1) == 1.0
        assert precision_at_k(ranked, [5, 9], 2) == 0.5
        assert precision_at_k(ranked, [5, 9], 4) == 0.5

    def test_k_beyond_length_uses_full_ranking(self):
        assert precision_at_k([1, 2], [1], 10) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            precision_at_k([1], [1], 0)
        with pytest.raises(ValueError):
            precision_at_k([], [1], 1)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([7, 8, 1, 2], [7, 8]) == 1.0

    def test_worst_ranking(self):
        assert average_precision([1, 2, 7], [7]) == pytest.approx(1 / 3)

    def test_known_mixed_value(self):
        # positives at ranks 1 and 3: (1/1 + 2/3) / 2 = 5/6.
        assert average_precision([9, 0, 8, 1], [9, 8]) == pytest.approx(5 / 6)

    def test_missing_positive_penalized(self):
        # one positive ranked first, the other absent: (1 + 0) / 2.
        assert average_precision([4, 0], [4, 99]) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            average_precision([1, 2], [])
