"""Tests for ROC/AUC."""

import random

import pytest

from repro.metrics import auc_from_scores, roc_curve


class TestAUC:
    def test_perfect_separation(self):
        scores = {0: 0.1, 1: 0.2, 2: 0.8, 3: 0.9}
        assert auc_from_scores(scores, positives=[0, 1]) == 1.0

    def test_inverted_separation(self):
        scores = {0: 0.9, 1: 0.8, 2: 0.1, 3: 0.2}
        assert auc_from_scores(scores, positives=[0, 1]) == 0.0

    def test_random_scores_near_half(self):
        rng = random.Random(0)
        scores = {u: rng.random() for u in range(2000)}
        positives = list(range(0, 2000, 2))
        assert auc_from_scores(scores, positives) == pytest.approx(0.5, abs=0.05)

    def test_all_tied_is_half(self):
        scores = {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}
        assert auc_from_scores(scores, [0, 1]) == pytest.approx(0.5)

    def test_matches_brute_force_pair_counting(self):
        rng = random.Random(3)
        scores = {u: rng.choice([0.1, 0.2, 0.2, 0.5, 0.9]) for u in range(60)}
        positives = set(rng.sample(range(60), 25))
        negatives = [u for u in scores if u not in positives]
        wins = ties = 0
        for p in positives:
            for n in negatives:
                if scores[p] < scores[n]:
                    wins += 1
                elif scores[p] == scores[n]:
                    ties += 1
        expected = (wins + 0.5 * ties) / (len(positives) * len(negatives))
        assert auc_from_scores(scores, positives) == pytest.approx(expected)

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ValueError):
            auc_from_scores({}, [])
        with pytest.raises(ValueError):
            auc_from_scores({0: 1.0}, [0])  # no negatives
        with pytest.raises(ValueError):
            auc_from_scores({0: 1.0}, [])  # no positives


class TestROCCurve:
    def test_monotone_from_origin_to_corner(self):
        rng = random.Random(1)
        scores = {u: rng.random() for u in range(50)}
        positives = list(range(20))
        points = roc_curve(scores, positives)
        assert points[0] == (0.0, 0.0)
        assert points[-1] == (1.0, 1.0)
        fprs = [p[0] for p in points]
        tprs = [p[1] for p in points]
        assert fprs == sorted(fprs)
        assert tprs == sorted(tprs)

    def test_perfect_curve_hits_top_left(self):
        scores = {0: 0.1, 1: 0.2, 2: 0.8, 3: 0.9}
        points = roc_curve(scores, [0, 1])
        assert (0.0, 1.0) in points

    def test_trapezoid_area_matches_auc(self):
        rng = random.Random(2)
        scores = {u: rng.random() for u in range(200)}
        positives = rng.sample(range(200), 80)
        points = roc_curve(scores, positives)
        area = sum(
            (x2 - x1) * (y1 + y2) / 2
            for (x1, y1), (x2, y2) in zip(points, points[1:])
        )
        assert area == pytest.approx(auc_from_scores(scores, positives), abs=1e-9)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            roc_curve({0: 1.0}, [0])
