"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.core import AugmentedSocialGraph


def random_augmented_graph(
    num_nodes: int,
    num_friendships: int,
    num_rejections: int,
    seed: int = 0,
) -> AugmentedSocialGraph:
    """A uniformly random augmented graph (may contain friend+reject pairs)."""
    rng = random.Random(seed)
    graph = AugmentedSocialGraph(num_nodes)
    attempts = 0
    while graph.num_friendships < num_friendships and attempts < num_friendships * 20:
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v:
            graph.add_friendship(u, v)
        attempts += 1
    attempts = 0
    while graph.num_rejections < num_rejections and attempts < num_rejections * 20:
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v:
            graph.add_rejection(u, v)
        attempts += 1
    return graph


@st.composite
def augmented_graphs(draw, max_nodes: int = 24, max_edges: int = 60):
    """Hypothesis strategy producing small augmented graphs."""
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    pair = st.tuples(
        st.integers(min_value=0, max_value=num_nodes - 1),
        st.integers(min_value=0, max_value=num_nodes - 1),
    ).filter(lambda p: p[0] != p[1])
    friendships = draw(st.lists(pair, max_size=max_edges))
    rejections = draw(st.lists(pair, max_size=max_edges))
    return AugmentedSocialGraph.from_edges(num_nodes, friendships, rejections)


@st.composite
def graphs_with_sides(draw, max_nodes: int = 24, max_edges: int = 60):
    """A small augmented graph together with a random bipartition."""
    graph = draw(augmented_graphs(max_nodes=max_nodes, max_edges=max_edges))
    sides = draw(
        st.lists(
            st.integers(min_value=0, max_value=1),
            min_size=graph.num_nodes,
            max_size=graph.num_nodes,
        )
    )
    return graph, sides


@pytest.fixture
def spam_scenario_graph():
    """A small planted friend-spam instance: 120 legit users, 30 fakes.

    Every fake sends 10 requests to random legit users; 7 are rejected
    and 3 accepted (70% spam rejection rate). Legit users form a random
    5-regular-ish friendship graph; fakes form a sparse internal mesh.
    Returns ``(graph, legit_ids, fake_ids)``.
    """
    rng = random.Random(42)
    n_legit, n_fake = 120, 30
    graph = AugmentedSocialGraph(n_legit + n_fake)
    for u in range(n_legit):
        for _ in range(5):
            v = rng.randrange(n_legit)
            if v != u:
                graph.add_friendship(u, v)
    fakes = list(range(n_legit, n_legit + n_fake))
    for f in fakes:
        for _ in range(3):
            other = fakes[rng.randrange(n_fake)]
            if other != f:
                graph.add_friendship(f, other)
    for f in fakes:
        targets = rng.sample(range(n_legit), 10)
        for t in targets[:3]:
            graph.add_friendship(f, t)
        for t in targets[3:]:
            graph.add_rejection(t, f)
    return graph, list(range(n_legit)), fakes
