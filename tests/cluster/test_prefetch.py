"""Tests for the LRU prefetch buffer."""

import pytest

from repro.cluster import PrefetchBuffer


def make_store(size=100):
    """A fake worker store: key -> record, with fetch accounting."""
    store = {k: f"record-{k}" for k in range(size)}
    fetches = []

    def fetch_batch(keys):
        fetches.append(list(keys))
        return [(k, store[k]) for k in keys if k in store]

    return store, fetch_batch, fetches


class TestPrefetchBuffer:
    def test_miss_then_hit(self):
        _, fetch, fetches = make_store()
        buffer = PrefetchBuffer(capacity=10, fetch_batch=fetch, batch_size=4)
        assert buffer.get(3) == "record-3"
        assert buffer.stats.misses == 1
        assert buffer.get(3) == "record-3"
        assert buffer.stats.hits == 1
        assert len(fetches) == 1

    def test_prefetch_candidates_ride_along(self):
        _, fetch, fetches = make_store()
        buffer = PrefetchBuffer(capacity=10, fetch_batch=fetch, batch_size=4)
        buffer.get(0, prefetch_candidates=[1, 2, 3, 4, 5])
        assert fetches[0] == [0, 1, 2, 3]  # batch_size caps the ride-alongs
        # The prefetched nodes are now hits.
        buffer.get(1)
        buffer.get(2)
        assert buffer.stats.hits == 2
        assert buffer.stats.fetch_batches == 1

    def test_lru_eviction_order(self):
        _, fetch, _ = make_store()
        buffer = PrefetchBuffer(capacity=2, fetch_batch=fetch, batch_size=1)
        buffer.get(0)
        buffer.get(1)
        buffer.get(0)  # refresh 0; 1 is now least recent
        buffer.get(2)  # evicts 1
        assert 0 in buffer
        assert 1 not in buffer
        assert 2 in buffer
        assert buffer.stats.evictions == 1

    def test_zero_capacity_disables_caching(self):
        _, fetch, fetches = make_store()
        buffer = PrefetchBuffer(capacity=0, fetch_batch=fetch, batch_size=8)
        buffer.get(0, prefetch_candidates=[1, 2])
        buffer.get(0)
        assert buffer.stats.misses == 2
        assert buffer.stats.hits == 0
        # No ride-alongs when nothing can be retained.
        assert fetches == [[0], [0]]

    def test_duplicate_candidates_not_fetched_twice(self):
        _, fetch, fetches = make_store()
        buffer = PrefetchBuffer(capacity=10, fetch_batch=fetch, batch_size=8)
        buffer.get(0, prefetch_candidates=[0, 1, 1, 2])
        assert fetches[0] == [0, 1, 2]

    def test_batch_capped_at_capacity_keeps_requested_key(self):
        """Regression: a fetch batch larger than remaining capacity used
        to evict the just-fetched key (inserted first, evicted by its
        own ride-alongs), wasting the very next access."""
        _, fetch, fetches = make_store()
        buffer = PrefetchBuffer(capacity=2, fetch_batch=fetch, batch_size=8)
        buffer.get(0, prefetch_candidates=[1, 2, 3, 4, 5])
        assert fetches[0] == [0, 1]  # capacity caps the batch
        assert 0 in buffer  # the requested key stays resident...
        assert len(buffer) <= buffer.capacity
        assert buffer.stats.evictions == 0  # ...without churning the LRU
        buffer.get(0)
        assert buffer.stats.hits == 1

    def test_requested_key_is_most_recent_after_fetch(self):
        """The missed key is inserted last (MRU), so ride-alongs are
        evicted before it under pressure."""
        _, fetch, _ = make_store()
        buffer = PrefetchBuffer(capacity=2, fetch_batch=fetch, batch_size=2)
        buffer.get(0, prefetch_candidates=[1])  # buffer: {1, 0(MRU)}
        buffer.get(2)  # evicts 1, not 0
        assert 0 in buffer
        assert 1 not in buffer
        assert 2 in buffer

    def test_missing_key_raises(self):
        _, fetch, _ = make_store(size=3)
        buffer = PrefetchBuffer(capacity=4, fetch_batch=fetch, batch_size=2)
        with pytest.raises(KeyError):
            buffer.get(99)

    def test_invalidate(self):
        _, fetch, _ = make_store()
        buffer = PrefetchBuffer(capacity=4, fetch_batch=fetch, batch_size=1)
        buffer.get(0)
        buffer.invalidate(0)
        buffer.get(0)
        assert buffer.stats.misses == 2

    def test_hit_rate(self):
        _, fetch, _ = make_store()
        buffer = PrefetchBuffer(capacity=10, fetch_batch=fetch, batch_size=1)
        assert buffer.stats.hit_rate == 0.0
        buffer.get(0)
        buffer.get(0)
        buffer.get(0)
        assert buffer.stats.hit_rate == pytest.approx(2 / 3)

    def test_invalid_arguments(self):
        _, fetch, _ = make_store()
        with pytest.raises(ValueError):
            PrefetchBuffer(capacity=-1, fetch_batch=fetch)
        with pytest.raises(ValueError):
            PrefetchBuffer(capacity=4, fetch_batch=fetch, batch_size=0)
