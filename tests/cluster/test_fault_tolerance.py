"""Fault-tolerance tests: worker failures, replication, and lineage
recomputation — the Spark behaviours the mini-cluster substrate models."""

import pytest

from repro.attacks import ScenarioConfig, build_scenario
from repro.cluster import (
    ClusterConfig,
    ClusterContext,
    DataLossError,
    DistributedKL,
    NetworkSimulator,
    WorkerFailure,
)
from repro.core import KLConfig, Partition, extended_kl
from repro.core.objectives import LEGITIMATE, SUSPICIOUS


class TestWorkerFailure:
    def test_failed_worker_refuses_requests(self):
        context = ClusterContext(2)
        dataset = context.parallelize(range(10), 2)
        worker = context.workers[0]
        worker.fail()
        with pytest.raises(WorkerFailure):
            worker.run_task(dataset.partition_key(0), len)
        with pytest.raises(WorkerFailure):
            worker.store_partition((9, 9), [1])

    def test_failure_loses_resident_state(self):
        context = ClusterContext(2)
        context.parallelize(range(10), 2)
        worker = context.workers[0]
        assert worker.memory_records() > 0
        worker.fail()
        assert worker.memory_records() == 0
        assert not worker.alive


class TestReplication:
    def test_replicated_source_survives_one_failure(self):
        context = ClusterContext(3, replication=2)
        dataset = context.parallelize(range(30), 6)
        context.workers[0].fail()
        assert sorted(dataset.collect()) == list(range(30))

    def test_unreplicated_source_is_lost(self):
        context = ClusterContext(3, replication=1)
        dataset = context.parallelize(range(30), 6)
        context.workers[0].fail()
        with pytest.raises(DataLossError):
            dataset.collect()

    def test_all_replicas_down_is_data_loss(self):
        context = ClusterContext(2, replication=2)
        dataset = context.parallelize(range(4), 2)
        for worker in context.workers:
            worker.fail()
        with pytest.raises(DataLossError):
            dataset.collect()

    def test_replication_bounds_validated(self):
        with pytest.raises(ValueError):
            ClusterContext(2, replication=3)
        with pytest.raises(ValueError):
            ClusterContext(2, replication=0)

    def test_replication_charges_extra_upload(self):
        net1 = NetworkSimulator()
        ClusterContext(4, net1, replication=1).parallelize(range(100), 4)
        net2 = NetworkSimulator()
        ClusterContext(4, net2, replication=3).parallelize(range(100), 4)
        assert net2.stats.bytes_sent == pytest.approx(
            3 * net1.stats.bytes_sent
        )


class TestLineageRecomputation:
    def test_cached_data_recomputed_on_surviving_replica(self):
        """A failed worker's cache is gone; the next action recomputes
        the derived partition from the replicated source (lineage)."""
        context = ClusterContext(3, replication=2)
        calls = []
        dataset = (
            context.parallelize(range(12), 3)
            .map(lambda x: calls.append(x) or x * 2)
            .cache()
        )
        assert sorted(dataset.collect()) == [x * 2 for x in range(12)]
        first_pass = len(calls)
        context.workers[0].fail()
        assert sorted(dataset.collect()) == [x * 2 for x in range(12)]
        # Only the failed worker's partitions were recomputed.
        assert first_pass < len(calls) < 2 * first_pass


class TestEngineUnderFailure:
    def test_distributed_kl_survives_worker_failure(self):
        """With replication, the KL engine fails over mid-run data access
        and still computes the exact same cut."""
        scenario = build_scenario(
            ScenarioConfig(num_legit=300, num_fakes=60, seed=61)
        )
        graph = scenario.graph
        init = [
            SUSPICIOUS if graph.rej_in[u] else LEGITIMATE
            for u in range(graph.num_nodes)
        ]
        reference = extended_kl(
            graph, 1.0, Partition(graph, init), config=KLConfig(gain_index="bucket")
        )
        engine = DistributedKL(
            graph,
            ClusterConfig(num_workers=4, num_partitions=8, replication=2),
        )
        engine.context.workers[1].fail()  # one worker down before the run
        sides, f_cross, r_cross = engine.run(1.0, init)
        assert sides == reference.sides
        assert (f_cross, r_cross) == (reference.f_cross, reference.r_cross)

    def test_unreplicated_engine_loses_data(self):
        scenario = build_scenario(
            ScenarioConfig(num_legit=200, num_fakes=40, seed=62)
        )
        graph = scenario.graph
        init = [0] * graph.num_nodes
        engine = DistributedKL(
            graph,
            ClusterConfig(num_workers=4, num_partitions=8, replication=1),
        )
        engine.context.workers[0].fail()
        with pytest.raises(DataLossError):
            engine.run(1.0, init)

    @staticmethod
    def _fail_after_fetches(engine, worker_index, after):
        """Shadow the engine's bound fetch method with a wrapper that
        kills one worker after ``after`` fetch batches, mid-pass."""
        original = engine._fetch_records
        state = {"calls": 0}

        def wrapper(nodes):
            state["calls"] += 1
            if state["calls"] == after:
                engine.context.workers[worker_index].fail()
            return original(nodes)

        engine._fetch_records = wrapper
        return state

    def test_mid_pass_failure_fails_over_bit_identically(self):
        """A worker dying *between fetch batches of an in-flight pass*
        must be absorbed by the surviving replica without perturbing the
        result — same cut, same counters as the undisturbed run."""
        scenario = build_scenario(
            ScenarioConfig(num_legit=300, num_fakes=60, seed=63)
        )
        graph = scenario.graph
        init = [
            SUSPICIOUS if graph.rej_in[u] else LEGITIMATE
            for u in range(graph.num_nodes)
        ]
        config = ClusterConfig(num_workers=4, num_partitions=8, replication=2)
        reference = DistributedKL(graph, config).run(1.0, init)

        engine = DistributedKL(graph, config)
        state = self._fail_after_fetches(engine, worker_index=2, after=3)
        outcome = engine.run(1.0, init)
        assert state["calls"] > 3, "failure must land mid-pass, not at the end"
        assert not engine.context.workers[2].alive
        assert outcome == reference

    def test_mid_pass_failure_without_replicas_raises_not_hangs(self):
        """With replication=1, losing a worker mid-pass surfaces as
        DataLossError from the next fetch that needs its blocks — a
        clean failure, not a hang or a silently wrong answer."""
        scenario = build_scenario(
            ScenarioConfig(num_legit=200, num_fakes=40, seed=64)
        )
        graph = scenario.graph
        init = [
            SUSPICIOUS if graph.rej_in[u] else LEGITIMATE
            for u in range(graph.num_nodes)
        ]
        engine = DistributedKL(
            graph,
            # buffer_capacity=0 forces a fetch per pop, so the very next
            # lookup of a lost block trips the error.
            ClusterConfig(
                num_workers=4,
                num_partitions=8,
                replication=1,
                buffer_capacity=0,
            ),
        )
        self._fail_after_fetches(engine, worker_index=1, after=2)
        with pytest.raises(DataLossError):
            engine.run(1.0, init)
