"""Unit tests for the master-resident algorithm state."""

import pytest

from repro.cluster.master import MasterState
from repro.core import AugmentedSocialGraph, Partition
from repro.core.gains import HeapGainIndex


def record_for(graph, node):
    return (
        node,
        tuple(graph.friends[node]),
        tuple(graph.rej_out[node]),
        tuple(graph.rej_in[node]),
    )


def make_state(graph, sides, k=1.0, locked=None):
    partition = Partition(graph, sides)
    locked = locked or [False] * graph.num_nodes
    gains = [
        (u, partition.switch_gain(u, k)) for u in range(graph.num_nodes)
    ]
    return MasterState.for_pass(
        graph.num_nodes,
        k,
        sides,
        partition.f_cross,
        partition.r_cross,
        gains,
        locked,
        gain_index_kind="heap",
    )


@pytest.fixture
def graph():
    return AugmentedSocialGraph.from_edges(
        5,
        friendships=[(0, 1), (1, 2), (3, 4)],
        rejections=[(0, 3), (1, 3), (2, 4)],
    )


class TestMasterState:
    def test_apply_switch_tracks_partition(self, graph):
        sides = [0, 0, 0, 0, 0]
        state = make_state(graph, sides)
        reference = Partition(graph, sides)
        for node in (3, 4, 1):
            state.index.remove(node)  # mirror the pop the engine does
            state.apply_switch(record_for(graph, node))
            reference.switch(node)
            assert state.sides == reference.sides
            assert (state.f_cross, state.r_cross) == (
                reference.f_cross,
                reference.r_cross,
            )

    def test_pop_best_matches_gain_order(self, graph):
        sides = [0, 0, 0, 0, 0]
        state = make_state(graph, sides, k=4.0)
        node, gain = state.pop_best()
        partition = Partition(graph, sides)
        best_gain = max(
            partition.switch_gain(u, 4.0) for u in range(graph.num_nodes)
        )
        assert gain == pytest.approx(best_gain)

    def test_locked_nodes_never_indexed(self, graph):
        sides = [0, 0, 0, 0, 0]
        locked = [True, True, True, True, False]
        state = make_state(graph, sides, locked=locked)
        popped = set()
        while True:
            item = state.pop_best()
            if item is None:
                break
            popped.add(item[0])
        assert popped == {4}

    def test_rollback_restores_everything(self, graph):
        sides = [0, 1, 0, 1, 0]
        state = make_state(graph, sides)
        snapshot = state.snapshot()
        for node in (0, 2, 4):
            state.index.remove(node)
            state.apply_switch(record_for(graph, node))
        assert state.snapshot() != snapshot
        state.rollback_to(0)
        assert state.snapshot() == snapshot
        assert state.switches_applied == 0

    def test_partial_rollback(self, graph):
        sides = [0, 0, 0, 0, 0]
        state = make_state(graph, sides)
        reference = Partition(graph, sides)
        for node in (3, 4):
            state.index.remove(node)
            state.apply_switch(record_for(graph, node))
        reference.switch(3)  # keep only the first switch
        state.rollback_to(1)
        assert state.sides == reference.sides
        assert (state.f_cross, state.r_cross) == (
            reference.f_cross,
            reference.r_cross,
        )

    def test_rollback_bounds_checked(self, graph):
        state = make_state(graph, [0] * 5)
        with pytest.raises(ValueError):
            state.rollback_to(1)
        with pytest.raises(ValueError):
            state.rollback_to(-1)

    def test_sides_length_validated(self):
        with pytest.raises(ValueError):
            MasterState(3, 1.0, [0, 1], 0, 0, HeapGainIndex())

    def test_neighbour_gains_updated_on_switch(self, graph):
        """After a switch, a still-indexed neighbour's gain must equal a
        fresh recomputation on the updated partition."""
        sides = [0, 0, 0, 0, 0]
        state = make_state(graph, sides, k=2.0)
        state.index.remove(3)
        state.apply_switch(record_for(graph, 3))
        reference = Partition(graph, [0, 0, 0, 1, 0])
        for u in (0, 1, 4):
            assert state.index.gain_of(u) == pytest.approx(
                reference.switch_gain(u, 2.0)
            )
