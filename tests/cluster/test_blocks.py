"""Tests for the CSR shard-block layer: slicing, wire-format byte math,
and shard-kernel parity with the full-graph kernels across backends."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.blocks import (
    COUNTER_BYTES,
    INT_BYTES,
    MESSAGE_HEADER_BYTES,
    ShardBlock,
    ShardedCSR,
    partition_bounds,
)
try:
    import numpy  # noqa: F401

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - numpy is present in CI's main job
    HAS_NUMPY = False

from repro.core.kernels import (
    gain_deltas,
    heap_gains,
    recount_active,
    shard_cut_counts,
    shard_gain_deltas,
)

from ..conftest import augmented_graphs

BACKENDS = ("python", "numpy") if HAS_NUMPY else ("python",)


def make_blocks(csr, num_partitions):
    bounds = partition_bounds(csr.num_nodes, num_partitions)
    return [
        ShardBlock.from_csr(csr, bounds[p], bounds[p + 1])
        for p in range(num_partitions)
    ]


def sides_for(n, seed=3):
    return [(u * seed + 1) % 3 % 2 for u in range(n)]


class TestPartitionBounds:
    def test_even_split(self):
        assert partition_bounds(12, 4) == [0, 3, 6, 9, 12]

    def test_remainder_spread_to_leading_partitions(self):
        assert partition_bounds(10, 4) == [0, 3, 6, 8, 10]

    def test_more_partitions_than_nodes(self):
        bounds = partition_bounds(3, 5)
        assert bounds == [0, 1, 2, 3, 3, 3]

    def test_empty_graph(self):
        assert partition_bounds(0, 3) == [0, 0, 0, 0]

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            partition_bounds(5, 0)

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds_cover_exactly(self, n, p):
        bounds = partition_bounds(n, p)
        assert len(bounds) == p + 1
        assert bounds[0] == 0 and bounds[-1] == n
        widths = [bounds[i + 1] - bounds[i] for i in range(p)]
        assert all(w >= 0 for w in widths)
        assert max(widths) - min(widths) <= 1


class TestShardedCSR:
    def test_partition_of_respects_bounds(self):
        sharded = ShardedCSR(0, [0, 3, 6, 8, 10], "python")
        assert [sharded.partition_of(u) for u in range(10)] == [
            0, 0, 0, 1, 1, 1, 2, 2, 3, 3,
        ]

    def test_partition_of_skips_empty_blocks(self):
        sharded = ShardedCSR(0, [0, 1, 2, 3, 3, 3], "python")
        assert sharded.partition_of(2) == 2

    def test_out_of_range_rejected(self):
        sharded = ShardedCSR(0, [0, 5], "python")
        with pytest.raises(ValueError):
            sharded.partition_of(5)
        with pytest.raises(ValueError):
            sharded.partition_of(-1)

    def test_keys_distinct_per_shard_and_partition(self):
        a = ShardedCSR(0, [0, 2, 4], "python")
        b = ShardedCSR(1, [0, 2, 4], "python")
        assert a.key(0) != a.key(1)
        assert a.key(0) != b.key(0)


@given(augmented_graphs(max_nodes=24, max_edges=60), st.integers(1, 7))
@settings(max_examples=30, deadline=None)
def test_blocks_reassemble_adjacency(graph, num_partitions):
    """Slicing into blocks and reading every node back via records()
    reproduces the graph's adjacency exactly."""
    csr = graph.csr()
    blocks = make_blocks(csr, num_partitions)
    seen = 0
    for block in blocks:
        node_range = list(range(block.lo, block.hi))
        if not node_range:
            continue
        for node, friends, rej_out, rej_in in block.slices(node_range).records():
            assert list(friends) == sorted(graph.friends[node])
            assert list(rej_out) == sorted(graph.rej_out[node])
            assert list(rej_in) == sorted(graph.rej_in[node])
            seen += 1
    assert seen == csr.num_nodes


class TestShardKernelParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(augmented_graphs(max_nodes=20, max_edges=50), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_gain_deltas_concat(self, backend, graph, num_partitions):
        """Concatenating per-block deltas equals the full-graph kernel."""
        csr = graph.csr(backend)
        sides = sides_for(csr.num_nodes)
        fd_ref, rd_ref = gain_deltas(csr.view(), sides)
        fd_cat, rd_cat = [], []
        for block in make_blocks(csr, num_partitions):
            fd, rd = shard_gain_deltas(block, sides)
            fd_cat.extend(fd)
            rd_cat.extend(rd)
        assert fd_cat == fd_ref
        assert rd_cat == rd_ref

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(augmented_graphs(max_nodes=20, max_edges=50), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_cut_counts_sum(self, backend, graph, num_partitions):
        """Per-block counter parts sum to the exact global counters —
        no halving, thanks to the global u < v dedup."""
        csr = graph.csr(backend)
        sides = sides_for(csr.num_nodes, seed=5)
        f_ref, r_ref, _ = recount_active(csr.view(), sides)
        f_sum = r_sum = 0
        for block in make_blocks(csr, num_partitions):
            f_part, r_part = shard_cut_counts(block, sides)
            f_sum += f_part
            r_sum += r_part
        assert (f_sum, r_sum) == (f_ref, r_ref)

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend unavailable")
    @given(augmented_graphs(max_nodes=20, max_edges=50))
    @settings(max_examples=20, deadline=None)
    def test_backends_bit_identical(self, graph):
        sides = sides_for(graph.num_nodes, seed=7)
        results = []
        for backend in ("python", "numpy"):
            csr = graph.csr(backend)
            blocks = make_blocks(csr, 3)
            results.append(
                [
                    (shard_gain_deltas(b, sides), shard_cut_counts(b, sides))
                    for b in blocks
                ]
            )
        assert results[0] == results[1]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pass_state_matches_heap_gains(self, backend):
        """Block gains are the same IEEE expression the heap engine's
        kernel produces — equal float-for-float."""
        from repro.attacks import ScenarioConfig, build_scenario

        graph = build_scenario(
            ScenarioConfig(num_legit=80, num_fakes=20, seed=11)
        ).graph
        csr = graph.csr(backend)
        sides = sides_for(csr.num_nodes, seed=2)
        k = 1.0
        reference = heap_gains(csr.view(), sides, k)
        sides_arg = sides
        if backend == "numpy":
            import numpy as np

            sides_arg = np.asarray(sides, dtype=np.int64)
        for block in make_blocks(csr, 4):
            gains, _, _ = block.pass_state(sides_arg, k)
            assert gains == reference[block.lo : block.hi]


class TestSlices:
    @pytest.fixture
    def block(self):
        from repro.core import AugmentedSocialGraph

        graph = AugmentedSocialGraph.from_edges(
            6,
            friendships=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
            rejections=[(0, 3), (5, 1)],
        )
        return ShardBlock.from_csr(graph.csr(), 1, 5)

    def test_request_order_preserved(self, block):
        slices = block.slices([4, 2, 3])
        assert slices.nodes == [4, 2, 3]
        records = slices.records()
        assert [r[0] for r in records] == [4, 2, 3]
        assert records[1][1] == [1, 3]  # node 2's friends

    def test_out_of_block_request_rejected(self, block):
        with pytest.raises(KeyError):
            block.slices([0])
        with pytest.raises(KeyError):
            block.slices([5])

    def test_payload_bytes_exact(self, block):
        slices = block.slices([2])
        # nodes(1) + three offset arrays of 2 + friends [1, 3] + no
        # rejections, all int64, plus the fixed header.
        elements = 1 + 3 * 2 + 2 + 0 + 0
        assert slices.payload_bytes() == MESSAGE_HEADER_BYTES + INT_BYTES * elements

    def test_block_payload_bytes_exact(self, block):
        # 4 nodes -> three ptr arrays of 5 entries; edge slots counted
        # directly off the arrays.
        elements = 3 * 5 + block.num_edges
        assert block.payload_bytes() == MESSAGE_HEADER_BYTES + INT_BYTES * elements

    def test_counter_constant_covers_two_int64(self):
        assert COUNTER_BYTES == 2 * INT_BYTES
