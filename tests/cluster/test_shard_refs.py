"""Tests for shard-block *references*: snapshot-backed distribution.

When the graph came out of a ``.csrbin`` snapshot, ``distribute_csr``
ships O(1) :class:`BlockRef` messages instead of pickled array payloads;
workers map their slices out of the shared file on first access. The
contract under test: reference mode is bit-identical to payload mode,
the avoided payload bytes are ledgered (not silently dropped *or*
counted as sent), and non-snapshot graphs cannot pretend to be
reference-shippable.
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterContext,
    ClusterRunStats,
    NetworkSimulator,
    distributed_maar,
)
from repro.cluster.blocks import BlockRef, ShardBlock, block_payload_bytes
from repro.core import AugmentedSocialGraph, CSRGraph
from repro.core.storage import clear_snapshot_cache


def build_csr(num_nodes=24):
    friendships = [(u, u + 1) for u in range(num_nodes - 1)]
    friendships += [(u, u + 5) for u in range(0, num_nodes - 5, 3)]
    rejections = [(u, (u + num_nodes // 2) % num_nodes) for u in range(0, num_nodes, 2)]
    return AugmentedSocialGraph.from_edges(
        num_nodes, friendships=friendships, rejections=rejections
    ).csr()


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_snapshot_cache()
    yield
    clear_snapshot_cache()


@pytest.fixture
def snapshot(tmp_path):
    csr = build_csr()
    path = csr.save(tmp_path / "graph.csrbin")
    return csr, path


class TestTransportSelection:
    def test_reference_requires_snapshot(self):
        context = ClusterContext(2)
        with pytest.raises(ValueError, match="snapshot-backed"):
            context.distribute_csr(build_csr(), 2, transport="reference")

    def test_unknown_transport_rejected(self, snapshot):
        _, path = snapshot
        context = ClusterContext(2)
        with pytest.raises(ValueError, match="transport"):
            context.distribute_csr(CSRGraph.open(path), 2, transport="carrier-pigeon")

    def test_auto_uses_payloads_for_plain_graphs(self):
        context = ClusterContext(2)
        sharded = context.distribute_csr(build_csr(), 2)
        worker = context.workers_for(0)[0]
        assert sharded.key(0) in worker.blocks
        assert not worker.block_refs

    def test_auto_uses_references_for_snapshot_graphs(self, snapshot):
        _, path = snapshot
        context = ClusterContext(2)
        sharded = context.distribute_csr(CSRGraph.open(path), 2)
        worker = context.workers_for(0)[0]
        assert sharded.key(0) in worker.block_refs
        assert sharded.key(0) not in worker.blocks  # not materialized yet

    def test_payload_override_forces_arrays(self, snapshot):
        _, path = snapshot
        context = ClusterContext(2)
        sharded = context.distribute_csr(
            CSRGraph.open(path), 2, transport="payload"
        )
        worker = context.workers_for(0)[0]
        assert sharded.key(0) in worker.blocks

    def test_cluster_config_validates_transport(self):
        with pytest.raises(ValueError):
            ClusterConfig(shard_transport="teleport")


class TestWireAccounting:
    def test_reference_upload_is_tiny_and_ledgered(self, snapshot):
        csr, path = snapshot
        payload_net = NetworkSimulator()
        ClusterContext(2, payload_net).distribute_csr(csr, 4, transport="payload")
        ref_net = NetworkSimulator()
        ClusterContext(2, ref_net).distribute_csr(
            CSRGraph.open(path), 4, transport="reference"
        )
        payload_bytes = payload_net.stats.bytes_by_kind["upload"]
        ref_bytes = ref_net.stats.bytes_by_kind["upload"]
        assert ref_bytes < payload_bytes
        # avoided + shipped add back up to the payload-mode volume
        assert ref_net.stats.bytes_avoided + ref_bytes == payload_bytes
        assert ref_net.stats.avoided_by_kind == {"upload": ref_net.stats.bytes_avoided}
        # avoided bytes are a savings ledger, never counted as sent
        assert ref_net.stats.bytes_sent == ref_bytes

    def test_block_payload_bytes_matches_real_block(self, snapshot):
        csr, _ = snapshot
        lo, hi = 0, csr.num_nodes // 2 - 1
        assert block_payload_bytes(csr, lo, hi) == ShardBlock.from_csr(
            csr, lo, hi
        ).payload_bytes()

    def test_negative_avoided_rejected(self):
        net = NetworkSimulator()
        with pytest.raises(ValueError):
            net.avoided("upload", -1)


class TestBlockRef:
    def test_materialize_matches_direct_slice(self, snapshot):
        csr, path = snapshot
        ref = BlockRef(str(path), 0, csr.num_nodes - 1)
        block = ref.materialize()
        direct = ShardBlock.from_csr(csr, 0, csr.num_nodes - 1)
        assert block.hot() == direct.hot()

    def test_refs_on_same_file_share_one_mapping(self, snapshot):
        from repro.core import storage

        csr, path = snapshot
        mid = csr.num_nodes // 2
        BlockRef(str(path), 0, mid - 1).materialize()
        BlockRef(str(path), mid, csr.num_nodes - 1).materialize()
        # Both slices were cut from one cached snapshot open, not two.
        assert len(storage._OPEN_CACHE) == 1

    def test_worker_materializes_lazily(self, snapshot):
        _, path = snapshot
        context = ClusterContext(2)
        sharded = context.distribute_csr(
            CSRGraph.open(path), 2, transport="reference"
        )
        worker = context.block_replica_for(0, sharded.key(0))
        assert sharded.key(0) not in worker.blocks
        lo, hi = sharded.range_of(0)
        worker.block_slices(sharded.key(0), [lo])
        assert sharded.key(0) in worker.blocks

    def test_failed_worker_drops_refs(self, snapshot):
        _, path = snapshot
        context = ClusterContext(2, replication=2)
        sharded = context.distribute_csr(
            CSRGraph.open(path), 2, transport="reference"
        )
        worker = context.block_replica_for(0, sharded.key(0))
        worker.fail()
        assert not worker.block_refs
        fallback = context.block_replica_for(0, sharded.key(0))
        assert fallback is not worker


class TestEndToEndParity:
    @pytest.mark.parametrize("num_legit,num_fakes", [(180, 40)])
    def test_reference_mode_bit_identical(self, tmp_path, num_legit, num_fakes):
        from repro.attacks import ScenarioConfig, build_scenario

        scenario = build_scenario(
            ScenarioConfig(num_legit=num_legit, num_fakes=num_fakes, seed=11)
        )
        csr = scenario.graph.csr()
        snap = csr.save(tmp_path / "scenario.csrbin")
        results = {}
        for transport, graph in (
            ("payload", csr),
            ("reference", CSRGraph.open(snap)),
        ):
            stats = ClusterRunStats()
            nodes, rate, k = distributed_maar(
                graph,
                cluster_config=ClusterConfig(shard_transport=transport),
                stats=stats,
            )
            results[transport] = (tuple(nodes), rate, k, stats)
        assert results["payload"][:3] == results["reference"][:3]
        ref_stats = results["reference"][3]
        assert ref_stats.network.bytes_avoided > 0
        assert (
            ref_stats.network.bytes_by_kind["upload"]
            < results["payload"][3].network.bytes_by_kind["upload"]
        )

    def test_reference_mode_python_backend(self, tmp_path):
        from repro.attacks import ScenarioConfig, build_scenario

        scenario = build_scenario(
            ScenarioConfig(num_legit=90, num_fakes=20, seed=5)
        )
        csr = scenario.graph.csr(backend="python")
        snap = csr.save(tmp_path / "py.csrbin")
        mapped = CSRGraph.open(snap, backend="python")
        payload_result = distributed_maar(
            csr, cluster_config=ClusterConfig(shard_transport="payload")
        )
        reference_result = distributed_maar(
            mapped, cluster_config=ClusterConfig(shard_transport="reference")
        )
        assert tuple(payload_result[0]) == tuple(reference_result[0])
        assert payload_result[1:] == reference_result[1:]
