"""Tests for the distributed KL engine — headlined by exact equivalence
with the single-machine implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import ScenarioConfig, build_scenario
from repro.cluster import (
    ClusterConfig,
    ClusterRunStats,
    DistributedKL,
    distributed_maar,
)
from repro.core import (
    KLConfig,
    KLStats,
    MAARConfig,
    Partition,
    extended_kl,
    solve_maar,
)
from repro.core.objectives import LEGITIMATE, SUSPICIOUS

from ..conftest import augmented_graphs, random_augmented_graph

try:
    import numpy  # noqa: F401

    BACKENDS = ("python", "numpy")
except ImportError:  # pragma: no cover - numpy is present in CI's main job
    BACKENDS = ("python",)


def rejection_init(graph):
    return [
        SUSPICIOUS if graph.rej_in[u] else LEGITIMATE
        for u in range(graph.num_nodes)
    ]


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(ScenarioConfig(num_legit=400, num_fakes=80, seed=21))


class TestEquivalenceWithCore:
    @pytest.mark.parametrize("k", [0.125, 1.0, 8.0, 64.0])
    def test_identical_partitions(self, scenario, k):
        """The cluster engine implements the same greedy discipline as
        the core KL; results must match bit for bit."""
        graph = scenario.graph
        init = rejection_init(graph)
        core = extended_kl(
            graph, k, Partition(graph, init), config=KLConfig(gain_index="bucket")
        )
        engine = DistributedKL(graph)
        sides, f_cross, r_cross = engine.run(k, init)
        assert sides == core.sides
        assert (f_cross, r_cross) == (core.f_cross, core.r_cross)

    def test_distributed_maar_matches_core(self, scenario):
        graph = scenario.graph
        suspicious, rate, best_k = distributed_maar(
            graph, maar_config=MAARConfig(k_steps=6)
        )
        core = solve_maar(graph, MAARConfig(k_steps=6))
        assert set(suspicious) == set(core.suspicious_nodes())
        assert rate == pytest.approx(core.acceptance_rate)
        assert best_k == core.k

    def test_locked_nodes_respected(self, scenario):
        graph = scenario.graph
        init = rejection_init(graph)
        locked = [False] * graph.num_nodes
        locked[0] = True
        locked[graph.num_nodes - 1] = True
        engine = DistributedKL(graph)
        sides, _, _ = engine.run(1.0, init, locked=locked)
        assert sides[0] == init[0]
        assert sides[-1] == init[-1]


class TestAccounting:
    def test_traffic_and_prefetch_stats_populated(self, scenario):
        stats = ClusterRunStats()
        engine = DistributedKL(scenario.graph)
        engine.run(1.0, rejection_init(scenario.graph), stats=stats)
        assert stats.passes >= 1
        assert stats.switches_tested > 0
        assert stats.network.messages > 0
        assert stats.network.bytes_sent > 0
        assert "fetch" in stats.network.by_kind
        assert "broadcast" in stats.network.by_kind

    def test_prefetching_reduces_fetch_messages(self, scenario):
        """Section V's claim: batching top-gain nodes into each fetch
        slashes the master-worker round trips."""
        graph = scenario.graph
        init = rejection_init(graph)

        with_prefetch = DistributedKL(
            graph, ClusterConfig(buffer_capacity=4096, prefetch_batch=64)
        )
        with_prefetch.run(1.0, init)
        batched = with_prefetch.network.stats.by_kind["fetch"]

        without = DistributedKL(graph, ClusterConfig(buffer_capacity=0))
        without.run(1.0, init)
        on_demand = without.network.stats.by_kind["fetch"]

        assert batched < on_demand / 5

    def test_prefetch_hit_rate_high(self, scenario):
        stats = ClusterRunStats()
        engine = DistributedKL(scenario.graph)
        engine.run(1.0, rejection_init(scenario.graph), stats=stats)
        assert stats.prefetch_hit_rate > 0.8

    def test_results_identical_with_and_without_prefetch(self, scenario):
        """Prefetching is a pure I/O optimization — it must not change
        the computed partition."""
        graph = scenario.graph
        init = rejection_init(graph)
        a = DistributedKL(graph, ClusterConfig(buffer_capacity=4096)).run(2.0, init)
        b = DistributedKL(graph, ClusterConfig(buffer_capacity=0)).run(2.0, init)
        assert a == b

    def test_worker_count_does_not_change_result(self, scenario):
        graph = scenario.graph
        init = rejection_init(graph)
        small = DistributedKL(graph, ClusterConfig(num_workers=2, num_partitions=8))
        large = DistributedKL(graph, ClusterConfig(num_workers=10, num_partitions=40))
        assert small.run(1.0, init) == large.run(1.0, init)


class TestShardedProtocol:
    """The CSR-sharded wire protocol: backend × prefetch × broadcast-mode
    parity (partitions, counters, *and* objective history) plus the
    delta-broadcast and per-kind byte accounting."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("broadcast_mode", ["delta", "full"])
    @pytest.mark.parametrize("buffer_capacity", [4096, 0])
    def test_bit_identical_to_local_engine(
        self, scenario, backend, broadcast_mode, buffer_capacity
    ):
        """Full-fidelity parity with the local engine: same partitions,
        same counters, same number of passes, same switch counts, same
        per-pass objective history — for every backend, with and without
        prefetching, under both broadcast encodings. The worker gains
        come from replica side vectors, so this also proves the delta
        protocol keeps every replica exactly in sync."""
        graph = scenario.graph
        init = rejection_init(graph)
        k = 8.0
        core_stats = KLStats()
        core = extended_kl(
            graph,
            k,
            Partition(graph, init),
            config=KLConfig(gain_index="bucket"),
            stats=core_stats,
        )
        engine = DistributedKL(
            graph.csr(backend),
            ClusterConfig(
                buffer_capacity=buffer_capacity,
                broadcast_mode=broadcast_mode,
            ),
        )
        stats = ClusterRunStats()
        sides, f_cross, r_cross = engine.run(k, init, stats=stats)
        assert sides == core.sides
        assert (f_cross, r_cross) == (core.f_cross, core.r_cross)
        assert stats.passes == core_stats.passes
        assert stats.switches_tested == core_stats.switches_tested
        assert stats.switches_applied == core_stats.switches_applied
        assert stats.objective_history == core_stats.objective_history

    def test_delta_broadcasts_engage_between_passes(self, scenario):
        stats = ClusterRunStats()
        engine = DistributedKL(scenario.graph)
        engine.run(8.0, rejection_init(scenario.graph), stats=stats)
        workers = engine.config.num_workers
        assert stats.passes > 1  # multi-pass run, or the test is vacuous
        # One full sync opens the run; each further pass ships a delta.
        assert stats.network.by_kind["broadcast"] == workers
        assert stats.network.by_kind["delta"] == (stats.passes - 1) * workers

    def test_full_mode_rebroadcasts_every_pass(self, scenario):
        stats = ClusterRunStats()
        engine = DistributedKL(
            scenario.graph, ClusterConfig(broadcast_mode="full")
        )
        engine.run(8.0, rejection_init(scenario.graph), stats=stats)
        workers = engine.config.num_workers
        assert stats.passes > 1
        assert "delta" not in stats.network.by_kind
        assert stats.network.by_kind["broadcast"] == stats.passes * workers

    def test_bytes_by_kind_partitions_total(self, scenario):
        stats = ClusterRunStats()
        engine = DistributedKL(scenario.graph)
        engine.run(1.0, rejection_init(scenario.graph), stats=stats)
        kinds = stats.network.bytes_by_kind
        for kind in ("upload", "broadcast", "gains", "fetch"):
            assert kinds.get(kind, 0) > 0, kind
        assert sum(kinds.values()) == stats.network.bytes_sent
        assert set(stats.network.by_kind) == set(kinds)

    def test_fetch_stats_surface_in_run_stats(self, scenario):
        stats = ClusterRunStats()
        engine = DistributedKL(scenario.graph)
        engine.run(1.0, rejection_init(scenario.graph), stats=stats)
        assert stats.fetch_batches > 0
        assert stats.records_fetched >= stats.fetch_batches
        assert stats.fetch_batches == stats.prefetch_misses

    def test_stats_accumulate_across_runs(self, scenario):
        """distributed_maar reuses one stats object across the k-sweep;
        prefetch and fetch counters must accumulate, not reset."""
        graph = scenario.graph
        init = rejection_init(graph)
        engine = DistributedKL(graph)
        stats = ClusterRunStats()
        engine.run(1.0, init, stats=stats)
        first = (stats.prefetch_hits, stats.fetch_batches, stats.passes)
        engine.run(2.0, init, stats=stats)
        assert stats.prefetch_hits > first[0]
        assert stats.fetch_batches > first[1]
        assert stats.passes > first[2]
        assert len(stats.objective_history) == stats.passes

    def test_invalid_broadcast_mode_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(broadcast_mode="compressed")


class TestValidation:
    def test_invalid_k(self, scenario):
        engine = DistributedKL(scenario.graph)
        with pytest.raises(ValueError):
            engine.run(0.0, rejection_init(scenario.graph))

    def test_sides_length_mismatch(self, scenario):
        engine = DistributedKL(scenario.graph)
        with pytest.raises(ValueError):
            engine.run(1.0, [0, 1])


@given(augmented_graphs(max_nodes=18, max_edges=40), st.sampled_from([0.25, 1.0, 4.0]))
@settings(max_examples=25, deadline=None)
def test_engine_matches_core_on_random_graphs(graph, k):
    init = rejection_init(graph)
    core = extended_kl(
        graph, k, Partition(graph, init), config=KLConfig(gain_index="bucket")
    )
    engine = DistributedKL(graph, ClusterConfig(num_workers=3, num_partitions=5))
    sides, f_cross, r_cross = engine.run(k, init)
    assert sides == core.sides
    assert (f_cross, r_cross) == (core.f_cross, core.r_cross)
