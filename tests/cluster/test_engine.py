"""Tests for the distributed KL engine — headlined by exact equivalence
with the single-machine implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import ScenarioConfig, build_scenario
from repro.cluster import (
    ClusterConfig,
    ClusterRunStats,
    DistributedKL,
    distributed_maar,
)
from repro.core import KLConfig, MAARConfig, Partition, extended_kl, solve_maar
from repro.core.objectives import LEGITIMATE, SUSPICIOUS

from ..conftest import augmented_graphs, random_augmented_graph


def rejection_init(graph):
    return [
        SUSPICIOUS if graph.rej_in[u] else LEGITIMATE
        for u in range(graph.num_nodes)
    ]


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(ScenarioConfig(num_legit=400, num_fakes=80, seed=21))


class TestEquivalenceWithCore:
    @pytest.mark.parametrize("k", [0.125, 1.0, 8.0, 64.0])
    def test_identical_partitions(self, scenario, k):
        """The cluster engine implements the same greedy discipline as
        the core KL; results must match bit for bit."""
        graph = scenario.graph
        init = rejection_init(graph)
        core = extended_kl(
            graph, k, Partition(graph, init), config=KLConfig(gain_index="bucket")
        )
        engine = DistributedKL(graph)
        sides, f_cross, r_cross = engine.run(k, init)
        assert sides == core.sides
        assert (f_cross, r_cross) == (core.f_cross, core.r_cross)

    def test_distributed_maar_matches_core(self, scenario):
        graph = scenario.graph
        suspicious, rate, best_k = distributed_maar(
            graph, maar_config=MAARConfig(k_steps=6)
        )
        core = solve_maar(graph, MAARConfig(k_steps=6))
        assert set(suspicious) == set(core.suspicious_nodes())
        assert rate == pytest.approx(core.acceptance_rate)
        assert best_k == core.k

    def test_locked_nodes_respected(self, scenario):
        graph = scenario.graph
        init = rejection_init(graph)
        locked = [False] * graph.num_nodes
        locked[0] = True
        locked[graph.num_nodes - 1] = True
        engine = DistributedKL(graph)
        sides, _, _ = engine.run(1.0, init, locked=locked)
        assert sides[0] == init[0]
        assert sides[-1] == init[-1]


class TestAccounting:
    def test_traffic_and_prefetch_stats_populated(self, scenario):
        stats = ClusterRunStats()
        engine = DistributedKL(scenario.graph)
        engine.run(1.0, rejection_init(scenario.graph), stats=stats)
        assert stats.passes >= 1
        assert stats.switches_tested > 0
        assert stats.network.messages > 0
        assert stats.network.bytes_sent > 0
        assert "fetch" in stats.network.by_kind
        assert "broadcast" in stats.network.by_kind

    def test_prefetching_reduces_fetch_messages(self, scenario):
        """Section V's claim: batching top-gain nodes into each fetch
        slashes the master-worker round trips."""
        graph = scenario.graph
        init = rejection_init(graph)

        with_prefetch = DistributedKL(
            graph, ClusterConfig(buffer_capacity=4096, prefetch_batch=64)
        )
        with_prefetch.run(1.0, init)
        batched = with_prefetch.network.stats.by_kind["fetch"]

        without = DistributedKL(graph, ClusterConfig(buffer_capacity=0))
        without.run(1.0, init)
        on_demand = without.network.stats.by_kind["fetch"]

        assert batched < on_demand / 5

    def test_prefetch_hit_rate_high(self, scenario):
        stats = ClusterRunStats()
        engine = DistributedKL(scenario.graph)
        engine.run(1.0, rejection_init(scenario.graph), stats=stats)
        assert stats.prefetch_hit_rate > 0.8

    def test_results_identical_with_and_without_prefetch(self, scenario):
        """Prefetching is a pure I/O optimization — it must not change
        the computed partition."""
        graph = scenario.graph
        init = rejection_init(graph)
        a = DistributedKL(graph, ClusterConfig(buffer_capacity=4096)).run(2.0, init)
        b = DistributedKL(graph, ClusterConfig(buffer_capacity=0)).run(2.0, init)
        assert a == b

    def test_worker_count_does_not_change_result(self, scenario):
        graph = scenario.graph
        init = rejection_init(graph)
        small = DistributedKL(graph, ClusterConfig(num_workers=2, num_partitions=8))
        large = DistributedKL(graph, ClusterConfig(num_workers=10, num_partitions=40))
        assert small.run(1.0, init) == large.run(1.0, init)


class TestValidation:
    def test_invalid_k(self, scenario):
        engine = DistributedKL(scenario.graph)
        with pytest.raises(ValueError):
            engine.run(0.0, rejection_init(scenario.graph))

    def test_sides_length_mismatch(self, scenario):
        engine = DistributedKL(scenario.graph)
        with pytest.raises(ValueError):
            engine.run(1.0, [0, 1])


@given(augmented_graphs(max_nodes=18, max_edges=40), st.sampled_from([0.25, 1.0, 4.0]))
@settings(max_examples=25, deadline=None)
def test_engine_matches_core_on_random_graphs(graph, k):
    init = rejection_init(graph)
    core = extended_kl(
        graph, k, Partition(graph, init), config=KLConfig(gain_index="bucket")
    )
    engine = DistributedKL(graph, ClusterConfig(num_workers=3, num_partitions=5))
    sides, f_cross, r_cross = engine.run(k, init)
    assert sides == core.sides
    assert (f_cross, r_cross) == (core.f_cross, core.r_cross)
