"""Tests for the mini-cluster RDD substrate."""

import pytest

from repro.cluster import ClusterContext, NetworkSimulator, estimate_bytes


@pytest.fixture
def context():
    return ClusterContext(num_workers=3)


class TestParallelize:
    def test_records_distributed_round_robin(self, context):
        dataset = context.parallelize(range(10), num_partitions=4)
        assert dataset.num_partitions == 4
        assert sorted(dataset.collect()) == list(range(10))

    def test_upload_charged(self):
        net = NetworkSimulator()
        context = ClusterContext(2, net)
        context.parallelize(range(100), num_partitions=4)
        assert net.stats.by_kind.get("upload") == 4
        assert net.stats.bytes_sent > 0

    def test_invalid_arguments(self, context):
        with pytest.raises(ValueError):
            context.parallelize([1], num_partitions=0)
        with pytest.raises(ValueError):
            ClusterContext(0)


class TestTransformations:
    def test_map(self, context):
        dataset = context.parallelize(range(6), 2).map(lambda x: x * x)
        assert sorted(dataset.collect()) == [0, 1, 4, 9, 16, 25]

    def test_filter(self, context):
        dataset = context.parallelize(range(10), 3).filter(lambda x: x % 2 == 0)
        assert sorted(dataset.collect()) == [0, 2, 4, 6, 8]

    def test_flat_map(self, context):
        dataset = context.parallelize([1, 2], 1).flat_map(lambda x: [x] * x)
        assert sorted(dataset.collect()) == [1, 2, 2]

    def test_map_partitions(self, context):
        dataset = context.parallelize(range(8), 2).map_partitions(
            lambda records: [sum(records)]
        )
        assert sum(dataset.collect()) == sum(range(8))

    def test_chained_lineage(self, context):
        result = (
            context.parallelize(range(20), 4)
            .map(lambda x: x + 1)
            .filter(lambda x: x % 3 == 0)
            .map(lambda x: x * 10)
            .collect()
        )
        assert sorted(result) == [30, 60, 90, 120, 150, 180]

    def test_transformations_are_lazy(self, context):
        calls = []
        dataset = context.parallelize(range(4), 2).map(
            lambda x: calls.append(x) or x
        )
        assert calls == []  # nothing evaluated yet
        dataset.collect()
        assert sorted(calls) == [0, 1, 2, 3]


class TestCaching:
    def test_cache_avoids_recomputation(self, context):
        calls = []
        dataset = (
            context.parallelize(range(5), 2)
            .map(lambda x: calls.append(x) or x)
            .cache()
        )
        dataset.collect()
        first = len(calls)
        dataset.collect()
        assert len(calls) == first  # second action served from cache

    def test_uncached_recomputes(self, context):
        calls = []
        dataset = context.parallelize(range(5), 2).map(
            lambda x: calls.append(x) or x
        )
        dataset.collect()
        dataset.collect()
        assert len(calls) == 10


class TestActions:
    def test_count_ships_counters_not_data(self):
        net = NetworkSimulator()
        context = ClusterContext(2, net)
        dataset = context.parallelize(range(1000), 4)
        net.reset()
        assert dataset.count() == 1000
        # 4 count messages of 8 bytes each, far below the data size.
        assert net.stats.bytes_sent == 32

    def test_reduce(self, context):
        dataset = context.parallelize(range(1, 11), 3)
        assert dataset.reduce(lambda a, b: a + b) == 55

    def test_reduce_empty_rejected(self, context):
        dataset = context.parallelize([], 2)
        with pytest.raises(ValueError):
            dataset.reduce(lambda a, b: a + b)


class TestReduceByKey:
    def test_word_count_style(self, context):
        pairs = [("a", 1), ("b", 1), ("a", 1), ("c", 1), ("b", 1), ("a", 1)]
        dataset = context.parallelize(pairs, 3).reduce_by_key(lambda a, b: a + b)
        assert dict(dataset.collect()) == {"a": 3, "b": 2, "c": 1}

    def test_shuffle_traffic_charged(self):
        net = NetworkSimulator()
        context = ClusterContext(3, net)
        pairs = [(i % 7, 1) for i in range(200)]
        dataset = context.parallelize(pairs, 6)
        net.reset()
        dataset.reduce_by_key(lambda a, b: a + b)
        assert net.stats.by_kind.get("shuffle", 0) >= 1
        assert net.stats.bytes_sent > 0

    def test_custom_output_partitions(self, context):
        pairs = [(i, i) for i in range(10)]
        dataset = context.parallelize(pairs, 2).reduce_by_key(
            lambda a, b: a + b, num_partitions=5
        )
        assert dataset.num_partitions == 5
        assert sorted(dataset.collect()) == [(i, i) for i in range(10)]


class TestEstimateBytes:
    def test_scalar_sizes(self):
        assert estimate_bytes(7) == 8
        assert estimate_bytes(3.14) == 8
        assert estimate_bytes(None) == 1
        assert estimate_bytes("abcd") == 53

    def test_container_sizes_grow(self):
        assert estimate_bytes([1, 2, 3]) > estimate_bytes([1])
        assert estimate_bytes({"k": [1, 2]}) > estimate_bytes({})

    def test_int_list_fast_path_exact(self):
        # Header plus 8 bytes per element — no per-item recursion.
        assert estimate_bytes([1] * 10) == 56 + 8 * 10
        assert estimate_bytes(list(range(1000))) == 56 + 8 * 1000

    def test_array_buffer_exact(self):
        from array import array

        assert estimate_bytes(array("q", range(10))) == 56 + 8 * 10
        assert estimate_bytes(array("b", [1, 2])) == 56 + 2

    def test_nbytes_objects_exact(self):
        numpy = pytest.importorskip("numpy")
        assert estimate_bytes(numpy.zeros(10, dtype=numpy.int64)) == 16 + 80

    def test_bools_are_not_swallowed_by_int_fast_path(self):
        # type(True) is bool, not int — the flat-int fast path must not
        # price a bool at 8 bytes.
        assert estimate_bytes([True, False]) == 56 + 1 + 1

    def test_deep_nesting_no_longer_undercounted(self):
        """Regression: the old depth cap flattened anything below four
        levels to 8 bytes, undercounting nested payloads. Every level
        must now contribute its container header."""
        six_deep = [[[[[[1]]]]]]
        seven_deep = [[[[[[[1]]]]]]]
        assert estimate_bytes(six_deep) == (56 + 8) + 56 * 5
        assert estimate_bytes(seven_deep) == estimate_bytes(six_deep) + 56

    def test_cyclic_payload_raises_instead_of_recursing(self):
        cyclic = []
        cyclic.append(cyclic)
        with pytest.raises(ValueError):
            estimate_bytes(cyclic)


class TestDistributeCSR:
    @pytest.fixture
    def csr(self):
        from repro.core import AugmentedSocialGraph

        return AugmentedSocialGraph.from_edges(
            12,
            friendships=[(u, u + 1) for u in range(11)],
            rejections=[(0, 6), (11, 3)],
        ).csr()

    def test_blocks_land_on_every_replica(self, csr):
        context = ClusterContext(num_workers=3, replication=2)
        sharded = context.distribute_csr(csr, num_partitions=4)
        for pid in range(4):
            holders = [
                w
                for w in context.workers
                if w.has_block(sharded.key(pid))
            ]
            assert len(holders) == 2

    def test_upload_bytes_scale_with_replication(self, csr):
        net1 = NetworkSimulator()
        ClusterContext(3, net1, replication=1).distribute_csr(csr, 4)
        net2 = NetworkSimulator()
        ClusterContext(3, net2, replication=2).distribute_csr(csr, 4)
        assert net1.stats.bytes_by_kind["upload"] > 0
        assert (
            net2.stats.bytes_by_kind["upload"]
            == 2 * net1.stats.bytes_by_kind["upload"]
        )

    def test_block_replica_failover(self, csr):
        from repro.cluster import DataLossError

        context = ClusterContext(num_workers=3, replication=2)
        sharded = context.distribute_csr(csr, num_partitions=3)
        primary = context.block_replica_for(0, sharded.key(0))
        primary.fail()
        fallback = context.block_replica_for(0, sharded.key(0))
        assert fallback is not primary and fallback.alive
        fallback.fail()
        with pytest.raises(DataLossError):
            context.block_replica_for(0, sharded.key(0))


class TestShuffleProperty:
    def test_reduce_by_key_matches_counter(self):
        """Property: the shuffle+reduce agrees with a plain Counter for
        arbitrary key/value streams."""
        from collections import Counter

        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(
            st.lists(
                st.tuples(
                    st.integers(min_value=-20, max_value=20),
                    st.integers(min_value=-5, max_value=5),
                ),
                max_size=80,
            ),
            st.integers(min_value=1, max_value=6),
        )
        @settings(max_examples=40, deadline=None)
        def check(pairs, partitions):
            context = ClusterContext(3)
            dataset = context.parallelize(pairs, max(1, partitions)).reduce_by_key(
                lambda a, b: a + b
            )
            expected = Counter()
            for key, value in pairs:
                expected[key] += value
            assert dict(dataset.collect()) == dict(expected)

        check()
