"""Tests for the network simulator."""

import pytest

from repro.cluster import NetworkModel, NetworkSimulator


class TestNetworkModel:
    def test_transfer_time(self):
        model = NetworkModel(
            latency_seconds=0.001, bandwidth_bytes_per_second=1_000_000
        )
        # 10 messages of 1ms latency + 2MB over 1MB/s.
        assert model.transfer_time(10, 2_000_000) == pytest.approx(2.01)

    def test_defaults_are_datacenter_like(self):
        model = NetworkModel()
        assert model.transfer_time(1, 0) == pytest.approx(0.0002)


class TestNetworkSimulator:
    def test_send_accumulates(self):
        sim = NetworkSimulator()
        sim.send("fetch", 100)
        sim.send("fetch", 50, messages=2)
        sim.send("broadcast", 10)
        assert sim.stats.messages == 4
        assert sim.stats.bytes_sent == 160
        assert sim.stats.by_kind == {"fetch": 3, "broadcast": 1}

    def test_simulated_seconds(self):
        sim = NetworkSimulator(NetworkModel(0.001, 1000))
        sim.send("x", 500, messages=5)
        assert sim.simulated_seconds == pytest.approx(0.005 + 0.5)

    def test_bytes_tracked_per_kind(self):
        sim = NetworkSimulator()
        sim.send("fetch", 100)
        sim.send("fetch", 50, messages=2)
        sim.send("delta", 24)
        assert sim.stats.bytes_by_kind == {"fetch": 150, "delta": 24}
        assert sum(sim.stats.bytes_by_kind.values()) == sim.stats.bytes_sent

    def test_reset_returns_window(self):
        sim = NetworkSimulator()
        sim.send("a", 10)
        old = sim.reset()
        assert old.messages == 1
        assert old.bytes_by_kind == {"a": 10}
        assert sim.stats.messages == 0
        assert sim.stats.bytes_by_kind == {}

    def test_negative_values_rejected(self):
        sim = NetworkSimulator()
        with pytest.raises(ValueError):
            sim.send("a", -1)
        with pytest.raises(ValueError):
            sim.send("a", 1, messages=-2)
