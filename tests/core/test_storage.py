"""Tests for the binary snapshot store (``repro.core.storage``).

The format contract under test: round-trips preserve every buffer on
every backend, the writer emits canonical little-endian bytes so the
python and numpy backends produce byte-identical files, ``mmap`` opens
are zero-copy views the solvers and shard slicing work on directly, and
malformed files are rejected with :class:`SnapshotFormatError` rather
than garbage graphs.
"""

import pickle
from array import array

import pytest

from repro.core import AugmentedSocialGraph, CSRGraph, solve_maar
from repro.core.csr import WeightedCSRGraph
from repro.core.storage import (
    ALIGNMENT,
    MAGIC,
    SnapshotFormatError,
    clear_snapshot_cache,
    load_snapshot,
    open_snapshot_cached,
    save_snapshot,
    snapshot_info,
)

try:
    import numpy  # noqa: F401

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - numpy-less CI job
    HAS_NUMPY = False

BACKENDS = ("python",) + (("numpy",) if HAS_NUMPY else ())


def small_graph(backend="auto"):
    return AugmentedSocialGraph.from_edges(
        8,
        friendships=[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (0, 7)],
        rejections=[(0, 4), (1, 4), (2, 5), (7, 6)],
    ).csr(backend=backend)


def weighted_graph(backend="auto"):
    graph = WeightedCSRGraph.from_unit(small_graph(backend=backend))
    return graph


def assert_same_arrays(a, b):
    for name in ("f_ptr", "f_idx", "ro_ptr", "ro_idx", "ri_ptr", "ri_idx"):
        assert list(getattr(a, name)) == list(getattr(b, name)), name


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_snapshot_cache()
    yield
    clear_snapshot_cache()


class TestRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mode", ("mmap", "copy"))
    def test_plain_graph(self, tmp_path, backend, mode):
        csr = small_graph(backend=backend)
        snap = save_snapshot(csr, tmp_path / "g.csrbin")
        clone = load_snapshot(snap, mode=mode, backend=backend)
        assert clone.num_nodes == csr.num_nodes
        assert clone.num_friendships == csr.num_friendships
        assert clone.num_rejections == csr.num_rejections
        assert_same_arrays(clone, csr)
        assert clone.f_wt is None
        assert not isinstance(clone, WeightedCSRGraph)
        assert list(clone.friendships()) == list(csr.friendships())
        assert list(clone.rejections()) == list(csr.rejections())

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mode", ("mmap", "copy"))
    def test_weighted_graph(self, tmp_path, backend, mode):
        graph = weighted_graph(backend=backend)
        snap = save_snapshot(graph, tmp_path / "w.csrbin")
        clone = load_snapshot(snap, mode=mode, backend=backend)
        assert isinstance(clone, WeightedCSRGraph)
        assert clone.int_weighted
        assert_same_arrays(clone, graph)
        for name in ("f_wt", "ro_wt", "ri_wt", "node_weight"):
            assert list(getattr(clone, name)) == list(getattr(graph, name)), name

    def test_float_weights_round_trip(self, tmp_path):
        base = small_graph(backend="python")
        csr = CSRGraph(
            base.num_nodes,
            base.f_ptr,
            base.f_idx,
            base.ro_ptr,
            base.ro_idx,
            base.ri_ptr,
            base.ri_idx,
            f_wt=array("d", [1.5] * len(base.f_idx)),
            ro_wt=array("d", [0.25] * len(base.ro_idx)),
            ri_wt=array("d", [0.25] * len(base.ri_idx)),
            backend="python",
        )
        snap = save_snapshot(csr, tmp_path / "f.csrbin")
        clone = load_snapshot(snap, mode="copy", backend="python")
        assert not clone.int_weighted
        assert list(clone.f_wt) == [1.5] * len(base.f_idx)
        assert list(clone.ro_wt) == [0.25] * len(base.ro_idx)

    def test_empty_graph(self, tmp_path):
        csr = CSRGraph.from_edges(3, friendships=[], rejections=[])
        snap = save_snapshot(csr, tmp_path / "e.csrbin")
        for mode in ("mmap", "copy"):
            clone = load_snapshot(snap, mode=mode)
            assert clone.num_nodes == 3
            assert clone.num_friendships == 0
            assert clone.num_rejections == 0

    def test_save_open_methods_delegate(self, tmp_path):
        csr = small_graph()
        out = csr.save(tmp_path / "m.csrbin")
        clone = CSRGraph.open(out)
        assert_same_arrays(clone, csr)
        assert clone.snapshot_path == str(out.resolve())

    def test_snapshot_path_recorded_and_not_pickled(self, tmp_path):
        snap = save_snapshot(small_graph(), tmp_path / "p.csrbin")
        mapped = load_snapshot(snap)
        assert mapped.snapshot_path == str(snap.resolve())
        clone = pickle.loads(pickle.dumps(mapped))
        assert clone.snapshot_path is None
        assert_same_arrays(clone, mapped)

    def test_segments_are_page_aligned(self, tmp_path):
        snap = save_snapshot(weighted_graph(), tmp_path / "a.csrbin")
        info = snapshot_info(snap)
        for seg in info["segments"]:
            assert seg["offset"] % ALIGNMENT == 0, seg


class TestBackendParity:
    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend unavailable")
    def test_backends_write_identical_files(self, tmp_path):
        py_file = tmp_path / "py.csrbin"
        np_file = tmp_path / "np.csrbin"
        save_snapshot(small_graph(backend="python"), py_file)
        save_snapshot(small_graph(backend="numpy"), np_file)
        assert py_file.read_bytes() == np_file.read_bytes()

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend unavailable")
    def test_weighted_backends_write_identical_files(self, tmp_path):
        py_file = tmp_path / "py.csrbin"
        np_file = tmp_path / "np.csrbin"
        save_snapshot(weighted_graph(backend="python"), py_file)
        save_snapshot(weighted_graph(backend="numpy"), np_file)
        assert py_file.read_bytes() == np_file.read_bytes()

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend unavailable")
    def test_mmap_reopen_resaves_identically(self, tmp_path):
        """Saving a memmap-backed graph reproduces the original file."""
        first = save_snapshot(small_graph(backend="numpy"), tmp_path / "1.csrbin")
        mapped = load_snapshot(first, backend="numpy")
        second = save_snapshot(mapped, tmp_path / "2.csrbin")
        assert first.read_bytes() == second.read_bytes()


class TestMappedGraphsWork:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_solver_runs_on_mapped_graph(self, tmp_path, backend):
        csr = small_graph(backend=backend)
        snap = save_snapshot(csr, tmp_path / "s.csrbin")
        mapped = load_snapshot(snap, backend=backend)
        direct = solve_maar(csr)
        via_snapshot = solve_maar(mapped)
        assert via_snapshot.found == direct.found
        assert via_snapshot.suspicious_nodes() == direct.suspicious_nodes()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_block_arrays_slice_mapped_graph(self, tmp_path, backend):
        csr = small_graph(backend=backend)
        snap = save_snapshot(csr, tmp_path / "b.csrbin")
        mapped = load_snapshot(snap, backend=backend)
        for lo, hi in ((0, 3), (4, 7)):
            want = csr.block_arrays(lo, hi)
            got = mapped.block_arrays(lo, hi)
            assert [list(buf) for buf in got] == [list(buf) for buf in want]


class TestInfo:
    def test_info_fields(self, tmp_path):
        csr = small_graph()
        snap = save_snapshot(csr, tmp_path / "i.csrbin")
        info = snapshot_info(snap)
        assert info["version"] == 1
        assert info["num_nodes"] == csr.num_nodes
        assert info["friendships"] == csr.num_friendships
        assert info["rejections"] == csr.num_rejections
        assert not info["weighted"]
        assert not info["has_node_weight"]
        assert info["file_bytes"] == snap.stat().st_size
        names = [seg["name"] for seg in info["segments"]]
        assert names == ["f_ptr", "f_idx", "ro_ptr", "ro_idx", "ri_ptr", "ri_idx"]

    def test_info_weighted_flags(self, tmp_path):
        snap = save_snapshot(weighted_graph(), tmp_path / "w.csrbin")
        info = snapshot_info(snap)
        assert info["weighted"] and info["int_weighted"] and info["has_node_weight"]
        names = [seg["name"] for seg in info["segments"]]
        assert names[-4:] == ["f_wt", "ro_wt", "ri_wt", "node_weight"]


class TestErrors:
    def test_bad_magic_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.csrbin"
        bogus.write_bytes(b"NOTACSRB" + b"\x00" * 100)
        with pytest.raises(SnapshotFormatError, match="bad magic"):
            load_snapshot(bogus)

    def test_unknown_version_rejected(self, tmp_path):
        snap = save_snapshot(small_graph(), tmp_path / "v.csrbin")
        raw = bytearray(snap.read_bytes())
        raw[8:16] = (99).to_bytes(8, "little")
        snap.write_bytes(bytes(raw))
        with pytest.raises(SnapshotFormatError, match="version 99"):
            load_snapshot(snap)

    def test_truncated_header_rejected(self, tmp_path):
        stub = tmp_path / "stub.csrbin"
        stub.write_bytes(MAGIC + b"\x01")
        with pytest.raises(SnapshotFormatError, match="truncated header"):
            load_snapshot(stub)

    def test_truncated_data_rejected(self, tmp_path):
        snap = save_snapshot(small_graph(), tmp_path / "t.csrbin")
        raw = snap.read_bytes()
        snap.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SnapshotFormatError):
            load_snapshot(snap)

    def test_bad_mode_rejected(self, tmp_path):
        snap = save_snapshot(small_graph(), tmp_path / "m.csrbin")
        with pytest.raises(ValueError, match="mode must be"):
            load_snapshot(snap, mode="stream")

    def test_info_on_non_snapshot(self, tmp_path):
        text = tmp_path / "edges.txt"
        text.write_text("0 1\n1 2\n")
        with pytest.raises(SnapshotFormatError):
            snapshot_info(text)


class TestOpenCache:
    def test_cache_returns_same_object(self, tmp_path):
        snap = save_snapshot(small_graph(), tmp_path / "c.csrbin")
        first = open_snapshot_cached(snap)
        second = open_snapshot_cached(snap)
        assert first is second

    def test_cache_keyed_by_mode(self, tmp_path):
        snap = save_snapshot(small_graph(), tmp_path / "c.csrbin")
        assert open_snapshot_cached(snap, mode="mmap") is not open_snapshot_cached(
            snap, mode="copy"
        )

    def test_clear_cache_drops_entries(self, tmp_path):
        snap = save_snapshot(small_graph(), tmp_path / "c.csrbin")
        first = open_snapshot_cached(snap)
        clear_snapshot_cache()
        assert open_snapshot_cached(snap) is not first

    def test_atomic_overwrite_keeps_old_mapping_valid(self, tmp_path):
        """``save_snapshot`` replaces via rename, so an already-open
        mapping keeps reading the old inode while new opens see the new
        file."""
        snap = save_snapshot(small_graph(), tmp_path / "c.csrbin")
        old = load_snapshot(snap)
        old_edges = list(old.friendships())
        bigger = AugmentedSocialGraph.from_edges(
            9, friendships=[(0, 1), (2, 8)], rejections=[(3, 4)]
        ).csr()
        save_snapshot(bigger, snap)
        assert list(old.friendships()) == old_edges
        assert load_snapshot(snap).num_nodes == 9
