"""Tests for interval-sharded detection (Section VII)."""

import random

import pytest

from repro.attacks import CompromiseEvent, TimelineConfig, simulate_timeline
from repro.core import (
    AugmentedSocialGraph,
    MAARConfig,
    RejectoConfig,
    detect_over_shards,
)
from repro.graphgen import powerlaw_cluster


@pytest.fixture(scope="module")
def compromised_world():
    """600 users; 40 are compromised on day 2 of a 4-day window."""
    rng = random.Random(11)
    base = powerlaw_cluster(600, 4.0, 0.68, rng)
    compromised = sorted(rng.sample(range(600), 40))
    timeline = simulate_timeline(
        base,
        [CompromiseEvent(u, 2) for u in compromised],
        TimelineConfig(num_days=4, spam_daily_requests=15),
        rng,
    )
    return timeline, compromised


class TestDetectOverShards:
    def test_compromise_detected_in_onset_interval(self, compromised_world):
        """With the paper's acceptance-threshold termination, shards
        without real spam produce no flags at all, and the onset
        interval pinpoints the compromised accounts."""
        timeline, compromised = compromised_world
        config = RejectoConfig(
            maar=MAARConfig(k_steps=8),
            estimated_spammers=len(compromised),
            acceptance_threshold=0.6,  # well below legit ~0.8 acceptance
        )
        result = detect_over_shards(timeline.daily_shards(), config)
        assert result.num_intervals == 4
        # Pre-compromise intervals: the best cut looks like normal users,
        # so the threshold stops detection before flagging anyone.
        assert not result.flagged(0)
        assert not result.flagged(1)
        # The onset interval flags (most of) the compromised accounts...
        onset = result.flagged(2)
        assert len(onset & set(compromised)) > 30
        # ...with near-perfect precision, and first_flagged pinpoints
        # the compromise day.
        assert len(onset & set(compromised)) > 0.9 * len(onset)
        newly = result.newly_flagged(2)
        assert len(newly & set(compromised)) > 30

    def test_flagged_union(self, compromised_world):
        timeline, compromised = compromised_world
        config = RejectoConfig(
            maar=MAARConfig(k_steps=6),
            estimated_spammers=len(compromised),
        )
        result = detect_over_shards(timeline.daily_shards(), config)
        union = result.flagged()
        assert union == set(result.first_flagged)
        for interval in range(result.num_intervals):
            assert result.flagged(interval) <= union

    def test_flag_counts_shape(self, compromised_world):
        timeline, compromised = compromised_world
        config = RejectoConfig(
            maar=MAARConfig(k_steps=6),
            estimated_spammers=len(compromised),
        )
        result = detect_over_shards(timeline.daily_shards(), config)
        counts = result.flag_counts()
        assert len(counts) == 4
        # Post-compromise intervals flag far more than pre-compromise.
        assert counts[2] > counts[0]

    def test_empty_shards_rejected(self):
        with pytest.raises(ValueError):
            detect_over_shards([])

    def test_mismatched_populations_rejected(self):
        with pytest.raises(ValueError, match="disagree"):
            detect_over_shards(
                [AugmentedSocialGraph(3), AugmentedSocialGraph(4)]
            )

    def test_seeds_apply_to_every_interval(self, compromised_world):
        timeline, compromised = compromised_world
        legit = [u for u in range(timeline.num_users) if u not in compromised]
        seeds = legit[:10]
        config = RejectoConfig(
            maar=MAARConfig(k_steps=6),
            estimated_spammers=len(compromised),
        )
        result = detect_over_shards(
            timeline.daily_shards(), config, legit_seeds=seeds
        )
        assert not result.flagged() & set(seeds)
