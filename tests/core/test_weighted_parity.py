"""Parity suite for the integer-weight CSR pipeline.

Pins the reproducibility contract of the weighted hot path: on
int64-weighted graphs the numpy batch kernels, the pure-python
fallbacks, the fused weighted bucket engine, the heap engine, and the
incremental/full-rebuild pass modes are all *bit-identical* — same
sides, same integer counters, same objective history. Plus the two
structural properties the multilevel solver rests on: unit-weight
contraction always yields exact integer coarse weights, and every
projection between levels preserves the cut weights exactly.
"""

import random

import pytest
from hypothesis import given, settings

from repro.core.csr import CSRGraph, PartitionState, WeightedCSRGraph
from repro.core.kernels import (
    contract_arrays,
    heavy_edge_matching,
    matching_to_mapping,
    weighted_gain_deltas,
    weighted_heap_gains,
    weighted_recount_active,
)
from repro.core.kl import KLConfig, KLStats, extended_kl_state
from repro.core.objectives import LEGITIMATE, SUSPICIOUS

from ..conftest import augmented_graphs, graphs_with_sides, random_augmented_graph

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy-free hosts
    HAVE_NUMPY = False

BACKENDS = ("python", "numpy") if HAVE_NUMPY else ("python",)

requires_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def coarse_state(seed: int, levels: int = 1, backend: str = "python"):
    """A deterministic int64-weighted state: contract a random graph
    ``levels`` times and carry the projected sides along."""
    graph = random_augmented_graph(
        num_nodes=60, num_friendships=130, num_rejections=50, seed=seed
    )
    rng = random.Random(seed + 1)
    csr = graph.csr(backend)
    sides = [rng.randint(0, 1) for _ in range(csr.num_nodes)]
    for _ in range(levels):
        priority = list(range(csr.num_nodes))
        rng.shuffle(priority)
        match = heavy_edge_matching(csr, priority)
        mapping, num_coarse = matching_to_mapping(match, backend)
        coarse = csr.contract(mapping, num_coarse)
        coarse_sides = [LEGITIMATE] * num_coarse
        for u, cu in enumerate(mapping):
            if sides[u] == SUSPICIOUS:
                coarse_sides[cu] = SUSPICIOUS
        csr, sides = coarse, coarse_sides
    return csr, sides


def run_signature(csr, sides, k, config):
    stats = KLStats()
    state = PartitionState(csr.view(), sides, [False] * csr.num_nodes)
    out = extended_kl_state(state, k, config, stats=stats)
    return (
        list(out.sides),
        out.f_cross,
        out.r_cross,
        list(out.side_sizes),
        stats.objective_history,
    )


class TestIntegerCoarseWeights:
    @settings(max_examples=40, deadline=None)
    @given(augmented_graphs())
    def test_unit_weight_contraction_is_integral(self, graph):
        csr = graph.csr("python")
        match = heavy_edge_matching(csr, list(range(csr.num_nodes)))
        mapping, num_coarse = matching_to_mapping(match, "python")
        coarse = csr.contract(mapping, num_coarse)
        assert isinstance(coarse, WeightedCSRGraph)
        assert coarse.int_weighted
        for buffer in (coarse.f_wt, coarse.ro_wt, coarse.ri_wt):
            assert buffer.typecode == "q"
            assert all(w >= 1 for w in buffer)
        assert coarse.total_node_weight() == csr.num_nodes
        # Re-contracting keeps integrality (the million-node hierarchy
        # never leaves the int64 representation).
        match2 = heavy_edge_matching(coarse, list(range(num_coarse)))
        mapping2, num_coarse2 = matching_to_mapping(match2, "python")
        coarse2 = coarse.contract(mapping2, num_coarse2)
        assert coarse2.int_weighted
        assert coarse2.total_node_weight() == csr.num_nodes

    @settings(max_examples=40, deadline=None)
    @given(graphs_with_sides())
    def test_projection_preserves_cut_weights_exactly(self, case):
        graph, sides = case
        csr = graph.csr("python")
        n = csr.num_nodes
        match = heavy_edge_matching(csr, list(range(n)))
        mapping, num_coarse = matching_to_mapping(match, "python")
        coarse = csr.contract(mapping, num_coarse)
        # Coarse sides chosen freely, then projected up: the coarse
        # counters must equal a from-scratch fine recount.
        rng = random.Random(7)
        coarse_sides = [rng.randint(0, 1) for _ in range(num_coarse)]
        projected = [coarse_sides[mapping[u]] for u in range(n)]
        fine_state = PartitionState(csr.view(), projected, [False] * n)
        coarse_state_ = PartitionState(
            coarse.view(), coarse_sides, [False] * num_coarse
        )
        assert coarse_state_.f_cross == fine_state.f_cross
        assert coarse_state_.r_cross == fine_state.r_cross
        assert coarse.weighted_suspicious_size(coarse_sides) == sum(
            1 for s in projected if s == SUSPICIOUS
        )


@requires_numpy
class TestCoarseningKernelParity:
    @settings(max_examples=30, deadline=None)
    @given(augmented_graphs())
    def test_matching_and_contraction_match_python(self, graph):
        rng = random.Random(13)
        priority = list(range(graph.num_nodes))
        rng.shuffle(priority)
        locked = [rng.random() < 0.15 for _ in range(graph.num_nodes)]
        py = graph.csr("python")
        np_ = graph.csr("numpy")
        match_py = heavy_edge_matching(py, priority, locked=locked)
        match_np = heavy_edge_matching(np_, priority, locked=locked)
        assert match_py == match_np
        mapping_py, nc_py = matching_to_mapping(match_py, "python")
        mapping_np, nc_np = matching_to_mapping(match_np, "numpy")
        assert nc_py == nc_np
        assert list(mapping_py) == list(mapping_np)
        buffers_py = contract_arrays(py, mapping_py, nc_py)
        buffers_np = contract_arrays(np_, mapping_np, nc_np)
        for buffer_py, buffer_np in zip(buffers_py, buffers_np):
            assert list(buffer_py) == list(buffer_np)

    def test_weighted_kernels_match_python(self):
        for seed in range(5):
            csr_py, sides = coarse_state(seed, backend="python")
            csr_np, _ = coarse_state(seed, backend="numpy")
            view_py, view_np = csr_py.view(), csr_np.view()
            fd_py, rd_py = weighted_gain_deltas(view_py, sides)
            fd_np, rd_np = weighted_gain_deltas(view_np, sides)
            assert list(fd_py) == list(fd_np)
            assert list(rd_py) == list(rd_np)
            assert weighted_heap_gains(view_py, sides, 2.0) == weighted_heap_gains(
                view_np, sides, 2.0
            )
            assert weighted_recount_active(view_py, sides) == weighted_recount_active(
                view_np, sides
            )


class TestWeightedKLParity:
    """Backend × engine × incremental-mode: all bit-identical."""

    K_VALUES = (0.25, 1.0, 4.0)

    @pytest.mark.parametrize("seed", range(6))
    def test_bucket_heap_and_modes_agree(self, seed):
        signatures = set()
        for backend in BACKENDS:
            csr, sides = coarse_state(seed, backend=backend)
            for k in self.K_VALUES:
                for gain_index in ("bucket", "heap"):
                    for incremental in (False, True):
                        config = KLConfig(
                            gain_index=gain_index, incremental=incremental
                        )
                        signature = run_signature(csr, sides, k, config)
                        signatures.add((k, repr(signature)))
        # One distinct signature per k, whatever the backend/engine/mode.
        assert len(signatures) == len(self.K_VALUES)

    @pytest.mark.parametrize("seed", range(4))
    def test_two_level_coarse_graphs_agree(self, seed):
        for k in (0.5, 2.0):
            reference = None
            for backend in BACKENDS:
                csr, sides = coarse_state(seed, levels=2, backend=backend)
                assert csr.int_weighted
                for gain_index in ("bucket", "heap"):
                    signature = run_signature(
                        csr, sides, k, KLConfig(gain_index=gain_index)
                    )
                    if reference is None:
                        reference = signature
                    assert signature == reference

    def test_unit_weight_graph_matches_unweighted_solve(self):
        for seed in range(5):
            graph = random_augmented_graph(
                num_nodes=40, num_friendships=90, num_rejections=35, seed=seed
            )
            rng = random.Random(seed)
            sides = [rng.randint(0, 1) for _ in range(graph.num_nodes)]
            plain = graph.csr("python")
            unit = WeightedCSRGraph.from_unit(plain)
            for k in (0.25, 1.0):
                assert run_signature(
                    unit, sides, k, KLConfig()
                ) == run_signature(plain, sides, k, KLConfig())

    def test_weighted_auto_uses_bucket_on_grid(self):
        csr, sides = coarse_state(3)
        assert csr.int_weighted
        # Off-grid k falls back to the heap instead of raising.
        off_grid = run_signature(csr, sides, 0.3, KLConfig())
        heap = run_signature(csr, sides, 0.3, KLConfig(gain_index="heap"))
        assert off_grid == heap
        with pytest.raises(ValueError, match="bucket grid"):
            run_signature(csr, sides, 0.3, KLConfig(gain_index="bucket"))

    def test_float_weighted_graph_rejects_bucket(self):
        from repro.core.weighted import WeightedAugmentedGraph

        graph = WeightedAugmentedGraph(4)
        graph.add_friendship(0, 1, 0.5)
        graph.add_rejection(2, 3, 1.5)
        csr = graph.csr("python")
        assert csr.weighted and not csr.int_weighted
        with pytest.raises(ValueError, match="int64"):
            run_signature(csr, [0, 0, 0, 1], 1.0, KLConfig(gain_index="bucket"))

    def test_residual_weighted_view_falls_back_to_heap(self):
        from repro.core.csr import CSRView

        csr, sides = coarse_state(2)
        assert isinstance(csr, WeightedCSRGraph)
        active = bytearray(b"\x01") * csr.num_nodes
        active[0] = 0
        view = CSRView(csr, active)
        state = PartitionState(view, sides, [False] * csr.num_nodes)
        with pytest.raises(ValueError, match="all-active"):
            extended_kl_state(state, 1.0, KLConfig(gain_index="bucket"))
        # auto silently takes the heap on the residual view.
        out = extended_kl_state(state, 1.0, KLConfig())
        assert out.verify_counts()
