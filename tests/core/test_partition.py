"""Tests for the incremental partition counters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AugmentedSocialGraph, Partition, cut_counts

from ..conftest import graphs_with_sides


class TestConstruction:
    def test_all_legitimate(self):
        graph = AugmentedSocialGraph.from_edges(3, [(0, 1)], [(2, 0)])
        p = Partition.all_legitimate(graph)
        assert p.suspicious_size == 0
        assert p.f_cross == 0
        assert p.r_cross == 0

    def test_from_suspicious_set(self):
        graph = AugmentedSocialGraph.from_edges(3, [(0, 1)], [(0, 2)])
        p = Partition.from_suspicious_set(graph, [2])
        assert p.suspicious_nodes() == [2]
        assert p.f_cross == 0
        assert p.r_cross == 1

    def test_length_mismatch_rejected(self):
        graph = AugmentedSocialGraph(3)
        with pytest.raises(ValueError):
            Partition(graph, [0, 1])

    def test_invalid_side_rejected(self):
        graph = AugmentedSocialGraph(2)
        with pytest.raises(ValueError):
            Partition(graph, [0, 2])

    def test_initial_counts_match_scratch(self):
        graph = AugmentedSocialGraph.from_edges(
            4, friendships=[(0, 1), (1, 2), (2, 3)], rejections=[(0, 3), (3, 0)]
        )
        sides = [0, 1, 0, 1]
        p = Partition(graph, sides)
        assert (p.f_cross, p.r_cross) == cut_counts(graph, sides)


class TestSwitch:
    def test_switch_updates_sides_and_sizes(self):
        graph = AugmentedSocialGraph(3)
        p = Partition.all_legitimate(graph)
        p.switch(1)
        assert p.sides == [0, 1, 0]
        assert p.suspicious_size == 1
        assert p.legitimate_size == 2
        p.switch(1)
        assert p.sides == [0, 0, 0]

    def test_switch_friendship_counter(self):
        graph = AugmentedSocialGraph.from_edges(2, friendships=[(0, 1)])
        p = Partition.all_legitimate(graph)
        p.switch(1)
        assert p.f_cross == 1
        p.switch(0)
        assert p.f_cross == 0

    def test_switch_rejection_counter_directional(self):
        graph = AugmentedSocialGraph.from_edges(2, rejections=[(0, 1)])
        p = Partition.all_legitimate(graph)
        p.switch(1)  # 1 becomes suspicious; 0 rejects it -> counted
        assert p.r_cross == 1
        p.switch(0)  # rejecter also suspicious -> no longer counted
        assert p.r_cross == 0
        p.switch(1)  # now 0 suspicious, 1 legit; edge 0->1 points out -> 0
        assert p.r_cross == 0

    def test_switch_gain_matches_actual_change(self):
        graph = AugmentedSocialGraph.from_edges(
            5,
            friendships=[(0, 1), (1, 2), (3, 4)],
            rejections=[(0, 3), (1, 3), (4, 2)],
        )
        p = Partition.from_suspicious_set(graph, [3, 4])
        k = 1.5
        for u in range(5):
            predicted = p.switch_gain(u, k)
            before = p.objective(k)
            p.switch(u)
            after = p.objective(k)
            assert predicted == pytest.approx(before - after)
            p.switch(u)  # restore

    def test_copy_is_independent(self):
        graph = AugmentedSocialGraph.from_edges(2, friendships=[(0, 1)])
        p = Partition.all_legitimate(graph)
        q = p.copy()
        q.switch(0)
        assert p.sides == [0, 0]
        assert p.f_cross == 0
        assert q.f_cross == 1


class TestQueries:
    def test_acceptance_rate_and_ratio(self):
        graph = AugmentedSocialGraph.from_edges(
            3, friendships=[(0, 2)], rejections=[(0, 1), (1, 2)]
        )
        p = Partition.from_suspicious_set(graph, [2])
        # cross friendships: (0,2); counted rejections: (1,2).
        assert p.f_cross == 1
        assert p.r_cross == 1
        assert p.acceptance_rate() == pytest.approx(0.5)
        assert p.ratio() == pytest.approx(1.0)

    def test_verify_counts(self):
        graph = AugmentedSocialGraph.from_edges(3, [(0, 1)], [(2, 1)])
        p = Partition.from_suspicious_set(graph, [1])
        assert p.verify_counts()
        p.switch(2)
        p.switch(0)
        assert p.verify_counts()


@given(graphs_with_sides(), st.data())
@settings(max_examples=60, deadline=None)
def test_incremental_counters_match_scratch_after_random_switches(case, data):
    """Property: any sequence of switches leaves the incremental counters
    equal to a from-scratch recount."""
    graph, sides = case
    p = Partition(graph, sides)
    moves = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.num_nodes - 1), max_size=30
        )
    )
    for u in moves:
        p.switch(u)
    assert (p.f_cross, p.r_cross) == cut_counts(graph, p.sides)
    assert p.side_sizes == [p.sides.count(0), p.sides.count(1)]


@given(graphs_with_sides(), st.data())
@settings(max_examples=60, deadline=None)
def test_switch_gain_is_exact_objective_delta(case, data):
    graph, sides = case
    p = Partition(graph, sides)
    u = data.draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
    k = data.draw(
        st.floats(min_value=0.125, max_value=64, allow_nan=False).map(
            lambda x: round(x * 8) / 8 or 0.125
        )
    )
    predicted = p.switch_gain(u, k)
    before = p.objective(k)
    p.switch(u)
    assert predicted == pytest.approx(before - p.objective(k))


@given(graphs_with_sides(), st.data())
@settings(max_examples=40, deadline=None)
def test_double_switch_is_identity(case, data):
    graph, sides = case
    p = Partition(graph, sides)
    u = data.draw(st.integers(min_value=0, max_value=graph.num_nodes - 1))
    snapshot = (list(p.sides), p.f_cross, p.r_cross)
    p.switch(u)
    p.switch(u)
    assert (list(p.sides), p.f_cross, p.r_cross) == snapshot
