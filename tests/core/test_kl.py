"""Tests for the extended Kernighan-Lin search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AugmentedSocialGraph,
    KLConfig,
    KLStats,
    Partition,
    cut_counts,
    extended_kl,
)

from ..conftest import augmented_graphs, random_augmented_graph


def planted_spam_graph():
    """Two legit cliques plus a fake group mostly rejected by legit users."""
    graph = AugmentedSocialGraph(9)
    for group in ([0, 1, 2], [3, 4, 5]):
        for i in group:
            for j in group:
                if i < j:
                    graph.add_friendship(i, j)
    graph.add_friendship(2, 3)  # bridge between legit cliques
    fakes = [6, 7, 8]
    for f in fakes:
        graph.add_friendship(f, (f + 1 - 6) % 3 + 6)
    # Each fake: one accepted request, four rejections.
    accepted = {6: 0, 7: 3, 8: 5}
    for f, friend in accepted.items():
        graph.add_friendship(f, friend)
    for f in fakes:
        for legit in range(1, 5):
            rejecter = (accepted[f] + legit) % 6
            graph.add_rejection(rejecter, f)
    return graph, fakes


class TestExtendedKL:
    def test_separates_planted_spammers(self):
        graph, fakes = planted_spam_graph()
        result = extended_kl(graph, k=1.0, initial=Partition.all_legitimate(graph))
        assert sorted(result.suspicious_nodes()) == fakes

    def test_counters_remain_consistent(self):
        graph, _ = planted_spam_graph()
        result = extended_kl(graph, k=2.0, initial=Partition.all_legitimate(graph))
        assert result.verify_counts()

    def test_does_not_mutate_initial_partition(self):
        graph, _ = planted_spam_graph()
        init = Partition.all_legitimate(graph)
        extended_kl(graph, k=1.0, initial=init)
        assert init.suspicious_size == 0
        assert init.f_cross == 0

    def test_objective_never_increases_across_passes(self):
        graph = random_augmented_graph(60, 150, 120, seed=3)
        stats = KLStats()
        k = 2.0
        extended_kl(
            graph, k, Partition.all_legitimate(graph), stats=stats
        )
        history = stats.objective_history
        assert history == sorted(history, reverse=True)

    def test_result_is_single_switch_local_minimum(self):
        """After convergence, no single unlocked switch can strictly
        improve the objective (within the applied-prefix semantics)."""
        graph = random_augmented_graph(40, 100, 80, seed=7)
        k = 1.0
        result = extended_kl(graph, k, Partition.all_legitimate(graph))
        for u in range(graph.num_nodes):
            assert result.switch_gain(u, k) <= 1e-9

    def test_locked_nodes_never_switch(self):
        graph, fakes = planted_spam_graph()
        locked = [False] * graph.num_nodes
        locked[0] = True  # legit seed on side 0
        locked[6] = True  # spammer seed pre-placed on side 1
        init = Partition.from_suspicious_set(graph, [6])
        result = extended_kl(graph, k=1.0, initial=init, locked=locked)
        assert result.sides[0] == 0
        assert result.sides[6] == 1

    def test_all_locked_is_identity(self):
        graph, _ = planted_spam_graph()
        init = Partition.from_suspicious_set(graph, [1, 7])
        result = extended_kl(
            graph, k=1.0, initial=init, locked=[True] * graph.num_nodes
        )
        assert result.sides == init.sides

    def test_invalid_k_rejected(self):
        graph = AugmentedSocialGraph(2)
        with pytest.raises(ValueError):
            extended_kl(graph, k=0.0, initial=Partition.all_legitimate(graph))

    def test_locked_length_mismatch_rejected(self):
        graph = AugmentedSocialGraph(3)
        with pytest.raises(ValueError):
            extended_kl(
                graph, 1.0, Partition.all_legitimate(graph), locked=[True]
            )

    def test_empty_graph(self):
        graph = AugmentedSocialGraph(0)
        result = extended_kl(graph, 1.0, Partition.all_legitimate(graph))
        assert result.sides == []

    def test_isolated_nodes_stay_put(self):
        """Isolated nodes have zero gain; they must not flap across sides."""
        graph = AugmentedSocialGraph(5)
        graph.add_rejection(0, 1)
        result = extended_kl(graph, 4.0, Partition.all_legitimate(graph))
        # Node 1 should be suspicious (gain k - 0 > 0); isolated 2..4 stay.
        assert result.sides[1] == 1
        assert result.sides[2:] == [0, 0, 0]

    def test_stall_limit_terminates_early(self):
        graph = random_augmented_graph(80, 200, 150, seed=11)
        full_stats = KLStats()
        extended_kl(
            graph, 1.0, Partition.all_legitimate(graph), stats=full_stats
        )
        capped_stats = KLStats()
        extended_kl(
            graph,
            1.0,
            Partition.all_legitimate(graph),
            config=KLConfig(stall_limit=5),
            stats=capped_stats,
        )
        assert capped_stats.switches_tested < full_stats.switches_tested


class TestGainIndexEquivalence:
    @pytest.mark.parametrize("k", [0.125, 0.5, 1.0, 4.0, 64.0])
    def test_bucket_and_heap_reach_same_objective(self, k):
        """Both gain containers implement the same greedy discipline, so
        the full pass must produce identical cuts."""
        graph = random_augmented_graph(60, 150, 120, seed=5)
        init = Partition.all_legitimate(graph)
        bucket = extended_kl(
            graph, k, init, config=KLConfig(gain_index="bucket")
        )
        heap = extended_kl(graph, k, init, config=KLConfig(gain_index="heap"))
        assert bucket.objective(k) == pytest.approx(heap.objective(k))

    def test_heap_handles_off_grid_k(self):
        graph = random_augmented_graph(30, 60, 60, seed=9)
        result = extended_kl(
            graph,
            0.3,
            Partition.all_legitimate(graph),
            config=KLConfig(gain_index="auto"),
        )
        assert result.verify_counts()


@given(augmented_graphs(max_nodes=16, max_edges=40), st.sampled_from([0.25, 1.0, 4.0]))
@settings(max_examples=40, deadline=None)
def test_kl_never_worsens_the_initial_objective(graph, k):
    init = Partition.all_legitimate(graph)
    result = extended_kl(graph, k, init)
    assert result.objective(k) <= init.objective(k) + 1e-9
    assert (result.f_cross, result.r_cross) == cut_counts(graph, result.sides)


@given(augmented_graphs(max_nodes=14, max_edges=30), st.data())
@settings(max_examples=40, deadline=None)
def test_kl_respects_arbitrary_locks(graph, data):
    locked = data.draw(
        st.lists(
            st.booleans(), min_size=graph.num_nodes, max_size=graph.num_nodes
        )
    )
    sides = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=1),
            min_size=graph.num_nodes,
            max_size=graph.num_nodes,
        )
    )
    init = Partition(graph, sides)
    result = extended_kl(graph, 1.0, init, locked=locked)
    for u, is_locked in enumerate(locked):
        if is_locked:
            assert result.sides[u] == sides[u]
