"""Property tests for the batch kernels of :mod:`repro.core.kernels`.

Every kernel has a numpy variant and a pure-Python scalar fallback, and
both must be *bit-identical* to the scalar reference computations the
engines used before the kernels existed (``PartitionState.switch_gain``,
``PartitionState.recount``, ``CSRView.rejections_received``). The tests
run each kernel on residual views with inactive nodes — the case where
an off-by-one in the active-mask handling would hide on all-active
graphs.
"""

import pytest
from hypothesis import given, settings

from repro.core.csr import PartitionState
from repro.core.gains import HeapGainIndex
from repro.core.kernels import (
    active_in_rejections,
    gain_deltas,
    heap_gains,
    recount_active,
    scaled_gain_bound,
)

from ..conftest import graphs_with_sides

try:
    import numpy  # noqa: F401

    HAS_NUMPY = True
except ImportError:  # pragma: no cover
    HAS_NUMPY = False

BACKENDS = ("python", "numpy") if HAS_NUMPY else ("python",)
K_VALUES = (0.125, 1.0, 4.0, 0.3)


def residual_view(graph, backend):
    """A residual view dropping every fifth node (exercises the active
    mask) on the requested backend."""
    removed = [u for u in range(graph.num_nodes) if u % 5 == 4]
    return graph.csr(backend).view().without(removed)


class TestGainDeltas:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(graphs_with_sides())
    @settings(max_examples=40, deadline=None)
    def test_matches_switch_gain_on_residual_views(self, backend, graph_and_sides):
        graph, sides = graph_and_sides
        view = residual_view(graph, backend)
        state = PartitionState(view, list(sides))
        fd, rd = gain_deltas(view, state.sides)
        active = view.active
        for u in range(graph.num_nodes):
            if not active[u]:
                assert (fd[u], rd[u]) == (0, 0)
                continue
            for k in K_VALUES:
                assert -(fd[u] - k * rd[u]) == state.switch_gain(u, k)

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend unavailable")
    @given(graphs_with_sides())
    @settings(max_examples=40, deadline=None)
    def test_backends_identical(self, graph_and_sides):
        graph, sides = graph_and_sides
        py = gain_deltas(residual_view(graph, "python"), list(sides))
        np_ = gain_deltas(residual_view(graph, "numpy"), list(sides))
        assert np_ == py

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(graphs_with_sides())
    @settings(max_examples=30, deadline=None)
    def test_heap_gains_float_exact(self, backend, graph_and_sides):
        graph, sides = graph_and_sides
        view = residual_view(graph, backend)
        state = PartitionState(view, list(sides))
        for k in K_VALUES:
            gains = heap_gains(view, state.sides, k)
            for u in range(graph.num_nodes):
                if view.active[u]:
                    assert gains[u] == state.switch_gain(u, k)


class TestRecountActive:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(graphs_with_sides())
    @settings(max_examples=40, deadline=None)
    def test_matches_state_counters(self, backend, graph_and_sides):
        graph, sides = graph_and_sides
        view = residual_view(graph, backend)
        state = PartitionState(view, list(sides))
        f_cross, r_cross, ones = recount_active(view, state.sides)
        assert f_cross == state.f_cross
        assert r_cross == state.r_cross
        assert ones == state.side_sizes[1]
        assert view.num_active - ones == state.side_sizes[0]

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend unavailable")
    @given(graphs_with_sides())
    @settings(max_examples=40, deadline=None)
    def test_backends_identical(self, graph_and_sides):
        graph, sides = graph_and_sides
        py = recount_active(residual_view(graph, "python"), list(sides))
        np_ = recount_active(residual_view(graph, "numpy"), list(sides))
        assert np_ == py


class TestActiveInRejections:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(graphs_with_sides())
    @settings(max_examples=40, deadline=None)
    def test_matches_view_rejections_received(self, backend, graph_and_sides):
        graph, _ = graph_and_sides
        view = residual_view(graph, backend)
        counts = active_in_rejections(view)
        assert counts == [
            view.rejections_received(u) for u in range(graph.num_nodes)
        ]


class TestScaledGainBound:
    @pytest.mark.parametrize("backend", BACKENDS)
    @given(graphs_with_sides())
    @settings(max_examples=40, deadline=None)
    def test_covers_every_scaled_gain(self, backend, graph_and_sides):
        graph, sides = graph_and_sides
        csr = graph.csr(backend)
        view = residual_view(graph, backend)
        res = 8
        fd, rd = gain_deltas(view, list(sides))
        for k_scaled in (1, 8, 32):
            bound = scaled_gain_bound(csr, res, k_scaled)
            assert bound == csr.bucket_gain_bound(res, k_scaled)
            for u in range(graph.num_nodes):
                assert abs(k_scaled * rd[u] - fd[u] * res) <= bound

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend unavailable")
    @given(graphs_with_sides())
    @settings(max_examples=40, deadline=None)
    def test_backends_identical(self, graph_and_sides):
        graph, _ = graph_and_sides
        py = scaled_gain_bound(graph.csr("python"), 8, 8)
        np_ = scaled_gain_bound(graph.csr("numpy"), 8, 8)
        assert np_ == py


class TestWeightedRejected:
    def test_kernels_refuse_weighted_graphs(self):
        from repro.core.weighted import WeightedAugmentedGraph

        graph = WeightedAugmentedGraph(4)
        graph.add_friendship(0, 1, 2.0)
        graph.add_rejection(2, 3, 1.5)
        view = graph.csr().view()
        assert not view.csr.int_weighted
        with pytest.raises(ValueError, match="unweighted-only"):
            gain_deltas(view, [0, 1, 0, 1])
        with pytest.raises(ValueError, match="unweighted-only"):
            recount_active(view, [0, 1, 0, 1])
        with pytest.raises(ValueError, match="unweighted-only"):
            active_in_rejections(view)
        with pytest.raises(ValueError, match="float-weighted"):
            scaled_gain_bound(view.csr, 8, 8)

    def test_unweighted_kernels_refuse_int_weighted_graphs(self):
        from repro.core.weighted import WeightedAugmentedGraph

        graph = WeightedAugmentedGraph(4)
        graph.add_friendship(0, 1, 2.0)
        graph.add_rejection(2, 3, 3.0)
        view = graph.csr().view()
        assert view.csr.int_weighted
        with pytest.raises(ValueError, match="unweighted-only"):
            gain_deltas(view, [0, 1, 0, 1])
        with pytest.raises(ValueError, match="unweighted-only"):
            recount_active(view, [0, 1, 0, 1])
        # scaled_gain_bound supports int64 weights: weighted degrees
        # (max over nodes of deg_F·res + k_scaled·deg_R — here node 2's
        # weight-3 rejection dominates node 0's weight-2 friendship).
        assert scaled_gain_bound(view.csr, 8, 8) == max(2 * 8, 8 * 3)


class TestHeapBulkLoad:
    @given(graphs_with_sides())
    @settings(max_examples=40, deadline=None)
    def test_pop_order_matches_sequential_insert(self, graph_and_sides):
        graph, sides = graph_and_sides
        view = residual_view(graph, "python")
        state = PartitionState(view, list(sides))
        items = [
            (u, state.switch_gain(u, 0.3))
            for u in range(graph.num_nodes)
            if view.active[u]
        ]
        sequential = HeapGainIndex()
        for u, gain in items:
            sequential.insert(u, gain)
        bulk = HeapGainIndex()
        bulk.bulk_load(items)
        assert len(bulk) == len(sequential)
        while True:
            a, b = sequential.pop_max(), bulk.pop_max()
            assert a == b
            if a is None:
                break

    def test_bulk_load_rejects_duplicates(self):
        index = HeapGainIndex()
        with pytest.raises(ValueError, match="already present"):
            index.bulk_load([(1, 0.5), (1, 0.25)])
