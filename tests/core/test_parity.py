"""Legacy-engine vs CSR-engine parity.

The tentpole refactor keeps the original dict-adjacency KL/MAAR/Rejecto
implementations behind ``KLConfig(engine="legacy")``. These tests pin
the new flat-array core to the old behavior: on canonicalized graphs
(edges inserted in sorted order, so the legacy engine's insertion-order
adjacency equals the CSR's sorted adjacency) the two paths must produce
*identical* partitions, cut counters, and detected groups — not merely
equally good ones.
"""

import pytest
from hypothesis import given, settings

from repro.attacks.scenario import ScenarioConfig, build_scenario
from repro.core import AugmentedSocialGraph, Partition
from repro.core.csr import PartitionState
from repro.core.kl import KLConfig, KLStats, extended_kl, extended_kl_state
from repro.core.maar import MAARConfig, solve_maar
from repro.core.rejecto import Rejecto, RejectoConfig

from ..conftest import graphs_with_sides

LEGACY_KL = KLConfig(engine="legacy")
FULL_REBUILD = KLConfig(incremental=False)

try:
    import numpy  # noqa: F401

    HAS_NUMPY = True
except ImportError:  # pragma: no cover
    HAS_NUMPY = False


def canonical(graph):
    """Rebuild ``graph`` with sorted edge insertion.

    Sorted insertion makes every legacy adjacency list ascending, i.e.
    identical to the CSR ordering, so both engines visit neighbors in
    the same order and tie-breaks resolve identically.
    """
    return AugmentedSocialGraph.from_edges(
        graph.num_nodes,
        friendships=sorted(graph.friendships()),
        rejections=sorted(graph.rejections()),
    )


def scenario_graph(**overrides):
    config = ScenarioConfig(num_legit=300, num_fakes=60).with_overrides(**overrides)
    return build_scenario(config)


SCENARIOS = {
    "baseline": {},
    "collusion": {"collusion_extra_links": 4},
    "self_rejection": {"self_rejection_rate": 0.7, "whitewashed_fraction": 0.5},
}


def assert_maar_results_equal(legacy, new):
    assert legacy.found == new.found
    assert legacy.k == new.k
    assert legacy.acceptance_rate == pytest.approx(new.acceptance_rate)
    if legacy.found:
        assert legacy.suspicious_nodes() == new.suspicious_nodes()
        assert legacy.partition.f_cross == new.partition.f_cross
        assert legacy.partition.r_cross == new.partition.r_cross
    assert len(legacy.per_k) == len(new.per_k)
    for old_c, new_c in zip(legacy.per_k, new.per_k):
        assert old_c.k == new_c.k
        assert old_c.valid == new_c.valid
        assert old_c.f_cross == new_c.f_cross
        assert old_c.r_cross == new_c.r_cross
        assert old_c.suspicious_size == new_c.suspicious_size
        assert old_c.acceptance_rate == pytest.approx(new_c.acceptance_rate)


class TestExtendedKLParity:
    @given(graphs_with_sides())
    @settings(max_examples=40, deadline=None)
    def test_bucket_grid_k_values(self, graph_and_sides):
        graph, sides = graph_and_sides
        graph = canonical(graph)
        for k in (0.125, 1.0, 4.0):
            initial = Partition(graph, list(sides))
            legacy = extended_kl(graph, k, initial, config=LEGACY_KL)
            new = extended_kl(graph, k, initial)
            assert new.sides == legacy.sides
            assert (new.f_cross, new.r_cross) == (legacy.f_cross, legacy.r_cross)

    @given(graphs_with_sides())
    @settings(max_examples=40, deadline=None)
    def test_off_grid_k_uses_heap_on_both_engines(self, graph_and_sides):
        graph, sides = graph_and_sides
        graph = canonical(graph)
        initial = Partition(graph, list(sides))
        legacy = extended_kl(graph, 0.3, initial, config=LEGACY_KL)
        new = extended_kl(graph, 0.3, initial)
        assert new.sides == legacy.sides
        assert (new.f_cross, new.r_cross) == (legacy.f_cross, legacy.r_cross)

    @given(graphs_with_sides())
    @settings(max_examples=40, deadline=None)
    def test_locked_nodes_respected_identically(self, graph_and_sides):
        graph, sides = graph_and_sides
        graph = canonical(graph)
        locked = [u % 3 == 0 for u in range(graph.num_nodes)]
        initial = Partition(graph, list(sides))
        legacy = extended_kl(graph, 1.0, initial, locked=locked, config=LEGACY_KL)
        new = extended_kl(graph, 1.0, initial, locked=locked)
        assert new.sides == legacy.sides
        for u in range(graph.num_nodes):
            if locked[u]:
                assert new.sides[u] == sides[u]


class TestMAARParity:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_sweep_identical(self, name):
        scenario = scenario_graph(**SCENARIOS[name])
        graph = canonical(scenario.graph)
        legacy = solve_maar(graph, MAARConfig(kl=LEGACY_KL))
        new = solve_maar(graph, MAARConfig())
        assert_maar_results_equal(legacy, new)
        assert legacy.found

    def test_seeded_sweep_identical(self):
        scenario = scenario_graph()
        graph = canonical(scenario.graph)
        legit_seeds, spammer_seeds = scenario.sample_seeds(20, 5, seed=11)
        legacy = solve_maar(
            graph,
            MAARConfig(kl=LEGACY_KL),
            legit_seeds=legit_seeds,
            spammer_seeds=spammer_seeds,
        )
        new = solve_maar(
            graph,
            MAARConfig(),
            legit_seeds=legit_seeds,
            spammer_seeds=spammer_seeds,
        )
        assert_maar_results_equal(legacy, new)
        suspicious = set(new.suspicious_nodes())
        assert suspicious.issuperset(spammer_seeds)
        assert suspicious.isdisjoint(legit_seeds)

    def test_refinement_rounds_identical(self):
        scenario = scenario_graph()
        graph = canonical(scenario.graph)
        legacy = solve_maar(graph, MAARConfig(kl=LEGACY_KL, refine_rounds=2))
        new = solve_maar(graph, MAARConfig(refine_rounds=2))
        assert_maar_results_equal(legacy, new)


class TestParallelSweepParity:
    """Serial vs thread vs process ``k`` sweeps must be bit-identical:
    same best cut, same per-``k`` candidates, same aggregate KL stats,
    same Rejecto groups (the reduction replays the serial tie-breaks on
    ordered worker results)."""

    BACKENDS = ("thread", "process")

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_maar_sweep_identical(self, name, backend):
        graph = canonical(scenario_graph(**SCENARIOS[name]).graph)
        serial = solve_maar(graph, MAARConfig())
        parallel = solve_maar(graph, MAARConfig(jobs=2, executor=backend))
        assert_maar_results_equal(serial, parallel)
        assert serial.found
        assert parallel.suspicious_nodes() == serial.suspicious_nodes()
        assert parallel.stats.passes == serial.stats.passes
        assert parallel.stats.switches_applied == serial.stats.switches_applied
        assert parallel.stats.switches_tested == serial.stats.switches_tested
        assert parallel.stats.objective_history == serial.stats.objective_history

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_seeded_sweep_identical(self, backend):
        scenario = scenario_graph()
        graph = canonical(scenario.graph)
        legit_seeds, spammer_seeds = scenario.sample_seeds(20, 5, seed=11)
        serial = solve_maar(
            graph,
            MAARConfig(),
            legit_seeds=legit_seeds,
            spammer_seeds=spammer_seeds,
        )
        parallel = solve_maar(
            graph,
            MAARConfig(jobs=2, executor=backend),
            legit_seeds=legit_seeds,
            spammer_seeds=spammer_seeds,
        )
        assert_maar_results_equal(serial, parallel)
        assert parallel.suspicious_nodes() == serial.suspicious_nodes()

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rejecto_groups_identical(self, name, backend):
        graph = canonical(scenario_graph(**SCENARIOS[name]).graph)
        serial = Rejecto().detect(graph)
        parallel = Rejecto(
            RejectoConfig(maar=MAARConfig(jobs=2, executor=backend))
        ).detect(graph)
        assert parallel.termination == serial.termination
        assert parallel.rounds_run == serial.rounds_run
        for old_g, new_g in zip(serial.groups, parallel.groups):
            assert new_g.members == old_g.members
            assert new_g.f_cross == old_g.f_cross
            assert new_g.r_cross == old_g.r_cross
            assert new_g.k == old_g.k
            assert new_g.acceptance_rate == pytest.approx(old_g.acceptance_rate)
        assert parallel.detected() == serial.detected()

    def test_warm_start_falls_back_to_serial_semantics(self):
        """``warm_start`` couples the k steps; ``jobs`` must not change
        the result (the sweep ignores the fan-out and stays serial)."""
        graph = canonical(scenario_graph().graph)
        serial = solve_maar(graph, MAARConfig(warm_start=True))
        parallel = solve_maar(graph, MAARConfig(warm_start=True, jobs=2))
        assert_maar_results_equal(serial, parallel)

    def test_refinement_after_parallel_sweep_identical(self):
        graph = canonical(scenario_graph().graph)
        serial = solve_maar(graph, MAARConfig(refine_rounds=2))
        parallel = solve_maar(graph, MAARConfig(refine_rounds=2, jobs=2))
        assert_maar_results_equal(serial, parallel)


def assert_stats_equal(reference: KLStats, other: KLStats) -> None:
    assert other.passes == reference.passes
    assert other.switches_applied == reference.switches_applied
    assert other.switches_tested == reference.switches_tested
    assert other.objective_history == reference.objective_history


class TestIncrementalParity:
    """Dirty-frontier incremental passes vs the full-rebuild reference.

    ``KLConfig(incremental=False)`` re-sweeps all V+E gains every pass;
    the default rebuilds only the previous pass's applied prefix and its
    neighbourhood. The two must be bit-identical — same sides, counters,
    and complete ``KLStats`` including ``objective_history`` (which
    records the start-of-pass objective, so any drift in pass structure
    shows up immediately).
    """

    @given(graphs_with_sides())
    @settings(max_examples=40, deadline=None)
    def test_bucket_passes_identical(self, graph_and_sides):
        graph, sides = graph_and_sides
        graph = canonical(graph)
        locked = [u % 3 == 0 for u in range(graph.num_nodes)]
        for k in (0.125, 1.0, 4.0):
            initial = Partition(graph, list(sides))
            full_stats, inc_stats = KLStats(), KLStats()
            full = extended_kl(
                graph, k, initial, locked=locked,
                config=FULL_REBUILD, stats=full_stats,
            )
            inc = extended_kl(graph, k, initial, locked=locked, stats=inc_stats)
            assert inc.sides == full.sides
            assert (inc.f_cross, inc.r_cross) == (full.f_cross, full.r_cross)
            assert_stats_equal(full_stats, inc_stats)

    @given(graphs_with_sides())
    @settings(max_examples=40, deadline=None)
    def test_heap_passes_identical(self, graph_and_sides):
        graph, sides = graph_and_sides
        graph = canonical(graph)
        initial = Partition(graph, list(sides))
        full_stats, inc_stats = KLStats(), KLStats()
        full = extended_kl(
            graph, 0.3, initial, config=FULL_REBUILD, stats=full_stats
        )
        inc = extended_kl(graph, 0.3, initial, stats=inc_stats)
        assert inc.sides == full.sides
        assert (inc.f_cross, inc.r_cross) == (full.f_cross, full.r_cross)
        assert_stats_equal(full_stats, inc_stats)

    @given(graphs_with_sides())
    @settings(max_examples=25, deadline=None)
    def test_residual_view_passes_identical(self, graph_and_sides):
        graph, sides = graph_and_sides
        graph = canonical(graph)
        removed = [u for u in range(graph.num_nodes) if u % 5 == 4]
        locked = [u % 4 == 0 for u in range(graph.num_nodes)]
        view = graph.csr().view().without(removed)
        for k, config_inc in ((1.0, KLConfig()), (0.3, KLConfig())):
            full_stats, inc_stats = KLStats(), KLStats()
            full = extended_kl_state(
                PartitionState(view, list(sides), locked),
                k, config=FULL_REBUILD, stats=full_stats,
            )
            inc = extended_kl_state(
                PartitionState(view, list(sides), locked),
                k, config=config_inc, stats=inc_stats,
            )
            assert inc.sides == full.sides
            assert (inc.f_cross, inc.r_cross) == (full.f_cross, full.r_cross)
            assert inc.side_sizes == full.side_sizes
            assert_stats_equal(full_stats, inc_stats)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_maar_sweep_identical(self, name):
        graph = canonical(scenario_graph(**SCENARIOS[name]).graph)
        full = solve_maar(graph, MAARConfig(kl=FULL_REBUILD))
        inc = solve_maar(graph, MAARConfig())
        assert_maar_results_equal(full, inc)
        assert_stats_equal(full.stats, inc.stats)
        assert full.found

    def test_rejecto_groups_identical(self):
        graph = canonical(scenario_graph().graph)
        full = Rejecto(RejectoConfig(maar=MAARConfig(kl=FULL_REBUILD))).detect(graph)
        inc = Rejecto().detect(graph)
        assert inc.termination == full.termination
        assert [g.members for g in inc.groups] == [g.members for g in full.groups]
        assert inc.detected() == full.detected()


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend unavailable")
class TestBackendParity:
    """python vs numpy CSR backends must be bit-identical end to end:
    the batch kernels fill the same integer/float gain arrays the scalar
    fallback produces, so the engines cannot tell the backends apart."""

    @given(graphs_with_sides())
    @settings(max_examples=25, deadline=None)
    def test_extended_kl_state_identical(self, graph_and_sides):
        graph, sides = graph_and_sides
        graph = canonical(graph)
        removed = [u for u in range(graph.num_nodes) if u % 5 == 4]
        locked = [u % 4 == 0 for u in range(graph.num_nodes)]
        for k in (0.125, 1.0, 0.3):
            results = []
            for backend in ("python", "numpy"):
                view = graph.csr(backend).view().without(removed)
                stats = KLStats()
                out = extended_kl_state(
                    PartitionState(view, list(sides), locked), k, stats=stats
                )
                results.append((out, stats))
            (py_out, py_stats), (np_out, np_stats) = results
            assert np_out.sides == py_out.sides
            assert (np_out.f_cross, np_out.r_cross) == (
                py_out.f_cross,
                py_out.r_cross,
            )
            assert np_out.side_sizes == py_out.side_sizes
            assert_stats_equal(py_stats, np_stats)

    def test_rejecto_detection_identical(self, monkeypatch):
        scenario = scenario_graph()
        results = []
        for backend in ("python", "numpy"):
            # Pin every internal csr("auto") resolution to this backend.
            monkeypatch.setenv("REPRO_BACKEND", backend)
            graph = canonical(scenario.graph)
            results.append(Rejecto().detect(graph))
        py_res, np_res = results
        assert np_res.termination == py_res.termination
        assert [g.members for g in np_res.groups] == [
            g.members for g in py_res.groups
        ]
        assert np_res.detected() == py_res.detected()


class TestRejectoParity:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_detected_groups_identical(self, name):
        scenario = scenario_graph(**SCENARIOS[name])
        graph = canonical(scenario.graph)
        legacy = Rejecto(RejectoConfig(maar=MAARConfig(kl=LEGACY_KL))).detect(graph)
        new = Rejecto().detect(graph)
        assert new.termination == legacy.termination
        assert new.rounds_run == legacy.rounds_run
        assert len(new.groups) == len(legacy.groups)
        for old_g, new_g in zip(legacy.groups, new.groups):
            assert new_g.members == old_g.members
            assert new_g.f_cross == old_g.f_cross
            assert new_g.r_cross == old_g.r_cross
            assert new_g.acceptance_rate == pytest.approx(old_g.acceptance_rate)
        assert new.detected() == legacy.detected()

    def test_seeded_detection_identical(self):
        scenario = scenario_graph()
        graph = canonical(scenario.graph)
        legit_seeds, spammer_seeds = scenario.sample_seeds(20, 5, seed=3)
        config = RejectoConfig(estimated_spammers=len(scenario.fakes))
        legacy = Rejecto(
            RejectoConfig(
                maar=MAARConfig(kl=LEGACY_KL),
                estimated_spammers=len(scenario.fakes),
            )
        ).detect(graph, legit_seeds=legit_seeds, spammer_seeds=spammer_seeds)
        new = Rejecto(config).detect(
            graph, legit_seeds=legit_seeds, spammer_seeds=spammer_seeds
        )
        assert new.termination == legacy.termination
        assert [g.members for g in new.groups] == [g.members for g in legacy.groups]
