"""Tests for the seed-selection strategies."""

import random

import pytest

from repro.core import (
    community_seeds,
    degree_stratified_seeds,
    random_seeds,
)
from repro.graphgen import barabasi_albert


class TestRandomSeeds:
    def test_sampled_from_candidates(self):
        seeds = random_seeds(range(100), 10, random.Random(0))
        assert len(seeds) == 10
        assert all(0 <= s < 100 for s in seeds)
        assert seeds == sorted(seeds)

    def test_count_capped_at_pool(self):
        assert len(random_seeds([1, 2, 3], 10)) == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            random_seeds([1], -1)


class TestDegreeStratifiedSeeds:
    def test_covers_degree_spectrum(self):
        graph = barabasi_albert(400, 3, random.Random(1))
        seeds = degree_stratified_seeds(
            graph, range(400), 20, random.Random(2), strata=4
        )
        assert len(seeds) == 20
        degrees = sorted(len(graph.friends[s]) for s in seeds)
        all_degrees = sorted(len(adj) for adj in graph.friends)
        # Seeds include both low-degree (bottom quartile) and
        # high-degree (top quartile) users.
        assert degrees[0] <= all_degrees[len(all_degrees) // 4]
        assert degrees[-1] >= all_degrees[3 * len(all_degrees) // 4]

    def test_empty_pool(self):
        graph = barabasi_albert(10, 2, random.Random(0))
        assert degree_stratified_seeds(graph, [], 5) == []

    def test_validation(self):
        graph = barabasi_albert(10, 2, random.Random(0))
        with pytest.raises(ValueError):
            degree_stratified_seeds(graph, [0], -1)
        with pytest.raises(ValueError):
            degree_stratified_seeds(graph, [0], 1, strata=0)


class TestCommunitySeeds:
    def test_round_robin_coverage(self):
        labels = [0] * 30 + [1] * 30 + [2] * 30
        seeds = community_seeds(labels, 9, random.Random(3))
        assert len(seeds) == 9
        per_community = [sum(1 for s in seeds if labels[s] == c) for c in range(3)]
        assert per_community == [3, 3, 3]

    def test_count_beyond_population(self):
        seeds = community_seeds([0, 1], 10)
        assert sorted(seeds) == [0, 1]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            community_seeds([0], -2)
