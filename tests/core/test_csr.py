"""Tests for the flat-array CSR core: CSRGraph, CSRView, PartitionState."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AugmentedSocialGraph,
    CSRGraph,
    Partition,
    PartitionState,
    cut_counts,
    resolve_backend,
)
from repro.core.weighted import WeightedAugmentedGraph, WeightedPartition

from ..conftest import graphs_with_sides, random_augmented_graph


def small_graph():
    return AugmentedSocialGraph.from_edges(
        6,
        friendships=[(3, 1), (0, 1), (4, 0), (2, 5)],
        rejections=[(5, 2), (0, 3), (0, 2), (4, 2)],
    )


class TestResolveBackend:
    def test_auto_prefers_numpy_when_available(self, monkeypatch):
        pytest.importorskip("numpy")
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend("auto") == "numpy"

    def test_env_override_pins_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert resolve_backend("auto") == "python"
        monkeypatch.setenv("REPRO_BACKEND", "auto")
        assert resolve_backend("auto") in ("python", "numpy")

    def test_env_override_leaves_explicit_choice_alone(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert resolve_backend("python") == "python"

    def test_explicit_names_pass_through(self):
        assert resolve_backend("python") == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("fortran")


class TestCSRGraph:
    def test_adjacency_is_sorted_regardless_of_insertion_order(self):
        csr = small_graph().csr()
        fp, fi, op, oi, ip_, ii = csr.hot()
        for ptr, idx in ((fp, fi), (op, oi), (ip_, ii)):
            for u in range(csr.num_nodes):
                row = idx[ptr[u] : ptr[u + 1]]
                assert row == sorted(row)

    def test_counts_match_builder(self):
        graph = small_graph()
        csr = graph.csr()
        assert csr.num_nodes == graph.num_nodes
        assert csr.num_friendships == graph.num_friendships
        assert csr.num_rejections == graph.num_rejections
        for u in range(graph.num_nodes):
            assert csr.degree(u) == graph.degree(u)
            assert csr.rejections_cast(u) == graph.rejections_cast(u)
            assert csr.rejections_received(u) == graph.rejections_received(u)

    def test_edge_iteration_is_sorted_and_complete(self):
        graph = small_graph()
        csr = graph.csr()
        assert list(csr.friendships()) == sorted(graph.friendships())
        assert list(csr.rejections()) == sorted(graph.rejections())

    def test_from_edges_dedupes_and_drops_self_loops(self):
        csr = CSRGraph.from_edges(
            4,
            friendships=[(0, 1), (1, 0), (0, 1), (2, 2)],
            rejections=[(3, 0), (3, 0), (1, 1)],
        )
        assert csr.num_friendships == 1
        assert csr.num_rejections == 1
        assert csr.has_friendship(1, 0)
        assert csr.has_rejection(3, 0)
        assert not csr.has_rejection(0, 3)

    def test_backends_share_identical_storage(self):
        pytest.importorskip("numpy")
        graph = small_graph()
        py = CSRGraph.from_builder(graph, backend="python")
        np_ = CSRGraph.from_builder(graph, backend="numpy")
        assert py.hot() == np_.hot()

    def test_numpy_views_are_zero_copy(self):
        np = pytest.importorskip("numpy")
        csr = small_graph().csr(backend="numpy")
        arrays = csr.numpy_arrays()
        assert arrays["f_idx"].dtype == np.int64
        assert list(arrays["f_idx"]) == list(csr.f_idx)
        # A view over the same buffer, not a copy.
        assert arrays["f_idx"].base is not None

    def test_csr_of_csr_is_identity(self):
        csr = small_graph().csr()
        assert csr.csr() is csr

    def test_builder_caches_and_invalidates(self):
        graph = small_graph()
        first = graph.csr()
        assert graph.csr() is first
        graph.add_friendship(3, 4)
        second = graph.csr()
        assert second is not first
        assert second.has_friendship(3, 4)
        graph.add_rejection(1, 5)
        assert graph.csr() is not second
        n = graph.num_nodes
        graph.add_node()
        assert graph.csr().num_nodes == n + 1

    def test_empty_graph(self):
        csr = AugmentedSocialGraph(0).csr()
        assert len(csr) == 0
        assert list(csr.friendships()) == []
        assert csr.view().num_active == 0


class TestCSRView:
    def test_without_is_zero_copy_and_idempotent(self):
        csr = small_graph().csr()
        view = csr.view()
        residual = view.without([1, 1, 5])
        assert residual.csr is csr  # shares the arrays
        assert residual.num_active == csr.num_nodes - 2
        assert view.num_active == csr.num_nodes  # original untouched
        again = residual.without([1])
        assert again.num_active == residual.num_active

    def test_without_rejects_out_of_range_ids(self):
        """Regression: ``active[-1] = 0`` used to silently deactivate
        node ``num_nodes - 1`` via Python's negative indexing."""
        view = small_graph().csr().view()
        with pytest.raises(ValueError, match="out of range"):
            view.without([-1])
        with pytest.raises(ValueError, match="out of range"):
            view.without([6])
        # The failed call must not leave a half-applied mask behind.
        assert view.num_active == 6
        assert view.without([5]).num_active == 5

    def test_is_active_rejects_out_of_range_ids(self):
        view = small_graph().csr().view()
        with pytest.raises(ValueError, match="out of range"):
            view.is_active(-1)
        with pytest.raises(ValueError, match="out of range"):
            view.is_active(6)
        assert view.is_active(5)

    def test_without_negative_id_never_drops_last_node(self):
        view = small_graph().csr().view()
        try:
            view.without([-1])
        except ValueError:
            pass
        assert view.is_active(5)  # the node -1 used to alias

    def test_active_filtered_counts_match_subgraph(self):
        graph = random_augmented_graph(30, 60, 40, seed=3)
        keep = [u for u in range(30) if u % 3 != 0]
        sub, old_ids = graph.subgraph(keep)
        view = graph.csr().view().without(
            [u for u in range(30) if u % 3 == 0]
        )
        assert view.active_nodes() == old_ids
        for new, old in enumerate(old_ids):
            assert view.degree(old) == sub.degree(new)
            assert view.rejections_received(old) == sub.rejections_received(new)


class TestPartitionState:
    def test_sides_and_locked_validation(self):
        view = small_graph().csr().view()
        with pytest.raises(ValueError, match="sides has length"):
            PartitionState(view, [0, 1])
        with pytest.raises(ValueError, match="sides must be 0 or 1"):
            PartitionState(view, [0, 1, 2, 0, 0, 0])
        with pytest.raises(ValueError, match="locked has length"):
            PartitionState(view, [0] * 6, locked=[True])

    def test_copy_shares_view_and_locks_but_not_sides(self):
        state = PartitionState(small_graph().csr().view(), [0, 1, 0, 1, 0, 1])
        clone = state.copy()
        clone.switch(0)
        assert state.sides[0] == 0
        assert clone.view is state.view
        assert clone.locked is state.locked

    @given(graphs_with_sides())
    @settings(max_examples=60, deadline=None)
    def test_counters_match_partition_on_full_view(self, graph_and_sides):
        graph, sides = graph_and_sides
        reference = Partition(graph, sides)
        state = PartitionState(graph.csr().view(), sides)
        assert (state.f_cross, state.r_cross) == (
            reference.f_cross,
            reference.r_cross,
        )
        assert state.suspicious_nodes() == reference.suspicious_nodes()
        assert state.suspicious_size == reference.suspicious_size

    @given(
        graphs_with_sides(),
        st.lists(st.integers(min_value=0, max_value=23), max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_switch_sequences_track_partition_exactly(
        self, graph_and_sides, switches
    ):
        graph, sides = graph_and_sides
        reference = Partition(graph, sides)
        state = PartitionState(graph.csr().view(), sides)
        for u in switches:
            u %= graph.num_nodes
            gain_ref = reference.switch_gain(u, 0.625)
            assert state.switch_gain(u, 0.625) == pytest.approx(gain_ref)
            reference.switch(u)
            state.switch(u)
            assert (state.f_cross, state.r_cross) == (
                reference.f_cross,
                reference.r_cross,
            )
            assert state.sides == reference.sides
        assert state.verify_counts()

    @given(graphs_with_sides(), st.sets(st.integers(min_value=0, max_value=23)))
    @settings(max_examples=60, deadline=None)
    def test_residual_state_matches_subgraph_partition(
        self, graph_and_sides, removed
    ):
        graph, sides = graph_and_sides
        removed = {u for u in removed if u < graph.num_nodes}
        keep = [u for u in range(graph.num_nodes) if u not in removed]
        if not keep:
            return
        sub, old_ids = graph.subgraph(keep)
        reference = Partition(sub, [sides[u] for u in old_ids])
        state = PartitionState(graph.csr().view().without(removed), sides)
        assert (state.f_cross, state.r_cross) == (
            reference.f_cross,
            reference.r_cross,
        )
        assert state.suspicious_nodes() == [
            old_ids[v] for v in reference.suspicious_nodes()
        ]
        # Switching any kept node keeps the two in lockstep.
        for u in keep[: min(5, len(keep))]:
            state.switch(u)
            reference.switch(old_ids.index(u))
            assert (state.f_cross, state.r_cross) == (
                reference.f_cross,
                reference.r_cross,
            )

    def test_weighted_state_matches_weighted_partition(self):
        graph = random_augmented_graph(20, 40, 25, seed=9)
        weighted = WeightedAugmentedGraph.from_graph(graph)
        weighted.add_friendship(0, 1, 2.5)
        weighted.add_rejection(2, 3, 1.5)
        sides = [u % 2 for u in range(20)]
        reference = WeightedPartition(weighted, sides)
        state = PartitionState(weighted.csr().view(), sides)
        assert state.f_cross == pytest.approx(reference.f_cross)
        assert state.r_cross == pytest.approx(reference.r_cross)
        for u in (0, 3, 7, 0, 12):
            assert state.switch_gain(u, 0.7) == pytest.approx(
                reference.switch_gain(u, 0.7)
            )
            state.switch(u)
            reference.switch(u)
            assert state.f_cross == pytest.approx(reference.f_cross)
            assert state.r_cross == pytest.approx(reference.r_cross)
        assert state.verify_counts()

    def test_objective_and_rates_delegate_to_counters(self):
        graph, sides = small_graph(), [0, 0, 1, 1, 0, 1]
        state = PartitionState(graph.csr().view(), sides)
        f, r = cut_counts(graph, sides)
        assert state.objective(2.0) == f - 2.0 * r
        assert state.acceptance_rate() == Partition(graph, sides).acceptance_rate()
