"""Tests for the MAAR sweep solver."""

import pytest

from repro.core import (
    AugmentedSocialGraph,
    MAARConfig,
    geometric_k_sequence,
    initial_partition,
    solve_maar,
)


class TestGeometricSequence:
    def test_default_grid(self):
        ks = geometric_k_sequence(0.125, 2.0, 10)
        assert ks[0] == 0.125
        assert ks[-1] == 64.0
        assert len(ks) == 10

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            geometric_k_sequence(0, 2, 3)
        with pytest.raises(ValueError):
            geometric_k_sequence(1, 1.0, 3)
        with pytest.raises(ValueError):
            geometric_k_sequence(1, 2, 0)


class TestInitialPartition:
    def test_rejection_init_marks_rejected_nodes(self):
        graph = AugmentedSocialGraph.from_edges(4, rejections=[(0, 2), (1, 2)])
        p = initial_partition(graph, MAARConfig(init="rejection"))
        assert p.sides == [0, 0, 1, 0]

    def test_all_legitimate_init(self):
        graph = AugmentedSocialGraph.from_edges(3, rejections=[(0, 1)])
        p = initial_partition(graph, MAARConfig(init="all_legitimate"))
        assert p.sides == [0, 0, 0]

    def test_random_init_is_deterministic_per_seed(self):
        graph = AugmentedSocialGraph(50)
        config = MAARConfig(init="random", random_seed=7)
        a = initial_partition(graph, config)
        b = initial_partition(graph, config)
        assert a.sides == b.sides
        other = initial_partition(graph, MAARConfig(init="random", random_seed=8))
        assert a.sides != other.sides

    def test_seeds_override_strategy(self):
        graph = AugmentedSocialGraph.from_edges(4, rejections=[(0, 2), (0, 3)])
        p = initial_partition(
            graph,
            MAARConfig(init="rejection"),
            legit_seeds=[2],
            spammer_seeds=[1],
        )
        assert p.sides[2] == 0  # legit seed wins over its received rejection
        assert p.sides[1] == 1

    def test_unknown_strategy_rejected(self):
        graph = AugmentedSocialGraph(2)
        with pytest.raises(ValueError):
            initial_partition(graph, MAARConfig(init="oracle"))

    def test_out_of_range_seeds_rejected(self):
        """Regression: ``sides[-1]`` used to wrap around and silently
        seed node ``num_nodes - 1`` instead of failing."""
        graph = AugmentedSocialGraph.from_edges(4, rejections=[(0, 2)])
        with pytest.raises(ValueError, match="legit_seeds.*out of range"):
            initial_partition(graph, MAARConfig(), legit_seeds=[-1])
        with pytest.raises(ValueError, match="spammer_seeds.*out of range"):
            initial_partition(graph, MAARConfig(), spammer_seeds=[4])
        # A negative seed id must not have pinned the aliased last node.
        p = initial_partition(graph, MAARConfig(init="all_legitimate"))
        assert p.sides == [0, 0, 0, 0]

    def test_overlapping_seeds_rejected(self):
        """Regression: a node in both lists used to resolve to
        SUSPICIOUS merely because the spammer loop ran last."""
        graph = AugmentedSocialGraph.from_edges(4, rejections=[(0, 2)])
        with pytest.raises(ValueError, match="both legitimate and spammer"):
            initial_partition(
                graph, MAARConfig(), legit_seeds=[1, 2], spammer_seeds=[2]
            )

    @pytest.mark.parametrize("engine", ["csr", "legacy"])
    def test_solve_maar_validates_seeds_on_both_engines(self, engine):
        from repro.core import KLConfig

        graph = AugmentedSocialGraph.from_edges(4, rejections=[(0, 2)])
        config = MAARConfig(kl=KLConfig(engine=engine))
        with pytest.raises(ValueError, match="out of range"):
            solve_maar(graph, config, legit_seeds=[-2])
        with pytest.raises(ValueError, match="both legitimate and spammer"):
            solve_maar(graph, config, legit_seeds=[3], spammer_seeds=[3])


def spam_graph(n_legit=40, n_fake=10, accepted=2, rejected=8, seed=3):
    import random

    rng = random.Random(seed)
    graph = AugmentedSocialGraph(n_legit + n_fake)
    for u in range(n_legit):
        for _ in range(4):
            v = rng.randrange(n_legit)
            if v != u:
                graph.add_friendship(u, v)
    fakes = list(range(n_legit, n_legit + n_fake))
    for f in fakes:
        other = fakes[(f - n_legit + 1) % n_fake + 0] if n_fake > 1 else None
        if other is not None and other != f:
            graph.add_friendship(f, other)
    for f in fakes:
        targets = rng.sample(range(n_legit), accepted + rejected)
        for t in targets[:accepted]:
            graph.add_friendship(f, t)
        for t in targets[accepted:]:
            graph.add_rejection(t, f)
    return graph, fakes


class TestSolveMAAR:
    def test_finds_planted_spam_cut(self):
        graph, fakes = spam_graph()
        result = solve_maar(graph)
        assert result.found
        assert sorted(result.suspicious_nodes()) == fakes
        # 2 accepted out of 10 requests per fake.
        assert result.acceptance_rate == pytest.approx(0.2)

    def test_reports_per_k_diagnostics(self):
        graph, _ = spam_graph()
        config = MAARConfig(k_steps=6)
        result = solve_maar(graph, config)
        assert len(result.per_k) == 6
        ks = [c.k for c in result.per_k]
        assert ks == config.k_values()
        best = min(
            (c for c in result.per_k if c.valid),
            key=lambda c: (c.acceptance_rate, -c.r_cross),
        )
        assert result.acceptance_rate == pytest.approx(best.acceptance_rate)

    def test_no_rejections_means_no_cut(self):
        graph = AugmentedSocialGraph.from_edges(6, friendships=[(0, 1), (2, 3)])
        result = solve_maar(graph)
        assert not result.found
        assert result.suspicious_nodes() == []
        assert result.acceptance_rate == 1.0

    def test_legit_seeds_block_false_positives(self):
        """A small isolated legit community that happens to receive a few
        rejections can be protected by pinning one of its members."""
        graph = AugmentedSocialGraph(8)
        # Tight community 0-3 with one odd rejection onto it.
        for i in range(4):
            for j in range(i + 1, 4):
                graph.add_friendship(i, j)
        graph.add_rejection(4, 0)
        graph.add_rejection(5, 0)
        # Genuine spammers 6, 7.
        for f in (6, 7):
            for rejecter in range(4):
                graph.add_rejection(rejecter, f)
        unseeded = solve_maar(graph)
        assert set(unseeded.suspicious_nodes()) >= {6, 7}
        seeded = solve_maar(graph, legit_seeds=[0])
        assert 0 not in seeded.suspicious_nodes()
        assert set(seeded.suspicious_nodes()) >= {6, 7}

    def test_spammer_seed_forces_membership(self):
        graph, fakes = spam_graph()
        result = solve_maar(graph, spammer_seeds=[fakes[0]])
        assert fakes[0] in result.suspicious_nodes()

    def test_warm_start_produces_valid_cut(self):
        graph, fakes = spam_graph()
        result = solve_maar(graph, MAARConfig(warm_start=True))
        assert result.found
        assert set(result.suspicious_nodes()) == set(fakes)

    def test_min_suspicious_filters_tiny_cuts(self):
        graph = AugmentedSocialGraph.from_edges(
            5, friendships=[(0, 1), (1, 2)], rejections=[(0, 4), (1, 4), (2, 4)]
        )
        default = solve_maar(graph)
        assert default.suspicious_nodes() == [4]
        strict = solve_maar(graph, MAARConfig(min_suspicious=2))
        # The only spam evidence points at node 4 alone; with a 2-node
        # minimum the solver may return a larger region or nothing, but
        # never a singleton.
        if strict.found:
            assert strict.partition.suspicious_size >= 2

    def test_collusion_does_not_change_best_rate(self):
        """Adding intra-fake friendships must leave the detected cut's
        aggregate acceptance rate unchanged (Section VI-C)."""
        graph, fakes = spam_graph()
        before = solve_maar(graph)
        for i in range(len(fakes)):
            for j in range(i + 1, len(fakes)):
                graph.add_friendship(fakes[i], fakes[j])
        after = solve_maar(graph)
        assert after.found
        assert set(after.suspicious_nodes()) == set(fakes)
        assert after.acceptance_rate == pytest.approx(before.acceptance_rate)

    def test_stats_accumulate_across_k_steps(self):
        graph, _ = spam_graph()
        result = solve_maar(graph, MAARConfig(k_steps=4))
        assert result.stats.passes >= 4
        assert result.stats.switches_tested > 0


class TestIgnoredJobsWarnings:
    """``jobs > 1`` that cannot fan out must say why instead of silently
    running serial."""

    def test_warm_start_warns(self, caplog):
        graph, _ = spam_graph()
        with caplog.at_level("WARNING", logger="repro.core.maar"):
            solve_maar(graph, MAARConfig(jobs=2, warm_start=True))
        assert any("warm_start" in rec.message for rec in caplog.records)

    def test_legacy_engine_warns(self, caplog):
        from repro.core import KLConfig

        graph, _ = spam_graph()
        with caplog.at_level("WARNING", logger="repro.core.maar"):
            solve_maar(graph, MAARConfig(jobs=2, kl=KLConfig(engine="legacy")))
        assert any("legacy engine" in rec.message for rec in caplog.records)

    def test_parallel_sweep_does_not_warn(self, caplog):
        graph, _ = spam_graph()
        with caplog.at_level("WARNING", logger="repro.core.maar"):
            solve_maar(graph, MAARConfig(jobs=2, executor="thread"))
        assert not caplog.records


class TestMAARResult:
    def test_not_found_result_shape(self):
        graph = AugmentedSocialGraph(3)
        result = solve_maar(graph)
        assert not result.found
        assert result.k is None
        assert result.partition is None


class TestDinkelbachRefinement:
    def test_refinement_never_worsens(self):
        graph, fakes = spam_graph()
        plain = solve_maar(graph, MAARConfig(refine_rounds=0))
        refined = solve_maar(graph, MAARConfig(refine_rounds=3))
        assert refined.found
        assert refined.acceptance_rate <= plain.acceptance_rate + 1e-9

    def test_refinement_recorded_in_per_k(self):
        graph, fakes = spam_graph()
        config = MAARConfig(k_steps=4, refine_rounds=2)
        result = solve_maar(graph, config)
        # At least one refinement candidate beyond the grid steps.
        assert len(result.per_k) > 4

    def test_refinement_improves_on_coarse_grid(self):
        """With a deliberately coarse grid the sweep lands off k*; the
        ratio-refinement rounds recover (or match) the fine-grid cut."""
        graph, fakes = spam_graph()
        coarse = MAARConfig(k_min=0.125, k_factor=16.0, k_steps=2)
        refined = solve_maar(
            graph,
            MAARConfig(k_min=0.125, k_factor=16.0, k_steps=2, refine_rounds=4),
        )
        plain = solve_maar(graph, coarse)
        assert refined.acceptance_rate <= plain.acceptance_rate + 1e-9

    def test_refinement_respects_seeds(self):
        graph, fakes = spam_graph()
        result = solve_maar(
            graph, MAARConfig(refine_rounds=3), legit_seeds=[0, 1]
        )
        assert 0 not in result.suspicious_nodes()
        assert 1 not in result.suspicious_nodes()
