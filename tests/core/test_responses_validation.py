"""Tests for the §VII response policy and the graph validator."""

import pytest

from repro.core import (
    Action,
    AugmentedSocialGraph,
    DetectedGroup,
    GraphValidationError,
    RejectoResult,
    ResponsePolicy,
    assert_valid_graph,
    validate_graph,
)


def group(members, rate, round_index=0):
    return DetectedGroup(
        members=list(members),
        acceptance_rate=rate,
        ratio=rate / (1 - rate) if rate < 1 else float("inf"),
        f_cross=0,
        r_cross=0,
        k=1.0,
        round_index=round_index,
    )


class TestResponsePolicy:
    def test_actions_by_evidence_strength(self):
        policy = ResponsePolicy(suspend_below=0.2, rate_limit_below=0.4)
        assert policy.action_for_rate(0.1) is Action.SUSPEND
        assert policy.action_for_rate(0.2) is Action.SUSPEND
        assert policy.action_for_rate(0.3) is Action.RATE_LIMIT
        assert policy.action_for_rate(0.5) is Action.CAPTCHA

    def test_plan_over_groups(self):
        result = RejectoResult(
            groups=[
                group([1, 2], rate=0.1, round_index=0),
                group([3], rate=0.35, round_index=1),
                group([4, 5], rate=0.55, round_index=2),
            ],
            rounds_run=3,
            termination="estimated_spammers",
        )
        plan = ResponsePolicy().plan(result)
        assert len(plan) == 5
        assert plan.accounts_for(Action.SUSPEND) == [1, 2]
        assert plan.accounts_for(Action.RATE_LIMIT) == [3]
        assert plan.accounts_for(Action.CAPTCHA) == [4, 5]
        assert plan.counts() == {
            Action.SUSPEND: 2,
            Action.RATE_LIMIT: 1,
            Action.CAPTCHA: 2,
        }

    def test_graduation_tolerates_false_positives(self):
        """The paper's point: borderline evidence gets reversible
        friction, not suspension."""
        plan = ResponsePolicy().plan(
            RejectoResult(
                groups=[group([9], rate=0.45)],
                rounds_run=1,
                termination="no_cut",
            )
        )
        assert plan.actions[9] is Action.CAPTCHA

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            ResponsePolicy(suspend_below=0.5, rate_limit_below=0.3)
        with pytest.raises(ValueError):
            ResponsePolicy(suspend_below=-0.1)

    def test_empty_result(self):
        plan = ResponsePolicy().plan(
            RejectoResult(groups=[], rounds_run=0, termination="no_cut")
        )
        assert len(plan) == 0
        assert plan.counts()[Action.SUSPEND] == 0


class TestValidateGraph:
    def test_valid_graph_passes(self):
        graph = AugmentedSocialGraph.from_edges(
            5, friendships=[(0, 1), (2, 3)], rejections=[(4, 0), (0, 4)]
        )
        assert validate_graph(graph) == []
        assert_valid_graph(graph)  # does not raise

    def test_broken_symmetry_detected(self):
        graph = AugmentedSocialGraph.from_edges(3, friendships=[(0, 1)])
        graph.friends[0].remove(1)  # corrupt one direction
        problems = validate_graph(graph)
        assert any("not symmetric" in p or "absent" in p for p in problems)
        with pytest.raises(GraphValidationError):
            assert_valid_graph(graph)

    def test_dangling_rejection_detected(self):
        graph = AugmentedSocialGraph.from_edges(3, rejections=[(0, 1)])
        graph.rej_in[1].remove(0)
        problems = validate_graph(graph)
        assert any("rej_in" in p for p in problems)

    def test_out_of_range_adjacency_detected(self):
        graph = AugmentedSocialGraph.from_edges(3, friendships=[(0, 1)])
        graph.friends[0].append(99)
        problems = validate_graph(graph)
        assert any("out-of-range" in p for p in problems)

    def test_duplicate_adjacency_detected(self):
        graph = AugmentedSocialGraph.from_edges(3, friendships=[(0, 1)])
        graph.friends[0].append(1)
        problems = validate_graph(graph)
        assert any("duplicates" in p for p in problems)

    def test_count_mismatch_detected(self):
        graph = AugmentedSocialGraph.from_edges(3, friendships=[(0, 1)])
        graph._friend_set.add((0, 2))  # edge set lies about an edge
        problems = validate_graph(graph)
        assert problems


class TestRequestLogToGraph:
    def test_conversion(self):
        from repro.attacks import RequestLog

        log = RequestLog()
        log.record(0, 1, True)
        log.record(2, 0, False)
        graph = log.to_augmented_graph()
        assert graph.num_nodes == 3
        assert graph.has_friendship(0, 1)
        assert graph.has_rejection(0, 2)  # target 0 rejected sender 2
        assert validate_graph(graph) == []

    def test_explicit_user_count(self):
        from repro.attacks import RequestLog

        log = RequestLog()
        log.record(0, 1, True)
        graph = log.to_augmented_graph(num_users=10)
        assert graph.num_nodes == 10

    def test_matches_scenario_graph(self):
        """Rebuilding the graph from the scenario's own request log must
        reproduce the scenario's graph exactly."""
        from repro.attacks import ScenarioConfig, build_scenario

        scenario = build_scenario(
            ScenarioConfig(num_legit=200, num_fakes=40, seed=19)
        )
        rebuilt = scenario.request_log.to_augmented_graph(
            num_users=scenario.num_nodes
        )
        assert set(rebuilt.friendships()) == set(scenario.graph.friendships())
        assert set(rebuilt.rejections()) == set(scenario.graph.rejections())

    def test_detect_cli_from_requests(self, tmp_path):
        import io as iomod

        from repro.attacks import ScenarioConfig, build_scenario
        from repro.cli import _run_command, build_parser
        from repro.io import save_request_log

        scenario = build_scenario(
            ScenarioConfig(num_legit=200, num_fakes=40, seed=20)
        )
        log_path = tmp_path / "requests.csv"
        save_request_log(scenario.request_log, log_path)
        args = build_parser().parse_args(
            [
                "detect",
                "--requests",
                str(log_path),
                "--estimated",
                "40",
                "--actions",
            ]
        )
        out = iomod.StringIO()
        _run_command(args, out=out)
        text = out.getvalue()
        assert "total detected: " in text
        assert "response plan" in text
