"""Cross-module integration tests: the paper's claims end to end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import ScenarioConfig, build_scenario
from repro.core import MAARConfig, Rejecto, RejectoConfig, solve_maar

from ..conftest import augmented_graphs


class TestEndToEnd:
    def test_baseline_detection_is_accurate(self):
        scenario = build_scenario(ScenarioConfig(num_legit=600, num_fakes=120))
        result = Rejecto(RejectoConfig(estimated_spammers=120)).detect(
            scenario.graph
        )
        metrics = scenario.precision_recall(result.detected(limit=120))
        assert metrics.precision > 0.95

    def test_detected_cut_rate_matches_spam_acceptance(self):
        """The first detected group's aggregate acceptance rate should
        sit at the simulated spam acceptance rate (~0.3 plus the
        careless users' accepted requests)."""
        scenario = build_scenario(
            ScenarioConfig(num_legit=600, num_fakes=120, careless_fraction=0.0)
        )
        result = Rejecto(RejectoConfig(estimated_spammers=120)).detect(
            scenario.graph
        )
        assert result.groups
        assert result.groups[0].acceptance_rate == pytest.approx(0.3, abs=0.05)

    def test_same_seed_same_detection(self):
        config = ScenarioConfig(num_legit=400, num_fakes=80, seed=23)
        runs = []
        for _ in range(2):
            scenario = build_scenario(config)
            result = Rejecto(RejectoConfig(estimated_spammers=80)).detect(
                scenario.graph
            )
            runs.append(result.detected())
        assert runs[0] == runs[1]

    def test_groups_are_disjoint_and_in_range(self):
        scenario = build_scenario(ScenarioConfig(num_legit=400, num_fakes=80))
        result = Rejecto(RejectoConfig(max_rounds=5)).detect(scenario.graph)
        seen = set()
        for group in result.groups:
            members = set(group.members)
            assert not members & seen
            assert all(0 <= u < scenario.num_nodes for u in members)
            seen |= members


@given(augmented_graphs(max_nodes=20, max_edges=50))
@settings(max_examples=30, deadline=None)
def test_solve_maar_result_is_always_valid(graph):
    """Property: any returned cut satisfies the validity constraints and
    its reported acceptance rate matches a recount."""
    config = MAARConfig(k_steps=4)
    result = solve_maar(graph, config)
    if not result.found:
        return
    partition = result.partition
    assert partition.verify_counts()
    assert partition.r_cross > 0
    assert (
        config.min_suspicious
        <= partition.suspicious_size
        <= config.max_suspicious_fraction * graph.num_nodes
    )
    assert result.acceptance_rate == pytest.approx(partition.acceptance_rate())


@given(augmented_graphs(max_nodes=18, max_edges=40), st.data())
@settings(max_examples=30, deadline=None)
def test_rejecto_never_detects_legit_seeds(graph, data):
    """Property: pinned legitimate seeds survive every round."""
    seeds = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=graph.num_nodes - 1),
            unique=True,
            max_size=5,
        )
    )
    config = RejectoConfig(maar=MAARConfig(k_steps=3), max_rounds=4)
    result = Rejecto(config).detect(graph, legit_seeds=seeds)
    assert not result.detected_set() & set(seeds)
