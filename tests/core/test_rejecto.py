"""Tests for the iterative Rejecto detector."""

import random

from repro.core import (
    AugmentedSocialGraph,
    MAARConfig,
    Rejecto,
    RejectoConfig,
    RejectoResult,
    DetectedGroup,
)


def two_group_spam_graph(seed=5):
    """60 legit users plus two disjoint fake groups with different
    acceptance rates (10% and 30%), to exercise iterative rounds."""
    rng = random.Random(seed)
    n_legit = 60
    graph = AugmentedSocialGraph(n_legit)
    for u in range(n_legit):
        for _ in range(4):
            v = rng.randrange(n_legit)
            if v != u:
                graph.add_friendship(u, v)

    def add_group(size, accepted, rejected):
        members = graph.add_nodes(size)
        for i, f in enumerate(members):
            graph.add_friendship(f, members[(i + 1) % size])
        for f in members:
            targets = rng.sample(range(n_legit), accepted + rejected)
            for t in targets[:accepted]:
                graph.add_friendship(f, t)
            for t in targets[accepted:]:
                graph.add_rejection(t, f)
        return members

    group_a = add_group(12, accepted=1, rejected=9)  # AC = 0.1
    group_b = add_group(12, accepted=3, rejected=7)  # AC = 0.3
    return graph, group_a, group_b


class TestRejectoDetect:
    def test_detects_both_groups_in_rate_order(self):
        graph, group_a, group_b = two_group_spam_graph()
        config = RejectoConfig(estimated_spammers=24)
        result = Rejecto(config).detect(graph)
        detected = set(result.detected())
        assert detected >= set(group_a)
        assert detected >= set(group_b)
        # Groups come out in non-decreasing acceptance-rate order (§IV-E).
        rates = [g.acceptance_rate for g in result.groups]
        assert rates == sorted(rates)

    def test_estimated_spammers_termination(self):
        graph, group_a, group_b = two_group_spam_graph()
        config = RejectoConfig(estimated_spammers=12)
        result = Rejecto(config).detect(graph)
        assert result.termination == "estimated_spammers"
        assert result.total_detected >= 12
        # The first (lowest-rate) group is the 10%-acceptance one.
        assert set(result.groups[0].members) == set(group_a)

    def test_acceptance_threshold_termination(self):
        graph, group_a, group_b = two_group_spam_graph()
        # Threshold between the two groups' rates: only group A detected.
        config = RejectoConfig(acceptance_threshold=0.2)
        result = Rejecto(config).detect(graph)
        assert result.termination == "acceptance_threshold"
        detected = result.detected_set()
        assert detected >= set(group_a)
        assert not detected & set(group_b)

    def test_max_rounds_cap(self):
        graph, _, _ = two_group_spam_graph()
        config = RejectoConfig(max_rounds=1)
        result = Rejecto(config).detect(graph)
        assert result.rounds_run == 1

    def test_clean_graph_detects_nothing(self):
        rng = random.Random(0)
        graph = AugmentedSocialGraph(40)
        for u in range(40):
            for _ in range(3):
                v = rng.randrange(40)
                if v != u:
                    graph.add_friendship(u, v)
        result = Rejecto(RejectoConfig()).detect(graph)
        assert result.total_detected == 0
        assert result.termination == "no_cut"

    def test_empty_graph(self):
        result = Rejecto(RejectoConfig()).detect(AugmentedSocialGraph(0))
        assert result.total_detected == 0

    def test_detected_limit_trims_weakest_evidence_last(self):
        graph, group_a, _ = two_group_spam_graph()
        result = Rejecto(RejectoConfig(estimated_spammers=24)).detect(graph)
        full = result.detected()
        limited = result.detected(limit=10)
        assert limited == full[:10]
        # Within the first group, members are ordered by in-rejection count.
        first = result.groups[0].members
        evidence = [len(graph.rej_in[u]) for u in first]
        assert evidence == sorted(evidence, reverse=True)

    def test_legit_seeds_survive_all_rounds(self):
        graph, group_a, group_b = two_group_spam_graph()
        seeds = [0, 1, 2]
        result = Rejecto(RejectoConfig(estimated_spammers=24)).detect(
            graph, legit_seeds=seeds
        )
        assert not result.detected_set() & set(seeds)

    def test_spammer_seeds_guide_detection(self):
        graph, group_a, group_b = two_group_spam_graph()
        result = Rejecto(RejectoConfig(estimated_spammers=24)).detect(
            graph, spammer_seeds=[group_b[0]]
        )
        assert group_b[0] in result.detected_set()


class TestSelfRejectionResilience:
    def test_self_rejection_exposes_rejected_accounts_first(self):
        """Attackers rejecting their own accounts (Fig. 8) craft a lower
        ratio cut inside the fake region; iterative rounds must still
        recover the whitewashing rejecters in a later round."""
        rng = random.Random(9)
        n_legit = 80
        graph = AugmentedSocialGraph(n_legit)
        for u in range(n_legit):
            for _ in range(4):
                v = rng.randrange(n_legit)
                if v != u:
                    graph.add_friendship(u, v)
        # All 20 fakes spam legit users (2 accepted / 8 rejected each),
        # exactly as in the paper's baseline workload (§VI-A).
        spammers = graph.add_nodes(10)
        whitewashed = graph.add_nodes(10)
        for f in spammers + whitewashed:
            others = [o for o in spammers + whitewashed if o != f]
            graph.add_friendship(f, rng.choice(others))
        for f in spammers + whitewashed:
            targets = rng.sample(range(n_legit), 10)
            for t in targets[:2]:
                graph.add_friendship(f, t)
            for t in targets[2:]:
                graph.add_rejection(t, f)
        # The whitewashed half additionally rejects the spamming half
        # wholesale, crafting an internal cut whose friends-to-rejections
        # ratio undercuts the real spammer/legitimate cut (Fig. 8).
        for w in whitewashed:
            for f in spammers:
                graph.add_rejection(w, f)
        result = Rejecto(RejectoConfig(estimated_spammers=20)).detect(graph)
        detected = result.detected_set()
        assert set(spammers) <= detected
        assert set(whitewashed) <= detected
        # The spamming half (victims of self-rejection) falls first.
        first_round = set(result.groups[0].members)
        assert set(spammers) <= first_round
        assert not set(whitewashed) & first_round


class TestRejectoResult:
    def test_result_accessors(self):
        group = DetectedGroup(
            members=[5, 3],
            acceptance_rate=0.25,
            ratio=1 / 3,
            f_cross=2,
            r_cross=6,
            k=0.5,
            round_index=0,
        )
        result = RejectoResult(groups=[group], rounds_run=1, termination="no_cut")
        assert result.detected() == [5, 3]
        assert result.detected(limit=1) == [5]
        assert result.detected_set() == {3, 5}
        assert result.total_detected == 2
        assert len(group) == 2


class TestResidualViewRounds:
    """The CSR engine's rounds carve residual *views*, never copies."""

    def test_rounds_do_not_call_subgraph(self, monkeypatch):
        graph, group_a, group_b = two_group_spam_graph()

        def forbidden(self, nodes):  # pragma: no cover - must not run
            raise AssertionError(
                "default-engine detection must not deep-copy via subgraph()"
            )

        monkeypatch.setattr(AugmentedSocialGraph, "subgraph", forbidden)
        result = Rejecto(RejectoConfig(estimated_spammers=24)).detect(graph)
        assert result.rounds_run >= 2
        assert set(group_a) <= result.detected_set()

    def test_rounds_reuse_one_csr_snapshot(self):
        graph, _, _ = two_group_spam_graph()
        csr = graph.csr()
        result = Rejecto(RejectoConfig(estimated_spammers=24)).detect(graph)
        # detect() finalized the builder once and reused the cached CSR;
        # every round only allocated an O(V) active mask on top of it.
        assert graph.csr() is csr
        assert result.rounds_run >= 2

    def test_legacy_engine_still_copies(self):
        from repro.core.kl import KLConfig

        graph, group_a, _ = two_group_spam_graph()
        config = RejectoConfig(
            maar=MAARConfig(kl=KLConfig(engine="legacy")),
            estimated_spammers=24,
        )
        result = Rejecto(config).detect(graph)
        assert set(group_a) <= result.detected_set()
